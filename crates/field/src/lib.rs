//! Prime-field arithmetic for the zkPHIRE reproduction.
//!
//! zkPHIRE (HPCA 2026) operates on the BLS12-381 curve: every MLE table
//! entry is an element of the 255-bit scalar field [`Fr`] and every
//! elliptic-curve coordinate is an element of the 381-bit base field
//! [`Fq`] (paper §V). This crate provides both as instantiations of a
//! const-generic Montgomery-form [`Fp`], plus the Montgomery batch-inversion
//! primitive that the paper's Permutation Quotient Generator builds in
//! hardware (§IV-B5).
//!
//! # Examples
//!
//! ```
//! use zkphire_field::{batch_inverse, Fr};
//!
//! let xs: Vec<Fr> = (1..=8).map(Fr::from_u64).collect();
//! let mut inv = xs.clone();
//! batch_inverse(&mut inv);
//! for (x, i) in xs.iter().zip(&inv) {
//!     assert_eq!(*x * *i, Fr::ONE);
//! }
//! ```

pub mod arith;
mod fp;
mod inverse;

pub use fp::{FieldParams, Fp};
pub use inverse::{batch_inverse, batch_inverse_count_ops, BatchInverseOps};

/// Marker type carrying the BLS12-381 scalar-field modulus.
///
/// `r = 0x73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001`
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FrParams;

impl FieldParams<4> for FrParams {
    const MODULUS: [u64; 4] = [
        0xffff_ffff_0000_0001,
        0x53bd_a402_fffe_5bfe,
        0x3339_d808_09a1_d805,
        0x73ed_a753_299d_7d48,
    ];
    const MODULUS_BITS: u32 = 255;
    const NAME: &'static str = "Fr";
}

/// The BLS12-381 scalar field (255 bits): the datatype of all MLE tables.
pub type Fr = Fp<FrParams, 4>;

/// Marker type carrying the BLS12-381 base-field modulus.
///
/// `q = 0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624`
/// `1eabfffeb153ffffb9feffffffffaaab`
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FqParams;

impl FieldParams<6> for FqParams {
    const MODULUS: [u64; 6] = [
        0xb9fe_ffff_ffff_aaab,
        0x1eab_fffe_b153_ffff,
        0x6730_d2a0_f6b0_f624,
        0x6477_4b84_f385_12bf,
        0x4b1b_a7b6_434b_acd7,
        0x1a01_11ea_397f_e69a,
    ];
    const MODULUS_BITS: u32 = 381;
    const NAME: &'static str = "Fq";
}

/// The BLS12-381 base field (381 bits): the datatype of curve coordinates.
pub type Fq = Fp<FqParams, 6>;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arb_fr() -> impl Strategy<Value = Fr> {
        any::<[u8; 32]>().prop_map(|bytes| Fr::from_le_bytes_mod_order(&bytes))
    }

    fn arb_fq() -> impl Strategy<Value = Fq> {
        any::<[u8; 48]>().prop_map(|bytes| Fq::from_le_bytes_mod_order(&bytes))
    }

    #[test]
    fn identities() {
        assert!(Fr::ZERO.is_zero());
        assert!(Fr::ONE.is_one());
        assert_eq!(Fr::from_u64(1), Fr::ONE);
        assert_eq!(Fr::from_u64(0), Fr::ZERO);
        assert_eq!(Fq::from_u64(1), Fq::ONE);
        assert_eq!(Fr::default(), Fr::ZERO);
    }

    #[test]
    fn small_integer_arithmetic() {
        for a in 0u64..20 {
            for b in 0u64..20 {
                assert_eq!(Fr::from_u64(a) + Fr::from_u64(b), Fr::from_u64(a + b));
                assert_eq!(Fr::from_u64(a) * Fr::from_u64(b), Fr::from_u64(a * b));
                assert_eq!(Fq::from_u64(a) * Fq::from_u64(b), Fq::from_u64(a * b));
            }
        }
    }

    #[test]
    fn from_i64_wraps() {
        assert_eq!(Fr::from_i64(-1) + Fr::ONE, Fr::ZERO);
        assert_eq!(Fr::from_i64(-5), -Fr::from_u64(5));
        assert_eq!(Fr::from_i64(7), Fr::from_u64(7));
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Fr::random(&mut rng);
        let two = [2u64, 0, 0, 0];
        let (exp, _) = arith::sub_limbs(&FrParams::MODULUS, &two);
        // a^(p-2) * a == 1
        assert_eq!(a.pow(&exp) * a, Fr::ONE);
    }

    #[test]
    fn minus_one_squares_to_one() {
        let minus_one = -Fr::ONE;
        assert_eq!(minus_one.square(), Fr::ONE);
        let minus_one_q = -Fq::ONE;
        assert_eq!(minus_one_q.square(), Fq::ONE);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            let a = Fr::random(&mut rng);
            let bytes = a.to_le_bytes();
            assert_eq!(bytes.len(), 32);
            assert_eq!(Fr::from_le_bytes_mod_order(&bytes), a);
            let b = Fq::random(&mut rng);
            assert_eq!(Fq::from_le_bytes_mod_order(&b.to_le_bytes()), b);
        }
    }

    #[test]
    fn canonical_limbs_reject_unreduced() {
        assert!(Fr::from_canonical_limbs(FrParams::MODULUS).is_none());
        let mut below = FrParams::MODULUS;
        below[0] -= 1;
        assert!(Fr::from_canonical_limbs(below).is_some());
    }

    #[test]
    fn display_contains_field_name() {
        let s = format!("{}", Fr::from_u64(5));
        assert!(s.starts_with("Fr(0x"));
        assert!(s.ends_with('5') || s.ends_with(')'));
    }

    #[test]
    fn sqrt_of_squares() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..8 {
            let a = Fr::random(&mut rng);
            let root = a.square().sqrt().expect("squares are residues");
            assert!(root == a || root == -a);
            let b = Fq::random(&mut rng);
            let root_q = b.square().sqrt().expect("squares are residues");
            assert!(root_q == b || root_q == -b);
        }
        assert_eq!(Fr::ZERO.sqrt(), Some(Fr::ZERO));
        assert_eq!(Fr::ONE.sqrt().map(|r| r.square()), Some(Fr::ONE));
    }

    #[test]
    fn sqrt_rejects_non_residues() {
        // Exactly one of {a, a * non_residue} is a residue; find a
        // non-residue by trial and confirm sqrt returns None.
        let mut rng = StdRng::seed_from_u64(22);
        let mut found = false;
        for _ in 0..16 {
            let a = Fr::random(&mut rng);
            if !a.is_zero() && a.sqrt().is_none() {
                found = true;
                break;
            }
        }
        assert!(found, "half of all elements are non-residues");
    }

    #[test]
    fn ordering_is_canonical() {
        assert!(Fr::from_u64(2) < Fr::from_u64(3));
        assert!(-Fr::ONE > Fr::from_u64(1_000_000));
    }

    proptest! {
        #[test]
        fn fr_addition_commutes(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn fr_multiplication_commutes(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn fr_multiplication_associates(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn fr_distributivity(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn fr_add_sub_inverse(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a + b - b, a);
            prop_assert_eq!(a + (-a), Fr::ZERO);
        }

        #[test]
        fn fr_inverse_is_inverse(a in arb_fr()) {
            if !a.is_zero() {
                let inv = a.inverse().unwrap();
                prop_assert_eq!(a * inv, Fr::ONE);
            } else {
                prop_assert!(a.inverse().is_none());
            }
        }

        #[test]
        fn fr_square_matches_mul(a in arb_fr()) {
            prop_assert_eq!(a.square(), a * a);
        }

        #[test]
        fn fq_square_matches_mul(a in arb_fq(), b in arb_fq()) {
            prop_assert_eq!(a.square(), a * a);
            // Exercise the Karatsuba-like identity through both kernels:
            // (a + b)^2 == a^2 + 2ab + b^2.
            let lhs = (a + b).square();
            prop_assert_eq!(lhs, a.square() + (a * b).double() + b.square());
        }

        #[test]
        fn fq_field_axioms(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!((a + b) + c, a + (b + c));
            if !a.is_zero() {
                prop_assert_eq!(a * a.inverse().unwrap(), Fq::ONE);
            }
        }
    }
}
