//! Low-level multi-precision limb arithmetic shared by every field width.
//!
//! All routines operate on little-endian `[u64; N]` limb arrays and are
//! `const fn` where the derived Montgomery constants need them at
//! compile time. The multiplication kernel is the classic CIOS
//! (Coarsely Integrated Operand Scanning) Montgomery multiplier — the same
//! algorithm the paper's HLS-generated 255/381-bit modular multipliers
//! implement in hardware.

/// Computes `a + b + carry`, returning the low word and the carry out.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Computes `a - b - borrow`, returning the low word and the borrow out (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Computes `a + b * c + carry`, returning the low word and the high word.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Returns `true` when `a >= b` as little-endian multi-precision integers.
#[inline]
pub const fn geq<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    let mut i = N;
    while i > 0 {
        i -= 1;
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// Returns `true` when every limb of `a` is zero.
#[inline]
pub const fn is_zero<const N: usize>(a: &[u64; N]) -> bool {
    let mut i = 0;
    while i < N {
        if a[i] != 0 {
            return false;
        }
        i += 1;
    }
    true
}

/// Computes `a - b`, returning the difference and the borrow out (0 or 1).
#[inline]
pub const fn sub_limbs<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < N {
        let (d, br) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = br;
        i += 1;
    }
    (out, borrow)
}

/// Computes `a + b`, returning the sum and the carry out (0 or 1).
#[inline]
pub const fn add_limbs<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut carry = 0u64;
    let mut i = 0;
    while i < N {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
        i += 1;
    }
    (out, carry)
}

/// Computes `2^bits mod m` by repeated doubling.
///
/// Used at compile time to derive the Montgomery constants
/// `R = 2^(64 N) mod m` and `R^2 = 2^(128 N) mod m`.
pub const fn pow2_mod<const N: usize>(m: &[u64; N], bits: u32) -> [u64; N] {
    let mut v = [0u64; N];
    v[0] = 1;
    let mut i = 0;
    while i < bits {
        // Double `v`, tracking the bit shifted out of the top limb.
        let mut carry = 0u64;
        let mut j = 0;
        while j < N {
            let hi = v[j] >> 63;
            v[j] = (v[j] << 1) | carry;
            carry = hi;
            j += 1;
        }
        // v < m before doubling, so 2v < 2m: one subtraction restores range.
        if carry != 0 || geq(&v, m) {
            let (r, _) = sub_limbs(&v, m);
            v = r;
        }
        i += 1;
    }
    v
}

/// Computes `-m^{-1} mod 2^64` for odd `m` (low limb `m0`) by Newton iteration.
pub const fn mont_neg_inv(m0: u64) -> u64 {
    // Each iteration doubles the number of correct low bits: 1 -> 64 in six steps.
    let mut x: u64 = 1;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(x)));
        i += 1;
    }
    x.wrapping_neg()
}

/// CIOS Montgomery multiplication: returns `a * b * 2^(-64 N) mod m`.
///
/// Inputs must be `< m`; the output is `< m`. `inv` is
/// [`mont_neg_inv`]`(m[0])`.
#[inline]
pub fn mont_mul<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N], inv: u64) -> [u64; N] {
    let mut t = [0u64; N];
    let mut t_n = 0u64; // t[N]

    let mut i = 0;
    while i < N {
        // t += a * b[i]
        let mut c = 0u64;
        let mut j = 0;
        while j < N {
            let (lo, hi) = mac(t[j], a[j], b[i], c);
            t[j] = lo;
            c = hi;
            j += 1;
        }
        // t_mid = t[N], t_top = t[N + 1] (0 or 1)
        let (t_mid, t_top) = adc(t_n, c, 0);

        // Reduce: add k * m so the low limb cancels, then shift right one limb.
        let k = t[0].wrapping_mul(inv);
        let (_, mut c) = mac(t[0], k, m[0], 0);
        let mut j = 1;
        while j < N {
            let (lo, hi) = mac(t[j], k, m[j], c);
            t[j - 1] = lo;
            c = hi;
            j += 1;
        }
        let (lo, hi) = adc(t_mid, c, 0);
        t[N - 1] = lo;
        t_n = t_top + hi;
        i += 1;
    }

    // t < 2m at this point; a single conditional subtraction finishes.
    if t_n != 0 || geq(&t, m) {
        let (r, _) = sub_limbs(&t, m);
        t = r;
    }
    t
}

/// SOS Montgomery squaring: returns `a * a * 2^(-64 N) mod m`.
///
/// Exploits the symmetry of the partial-product matrix: the off-diagonal
/// products `a_i * a_j` (`i < j`) are computed once and doubled, then the
/// `N` diagonal squares are added — `N(N+1)/2` wide multiplications instead
/// of [`mont_mul`]'s `N^2` — before a standard word-by-word Montgomery
/// reduction. Input must be `< m`; the output is `< m`.
#[inline]
pub fn mont_sqr<const N: usize>(a: &[u64; N], m: &[u64; N], inv: u64) -> [u64; N] {
    // Scratch for the 2N-limb square; fields here are N = 4 or N = 6.
    assert!(2 * N <= 16, "mont_sqr supports up to 8 limbs");
    let mut t = [0u64; 16];

    // Off-diagonal partial products: t = sum_{i < j} a_i a_j 2^(64 (i+j)).
    for i in 0..N {
        let mut carry = 0u64;
        for j in (i + 1)..N {
            let (lo, hi) = mac(t[i + j], a[i], a[j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        t[i + N] = carry;
    }
    // Double the off-diagonal sum (fits in 2N limbs: it is < a^2 / 2).
    let mut carry = 0u64;
    for limb in t.iter_mut().take(2 * N) {
        let hi = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = hi;
    }
    // Add the diagonal squares a_i^2 at positions 2i, 2i+1.
    let mut carry = 0u64;
    for i in 0..N {
        let sq = (a[i] as u128) * (a[i] as u128);
        let (lo, c1) = adc(t[2 * i], sq as u64, carry);
        t[2 * i] = lo;
        let (hi, c2) = adc(t[2 * i + 1], (sq >> 64) as u64, c1);
        t[2 * i + 1] = hi;
        carry = c2;
    }

    // Word-by-word Montgomery reduction of the 2N-limb value. `extra`
    // tracks the overflow out of limb `i + N` across iterations: the
    // carry out of step i's top adc lands exactly at limb `i + 1 + N`,
    // step i+1's top position.
    let mut extra = 0u64;
    for i in 0..N {
        let k = t[i].wrapping_mul(inv);
        let mut carry = 0u64;
        for j in 0..N {
            let (lo, hi) = mac(t[i + j], k, m[j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        let (lo, c) = adc(t[i + N], carry, extra);
        t[i + N] = lo;
        extra = c;
    }

    let mut out = [0u64; N];
    out.copy_from_slice(&t[N..2 * N]);
    if extra != 0 || geq(&out, m) {
        let (r, _) = sub_limbs(&out, m);
        out = r;
    }
    out
}

/// Modular addition of canonical representatives: `(a + b) mod m`.
#[inline]
pub fn add_mod<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N]) -> [u64; N] {
    let (sum, carry) = add_limbs(a, b);
    if carry != 0 || geq(&sum, m) {
        let (r, _) = sub_limbs(&sum, m);
        r
    } else {
        sum
    }
}

/// Modular subtraction of canonical representatives: `(a - b) mod m`.
#[inline]
pub fn sub_mod<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N]) -> [u64; N] {
    let (diff, borrow) = sub_limbs(a, b);
    if borrow != 0 {
        let (r, _) = add_limbs(&diff, m);
        r
    } else {
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: [u64; 2] = [0xffff_ffff_ffff_ffc5, 0xffff_ffff_ffff_ffff]; // 2^128 - 59 (prime)

    #[test]
    fn adc_sbb_roundtrip() {
        let (s, c) = adc(u64::MAX, 1, 0);
        assert_eq!((s, c), (0, 1));
        let (d, b) = sbb(0, 1, 0);
        assert_eq!((d, b), (u64::MAX, 1));
    }

    #[test]
    fn mac_full_width() {
        // u64::MAX^2 + u64::MAX + u64::MAX == 2^128 - 1
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn mont_neg_inv_is_inverse() {
        for m0 in [1u64, 3, 0xffff_ffff_ffff_ffc5, M[0], 0x9876_5432_1234_5671] {
            let inv = mont_neg_inv(m0);
            // m0 * (-m0^-1) == -1 mod 2^64
            assert_eq!(m0.wrapping_mul(inv).wrapping_add(1), 0);
        }
    }

    #[test]
    fn pow2_mod_small() {
        // 2^128 mod (2^128 - 59) == 59
        let r = pow2_mod(&M, 128);
        assert_eq!(r, [59, 0]);
        // 2^0 mod m == 1
        assert_eq!(pow2_mod(&M, 0), [1, 0]);
    }

    #[test]
    fn mont_mul_identity() {
        let inv = mont_neg_inv(M[0]);
        let r = pow2_mod(&M, 128); // R mod m
                                   // mont_mul(x, R) == x for x < m
        let x = [123_456_789u64, 42];
        assert_eq!(mont_mul(&x, &r, &M, inv), x);
    }

    #[test]
    fn mont_sqr_matches_mont_mul() {
        let inv = mont_neg_inv(M[0]);
        // A spread of values including edge patterns near the modulus.
        let cases: [[u64; 2]; 6] = [
            [0, 0],
            [1, 0],
            [123_456_789, 42],
            [u64::MAX, 0x7fff_ffff_ffff_ffff],
            [M[0] - 1, M[1]],
            [0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef],
        ];
        for x in cases {
            assert_eq!(mont_sqr(&x, &M, inv), mont_mul(&x, &x, &M, inv), "{x:?}");
        }
    }

    #[test]
    fn add_sub_mod_roundtrip() {
        let a = [5u64, 7];
        let b = [9u64, 1];
        let s = add_mod(&a, &b, &M);
        let d = sub_mod(&s, &b, &M);
        assert_eq!(d, a);
        // subtraction that wraps through the modulus
        let d2 = sub_mod(&b, &a, &M);
        let s2 = add_mod(&d2, &a, &M);
        assert_eq!(s2, b);
    }
}
