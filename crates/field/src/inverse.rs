//! Montgomery batch inversion.
//!
//! Inverting `n` field elements costs one inversion plus `3(n-1)`
//! multiplications instead of `n` inversions — the algorithmic core of the
//! paper's Permutation Quotient Generator, which batches denominator
//! inversions across 266 hardware inverse units with a batch size of 2
//! (§IV-B5). [`batch_inverse_count_ops`] reports the operation counts so the
//! hardware model can be validated against the functional implementation.

use crate::fp::{FieldParams, Fp};

/// Operation counts incurred by one batch inversion, used to validate the
/// hardware ModInv model against the functional code path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchInverseOps {
    /// Number of field multiplications performed.
    pub muls: u64,
    /// Number of full modular inversions performed.
    pub inversions: u64,
}

/// Inverts every non-zero element of `values` in place.
///
/// Zero entries are left untouched (zero has no inverse); this mirrors how
/// sparse MLE tables are processed, where absent entries stay zero.
///
/// # Examples
///
/// ```
/// use zkphire_field::{batch_inverse, Fr};
///
/// let mut v = vec![Fr::from_u64(2), Fr::ZERO, Fr::from_u64(4)];
/// batch_inverse(&mut v);
/// assert_eq!(v[0] * Fr::from_u64(2), Fr::ONE);
/// assert_eq!(v[1], Fr::ZERO);
/// assert_eq!(v[2] * Fr::from_u64(4), Fr::ONE);
/// ```
pub fn batch_inverse<P: FieldParams<N>, const N: usize>(values: &mut [Fp<P, N>]) {
    batch_inverse_count_ops(values);
}

/// Same as [`batch_inverse`], additionally returning the operation counts.
pub fn batch_inverse_count_ops<P: FieldParams<N>, const N: usize>(
    values: &mut [Fp<P, N>],
) -> BatchInverseOps {
    let mut ops = BatchInverseOps::default();

    // Forward pass: prefix products of the non-zero entries.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = Fp::<P, N>::ONE;
    let mut any_nonzero = false;
    for v in values.iter() {
        prefix.push(acc);
        if !v.is_zero() {
            acc *= *v;
            ops.muls += 1;
            any_nonzero = true;
        }
    }
    if !any_nonzero {
        return ops;
    }

    // One shared inversion of the total product (never fails: acc is a
    // product of non-zero elements).
    ops.inversions += 1;
    let mut inv_acc = acc.inverse().expect("product of non-zero elements");

    // Backward pass: peel one element per step.
    for (v, p) in values.iter_mut().zip(prefix.iter()).rev() {
        if v.is_zero() {
            continue;
        }
        let original = *v;
        *v = inv_acc * *p;
        inv_acc *= original;
        ops.muls += 2;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_individual_inverse() {
        let mut rng = StdRng::seed_from_u64(11);
        let original: Vec<Fr> = (0..100).map(|_| Fr::random(&mut rng)).collect();
        let mut batched = original.clone();
        batch_inverse(&mut batched);
        for (o, b) in original.iter().zip(&batched) {
            assert_eq!(o.inverse().unwrap(), *b);
        }
    }

    #[test]
    fn zeros_are_skipped() {
        let mut values = vec![Fr::ZERO; 5];
        values[2] = Fr::from_u64(3);
        let ops = batch_inverse_count_ops(&mut values);
        assert_eq!(values[2] * Fr::from_u64(3), Fr::ONE);
        assert!(values[0].is_zero() && values[4].is_zero());
        assert_eq!(ops.inversions, 1);
    }

    #[test]
    fn all_zero_is_noop() {
        let mut values = vec![Fr::ZERO; 4];
        let ops = batch_inverse_count_ops(&mut values);
        assert_eq!(ops.inversions, 0);
        assert!(values.iter().all(Fr::is_zero));
    }

    #[test]
    fn op_counts_match_formula() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut values: Vec<Fr> = (0..64).map(|_| Fr::random(&mut rng)).collect();
        let ops = batch_inverse_count_ops(&mut values);
        // n forward muls + 2n backward muls, one inversion.
        assert_eq!(ops.muls, 64 + 2 * 64);
        assert_eq!(ops.inversions, 1);
    }

    #[test]
    fn empty_slice() {
        let mut values: Vec<Fr> = Vec::new();
        let ops = batch_inverse_count_ops(&mut values);
        assert_eq!(ops, BatchInverseOps::default());
    }
}
