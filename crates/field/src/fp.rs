//! Generic prime-field element in Montgomery form.
//!
//! [`Fp<P, N>`] is parameterized by a [`FieldParams`] marker type carrying
//! the modulus; the two instantiations used by zkPHIRE are
//! [`Fr`](crate::Fr) (the 255-bit BLS12-381 scalar field, the datatype of
//! every MLE table in the paper) and [`Fq`](crate::Fq) (the 381-bit base
//! field of the elliptic-curve datapath).

use core::fmt;
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::arith;

/// Compile-time description of a prime field.
///
/// Implementors only supply the modulus; the Montgomery constants are
/// derived automatically at compile time. The trait is sealed in spirit:
/// zkPHIRE defines [`FrParams`](crate::FrParams) and
/// [`FqParams`](crate::FqParams), but downstream users may add their own
/// fields (the SumCheck machinery is generic over the scalar field width).
pub trait FieldParams<const N: usize>:
    'static + Copy + Clone + fmt::Debug + Default + Eq + PartialEq + Hash + Send + Sync
{
    /// Little-endian limbs of the odd prime modulus.
    const MODULUS: [u64; N];
    /// Number of significant bits of the modulus.
    const MODULUS_BITS: u32;
    /// Field name used in diagnostics.
    const NAME: &'static str;

    /// `-MODULUS^{-1} mod 2^64` (derived).
    const INV: u64 = arith::mont_neg_inv(Self::MODULUS[0]);
    /// `R = 2^(64 N) mod MODULUS` (derived): the Montgomery form of one.
    const R: [u64; N] = arith::pow2_mod(&Self::MODULUS, 64 * N as u32);
    /// `R^2 mod MODULUS` (derived): converts canonical form to Montgomery form.
    const R2: [u64; N] = arith::pow2_mod(&Self::MODULUS, 128 * N as u32);
}

/// A prime-field element stored in Montgomery form.
///
/// # Examples
///
/// ```
/// use zkphire_field::Fr;
///
/// let a = Fr::from_u64(7);
/// let b = Fr::from_u64(6);
/// assert_eq!(a * b, Fr::from_u64(42));
/// assert_eq!(a - a, Fr::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp<P: FieldParams<N>, const N: usize> {
    limbs: [u64; N],
    _params: PhantomData<P>,
}

impl<P: FieldParams<N>, const N: usize> Default for Fp<P, N> {
    /// The default value is [`Fp::ZERO`].
    fn default() -> Self {
        Self::ZERO
    }
}

impl<P: FieldParams<N>, const N: usize> Fp<P, N> {
    /// The additive identity.
    pub const ZERO: Self = Self {
        limbs: [0u64; N],
        _params: PhantomData,
    };

    /// The multiplicative identity.
    pub const ONE: Self = Self {
        limbs: P::R,
        _params: PhantomData,
    };

    /// Number of 64-bit limbs in the representation.
    pub const NUM_LIMBS: usize = N;

    /// Number of significant modulus bits.
    pub const MODULUS_BITS: u32 = P::MODULUS_BITS;

    /// Builds an element from a small integer.
    #[inline]
    pub fn from_u64(value: u64) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = value;
        Self::from_canonical_limbs_reduced(limbs)
    }

    /// Builds an element from a signed integer (negative values wrap mod p).
    #[inline]
    pub fn from_i64(value: i64) -> Self {
        if value >= 0 {
            Self::from_u64(value as u64)
        } else {
            -Self::from_u64(value.unsigned_abs())
        }
    }

    /// Builds an element from canonical (non-Montgomery) limbs `< MODULUS`.
    ///
    /// Returns `None` when the input is not fully reduced.
    pub fn from_canonical_limbs(limbs: [u64; N]) -> Option<Self> {
        if arith::geq(&limbs, &P::MODULUS) {
            None
        } else {
            Some(Self::from_canonical_limbs_reduced(limbs))
        }
    }

    #[inline]
    fn from_canonical_limbs_reduced(limbs: [u64; N]) -> Self {
        Self {
            limbs: arith::mont_mul(&limbs, &P::R2, &P::MODULUS, P::INV),
            _params: PhantomData,
        }
    }

    /// Interprets up to `8 * N` little-endian bytes as an integer and reduces
    /// it modulo the field order.
    ///
    /// Used for deriving Fiat–Shamir challenges from hash output.
    ///
    /// # Panics
    ///
    /// Panics if more than `8 * N` bytes are provided.
    pub fn from_le_bytes_mod_order(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= 8 * N,
            "at most {} bytes fit in {}",
            8 * N,
            P::NAME
        );
        let mut limbs = [0u64; N];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            limbs[i] = u64::from_le_bytes(word);
        }
        // The value is < 2^(64 N) < c * MODULUS for small c; a short
        // subtraction loop reduces it.
        while arith::geq(&limbs, &P::MODULUS) {
            let (r, _) = arith::sub_limbs(&limbs, &P::MODULUS);
            limbs = r;
        }
        Self::from_canonical_limbs_reduced(limbs)
    }

    /// Builds an element directly from Montgomery-form limbs.
    ///
    /// Intended for constants produced by this crate itself; the caller must
    /// guarantee `limbs < MODULUS`.
    #[inline]
    pub const fn from_montgomery_limbs(limbs: [u64; N]) -> Self {
        Self {
            limbs,
            _params: PhantomData,
        }
    }

    /// Returns the raw Montgomery-form limbs.
    #[inline]
    pub const fn montgomery_limbs(&self) -> [u64; N] {
        self.limbs
    }

    /// Converts back to canonical little-endian limbs (`< MODULUS`).
    #[inline]
    pub fn to_canonical_limbs(self) -> [u64; N] {
        let one = {
            let mut l = [0u64; N];
            l[0] = 1;
            l
        };
        arith::mont_mul(&self.limbs, &one, &P::MODULUS, P::INV)
    }

    /// Serializes to `8 * N` little-endian canonical bytes.
    pub fn to_le_bytes(self) -> Vec<u8> {
        self.to_canonical_limbs()
            .iter()
            .flat_map(|l| l.to_le_bytes())
            .collect()
    }

    /// Returns `true` for the additive identity.
    #[inline]
    pub fn is_zero(&self) -> bool {
        arith::is_zero(&self.limbs)
    }

    /// Returns `true` for the multiplicative identity.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs == P::R
    }

    /// Doubles the element.
    #[inline]
    pub fn double(&self) -> Self {
        *self + *self
    }

    /// Squares the element.
    ///
    /// Uses a dedicated SOS squaring kernel ([`arith::mont_sqr`]) that
    /// computes each symmetric partial product once and doubles it —
    /// `N(N+1)/2` wide multiplications instead of the full `N^2` a
    /// general [`Mul`] performs.
    #[inline]
    pub fn square(&self) -> Self {
        Self {
            limbs: arith::mont_sqr(&self.limbs, &P::MODULUS, P::INV),
            _params: PhantomData,
        }
    }

    /// Raises the element to a multi-precision exponent (little-endian limbs).
    pub fn pow(&self, exp: &[u64]) -> Self {
        let mut result = Self::ONE;
        let mut started = false;
        for limb in exp.iter().rev() {
            for bit_index in (0..64).rev() {
                if started {
                    result = result.square();
                }
                if (limb >> bit_index) & 1 == 1 {
                    result *= *self;
                    started = true;
                }
            }
        }
        result
    }

    /// Computes a square root via Tonelli–Shanks, or `None` when the
    /// element is a non-residue.
    ///
    /// Both roots exist when one does; this returns one of them (negate
    /// for the other). Used e.g. to sample points on curves defined over
    /// this field.
    pub fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        // Write p - 1 = 2^s * t with t odd.
        let mut t_limbs = {
            let one = {
                let mut l = [0u64; N];
                l[0] = 1;
                l
            };
            let (m1, _) = crate::arith::sub_limbs(&P::MODULUS, &one);
            m1
        };
        let mut s_adicity = 0u32;
        while t_limbs[0] & 1 == 0 {
            // Shift right by one bit.
            let mut carry = 0u64;
            for limb in t_limbs.iter_mut().rev() {
                let new_carry = *limb & 1;
                *limb = (*limb >> 1) | (carry << 63);
                carry = new_carry;
            }
            s_adicity += 1;
        }

        // Find a quadratic non-residue z (small search; 5/7 work for the
        // BLS12-381 fields, but verify generically via Euler's criterion).
        let two = {
            let mut l = [0u64; N];
            l[0] = 2;
            l
        };
        let (half_exp, _) = {
            let one = {
                let mut l = [0u64; N];
                l[0] = 1;
                l
            };
            let (m1, _) = crate::arith::sub_limbs(&P::MODULUS, &one);
            // (p - 1) / 2
            let mut h = m1;
            let mut carry = 0u64;
            for limb in h.iter_mut().rev() {
                let new_carry = *limb & 1;
                *limb = (*limb >> 1) | (carry << 63);
                carry = new_carry;
            }
            (h, 0u64)
        };
        let _ = two;
        let minus_one = -Self::ONE;
        // Euler's criterion on self first: non-residues have no root.
        if self.pow(&half_exp) == minus_one {
            return None;
        }
        let mut z = Self::from_u64(2);
        while z.pow(&half_exp) != minus_one {
            z += Self::ONE;
        }

        let mut m = s_adicity;
        let mut c = z.pow(&t_limbs);
        let mut t_val = self.pow(&t_limbs);
        // x = a^((t+1)/2)
        let t_plus_one = {
            let one = {
                let mut l = [0u64; N];
                l[0] = 1;
                l
            };
            let (tp, _) = crate::arith::add_limbs(&t_limbs, &one);
            tp
        };
        let mut half_t = t_plus_one;
        let mut carry = 0u64;
        for limb in half_t.iter_mut().rev() {
            let new_carry = *limb & 1;
            *limb = (*limb >> 1) | (carry << 63);
            carry = new_carry;
        }
        let mut x = self.pow(&half_t);

        while !t_val.is_one() {
            // Find least i with t^(2^i) == 1.
            let mut i = 0u32;
            let mut probe = t_val;
            while !probe.is_one() {
                probe = probe.square();
                i += 1;
                if i == m {
                    return None; // unreachable for residues
                }
            }
            let mut b = c;
            for _ in 0..(m - i - 1) {
                b = b.square();
            }
            m = i;
            c = b.square();
            t_val *= c;
            x *= b;
        }
        debug_assert_eq!(x.square(), *self);
        Some(x)
    }

    /// Computes the multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem (`a^(p-2)`); prefer
    /// [`batch_inverse`](crate::batch_inverse) when inverting many elements —
    /// that is exactly the trade the paper's ModInv unit makes (§IV-B5).
    pub fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let two = {
            let mut l = [0u64; N];
            l[0] = 2;
            l
        };
        let (exp, _) = arith::sub_limbs(&P::MODULUS, &two);
        Some(self.pow(&exp))
    }

    /// Samples a uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling on MODULUS_BITS-wide candidates.
        let top_bits = P::MODULUS_BITS - 64 * (N as u32 - 1);
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut limbs = [0u64; N];
            for limb in &mut limbs {
                *limb = rng.gen();
            }
            limbs[N - 1] &= mask;
            if !arith::geq(&limbs, &P::MODULUS) {
                return Self::from_canonical_limbs_reduced(limbs);
            }
        }
    }
}

impl<P: FieldParams<N>, const N: usize> Add for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            limbs: arith::add_mod(&self.limbs, &rhs.limbs, &P::MODULUS),
            _params: PhantomData,
        }
    }
}

impl<P: FieldParams<N>, const N: usize> Sub for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            limbs: arith::sub_mod(&self.limbs, &rhs.limbs, &P::MODULUS),
            _params: PhantomData,
        }
    }
}

impl<P: FieldParams<N>, const N: usize> Mul for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            limbs: arith::mont_mul(&self.limbs, &rhs.limbs, &P::MODULUS, P::INV),
            _params: PhantomData,
        }
    }
}

impl<P: FieldParams<N>, const N: usize> Neg for Fp<P, N> {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        if self.is_zero() {
            self
        } else {
            let (limbs, _) = arith::sub_limbs(&P::MODULUS, &self.limbs);
            Self {
                limbs,
                _params: PhantomData,
            }
        }
    }
}

impl<P: FieldParams<N>, const N: usize> AddAssign for Fp<P, N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: FieldParams<N>, const N: usize> SubAssign for Fp<P, N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: FieldParams<N>, const N: usize> MulAssign for Fp<P, N> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: FieldParams<N>, const N: usize> Sum for Fp<P, N> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl<P: FieldParams<N>, const N: usize> Product for Fp<P, N> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |acc, x| acc * x)
    }
}

impl<P: FieldParams<N>, const N: usize> From<u64> for Fp<P, N> {
    fn from(value: u64) -> Self {
        Self::from_u64(value)
    }
}

impl<P: FieldParams<N>, const N: usize> fmt::Debug for Fp<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(0x", P::NAME)?;
        for limb in self.to_canonical_limbs().iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl<P: FieldParams<N>, const N: usize> fmt::Display for Fp<P, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<P: FieldParams<N>, const N: usize> PartialOrd for Fp<P, N> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: FieldParams<N>, const N: usize> Ord for Fp<P, N> {
    /// Compares by canonical integer value (not Montgomery representation).
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        let a = self.to_canonical_limbs();
        let b = other.to_canonical_limbs();
        for i in (0..N).rev() {
            match a[i].cmp(&b[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }
}
