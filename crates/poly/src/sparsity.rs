//! Sparse/structured MLE generators matching the workload statistics the
//! paper assumes (§IV-B1, §V): selector MLEs are binary, witness and
//! constant MLEs are ~90% sparse, and dense MLEs are uniform field
//! elements. Used by the synthetic workload generators (DESIGN.md
//! substitution S3) and by tests of the sparsity-aware memory model.

use crate::composite::MleKind;
use crate::mle::Mle;
use rand::Rng;
use zkphire_field::Fr;

/// Witness/constant sparsity assumed by the paper (90% zeros).
pub const WITNESS_ZERO_FRACTION: f64 = 0.9;

/// Selector on-fraction used for synthetic circuits (half the gates enable
/// any given selector).
pub const SELECTOR_ONE_FRACTION: f64 = 0.5;

/// Generates a random binary selector MLE.
pub fn random_selector<R: Rng + ?Sized>(rng: &mut R, num_vars: usize) -> Mle {
    Mle::from_fn(num_vars, |_| {
        if rng.gen_bool(SELECTOR_ONE_FRACTION) {
            Fr::ONE
        } else {
            Fr::ZERO
        }
    })
}

/// Generates a random ~90%-sparse witness MLE.
pub fn random_sparse_witness<R: Rng + ?Sized>(rng: &mut R, num_vars: usize) -> Mle {
    Mle::from_fn(num_vars, |_| {
        if rng.gen_bool(WITNESS_ZERO_FRACTION) {
            Fr::ZERO
        } else {
            Fr::random(rng)
        }
    })
}

/// Generates a dense uniform MLE.
pub fn random_dense<R: Rng + ?Sized>(rng: &mut R, num_vars: usize) -> Mle {
    Mle::from_fn(num_vars, |_| Fr::random(rng))
}

/// Generates an MLE matching the statistics of `kind`.
///
/// `Challenge` slots produce an `eq(x, r)` table for a random `r`, exactly
/// as the Build-MLE kernel would.
pub fn random_mle_of_kind<R: Rng + ?Sized>(rng: &mut R, kind: MleKind, num_vars: usize) -> Mle {
    match kind {
        MleKind::Selector => random_selector(rng, num_vars),
        MleKind::Witness => random_sparse_witness(rng, num_vars),
        MleKind::Dense => random_dense(rng, num_vars),
        MleKind::Challenge => {
            let r: Vec<Fr> = (0..num_vars).map(|_| Fr::random(rng)).collect();
            Mle::eq_table(&r)
        }
    }
}

/// Generates one MLE per slot of a gate's kind vector — a complete random
/// binding for benchmarking a [`CompositePoly`](crate::CompositePoly).
pub fn random_binding<R: Rng + ?Sized>(
    rng: &mut R,
    kinds: &[MleKind],
    num_vars: usize,
) -> Vec<Mle> {
    kinds
        .iter()
        .map(|&k| random_mle_of_kind(rng, k, num_vars))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selector_is_binary() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_selector(&mut rng, 8);
        assert!((s.binary_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn witness_sparsity_close_to_nominal() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = random_sparse_witness(&mut rng, 12);
        assert!((w.zero_fraction() - WITNESS_ZERO_FRACTION).abs() < 0.05);
    }

    #[test]
    fn challenge_kind_is_eq_table() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = random_mle_of_kind(&mut rng, MleKind::Challenge, 6);
        // eq tables sum to one.
        assert_eq!(c.hypercube_sum(), zkphire_field::Fr::ONE);
    }

    #[test]
    fn binding_matches_kind_vector() {
        let mut rng = StdRng::seed_from_u64(4);
        let kinds = [MleKind::Selector, MleKind::Witness, MleKind::Dense];
        let binding = random_binding(&mut rng, &kinds, 5);
        assert_eq!(binding.len(), 3);
        assert!(binding.iter().all(|m| m.num_vars() == 5));
    }
}
