//! Dense multilinear-extension (MLE) tables.
//!
//! An MLE over µ variables is stored as a flat table of `2^µ` evaluations
//! indexed by the binary assignment of its inputs, exactly as the paper
//! stores them in scratchpads (§II-C: "MLEs ... can be stored as flat
//! lookup tables indexed by binary inputs"). Variable 1 is the least
//! significant index bit, so the SumCheck round-1 pair
//! `(f(0, x2..), f(1, x2..))` occupies adjacent entries — the layout the
//! Extension Engines stream.

use zkphire_field::Fr;

/// A multilinear polynomial represented by its evaluations on the boolean
/// hypercube.
///
/// # Examples
///
/// ```
/// use zkphire_poly::Mle;
/// use zkphire_field::Fr;
///
/// // f(x1, x2) with f(0,0)=1, f(1,0)=2, f(0,1)=3, f(1,1)=4
/// let f = Mle::new((1..=4).map(Fr::from_u64).collect());
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.evaluate(&[Fr::ZERO, Fr::ONE]), Fr::from_u64(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mle {
    evals: Vec<Fr>,
    num_vars: usize,
}

impl Mle {
    /// Wraps a power-of-two-length evaluation table.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two (or is zero).
    pub fn new(evals: Vec<Fr>) -> Self {
        assert!(
            evals.len().is_power_of_two(),
            "MLE table length must be a power of two, got {}",
            evals.len()
        );
        let num_vars = evals.len().trailing_zeros() as usize;
        Self { evals, num_vars }
    }

    /// The all-zeros MLE over `num_vars` variables.
    pub fn zero(num_vars: usize) -> Self {
        Self {
            evals: vec![Fr::ZERO; 1 << num_vars],
            num_vars,
        }
    }

    /// The constant MLE over `num_vars` variables.
    pub fn constant(value: Fr, num_vars: usize) -> Self {
        Self {
            evals: vec![value; 1 << num_vars],
            num_vars,
        }
    }

    /// Builds an MLE by evaluating `f` on each hypercube index.
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(usize) -> Fr) -> Self {
        Self {
            evals: (0..1usize << num_vars).map(&mut f).collect(),
            num_vars,
        }
    }

    /// Number of variables µ.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Table length `2^µ`.
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// Returns `true` for the (impossible) empty table; present for clippy
    /// symmetry with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// The underlying evaluation table.
    pub fn evals(&self) -> &[Fr] {
        &self.evals
    }

    /// Mutable access to the evaluation table.
    pub fn evals_mut(&mut self) -> &mut [Fr] {
        &mut self.evals
    }

    /// Consumes the MLE, returning its table.
    pub fn into_evals(self) -> Vec<Fr> {
        self.evals
    }

    /// The paper's *MLE Update* kernel: fixes `X_1 = r`, halving the table.
    ///
    /// `f(r, x2..xµ) = f(0, x2..) + r * (f(1, x2..) - f(0, x2..))`
    ///
    /// # Panics
    ///
    /// Panics when called on a zero-variable MLE.
    pub fn fix_first_variable(&self, r: Fr) -> Self {
        assert!(self.num_vars > 0, "cannot fix a variable of a constant");
        let half = self.evals.len() / 2;
        let evals = (0..half)
            .map(|i| {
                let f0 = self.evals[2 * i];
                let f1 = self.evals[2 * i + 1];
                f0 + r * (f1 - f0)
            })
            .collect();
        Self {
            evals,
            num_vars: self.num_vars - 1,
        }
    }

    /// [`fix_first_variable`](Self::fix_first_variable) split across
    /// `threads` workers.
    ///
    /// The output is chunked over disjoint index ranges, so the result is
    /// bit-identical to the sequential path for every thread count. Small
    /// tables fall back to the sequential kernel — spawning costs more
    /// than the fold below ~2^12 entries.
    ///
    /// # Panics
    ///
    /// Panics when called on a zero-variable MLE.
    pub fn fix_first_variable_par(&self, r: Fr, threads: usize) -> Self {
        assert!(self.num_vars > 0, "cannot fix a variable of a constant");
        let half = self.evals.len() / 2;
        if threads <= 1 || half < (1 << 12) {
            return self.fix_first_variable(r);
        }
        let mut out = vec![Fr::ZERO; half];
        let chunk = half.div_ceil(threads);
        let src = &self.evals;
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    for (i, o) in out_chunk.iter_mut().enumerate() {
                        let j = start + i;
                        let f0 = src[2 * j];
                        let f1 = src[2 * j + 1];
                        *o = f0 + r * (f1 - f0);
                    }
                });
            }
        });
        Self {
            evals: out,
            num_vars: self.num_vars - 1,
        }
    }

    /// Evaluates the multilinear extension at an arbitrary field point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != num_vars`.
    pub fn evaluate(&self, point: &[Fr]) -> Fr {
        assert_eq!(point.len(), self.num_vars, "point arity mismatch");
        let mut table = self.evals.clone();
        for &r in point {
            let half = table.len() / 2;
            for i in 0..half {
                let f0 = table[2 * i];
                let f1 = table[2 * i + 1];
                table[i] = f0 + r * (f1 - f0);
            }
            table.truncate(half);
        }
        table[0]
    }

    /// Builds the `eq(x, r)` MLE — the paper's *Build MLE* kernel, used to
    /// randomize ZeroChecks (§III-F, where it is written `f_r`).
    ///
    /// Entry `b` equals `Π_j (b_j r_j + (1-b_j)(1-r_j))`.
    pub fn eq_table(point: &[Fr]) -> Self {
        let num_vars = point.len();
        let mut evals = vec![Fr::ONE];
        for (j, &r) in point.iter().enumerate() {
            let stride = 1usize << j;
            let mut next = vec![Fr::ZERO; stride * 2];
            let one_minus_r = Fr::ONE - r;
            for (i, &v) in evals.iter().enumerate() {
                next[i] = v * one_minus_r;
                next[i + stride] = v * r;
            }
            evals = next;
        }
        Self { evals, num_vars }
    }

    /// Sum of all table entries (the SumCheck claim `Σ_x f(x)`).
    pub fn hypercube_sum(&self) -> Fr {
        self.evals.iter().copied().sum()
    }

    /// Fraction of zero entries — the sparsity statistic the accelerator's
    /// per-tile offset buffers exploit (§IV-B1).
    pub fn zero_fraction(&self) -> f64 {
        let zeros = self.evals.iter().filter(|e| e.is_zero()).count();
        zeros as f64 / self.evals.len() as f64
    }

    /// Fraction of entries that are 0 or 1 (selector MLEs are fully binary).
    pub fn binary_fraction(&self) -> f64 {
        let binary = self
            .evals
            .iter()
            .filter(|e| e.is_zero() || e.is_one())
            .count();
        binary as f64 / self.evals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_mle(num_vars: usize, seed: u64) -> Mle {
        let mut rng = StdRng::seed_from_u64(seed);
        Mle::from_fn(num_vars, |_| Fr::random(&mut rng))
    }

    #[test]
    fn evaluate_on_hypercube_matches_table() {
        let f = random_mle(4, 1);
        for b in 0..16usize {
            let point: Vec<Fr> = (0..4)
                .map(|j| if (b >> j) & 1 == 1 { Fr::ONE } else { Fr::ZERO })
                .collect();
            assert_eq!(f.evaluate(&point), f.evals()[b]);
        }
    }

    #[test]
    fn fix_first_variable_consistency() {
        let f = random_mle(5, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let r: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let fixed = f.fix_first_variable(r[0]);
        assert_eq!(fixed.num_vars(), 4);
        assert_eq!(fixed.evaluate(&r[1..]), f.evaluate(&r));
    }

    #[test]
    fn fix_first_variable_par_matches_sequential() {
        // Above and below the parallel threshold, any thread count must
        // reproduce the sequential fold exactly.
        for num_vars in [5usize, 13] {
            let f = random_mle(num_vars, 20 + num_vars as u64);
            let mut rng = StdRng::seed_from_u64(21);
            let r = Fr::random(&mut rng);
            let expected = f.fix_first_variable(r);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    f.fix_first_variable_par(r, threads),
                    expected,
                    "num_vars={num_vars} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn eq_table_entries() {
        let mut rng = StdRng::seed_from_u64(4);
        let r: Vec<Fr> = (0..3).map(|_| Fr::random(&mut rng)).collect();
        let eq = Mle::eq_table(&r);
        for b in 0..8usize {
            let mut expected = Fr::ONE;
            for (j, &rj) in r.iter().enumerate() {
                expected *= if (b >> j) & 1 == 1 { rj } else { Fr::ONE - rj };
            }
            assert_eq!(eq.evals()[b], expected, "entry {b}");
        }
        // Partition of unity: Σ_b eq(b, r) == 1.
        assert_eq!(eq.hypercube_sum(), Fr::ONE);
    }

    #[test]
    fn eq_table_interpolates() {
        // f(r) == Σ_b f(b) eq(b, r) — the defining MLE identity.
        let f = random_mle(4, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let r: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let eq = Mle::eq_table(&r);
        let via_eq: Fr = f.evals().iter().zip(eq.evals()).map(|(a, b)| *a * *b).sum();
        assert_eq!(via_eq, f.evaluate(&r));
    }

    #[test]
    fn repeated_fixing_equals_evaluate() {
        let f = random_mle(6, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let point: Vec<Fr> = (0..6).map(|_| Fr::random(&mut rng)).collect();
        let mut g = f.clone();
        for &r in &point {
            g = g.fix_first_variable(r);
        }
        assert_eq!(g.evals()[0], f.evaluate(&point));
    }

    #[test]
    fn sparsity_statistics() {
        let mut evals = vec![Fr::ZERO; 8];
        evals[0] = Fr::ONE;
        evals[1] = Fr::from_u64(9);
        let f = Mle::new(evals);
        assert!((f.zero_fraction() - 0.75).abs() < 1e-9);
        assert!((f.binary_fraction() - 0.875).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Mle::new(vec![Fr::ZERO; 3]);
    }

    #[test]
    fn constant_and_zero() {
        assert_eq!(Mle::zero(3).hypercube_sum(), Fr::ZERO);
        assert_eq!(
            Mle::constant(Fr::from_u64(2), 3).hypercube_sum(),
            Fr::from_u64(16)
        );
    }
}
