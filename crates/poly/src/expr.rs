//! Gate-expression AST — the user-facing "custom gate" language.
//!
//! Halo2-style arithmetization lets circuit designers write gates as
//! algebraic expressions over selector and witness columns (paper §I,
//! §II-C2). [`GateExpr`] is that language: expressions compose with `+`,
//! `-`, `*` and [`GateExpr::pow`], and [`GateExpr::expand`] normalizes them
//! into the sum-of-products [`CompositePoly`] the programmable SumCheck
//! unit executes.
//!
//! # Examples
//!
//! ```
//! use zkphire_poly::expr::{konst, var};
//!
//! // Halo2's curve check: q * (y^2 - x^3 - 5)
//! let q = var(0);
//! let x = var(1);
//! let y = var(2);
//! let gate = q * (y.pow(2) - x.pow(3) - konst(5));
//! let poly = gate.expand();
//! assert_eq!(poly.degree(), 4); // q * x^3
//! assert_eq!(poly.num_terms(), 3);
//! ```

use std::collections::BTreeMap;
use std::ops::{Add, Mul, Neg, Sub};

use crate::composite::{CompositePoly, MleId, Term};
use zkphire_field::Fr;

/// An algebraic gate expression over MLE variables, protocol scalars and
/// small integer constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateExpr {
    /// A constituent MLE column.
    Var(MleId),
    /// A protocol scalar (bound later via
    /// [`CompositePoly::specialize`]).
    Scalar(usize),
    /// An integer constant.
    Const(i64),
    /// Sum of two expressions.
    Add(Box<GateExpr>, Box<GateExpr>),
    /// Difference of two expressions.
    Sub(Box<GateExpr>, Box<GateExpr>),
    /// Product of two expressions.
    Mul(Box<GateExpr>, Box<GateExpr>),
    /// Negation.
    Neg(Box<GateExpr>),
}

/// Shorthand for [`GateExpr::Var`].
pub fn var(id: usize) -> GateExpr {
    GateExpr::Var(MleId(id))
}

/// Shorthand for [`GateExpr::Scalar`].
pub fn scalar(id: usize) -> GateExpr {
    GateExpr::Scalar(id)
}

/// Shorthand for [`GateExpr::Const`].
pub fn konst(value: i64) -> GateExpr {
    GateExpr::Const(value)
}

/// A monomial under construction: coefficient, scalar multiset, MLE multiset.
type Mono = (Fr, Vec<usize>, Vec<MleId>);

impl GateExpr {
    /// Raises the expression to a small power.
    pub fn pow(self, exponent: u32) -> GateExpr {
        match exponent {
            0 => GateExpr::Const(1),
            1 => self,
            _ => {
                let mut acc = self.clone();
                for _ in 1..exponent {
                    acc = GateExpr::Mul(Box::new(acc), Box::new(self.clone()));
                }
                acc
            }
        }
    }

    /// Expands into the canonical sum-of-products form, combining like
    /// monomials and dropping zero terms.
    pub fn expand(&self) -> CompositePoly {
        let monos = self.monomials();
        let mut combined: BTreeMap<(Vec<usize>, Vec<MleId>), Fr> = BTreeMap::new();
        for (coeff, mut scalars, mut factors) in monos {
            scalars.sort_unstable();
            factors.sort_unstable();
            let entry = combined.entry((scalars, factors)).or_insert(Fr::ZERO);
            *entry += coeff;
        }
        let terms: Vec<Term> = combined
            .into_iter()
            .filter(|(_, coeff)| !coeff.is_zero())
            .map(|((scalars, factors), coeff)| Term {
                coeff,
                scalars,
                factors,
            })
            .collect();
        CompositePoly::new(terms)
    }

    fn monomials(&self) -> Vec<Mono> {
        match self {
            GateExpr::Var(id) => vec![(Fr::ONE, vec![], vec![*id])],
            GateExpr::Scalar(s) => vec![(Fr::ONE, vec![*s], vec![])],
            GateExpr::Const(c) => vec![(Fr::from_i64(*c), vec![], vec![])],
            GateExpr::Add(a, b) => {
                let mut m = a.monomials();
                m.extend(b.monomials());
                m
            }
            GateExpr::Sub(a, b) => {
                let mut m = a.monomials();
                m.extend(b.monomials().into_iter().map(|(c, s, f)| (-c, s, f)));
                m
            }
            GateExpr::Neg(a) => a
                .monomials()
                .into_iter()
                .map(|(c, s, f)| (-c, s, f))
                .collect(),
            GateExpr::Mul(a, b) => {
                let ma = a.monomials();
                let mb = b.monomials();
                let mut out = Vec::with_capacity(ma.len() * mb.len());
                for (ca, sa, fa) in &ma {
                    for (cb, sb, fb) in &mb {
                        let mut scalars = sa.clone();
                        scalars.extend_from_slice(sb);
                        let mut factors = fa.clone();
                        factors.extend_from_slice(fb);
                        out.push((*ca * *cb, scalars, factors));
                    }
                }
                out
            }
        }
    }

    /// Evaluates the AST directly (without expansion) given variable and
    /// scalar assignments — the oracle used to test [`expand`](Self::expand).
    pub fn evaluate(&self, vars: &[Fr], scalars: &[Fr]) -> Fr {
        match self {
            GateExpr::Var(id) => vars[id.0],
            GateExpr::Scalar(s) => scalars[*s],
            GateExpr::Const(c) => Fr::from_i64(*c),
            GateExpr::Add(a, b) => a.evaluate(vars, scalars) + b.evaluate(vars, scalars),
            GateExpr::Sub(a, b) => a.evaluate(vars, scalars) - b.evaluate(vars, scalars),
            GateExpr::Mul(a, b) => a.evaluate(vars, scalars) * b.evaluate(vars, scalars),
            GateExpr::Neg(a) => -a.evaluate(vars, scalars),
        }
    }
}

impl Add for GateExpr {
    type Output = GateExpr;

    fn add(self, rhs: GateExpr) -> GateExpr {
        GateExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for GateExpr {
    type Output = GateExpr;

    fn sub(self, rhs: GateExpr) -> GateExpr {
        GateExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul for GateExpr {
    type Output = GateExpr;

    fn mul(self, rhs: GateExpr) -> GateExpr {
        GateExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Neg for GateExpr {
    type Output = GateExpr;

    fn neg(self) -> GateExpr {
        GateExpr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_values(n: usize, seed: u64) -> Vec<Fr> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Fr::random(&mut rng)).collect()
    }

    #[test]
    fn binomial_expansion() {
        // (a + b)^2 == a^2 + 2ab + b^2
        let e = (var(0) + var(1)).pow(2);
        let p = e.expand();
        assert_eq!(p.num_terms(), 3);
        assert_eq!(p.degree(), 2);
        let vals = random_values(2, 1);
        let direct = e.evaluate(&vals, &[]);
        assert_eq!(p.evaluate_with_mle_values(&vals), direct);
    }

    #[test]
    fn cancellation_drops_terms() {
        // a*b - a*b == 0
        let e = var(0) * var(1) - var(0) * var(1);
        assert_eq!(e.expand().num_terms(), 0);
    }

    #[test]
    fn constants_fold() {
        // 2 * 3 * a == 6a
        let e = konst(2) * konst(3) * var(0);
        let p = e.expand();
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.terms()[0].coeff, Fr::from_u64(6));
    }

    #[test]
    fn negative_constants() {
        let e = konst(-3) * var(0);
        let p = e.expand();
        assert_eq!(p.terms()[0].coeff, -Fr::from_u64(3));
    }

    #[test]
    fn scalars_survive_expansion() {
        // alpha * (a - b) has two terms each carrying scalar 0
        let e = scalar(0) * (var(0) - var(1));
        let p = e.expand();
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.num_scalars(), 1);
        assert!(p.terms().iter().all(|t| t.scalars == vec![0]));
    }

    #[test]
    fn pow_zero_is_one() {
        let e = var(0).pow(0) * var(1);
        let p = e.expand();
        assert_eq!(p.degree(), 1);
    }

    fn arb_expr(num_vars: usize) -> impl Strategy<Value = GateExpr> {
        let leaf = prop_oneof![(0..num_vars).prop_map(var), (-4i64..5).prop_map(konst),];
        leaf.prop_recursive(4, 24, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
                (inner.clone(), 0u32..4).prop_map(|(a, k)| a.pow(k)),
                inner.prop_map(|a| -a),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn expansion_preserves_semantics(e in arb_expr(4), seed in 0u64..1000) {
            let vals = random_values(4, seed);
            let direct = e.evaluate(&vals, &[]);
            let expanded = e.expand().evaluate_with_mle_values(&vals);
            prop_assert_eq!(direct, expanded);
        }
    }
}
