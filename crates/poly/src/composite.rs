//! The composite-polynomial intermediate representation (IR).
//!
//! A *composite polynomial* is a sum of terms, each a scalar coefficient
//! times a product of multilinear constituent polynomials — the exact
//! object the programmable SumCheck unit is "programmed" with (paper §III:
//! "an arbitrary number of terms and an arbitrary degree"). The same IR
//! drives both the functional SumCheck prover and the hardware scheduler,
//! so operation counts can be cross-validated between them.

use crate::mle::Mle;
use zkphire_field::Fr;

/// Index of a constituent MLE slot within a composite polynomial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MleId(pub usize);

/// Statistical class of a constituent MLE; drives workload generation and
/// the accelerator's sparsity handling (§IV-B1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MleKind {
    /// Enable/selector polynomial: binary-valued, stored as raw bits.
    Selector,
    /// Witness polynomial: ~90% zero entries, offset-buffer compressed.
    Witness,
    /// Dense polynomial of full-width field elements.
    Dense,
    /// Randomized auxiliary polynomial (`eq(x, r)`, written `f_r` in the
    /// paper) built on the fly by the Build-MLE kernel.
    Challenge,
}

/// One product term `coeff * Π scalars * Π factors`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Term {
    /// Constant coefficient.
    pub coeff: Fr,
    /// Protocol scalars (e.g. the batching challenge α in PermCheck)
    /// multiplied into the coefficient once their values are known.
    pub scalars: Vec<usize>,
    /// Constituent MLEs, sorted; a repeated id encodes a power (e.g.
    /// `w1^5` appears as five copies of the same id).
    pub factors: Vec<MleId>,
}

impl Term {
    /// The term's total degree (number of multilinear factors).
    pub fn degree(&self) -> usize {
        self.factors.len()
    }

    /// Number of *distinct* MLEs in the term.
    pub fn unique_factors(&self) -> usize {
        let mut ids: Vec<MleId> = self.factors.clone();
        ids.dedup();
        ids.len()
    }
}

/// A sum of product terms over shared constituent MLEs.
///
/// # Examples
///
/// Build `f = a * b + 2 * c` directly (the [`expr`](crate::expr) module
/// offers a friendlier builder):
///
/// ```
/// use zkphire_poly::{CompositePoly, Term, MleId};
/// use zkphire_field::Fr;
///
/// let f = CompositePoly::new(vec![
///     Term { coeff: Fr::ONE, scalars: vec![], factors: vec![MleId(0), MleId(1)] },
///     Term { coeff: Fr::from_u64(2), scalars: vec![], factors: vec![MleId(2)] },
/// ]);
/// assert_eq!(f.degree(), 2);
/// assert_eq!(f.num_mles(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompositePoly {
    terms: Vec<Term>,
    num_mles: usize,
    num_scalars: usize,
}

impl CompositePoly {
    /// Builds a composite from its terms, normalizing factor order.
    pub fn new(mut terms: Vec<Term>) -> Self {
        let mut num_mles = 0;
        let mut num_scalars = 0;
        for term in &mut terms {
            term.factors.sort_unstable();
            term.scalars.sort_unstable();
            for f in &term.factors {
                num_mles = num_mles.max(f.0 + 1);
            }
            for s in &term.scalars {
                num_scalars = num_scalars.max(s + 1);
            }
        }
        Self {
            terms,
            num_mles,
            num_scalars,
        }
    }

    /// The terms of the sum.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of constituent MLE slots (max id + 1).
    pub fn num_mles(&self) -> usize {
        self.num_mles
    }

    /// Number of protocol scalar slots.
    pub fn num_scalars(&self) -> usize {
        self.num_scalars
    }

    /// Total degree: the maximum factor count over all terms. A SumCheck
    /// round must produce `degree() + 1` evaluations (§II-C3).
    pub fn degree(&self) -> usize {
        self.terms.iter().map(Term::degree).max().unwrap_or(0)
    }

    /// Maximum number of *distinct* MLEs appearing in any single term
    /// (the quantity compared against the Extension Engine count by the
    /// scheduler, and capped at 8 by the ICICLE GPU library — §VI-A4).
    pub fn max_unique_factors_per_term(&self) -> usize {
        self.terms
            .iter()
            .map(Term::unique_factors)
            .max()
            .unwrap_or(0)
    }

    /// Ids of all distinct MLEs referenced anywhere in the composite.
    pub fn unique_mles(&self) -> Vec<MleId> {
        let mut ids: Vec<MleId> = self
            .terms
            .iter()
            .flat_map(|t| t.factors.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Folds concrete scalar values into the coefficients, producing a
    /// scalar-free composite ready for the SumCheck prover.
    ///
    /// # Panics
    ///
    /// Panics if fewer values than [`num_scalars`](Self::num_scalars) are
    /// supplied.
    pub fn specialize(&self, scalar_values: &[Fr]) -> Self {
        assert!(
            scalar_values.len() >= self.num_scalars,
            "need {} scalar values, got {}",
            self.num_scalars,
            scalar_values.len()
        );
        let terms = self
            .terms
            .iter()
            .map(|t| {
                let mut coeff = t.coeff;
                for &s in &t.scalars {
                    coeff *= scalar_values[s];
                }
                Term {
                    coeff,
                    scalars: Vec::new(),
                    factors: t.factors.clone(),
                }
            })
            .collect();
        Self {
            terms,
            num_mles: self.num_mles,
            num_scalars: 0,
        }
    }

    /// Appends an extra factor (a fresh MLE slot) to every term — the
    /// ZeroCheck transformation `f(x) -> f(x) * f_r(x)` (§III-F). Returns
    /// the id of the new slot.
    pub fn with_extra_factor(&self) -> (Self, MleId) {
        let new_id = MleId(self.num_mles);
        let terms = self
            .terms
            .iter()
            .map(|t| {
                let mut factors = t.factors.clone();
                factors.push(new_id);
                Term {
                    coeff: t.coeff,
                    scalars: t.scalars.clone(),
                    factors,
                }
            })
            .collect();
        (
            Self {
                terms,
                num_mles: self.num_mles + 1,
                num_scalars: self.num_scalars,
            },
            new_id,
        )
    }

    /// Checks that a binding supplies every MLE slot with equal arity.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or missing slots (programming errors).
    pub fn validate_binding(&self, mles: &[Mle]) {
        assert!(
            mles.len() >= self.num_mles,
            "composite references {} MLEs but {} were bound",
            self.num_mles,
            mles.len()
        );
        assert_eq!(self.num_scalars, 0, "specialize() scalars before binding");
        if let Some(first) = mles.first() {
            for (i, m) in mles.iter().enumerate() {
                assert_eq!(
                    m.num_vars(),
                    first.num_vars(),
                    "MLE {i} arity differs from MLE 0"
                );
            }
        }
    }

    /// Evaluates the composite at one hypercube index of bound tables.
    pub fn evaluate_at_index(&self, mles: &[Mle], index: usize) -> Fr {
        let mut acc = Fr::ZERO;
        for term in &self.terms {
            let mut prod = term.coeff;
            for f in &term.factors {
                prod *= mles[f.0].evals()[index];
            }
            acc += prod;
        }
        acc
    }

    /// Computes `Σ_x f(x)` over the whole hypercube — the quantity a
    /// SumCheck proves. Reference implementation (one pass, no protocol).
    pub fn sum_over_hypercube(&self, mles: &[Mle]) -> Fr {
        self.validate_binding(mles);
        let n = mles.first().map_or(1, Mle::len);
        (0..n).map(|i| self.evaluate_at_index(mles, i)).sum()
    }

    /// Evaluates the composite at an arbitrary field point by evaluating
    /// every constituent MLE there first.
    pub fn evaluate_at_point(&self, mles: &[Mle], point: &[Fr]) -> Fr {
        let evals: Vec<Fr> = mles.iter().map(|m| m.evaluate(point)).collect();
        self.evaluate_with_mle_values(&evals)
    }

    /// Evaluates the composite given the value of each constituent MLE —
    /// the verifier's final check at the SumCheck challenge point.
    pub fn evaluate_with_mle_values(&self, values: &[Fr]) -> Fr {
        let mut acc = Fr::ZERO;
        for term in &self.terms {
            let mut prod = term.coeff;
            for f in &term.factors {
                prod *= values[f.0];
            }
            acc += prod;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple_composite() -> CompositePoly {
        // f = 3*a*b - c
        CompositePoly::new(vec![
            Term {
                coeff: Fr::from_u64(3),
                scalars: vec![],
                factors: vec![MleId(0), MleId(1)],
            },
            Term {
                coeff: -Fr::ONE,
                scalars: vec![],
                factors: vec![MleId(2)],
            },
        ])
    }

    #[test]
    fn degree_and_counts() {
        let f = simple_composite();
        assert_eq!(f.degree(), 2);
        assert_eq!(f.num_terms(), 2);
        assert_eq!(f.num_mles(), 3);
        assert_eq!(f.max_unique_factors_per_term(), 2);
        assert_eq!(f.unique_mles(), vec![MleId(0), MleId(1), MleId(2)]);
    }

    #[test]
    fn repeated_factors_count_in_degree_once_each() {
        // w^5 has degree 5 but one unique factor.
        let f = CompositePoly::new(vec![Term {
            coeff: Fr::ONE,
            scalars: vec![],
            factors: vec![MleId(0); 5],
        }]);
        assert_eq!(f.degree(), 5);
        assert_eq!(f.max_unique_factors_per_term(), 1);
    }

    #[test]
    fn hypercube_sum_matches_manual() {
        let mut rng = StdRng::seed_from_u64(1);
        let mles: Vec<Mle> = (0..3)
            .map(|_| Mle::from_fn(3, |_| Fr::random(&mut rng)))
            .collect();
        let f = simple_composite();
        let mut expected = Fr::ZERO;
        for i in 0..8 {
            expected +=
                Fr::from_u64(3) * mles[0].evals()[i] * mles[1].evals()[i] - mles[2].evals()[i];
        }
        assert_eq!(f.sum_over_hypercube(&mles), expected);
    }

    #[test]
    fn specialize_folds_scalars() {
        let f = CompositePoly::new(vec![Term {
            coeff: Fr::from_u64(2),
            scalars: vec![0],
            factors: vec![MleId(0)],
        }]);
        assert_eq!(f.num_scalars(), 1);
        let g = f.specialize(&[Fr::from_u64(5)]);
        assert_eq!(g.num_scalars(), 0);
        assert_eq!(g.terms()[0].coeff, Fr::from_u64(10));
    }

    #[test]
    fn with_extra_factor_raises_degree() {
        let f = simple_composite();
        let (g, id) = f.with_extra_factor();
        assert_eq!(id, MleId(3));
        assert_eq!(g.degree(), 3);
        assert!(g.terms().iter().all(|t| t.factors.contains(&id)));
    }

    #[test]
    fn point_evaluation_consistent_with_index() {
        let mut rng = StdRng::seed_from_u64(2);
        let mles: Vec<Mle> = (0..3)
            .map(|_| Mle::from_fn(2, |_| Fr::random(&mut rng)))
            .collect();
        let f = simple_composite();
        // On a hypercube vertex, point evaluation equals index evaluation.
        let point = [Fr::ONE, Fr::ZERO];
        assert_eq!(
            f.evaluate_at_point(&mles, &point),
            f.evaluate_at_index(&mles, 1)
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_arity_rejected() {
        let f = simple_composite();
        let mles = vec![Mle::zero(2), Mle::zero(3), Mle::zero(2)];
        f.validate_binding(&mles);
    }
}
