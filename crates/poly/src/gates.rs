//! The Table I gate library: every polynomial constraint the paper
//! evaluates, IDs 0–24, plus the parametric high-degree family used in the
//! degree sweeps (Fig. 7, Fig. 8, Fig. 14).
//!
//! Each [`GateInfo`] pairs the expanded [`CompositePoly`] with the
//! statistical kind of every constituent MLE, which is what the workload
//! generators and the accelerator's sparsity model consume.

use crate::composite::{CompositePoly, MleKind};
use crate::expr::{konst, scalar, GateExpr};

/// A named polynomial constraint from the paper's Table I.
#[derive(Clone, Debug)]
pub struct GateInfo {
    /// Row number in Table I.
    pub id: usize,
    /// Row name in Table I.
    pub name: &'static str,
    /// The constraint in canonical sum-of-products form.
    pub poly: CompositePoly,
    /// Statistical kind of each constituent MLE slot.
    pub mle_kinds: Vec<MleKind>,
    /// Human-readable name of each constituent MLE slot.
    pub mle_names: Vec<&'static str>,
    /// Names of protocol scalar slots (e.g. `alpha`).
    pub scalar_names: Vec<&'static str>,
}

/// Incrementally allocates MLE variable slots while recording names/kinds.
struct Vars {
    names: Vec<&'static str>,
    kinds: Vec<MleKind>,
    scalar_names: Vec<&'static str>,
}

impl Vars {
    fn new() -> Self {
        Self {
            names: Vec::new(),
            kinds: Vec::new(),
            scalar_names: Vec::new(),
        }
    }

    fn var(&mut self, name: &'static str, kind: MleKind) -> GateExpr {
        let id = self.names.len();
        self.names.push(name);
        self.kinds.push(kind);
        crate::expr::var(id)
    }

    fn scalar(&mut self, name: &'static str) -> GateExpr {
        let id = self.scalar_names.len();
        self.scalar_names.push(name);
        scalar(id)
    }

    fn finish(self, id: usize, name: &'static str, expr: GateExpr) -> GateInfo {
        GateInfo {
            id,
            name,
            poly: expr.expand(),
            mle_kinds: self.kinds,
            mle_names: self.names,
            scalar_names: self.scalar_names,
        }
    }
}

/// Builds one Table I gate by row id (0–24).
///
/// # Panics
///
/// Panics for ids outside Table I.
pub fn table1_gate(id: usize) -> GateInfo {
    use MleKind::{Challenge, Dense, Selector, Witness};
    let mut v = Vars::new();
    match id {
        0 => {
            let qadd = v.var("q_add", Selector);
            let qmul = v.var("q_mul", Selector);
            let a = v.var("a", Witness);
            let b = v.var("b", Witness);
            let e = qadd * (a.clone() + b.clone()) + qmul * (a * b);
            v.finish(0, "Verifiable ASICs", e)
        }
        1 => {
            let a = v.var("A", Dense);
            let b = v.var("B", Dense);
            let c = v.var("C", Dense);
            let ftau = v.var("f_tau", Challenge);
            let e = (a * b - c) * ftau;
            v.finish(1, "Spartan 1", e)
        }
        2 => {
            let a = v.var("A", Dense);
            let b = v.var("B", Dense);
            let c = v.var("C", Dense);
            let z = v.var("Z", Dense);
            let e = (a + b + c) * z;
            v.finish(2, "Spartan 2", e)
        }
        3 => {
            let q = v.var("q_nonid_point", Selector);
            let x = v.var("x", Witness);
            let y = v.var("y", Witness);
            let e = q * (y.pow(2) - x.pow(3) - konst(5));
            v.finish(3, "Nonzero Point Check", e)
        }
        4 => {
            let q = v.var("q_point", Selector);
            let x = v.var("x", Witness);
            let y = v.var("y", Witness);
            let e = (q * x.clone()) * (y.pow(2) - x.pow(3) - konst(5));
            v.finish(4, "x-gated Curve Check", e)
        }
        5 => {
            let q = v.var("q_point", Selector);
            let x = v.var("x", Witness);
            let y = v.var("y", Witness);
            let e = (q * y.clone()) * (y.pow(2) - x.pow(3) - konst(5));
            v.finish(5, "y-gated Curve Check", e)
        }
        6 => {
            let q = v.var("q_add_incomplete", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let yp = v.var("y_p", Witness);
            let yq = v.var("y_q", Witness);
            let e = q * ((xr + xq.clone() + xp.clone()) * (xp - xq).pow(2) - (yp - yq).pow(2));
            v.finish(6, "Incomplete Addition 1", e)
        }
        7 => {
            let q = v.var("q_add_incomplete", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let yp = v.var("y_p", Witness);
            let yq = v.var("y_q", Witness);
            let yr = v.var("y_r", Witness);
            let e = q * ((yr + yq.clone()) * (xp.clone() - xq.clone()) - (yp - yq) * (xq - xr));
            v.finish(7, "Incomplete Addition 2", e)
        }
        8 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let yp = v.var("y_p", Witness);
            let yq = v.var("y_q", Witness);
            let lambda = v.var("lambda", Witness);
            let e = q * (xq.clone() - xp.clone()) * ((xq - xp) * lambda - (yq - yp));
            v.finish(8, "Complete Addition 1", e)
        }
        9 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let yp = v.var("y_p", Witness);
            let lambda = v.var("lambda", Witness);
            let alpha = v.var("alpha", Witness);
            let e = q
                * (konst(1) - (xq - xp.clone()) * alpha)
                * (konst(2) * yp * lambda - konst(3) * xp.pow(2));
            v.finish(9, "Complete Addition 2", e)
        }
        10 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let lambda = v.var("lambda", Witness);
            let e = q
                * xp.clone()
                * xq.clone()
                * (xq.clone() - xp.clone())
                * (lambda.pow(2) - xp - xq - xr);
            v.finish(10, "Complete Addition 3", e)
        }
        11 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let yp = v.var("y_p", Witness);
            let yr = v.var("y_r", Witness);
            let lambda = v.var("lambda", Witness);
            let e =
                q * xp.clone() * xq.clone() * (xq - xp.clone()) * (lambda * (xp - xr) - yp - yr);
            v.finish(11, "Complete Addition 4", e)
        }
        12 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let yp = v.var("y_p", Witness);
            let yq = v.var("y_q", Witness);
            let lambda = v.var("lambda", Witness);
            let e = q * xp.clone() * xq.clone() * (yq + yp) * (lambda.pow(2) - xp - xq - xr);
            v.finish(12, "Complete Addition 5", e)
        }
        13 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let yp = v.var("y_p", Witness);
            let yq = v.var("y_q", Witness);
            let yr = v.var("y_r", Witness);
            let lambda = v.var("lambda", Witness);
            let e = q * xp.clone() * xq * (yq + yp.clone()) * (lambda * (xp - xr) - yp - yr);
            v.finish(13, "Complete Addition 6", e)
        }
        14 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let beta = v.var("beta", Witness);
            let e = q * (konst(1) - xp * beta) * (xr - xq);
            v.finish(14, "Complete Addition 7", e)
        }
        15 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let yq = v.var("y_q", Witness);
            let yr = v.var("y_r", Witness);
            let beta = v.var("beta", Witness);
            let e = q * (konst(1) - xp * beta) * (yr - yq);
            v.finish(15, "Complete Addition 8", e)
        }
        16 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let gamma = v.var("gamma", Witness);
            let e = q * (konst(1) - xq * gamma) * (xr - xp);
            v.finish(16, "Complete Addition 9", e)
        }
        17 => {
            let q = v.var("q_add", Selector);
            let xq = v.var("x_q", Witness);
            let yp = v.var("y_p", Witness);
            let yr = v.var("y_r", Witness);
            let gamma = v.var("gamma", Witness);
            let e = q * (konst(1) - xq * gamma) * (yr - yp);
            v.finish(17, "Complete Addition 10", e)
        }
        18 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let xr = v.var("x_r", Witness);
            let yp = v.var("y_p", Witness);
            let yq = v.var("y_q", Witness);
            let alpha = v.var("alpha", Witness);
            let delta = v.var("delta", Witness);
            let e = q * (konst(1) - (xq - xp) * alpha - (yq + yp) * delta) * xr;
            v.finish(18, "Complete Addition 11", e)
        }
        19 => {
            let q = v.var("q_add", Selector);
            let xp = v.var("x_p", Witness);
            let xq = v.var("x_q", Witness);
            let yp = v.var("y_p", Witness);
            let yq = v.var("y_q", Witness);
            let yr = v.var("y_r", Witness);
            let alpha = v.var("alpha", Witness);
            let delta = v.var("delta", Witness);
            let e = q * (konst(1) - (xq - xp) * alpha - (yq + yp) * delta) * yr;
            v.finish(19, "Complete Addition 12", e)
        }
        20 => {
            let ql = v.var("q_L", Selector);
            let qr = v.var("q_R", Selector);
            let qm = v.var("q_M", Selector);
            let qo = v.var("q_O", Selector);
            let qc = v.var("q_C", Witness);
            let w1 = v.var("w_1", Witness);
            let w2 = v.var("w_2", Witness);
            let w3 = v.var("w_3", Witness);
            let fr = v.var("f_r", Challenge);
            let e = (ql * w1.clone() + qr * w2.clone() - qo * w3 + qm * w1 * w2 + qc) * fr;
            v.finish(20, "Vanilla ZeroCheck", e)
        }
        21 => {
            let pi = v.var("pi", Dense);
            let p1 = v.var("p_1", Dense);
            let p2 = v.var("p_2", Dense);
            let phi = v.var("phi", Dense);
            let d1 = v.var("D_1", Dense);
            let d2 = v.var("D_2", Dense);
            let d3 = v.var("D_3", Dense);
            let n1 = v.var("N_1", Dense);
            let n2 = v.var("N_2", Dense);
            let n3 = v.var("N_3", Dense);
            let fr = v.var("f_r", Challenge);
            let alpha = v.scalar("alpha");
            let e = (pi - p1 * p2 + alpha * (phi * d1 * d2 * d3 - n1 * n2 * n3)) * fr;
            v.finish(21, "Vanilla PermCheck", e)
        }
        22 => {
            let q1 = v.var("q_1", Selector);
            let q2 = v.var("q_2", Selector);
            let q3 = v.var("q_3", Selector);
            let q4 = v.var("q_4", Selector);
            let qm1 = v.var("q_M1", Selector);
            let qm2 = v.var("q_M2", Selector);
            let qh1 = v.var("q_H1", Selector);
            let qh2 = v.var("q_H2", Selector);
            let qh3 = v.var("q_H3", Selector);
            let qh4 = v.var("q_H4", Selector);
            let qo = v.var("q_O", Selector);
            let qecc = v.var("q_ecc", Selector);
            let qc = v.var("q_C", Witness);
            let w1 = v.var("w_1", Witness);
            let w2 = v.var("w_2", Witness);
            let w3 = v.var("w_3", Witness);
            let w4 = v.var("w_4", Witness);
            let w5 = v.var("w_5", Witness);
            let fr = v.var("f_r", Challenge);
            let e = (q1 * w1.clone()
                + q2 * w2.clone()
                + q3 * w3.clone()
                + q4 * w4.clone()
                + qm1 * w1.clone() * w2.clone()
                + qm2 * w3.clone() * w4.clone()
                + qh1 * w1.clone().pow(5)
                + qh2 * w2.clone().pow(5)
                + qh3 * w3.clone().pow(5)
                + qh4 * w4.clone().pow(5)
                - qo * w5
                + qecc * w1 * w2 * w3 * w4
                + qc)
                * fr;
            v.finish(22, "Jellyfish ZeroCheck", e)
        }
        23 => {
            let pi = v.var("pi", Dense);
            let p1 = v.var("p_1", Dense);
            let p2 = v.var("p_2", Dense);
            let phi = v.var("phi", Dense);
            let d1 = v.var("D_1", Dense);
            let d2 = v.var("D_2", Dense);
            let d3 = v.var("D_3", Dense);
            let d4 = v.var("D_4", Dense);
            let d5 = v.var("D_5", Dense);
            let n1 = v.var("N_1", Dense);
            let n2 = v.var("N_2", Dense);
            let n3 = v.var("N_3", Dense);
            let n4 = v.var("N_4", Dense);
            let n5 = v.var("N_5", Dense);
            let fr = v.var("f_r", Challenge);
            let alpha = v.scalar("alpha");
            let e = (pi - p1 * p2
                + alpha * (phi * d1 * d2 * d3 * d4 * d5 - n1 * n2 * n3 * n4 * n5))
                * fr;
            v.finish(23, "Jellyfish PermCheck", e)
        }
        24 => {
            let mut e = konst(0);
            for i in 0..6 {
                const Y_NAMES: [&str; 6] = ["y_1", "y_2", "y_3", "y_4", "y_5", "y_6"];
                const F_NAMES: [&str; 6] = ["f_r1", "f_r2", "f_r3", "f_r4", "f_r5", "f_r6"];
                let y = v.var(Y_NAMES[i], Dense);
                let f = v.var(F_NAMES[i], Challenge);
                e = e + y * f;
            }
            v.finish(24, "OpenCheck", e)
        }
        _ => panic!("Table I has rows 0..=24, got {id}"),
    }
}

/// All 25 Table I gates in row order.
pub fn table1_gates() -> Vec<GateInfo> {
    (0..=24).map(table1_gate).collect()
}

/// The Table I rows used for the Fig. 6 "training set" (polys 0–19).
pub fn training_set() -> Vec<GateInfo> {
    (0..=19).map(table1_gate).collect()
}

/// The parametric high-degree gate family of the paper's degree sweeps
/// (§VI-A2, §VI-B5): `f = q1 w1 + q2 w2 + q3 w1^(d-2) w2 + q_c`, built so
/// that the composite's [`degree`](CompositePoly::degree) equals `degree`
/// exactly (the largest term has `degree` multilinear factors).
///
/// # Panics
///
/// Panics for `degree < 2`.
pub fn high_degree_gate(degree: usize) -> GateInfo {
    use MleKind::{Selector, Witness};
    assert!(degree >= 2, "family defined for degree >= 2");
    let mut v = Vars::new();
    let q1 = v.var("q_1", Selector);
    let q2 = v.var("q_2", Selector);
    let q3 = v.var("q_3", Selector);
    let qc = v.var("q_C", Witness);
    let w1 = v.var("w_1", Witness);
    let w2 = v.var("w_2", Witness);
    let e = match degree {
        2 => q1 * w1.clone() + q2 * w2.clone() + q3 * w2 + qc,
        d => q1 * w1.clone() + q2 * w2.clone() + q3 * w1.pow(d as u32 - 2) * w2 + qc,
    };
    let mut info = v.finish(usize::MAX, "High-degree sweep gate", e);
    info.name = "High-degree sweep gate";
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mle::Mle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_field::Fr;

    /// Expected total degree of every Table I row, counting selector and
    /// f_r factors (each term's factor count; e.g. row 22's `q_H1 w1^5 f_r`
    /// has 7 multilinear factors).
    const EXPECTED_DEGREES: [usize; 25] = [
        3, 3, 2, 4, 5, 5, 4, 3, 4, 5, 6, 6, 6, 6, 4, 4, 4, 4, 4, 4, 4, 5, 7, 7, 2,
    ];

    #[test]
    fn all_gates_build() {
        let gates = table1_gates();
        assert_eq!(gates.len(), 25);
        for (i, g) in gates.iter().enumerate() {
            assert_eq!(g.id, i);
            assert_eq!(g.poly.num_mles(), g.mle_kinds.len(), "gate {i}");
            assert_eq!(g.mle_names.len(), g.mle_kinds.len(), "gate {i}");
            assert!(g.poly.num_terms() > 0, "gate {i}");
        }
    }

    #[test]
    fn degrees_match_paper() {
        for (i, g) in table1_gates().iter().enumerate() {
            assert_eq!(
                g.poly.degree(),
                EXPECTED_DEGREES[i],
                "gate {i} ({})",
                g.name
            );
        }
    }

    #[test]
    fn vanilla_zerocheck_structure() {
        let g = table1_gate(20);
        // 5 Plonk terms, each multiplied by f_r.
        assert_eq!(g.poly.num_terms(), 5);
        assert_eq!(g.poly.num_mles(), 9);
        assert_eq!(g.poly.degree(), 4); // q_M w1 w2 f_r
    }

    #[test]
    fn jellyfish_zerocheck_structure() {
        let g = table1_gate(22);
        assert_eq!(g.poly.num_terms(), 13);
        assert_eq!(g.poly.num_mles(), 19);
        assert_eq!(g.poly.degree(), 7); // q_H1 * w1^5 * f_r
                                        // ICICLE cannot run this: more than 8 unique constituents (§VI-A4).
        assert!(g.poly.max_unique_factors_per_term() <= 8);
        assert!(g.poly.unique_mles().len() > 8);
    }

    #[test]
    fn permcheck_has_scalar_alpha() {
        for id in [21, 23] {
            let g = table1_gate(id);
            assert_eq!(g.scalar_names, vec!["alpha"]);
            assert_eq!(g.poly.num_scalars(), 1);
        }
        assert_eq!(table1_gate(23).poly.degree(), 7);
    }

    #[test]
    fn verifiable_asics_evaluates_correctly() {
        // Gate 0 on a satisfied multiplication: q_add=0, q_mul=1, a*b == ?
        // The gate value is q_add (a+b) + q_mul (a b); check plain algebra.
        let g = table1_gate(0);
        let mut rng = StdRng::seed_from_u64(1);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let vals = [Fr::ZERO, Fr::ONE, a, b]; // q_add, q_mul, a, b
        assert_eq!(g.poly.evaluate_with_mle_values(&vals), a * b);
        let vals_add = [Fr::ONE, Fr::ZERO, a, b];
        assert_eq!(g.poly.evaluate_with_mle_values(&vals_add), a + b);
    }

    #[test]
    fn curve_check_vanishes_on_curve_points() {
        // Gate 3 with y^2 == x^3 + 5 must vanish when selector is on.
        let g = table1_gate(3);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Fr::random(&mut rng);
        let y2 = x * x * x + Fr::from_u64(5);
        // We need y with y^2 = x^3+5; instead pick x from y:
        // simpler: choose y free and set x^3 = y^2 - 5 is hard; instead
        // verify the identity algebraically at arbitrary values.
        let y = Fr::random(&mut rng);
        let expected = Fr::ONE * (y * y - x * x * x - Fr::from_u64(5));
        assert_eq!(g.poly.evaluate_with_mle_values(&[Fr::ONE, x, y]), expected);
        let _ = y2;
    }

    #[test]
    fn high_degree_family_degrees() {
        for d in 2..=30 {
            let g = high_degree_gate(d);
            assert_eq!(g.poly.degree(), d, "degree {d}");
            assert_eq!(g.poly.num_terms(), 4);
        }
    }

    #[test]
    fn gate_sums_vanish_on_satisfying_assignment() {
        // Vanilla gate: random circuit where every row satisfies the
        // constraint implies the ZeroCheck polynomial sums to zero when
        // multiplied by any f_r.
        let g = table1_gate(20);
        let mu = 3;
        let n = 1 << mu;
        let mut rng = StdRng::seed_from_u64(3);
        // Make every gate an addition: w3 = w1 + w2, qL = qR = 1, qO = 1.
        let w1 = Mle::from_fn(mu, |_| Fr::random(&mut rng));
        let w2 = Mle::from_fn(mu, |_| Fr::random(&mut rng));
        let w3 = Mle::from_fn(mu, |i| w1.evals()[i] + w2.evals()[i]);
        let ones = Mle::constant(Fr::ONE, mu);
        let zeros = Mle::zero(mu);
        let r: Vec<Fr> = (0..mu).map(|_| Fr::random(&mut rng)).collect();
        let fr = Mle::eq_table(&r);
        // Slot order: q_L q_R q_M q_O q_C w1 w2 w3 f_r
        let mles = vec![
            ones.clone(),
            ones.clone(),
            zeros.clone(),
            ones,
            zeros,
            w1,
            w2,
            w3,
            fr,
        ];
        assert_eq!(g.poly.sum_over_hypercube(&mles), Fr::ZERO);
        let _ = n;
    }
}

#[cfg(test)]
mod ecc_tests {
    //! The Halo2 ECC gates (Table I rows 3, 6, 7) must vanish on genuine
    //! points of the in-circuit curve `y^2 = x^3 + 5` over the scalar
    //! field — the strongest correctness check of the gate encodings.

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_field::Fr;

    /// Samples a random affine point on `y^2 = x^3 + 5` over Fr.
    fn random_point(rng: &mut StdRng) -> (Fr, Fr) {
        loop {
            let x = Fr::random(rng);
            let rhs = x * x * x + Fr::from_u64(5);
            if let Some(y) = rhs.sqrt() {
                return (x, y);
            }
        }
    }

    /// Incomplete affine addition on `y^2 = x^3 + 5` (distinct x).
    fn add_points(p: (Fr, Fr), q: (Fr, Fr)) -> (Fr, Fr) {
        let (xp, yp) = p;
        let (xq, yq) = q;
        let lambda = (yq - yp) * (xq - xp).inverse().expect("distinct x");
        let xr = lambda * lambda - xp - xq;
        let yr = lambda * (xp - xr) - yp;
        (xr, yr)
    }

    #[test]
    fn nonzero_point_check_vanishes_on_curve() {
        let gate = table1_gate(3); // q, x, y
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..4 {
            let (x, y) = random_point(&mut rng);
            assert!(gate
                .poly
                .evaluate_with_mle_values(&[Fr::ONE, x, y])
                .is_zero());
            // And catches off-curve points.
            assert!(!gate
                .poly
                .evaluate_with_mle_values(&[Fr::ONE, x, y + Fr::ONE])
                .is_zero());
        }
    }

    #[test]
    fn incomplete_addition_gates_vanish_on_real_additions() {
        let gate6 = table1_gate(6); // q, x_p, x_q, x_r, y_p, y_q
        let gate7 = table1_gate(7); // q, x_p, x_q, x_r, y_p, y_q, y_r
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..4 {
            let p = random_point(&mut rng);
            let q = random_point(&mut rng);
            let (xr, yr) = add_points(p, q);
            let (xp, yp) = p;
            let (xq, yq) = q;
            assert!(
                gate6
                    .poly
                    .evaluate_with_mle_values(&[Fr::ONE, xp, xq, xr, yp, yq])
                    .is_zero(),
                "gate 6 must vanish on a real addition"
            );
            assert!(
                gate7
                    .poly
                    .evaluate_with_mle_values(&[Fr::ONE, xp, xq, xr, yp, yq, yr])
                    .is_zero(),
                "gate 7 must vanish on a real addition"
            );
            // A wrong sum is caught by at least one of the two gates.
            let bad6 =
                gate6
                    .poly
                    .evaluate_with_mle_values(&[Fr::ONE, xp, xq, xr + Fr::ONE, yp, yq]);
            assert!(!bad6.is_zero(), "gate 6 must catch a wrong x_r");
        }
    }
}
