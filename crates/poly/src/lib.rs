//! Multilinear polynomials and the programmable-gate IR for zkPHIRE.
//!
//! This crate provides the polynomial substrate of the paper (§II-C):
//!
//! * [`Mle`] — dense multilinear-extension tables with the *MLE Update*
//!   (fix-variable) kernel and the *Build MLE* (`eq(x, r)`) kernel;
//! * [`expr::GateExpr`] — the Halo2-style custom-gate expression language;
//! * [`CompositePoly`] — the canonical sum-of-products form the
//!   programmable SumCheck unit is scheduled from;
//! * [`gates`] — the complete Table I constraint library (rows 0–24) and
//!   the parametric high-degree gate family of the degree sweeps;
//! * [`sparsity`] — workload generators matching the paper's sparsity
//!   statistics (binary selectors, 90%-sparse witnesses).
//!
//! # Examples
//!
//! ```
//! use zkphire_poly::expr::var;
//! use zkphire_poly::{Mle, sparsity};
//! use rand::SeedableRng;
//!
//! // Program a custom gate f = a * b^2 and sum it over the hypercube.
//! let f = (var(0) * var(1).pow(2)).expand();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let a = sparsity::random_dense(&mut rng, 4);
//! let b = sparsity::random_dense(&mut rng, 4);
//! let sum = f.sum_over_hypercube(&[a, b]);
//! let _ = sum;
//! ```

mod composite;
pub mod expr;
pub mod gates;
mod mle;
pub mod sparsity;

pub use composite::{CompositePoly, MleId, MleKind, Term};
pub use gates::{high_degree_gate, table1_gate, table1_gates, training_set, GateInfo};
pub use mle::Mle;
