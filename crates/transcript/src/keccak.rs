//! Keccak-f[1600] permutation and the SHA3-256 / Keccak-256 sponges.
//!
//! The paper's accelerator instantiates an OpenCores SHA3 IP block to derive
//! SumCheck round challenges in hardware (§II-C3, §V); this module is the
//! functional equivalent used by the Fiat–Shamir transcript.

const ROUND_CONSTANTS: [u64; 24] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the rho step, indexed by lane `x + 5 y`.
const RHO: [u32; 25] = [
    0, 1, 62, 28, 27, //
    36, 44, 6, 55, 20, //
    3, 10, 43, 25, 39, //
    41, 45, 15, 21, 8, //
    18, 2, 61, 56, 14,
];

/// Applies the 24-round Keccak-f[1600] permutation in place.
pub fn keccak_f(state: &mut [u64; 25]) {
    for &rc in &ROUND_CONSTANTS {
        // Theta.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // Rho + pi.
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                b[y + 5 * ((2 * x + 3 * y) % 5)] = state[x + 5 * y].rotate_left(RHO[x + 5 * y]);
            }
        }
        // Chi.
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // Iota.
        state[0] ^= rc;
    }
}

const RATE: usize = 136; // 1600/8 - 2*256/8 bytes for 256-bit digests

fn sponge_256(data: &[u8], domain: u8) -> [u8; 32] {
    let mut state = [0u64; 25];
    let mut offset = 0;

    let absorb_block = |state: &mut [u64; 25], block: &[u8]| {
        debug_assert_eq!(block.len(), RATE);
        for (i, chunk) in block.chunks(8).enumerate() {
            state[i] ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        keccak_f(state);
    };

    while data.len() - offset >= RATE {
        absorb_block(&mut state, &data[offset..offset + RATE]);
        offset += RATE;
    }

    // Final (padded) block: multi-rate padding `domain .. 0x80`.
    let mut last = [0u8; RATE];
    let tail = &data[offset..];
    last[..tail.len()].copy_from_slice(tail);
    last[tail.len()] ^= domain;
    last[RATE - 1] ^= 0x80;
    absorb_block(&mut state, &last);

    let mut out = [0u8; 32];
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        chunk.copy_from_slice(&state[i].to_le_bytes());
    }
    out
}

/// Computes the SHA3-256 digest (FIPS 202, domain byte `0x06`).
///
/// # Examples
///
/// ```
/// let digest = zkphire_transcript::sha3_256(b"");
/// assert_eq!(digest[0], 0xa7);
/// ```
pub fn sha3_256(data: &[u8]) -> [u8; 32] {
    sponge_256(data, 0x06)
}

/// Computes the legacy Keccak-256 digest (pre-standard padding, `0x01`).
pub fn keccak_256(data: &[u8]) -> [u8; 32] {
    sponge_256(data, 0x01)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha3_256_empty() {
        assert_eq!(
            hex(&sha3_256(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn sha3_256_abc() {
        assert_eq!(
            hex(&sha3_256(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn sha3_256_long_input_crosses_rate_boundary() {
        // 200 bytes of 0xa3, the FIPS 202 extended test input.
        let data = [0xa3u8; 200];
        assert_eq!(
            hex(&sha3_256(&data)),
            "79f38adec5c20307a98ef76e8324afbfd46cfd81b22e3973c65fa1bd9de31787"
        );
    }

    #[test]
    fn keccak_256_empty() {
        assert_eq!(
            hex(&keccak_256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn exact_rate_block_uses_extra_padding_block() {
        // 136-byte input forces an all-padding final block; just check
        // determinism and that it differs from the truncated input.
        let a = sha3_256(&[7u8; RATE]);
        let b = sha3_256(&[7u8; RATE - 1]);
        assert_ne!(a, b);
        assert_eq!(a, sha3_256(&[7u8; RATE]));
    }
}
