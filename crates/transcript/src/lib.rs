//! Fiat–Shamir transcript for the zkPHIRE protocol stack.
//!
//! zkPHIRE's SumCheck rounds are made non-interactive by hashing the round
//! polynomial evaluations with SHA3 to derive the verifier challenge
//! (paper §II-C3 and Fig. 1: "hash → challenge"). [`Transcript`] is the
//! functional realization used by both prover and verifier so their
//! challenge streams agree.
//!
//! # Examples
//!
//! ```
//! use zkphire_transcript::Transcript;
//! use zkphire_field::Fr;
//!
//! let mut prover = Transcript::new(b"example");
//! prover.append_fr(b"claim", &Fr::from_u64(42));
//! let c1 = prover.challenge_fr(b"r");
//!
//! let mut verifier = Transcript::new(b"example");
//! verifier.append_fr(b"claim", &Fr::from_u64(42));
//! assert_eq!(c1, verifier.challenge_fr(b"r"));
//! ```

mod keccak;

pub use keccak::{keccak_256, keccak_f, sha3_256};

use zkphire_field::Fr;

/// A deterministic, domain-separated Fiat–Shamir transcript over SHA3-256.
///
/// Every absorbed message is framed as `len(label) || label || len(data) ||
/// data`, so distinct message sequences can never collide byte-wise.
/// Challenges chain the running state, making each challenge depend on the
/// entire history.
#[derive(Clone, Debug)]
pub struct Transcript {
    state: [u8; 32],
    pending: Vec<u8>,
}

impl Transcript {
    /// Creates a transcript bound to a protocol domain label.
    pub fn new(domain: &[u8]) -> Self {
        let mut t = Self {
            state: [0u8; 32],
            pending: Vec::new(),
        };
        t.append_bytes(b"domain", domain);
        t
    }

    /// Absorbs a labeled byte string.
    pub fn append_bytes(&mut self, label: &[u8], data: &[u8]) {
        self.pending
            .extend_from_slice(&(label.len() as u64).to_le_bytes());
        self.pending.extend_from_slice(label);
        self.pending
            .extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.pending.extend_from_slice(data);
    }

    /// Absorbs a labeled scalar-field element.
    pub fn append_fr(&mut self, label: &[u8], value: &Fr) {
        self.append_bytes(label, &value.to_le_bytes());
    }

    /// Absorbs a labeled slice of scalar-field elements.
    pub fn append_frs(&mut self, label: &[u8], values: &[Fr]) {
        self.pending
            .extend_from_slice(&(label.len() as u64).to_le_bytes());
        self.pending.extend_from_slice(label);
        self.pending
            .extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            self.pending.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Absorbs a labeled unsigned integer (e.g. a problem size).
    pub fn append_u64(&mut self, label: &[u8], value: u64) {
        self.append_bytes(label, &value.to_le_bytes());
    }

    fn squeeze(&mut self, label: &[u8]) -> [u8; 32] {
        let mut input = Vec::with_capacity(32 + self.pending.len() + label.len() + 8);
        input.extend_from_slice(&self.state);
        input.extend_from_slice(&self.pending);
        input.extend_from_slice(&(label.len() as u64).to_le_bytes());
        input.extend_from_slice(label);
        let digest = sha3_256(&input);
        self.state = digest;
        self.pending.clear();
        digest
    }

    /// Derives a labeled challenge scalar from everything absorbed so far.
    pub fn challenge_fr(&mut self, label: &[u8]) -> Fr {
        let digest = self.squeeze(label);
        Fr::from_le_bytes_mod_order(&digest)
    }

    /// Derives `n` labeled challenge scalars.
    pub fn challenge_frs(&mut self, label: &[u8], n: usize) -> Vec<Fr> {
        (0..n)
            .map(|i| {
                let mut l = label.to_vec();
                l.extend_from_slice(&(i as u64).to_le_bytes());
                self.challenge_fr(&l)
            })
            .collect()
    }

    /// Derives 32 labeled challenge bytes (for non-field uses).
    pub fn challenge_bytes(&mut self, label: &[u8]) -> [u8; 32] {
        self.squeeze(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut t = Transcript::new(b"test");
            t.append_u64(b"n", 16);
            t.append_fr(b"x", &Fr::from_u64(99));
            (t.challenge_fr(b"a"), t.challenge_fr(b"b"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn challenges_chain_history() {
        let mut t1 = Transcript::new(b"test");
        let mut t2 = Transcript::new(b"test");
        let a1 = t1.challenge_fr(b"a");
        let a2 = t2.challenge_fr(b"a");
        assert_eq!(a1, a2);
        t1.append_u64(b"m", 1);
        t2.append_u64(b"m", 2);
        assert_ne!(t1.challenge_fr(b"b"), t2.challenge_fr(b"b"));
    }

    #[test]
    fn labels_are_domain_separating() {
        let mut t1 = Transcript::new(b"test");
        let mut t2 = Transcript::new(b"test");
        t1.append_bytes(b"ab", b"c");
        t2.append_bytes(b"a", b"bc");
        assert_ne!(t1.challenge_fr(b"x"), t2.challenge_fr(b"x"));
    }

    #[test]
    fn distinct_domains_distinct_challenges() {
        let mut t1 = Transcript::new(b"proto-1");
        let mut t2 = Transcript::new(b"proto-2");
        assert_ne!(t1.challenge_fr(b"x"), t2.challenge_fr(b"x"));
    }

    #[test]
    fn challenge_frs_are_distinct() {
        let mut t = Transcript::new(b"test");
        let cs = t.challenge_frs(b"batch", 8);
        for i in 0..cs.len() {
            for j in (i + 1)..cs.len() {
                assert_ne!(cs[i], cs[j]);
            }
        }
    }

    #[test]
    fn append_frs_framing_differs_from_split_appends() {
        let mut t1 = Transcript::new(b"test");
        let mut t2 = Transcript::new(b"test");
        t1.append_frs(b"v", &[Fr::from_u64(1), Fr::from_u64(2)]);
        t2.append_frs(b"v", &[Fr::from_u64(1)]);
        t2.append_frs(b"v", &[Fr::from_u64(2)]);
        assert_ne!(t1.challenge_fr(b"x"), t2.challenge_fr(b"x"));
    }
}
