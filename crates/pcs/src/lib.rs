//! Multilinear polynomial commitment scheme (PST13-style multilinear KZG).
//!
//! HyperPlonk commits to MLE tables with a pairing-based multilinear KZG
//! scheme whose prover-side kernels — Lagrange-basis MSMs for commitments
//! and quotient MSMs for openings — are exactly what zkPHIRE's MSM unit
//! accelerates (paper §II-B, §IV-A). This crate implements the full prover
//! side over BLS12-381 G1.
//!
//! # Verification substitution (DESIGN.md S1)
//!
//! The paper's verifier checks openings with a BLS12-381 pairing; the
//! *accelerator never computes pairings*. Here [`TrapdoorVerifier`] checks
//! the same equation in the exponent using the setup secret `τ`
//! (`C - y·g == Σ (τ_i - z_i)·π_i`), which is sound given trapdoor
//! knowledge and exercises none of the prover code paths differently. A
//! production deployment would replace only [`TrapdoorVerifier::verify`]
//! with a pairing check.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use zkphire_field::Fr;
//! use zkphire_pcs::MultilinearKzg;
//! use zkphire_poly::Mle;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (pcs, verifier) = MultilinearKzg::setup(4, &mut rng);
//! let f = Mle::from_fn(4, |i| Fr::from_u64(i as u64 + 1));
//! let commitment = pcs.commit(&f);
//! let point: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
//! let (proof, value) = pcs.open(&f, &point);
//! assert!(verifier.verify(&commitment, &point, value, &proof));
//! ```

use rand::Rng;
use zkphire_curve::{batch_normalize, msm, G1Affine, G1Projective};
use zkphire_field::Fr;
use zkphire_poly::Mle;
use zkphire_telemetry as tele;

/// A commitment to a multilinear polynomial (one G1 point).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commitment(pub G1Affine);

impl Commitment {
    /// Compressed wire size in bytes (48-byte compressed G1, the
    /// convention behind the paper's proof-size numbers in Table IX).
    pub const COMPRESSED_SIZE: usize = 48;

    /// Serializes for transcript absorption.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }
}

/// An opening proof: one quotient commitment per variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpeningProof {
    /// `π_i = commit(q_i)` where `f(X) - f(z) = Σ_i (X_i - z_i) q_i`.
    pub quotients: Vec<G1Affine>,
}

impl OpeningProof {
    /// Compressed wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.quotients.len() * Commitment::COMPRESSED_SIZE
    }
}

/// Prover-side multilinear KZG: the structured reference string in
/// Lagrange basis, one level per suffix of the variables.
#[derive(Clone, Debug)]
pub struct MultilinearKzg {
    num_vars: usize,
    /// `levels[j][b] = g * eq_b(τ_{j+1..µ})`; level 0 commits full MLEs,
    /// level `i+1` commits the `i`-th opening quotient, level µ is `[g]`.
    levels: Vec<Vec<G1Affine>>,
}

/// Verifier with trapdoor knowledge (substitution S1 — see crate docs).
#[derive(Clone, Debug)]
pub struct TrapdoorVerifier {
    tau: Vec<Fr>,
}

impl MultilinearKzg {
    /// Runs the (simulated) universal setup for up to `num_vars` variables,
    /// returning the prover SRS and the trapdoor verifier.
    pub fn setup<R: Rng + ?Sized>(num_vars: usize, rng: &mut R) -> (Self, TrapdoorVerifier) {
        let tau: Vec<Fr> = (0..num_vars).map(|_| Fr::random(rng)).collect();
        (Self::from_tau(&tau), TrapdoorVerifier { tau })
    }

    /// Builds the SRS from an explicit secret (deterministic tests).
    pub fn from_tau(tau: &[Fr]) -> Self {
        let num_vars = tau.len();
        let g = G1Projective::generator();
        // Fixed-base table: g * 2^i for fast repeated scalar mults.
        let mut pow2 = Vec::with_capacity(256);
        let mut acc = g;
        for _ in 0..256 {
            pow2.push(acc);
            acc = acc.double();
        }
        let fixed_base_mul = |s: &Fr| -> G1Projective {
            let limbs = s.to_canonical_limbs();
            let mut out = G1Projective::identity();
            for (i, table_entry) in pow2.iter().enumerate() {
                if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                    out += *table_entry;
                }
            }
            out
        };

        let levels = (0..=num_vars)
            .map(|j| {
                let eq = Mle::eq_table(&tau[j..]);
                // One batched inversion per level instead of one full
                // inversion per SRS point.
                let projective: Vec<G1Projective> =
                    eq.evals().iter().map(&fixed_base_mul).collect();
                batch_normalize(&projective)
            })
            .collect();
        Self { num_vars, levels }
    }

    /// Maximum number of variables this SRS supports.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Commits to an MLE with a Lagrange-basis MSM.
    ///
    /// # Panics
    ///
    /// Panics if the MLE has more variables than the SRS supports.
    pub fn commit(&self, mle: &Mle) -> Commitment {
        let _s = tele::span("pcs/commit");
        let level = self.level_for(mle.num_vars());
        Commitment(msm(level, mle.evals()).to_affine())
    }

    /// Opens `mle` at `point`, returning the proof and the claimed value.
    ///
    /// The quotient computation is the MLE-Update dataflow: at step `i` the
    /// quotient is the pairwise-difference table and the polynomial is
    /// halved by fixing `X_i = z_i`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch with the SRS or point.
    pub fn open(&self, mle: &Mle, point: &[Fr]) -> (OpeningProof, Fr) {
        let _s = tele::span("pcs/open");
        assert_eq!(point.len(), mle.num_vars(), "opening point arity");
        let offset = self.num_vars - mle.num_vars();
        let mut current = mle.clone();
        let mut quotients = Vec::with_capacity(point.len());
        for (i, &z) in point.iter().enumerate() {
            let half = current.len() / 2;
            let q: Vec<Fr> = (0..half)
                .map(|j| current.evals()[2 * j + 1] - current.evals()[2 * j])
                .collect();
            let level = &self.levels[offset + i + 1];
            quotients.push(msm(level, &q).to_affine());
            current = current.fix_first_variable(z);
        }
        (OpeningProof { quotients }, current.evals()[0])
    }

    fn level_for(&self, num_vars: usize) -> &[G1Affine] {
        assert!(
            num_vars <= self.num_vars,
            "SRS supports {} variables, MLE has {}",
            self.num_vars,
            num_vars
        );
        &self.levels[self.num_vars - num_vars]
    }
}

impl TrapdoorVerifier {
    /// Checks an opening: `C - y·g == Σ_i (τ_i - z_i)·π_i` (the pairing
    /// equation evaluated in the exponent; see crate docs).
    pub fn verify(
        &self,
        commitment: &Commitment,
        point: &[Fr],
        value: Fr,
        proof: &OpeningProof,
    ) -> bool {
        let offset = self.tau.len() - point.len();
        if proof.quotients.len() != point.len() {
            return false;
        }
        let g = G1Projective::generator();
        let lhs = G1Projective::from(commitment.0) + (-g.mul_fr(&value));
        let mut rhs = G1Projective::identity();
        for (i, (&z, q)) in point.iter().zip(&proof.quotients).enumerate() {
            let scale = self.tau[offset + i] - z;
            rhs += G1Projective::from(*q).mul_fr(&scale);
        }
        lhs == rhs
    }

    /// Directly computes the commitment an MLE *should* have (test oracle:
    /// `g * f(τ)`).
    pub fn expected_commitment(&self, mle: &Mle) -> Commitment {
        let offset = self.tau.len() - mle.num_vars();
        let value = mle.evaluate(&self.tau[offset..]);
        Commitment(G1Projective::generator().mul_fr(&value).to_affine())
    }
}

/// Homomorphically combines commitments: `commit(Σ c_i f_i) = Σ c_i C_i`.
/// Used by the Polynomial Opening step's MLE Combine (paper §IV-B4).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn combine_commitments(commitments: &[Commitment], coeffs: &[Fr]) -> Commitment {
    assert_eq!(commitments.len(), coeffs.len());
    let points: Vec<G1Affine> = commitments.iter().map(|c| c.0).collect();
    Commitment(msm(&points, coeffs).to_affine())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(num_vars: usize, seed: u64) -> (MultilinearKzg, TrapdoorVerifier, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pcs, verifier) = MultilinearKzg::setup(num_vars, &mut rng);
        (pcs, verifier, rng)
    }

    #[test]
    fn commitment_matches_trapdoor_oracle() {
        let (pcs, verifier, mut rng) = setup(5, 1);
        let f = Mle::from_fn(5, |_| Fr::random(&mut rng));
        assert_eq!(pcs.commit(&f), verifier.expected_commitment(&f));
    }

    #[test]
    fn open_verify_roundtrip() {
        let (pcs, verifier, mut rng) = setup(5, 2);
        let f = Mle::from_fn(5, |_| Fr::random(&mut rng));
        let c = pcs.commit(&f);
        let point: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let (proof, value) = pcs.open(&f, &point);
        assert_eq!(value, f.evaluate(&point));
        assert!(verifier.verify(&c, &point, value, &proof));
    }

    #[test]
    fn wrong_value_rejected() {
        let (pcs, verifier, mut rng) = setup(4, 3);
        let f = Mle::from_fn(4, |_| Fr::random(&mut rng));
        let c = pcs.commit(&f);
        let point: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let (proof, value) = pcs.open(&f, &point);
        assert!(!verifier.verify(&c, &point, value + Fr::ONE, &proof));
    }

    #[test]
    fn wrong_point_rejected() {
        let (pcs, verifier, mut rng) = setup(4, 4);
        let f = Mle::from_fn(4, |_| Fr::random(&mut rng));
        let c = pcs.commit(&f);
        let point: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let (proof, value) = pcs.open(&f, &point);
        let mut other = point.clone();
        other[2] += Fr::ONE;
        assert!(!verifier.verify(&c, &other, value, &proof));
    }

    #[test]
    fn tampered_quotient_rejected() {
        let (pcs, verifier, mut rng) = setup(4, 5);
        let f = Mle::from_fn(4, |_| Fr::random(&mut rng));
        let c = pcs.commit(&f);
        let point: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let (mut proof, value) = pcs.open(&f, &point);
        proof.quotients[1] = G1Affine::generator();
        assert!(!verifier.verify(&c, &point, value, &proof));
    }

    #[test]
    fn commitment_is_homomorphic() {
        let (pcs, _, mut rng) = setup(4, 6);
        let f = Mle::from_fn(4, |_| Fr::random(&mut rng));
        let g = Mle::from_fn(4, |_| Fr::random(&mut rng));
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let combined = Mle::from_fn(4, |i| a * f.evals()[i] + b * g.evals()[i]);
        let via_points = combine_commitments(&[pcs.commit(&f), pcs.commit(&g)], &[a, b]);
        assert_eq!(pcs.commit(&combined), via_points);
    }

    #[test]
    fn smaller_mles_use_suffix_levels() {
        // An SRS for 5 variables must also commit/open 3-variable MLEs.
        let (pcs, verifier, mut rng) = setup(5, 7);
        let f = Mle::from_fn(3, |_| Fr::random(&mut rng));
        let c = pcs.commit(&f);
        let point: Vec<Fr> = (0..3).map(|_| Fr::random(&mut rng)).collect();
        let (proof, value) = pcs.open(&f, &point);
        assert!(verifier.verify(&c, &point, value, &proof));
    }

    #[test]
    fn zero_polynomial_commits_to_identity() {
        let (pcs, _, _) = setup(3, 8);
        let c = pcs.commit(&Mle::zero(3));
        assert!(c.0.is_identity());
    }
}
