//! The MLE Combine module (paper §IV-B4): fully pipelined element-wise
//! operations and dot products over up to six locally buffered MLEs, used
//! before and after the OpenCheck in Polynomial Opening.

use crate::memory::MemoryConfig;
use crate::tech::{self, PrimeMode, ELEMENT_BYTES};

/// Local SRAM input buffers (§IV-B4: "up to 6 local SRAM buffers").
pub const COMBINE_BUFFERS: usize = 6;

/// MLE Combine configuration (the unit itself is fixed-shape; the knob is
/// how many multipliers serve the element-wise pipeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MleCombineConfig {
    /// Multipliers in the element-wise pipeline.
    pub muls: usize,
}

impl Default for MleCombineConfig {
    /// 64 multipliers: enough to keep the combine memory-bound at HBM3
    /// bandwidth (64 elements/cycle at 2 TB/s), sized within Table V's
    /// "Other" bucket.
    fn default() -> Self {
        Self { muls: 64 }
    }
}

impl MleCombineConfig {
    /// Compute area (mm², 7nm).
    pub fn area_mm2(&self, prime: PrimeMode) -> f64 {
        self.muls as f64 * prime.modmul_255_mm2() + 0.5
    }

    /// Cycles to combine `inputs` size-`n` MLEs into one (`Σ ζ_i f_i`):
    /// passes of up to [`COMBINE_BUFFERS`] input streams; the multiplier
    /// pool processes `muls / 6` output elements per cycle, and each pass
    /// beyond the first re-streams the partial result.
    pub fn combine_cycles(&self, inputs: usize, n: u64, mem: &MemoryConfig) -> f64 {
        let n = n as f64;
        let passes = inputs.div_ceil(COMBINE_BUFFERS) as f64;
        let elems_per_cycle = (self.muls as f64 / COMBINE_BUFFERS as f64).max(1.0);
        let compute = passes * n / elems_per_cycle;
        let mem_bytes = (inputs as f64 + 2.0 * (passes - 1.0) + 1.0) * n * ELEMENT_BYTES;
        compute.max(mem.cycles_for_bytes(mem_bytes)) + 64.0
    }
}

/// Power helper used by the system model.
pub fn other_modules_watts() -> f64 {
    tech::OTHER_WATTS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_grow_with_inputs() {
        let cfg = MleCombineConfig::default();
        let mem = MemoryConfig::new(1_000_000.0);
        let one_pass = cfg.combine_cycles(6, 1 << 20, &mem);
        let two_pass = cfg.combine_cycles(7, 1 << 20, &mem);
        assert!(two_pass > 1.8 * one_pass);
    }

    #[test]
    fn memory_bound_at_hbm_rate() {
        // At 2 TB/s the default unit must not be compute-limited.
        let cfg = MleCombineConfig::default();
        let real = cfg.combine_cycles(27, 1 << 24, &MemoryConfig::new(2048.0));
        let infinite_compute =
            MleCombineConfig { muls: 4096 }.combine_cycles(27, 1 << 24, &MemoryConfig::new(2048.0));
        assert!((real - infinite_compute).abs() / real < 0.05);
    }

    #[test]
    fn memory_bound_at_low_bandwidth() {
        let cfg = MleCombineConfig::default();
        let slow = cfg.combine_cycles(6, 1 << 20, &MemoryConfig::new(64.0));
        let fast = cfg.combine_cycles(6, 1 << 20, &MemoryConfig::new(4096.0));
        assert!(slow > 2.0 * fast);
    }
}
