//! The full zkPHIRE system configuration with its area and power models
//! (paper §IV, Fig. 4, Table V).
//!
//! Product-lane multipliers are *shared* with the Multifunction Forest
//! (§IV-B2): the SumCheck PEs contribute only update multipliers,
//! extension engines and lane control; the forest must provision enough
//! multipliers to cover the lanes (checked by
//! [`ZkphireConfig::forest_covers_lanes`]) — this is the paper's
//! "15% fewer multipliers at the same latency" mechanism.

use crate::forest::ForestConfig;
use crate::memory::MemoryConfig;
use crate::mle_combine::MleCombineConfig;
use crate::msm_unit::MsmUnitConfig;
use crate::permquot::PermQuotConfig;
use crate::sumcheck_unit::SumcheckUnitConfig;
use crate::tech::{self, PrimeMode};

/// Fixed SRAM provisioned for PermQuotGen, MLE Combine and Forest buffers
/// (§IV-B6: "Smaller buffers (6 MB) serve ...").
const SMALL_MODULE_SRAM_MB: f64 = 18.0;

/// Calibrated controller/padding/misc area inside Table V's "Other"
/// bucket (see `tech.rs` for the calibration notes).
const OTHER_CTRL_MM2: f64 = 0.51;

/// A complete zkPHIRE design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZkphireConfig {
    /// Programmable SumCheck unit.
    pub sumcheck: SumcheckUnitConfig,
    /// MSM unit.
    pub msm: MsmUnitConfig,
    /// Multifunction Forest.
    pub forest: ForestConfig,
    /// Permutation Quotient Generator.
    pub permquot: PermQuotConfig,
    /// MLE Combine.
    pub combine: MleCombineConfig,
    /// Off-chip memory system.
    pub mem: MemoryConfig,
    /// Modular-multiplier flavour.
    pub prime: PrimeMode,
}

/// Per-module area breakdown (mm², 7nm) — the left plot of Fig. 11 and
/// Table V.
#[derive(Clone, Copy, Debug, Default)]
pub struct AreaBreakdown {
    /// MSM unit compute.
    pub msm: f64,
    /// Multifunction Forest compute.
    pub forest: f64,
    /// SumCheck unit compute (lanes shared with the forest).
    pub sumcheck: f64,
    /// PermQuotGen + MLE Combine + SHA3 + controllers.
    pub other: f64,
    /// All on-chip SRAM.
    pub sram: f64,
    /// Crossbars and shared bus.
    pub interconnect: f64,
    /// Memory PHYs.
    pub phy: f64,
}

impl AreaBreakdown {
    /// Total compute area (excludes SRAM, interconnect, PHYs).
    pub fn compute(&self) -> f64 {
        self.msm + self.forest + self.sumcheck + self.other
    }

    /// Total die area.
    pub fn total(&self) -> f64 {
        self.compute() + self.sram + self.interconnect + self.phy
    }
}

/// Per-module average power breakdown (W) — Table V.
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerBreakdown {
    /// MSM unit.
    pub msm: f64,
    /// Multifunction Forest.
    pub forest: f64,
    /// SumCheck unit.
    pub sumcheck: f64,
    /// PermQuotGen + MLE Combine + SHA3.
    pub other: f64,
    /// SRAM.
    pub sram: f64,
    /// Interconnect.
    pub interconnect: f64,
    /// HBM.
    pub hbm: f64,
}

impl PowerBreakdown {
    /// Total average power.
    pub fn total(&self) -> f64 {
        self.msm
            + self.forest
            + self.sumcheck
            + self.other
            + self.sram
            + self.interconnect
            + self.hbm
    }
}

impl ZkphireConfig {
    /// The exemplar 294 mm² / 2 TB/s design of Table V: 32 MSM PEs, 80
    /// forest trees, 16 SumCheck PEs with 7 EEs and 5 PLs, fixed primes.
    pub fn exemplar() -> Self {
        Self {
            sumcheck: SumcheckUnitConfig {
                pes: 16,
                ees: 7,
                pls: 5,
                bank_words: 1 << 13,
                sparse_io: true,
            },
            msm: MsmUnitConfig {
                pes: 32,
                window_bits: 10,
                points_per_pe: 16384,
            },
            forest: ForestConfig { trees: 80 },
            permquot: PermQuotConfig {
                pes: 5,
                inverse_units: PermQuotConfig::PAPER_INVERSE_UNITS,
            },
            combine: MleCombineConfig::default(),
            mem: MemoryConfig::new(2048.0),
            prime: PrimeMode::Fixed,
        }
    }

    /// Whether the forest provisions enough multipliers to serve the
    /// SumCheck product lanes (§IV-B2's sharing constraint).
    pub fn forest_covers_lanes(&self) -> bool {
        self.forest.total_muls() >= self.sumcheck.shared_lane_muls()
    }

    /// Total SRAM in MB across all modules.
    pub fn sram_mb(&self) -> f64 {
        self.msm.sram_mb()
            + self.sumcheck.scratch_bytes() / (1024.0 * 1024.0)
            + SMALL_MODULE_SRAM_MB
    }

    /// Area model (Table V / Fig. 11 left).
    pub fn area(&self) -> AreaBreakdown {
        let msm = self.msm.area_mm2(self.prime);
        let forest = self.forest.area_mm2(self.prime);
        // Lanes live in the forest when covered; otherwise the deficit is
        // provisioned as extra multipliers charged to the SumCheck unit.
        let deficit = self
            .sumcheck
            .shared_lane_muls()
            .saturating_sub(self.forest.total_muls());
        let sumcheck = self.sumcheck.shared_pe_area_mm2(self.prime)
            + deficit as f64 * self.prime.modmul_255_mm2();
        let other = self.permquot.area_mm2(self.prime)
            + self.combine.area_mm2(self.prime)
            + tech::SHA3_MM2
            + OTHER_CTRL_MM2;
        let compute = msm + forest + sumcheck + other;
        AreaBreakdown {
            msm,
            forest,
            sumcheck,
            other,
            sram: self.sram_mb() / tech::SRAM_MB_PER_MM2,
            interconnect: compute * tech::INTERCONNECT_FRACTION,
            phy: self.mem.phy().1,
        }
    }

    /// Average power model (Table V).
    pub fn power(&self) -> PowerBreakdown {
        let area = self.area();
        PowerBreakdown {
            msm: self.msm.pes as f64 * tech::MSM_PE_WATTS,
            forest: self.forest.trees as f64 * tech::TREE_WATTS,
            sumcheck: self.sumcheck.pes as f64 * tech::SUMCHECK_PE_WATTS,
            other: tech::OTHER_WATTS,
            sram: self.sram_mb() * tech::SRAM_WATTS_PER_MB,
            interconnect: area.interconnect * tech::INTERCONNECT_WATTS_PER_MM2,
            hbm: self.mem.power_watts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemplar_reproduces_table5_area() {
        let a = ZkphireConfig::exemplar().area();
        // Paper Table V: MSM 105.69, Forest 48.18, SumCheck 16.65,
        // Other 10.64, SRAM 27.55, Interconnect 26.42, HBM PHY 59.20,
        // total 294.32 mm². Allow a few percent of calibration slack.
        assert!((a.msm - 105.69).abs() / 105.69 < 0.03, "msm {}", a.msm);
        assert!(
            (a.forest - 48.18).abs() / 48.18 < 0.03,
            "forest {}",
            a.forest
        );
        assert!(
            (a.sumcheck - 16.65).abs() / 16.65 < 0.05,
            "sc {}",
            a.sumcheck
        );
        assert!((a.other - 10.64).abs() / 10.64 < 0.10, "other {}", a.other);
        assert!((a.interconnect - 26.42).abs() / 26.42 < 0.05);
        assert!((a.phy - 59.20).abs() < 0.1);
        assert!(
            (a.total() - 294.32).abs() / 294.32 < 0.05,
            "total {}",
            a.total()
        );
    }

    #[test]
    fn exemplar_reproduces_table5_power() {
        let p = ZkphireConfig::exemplar().power();
        assert!((p.msm - 58.99).abs() < 0.5);
        assert!((p.forest - 40.69).abs() < 0.5);
        assert!((p.hbm - 63.60).abs() < 0.5);
        // Total 202.28 W.
        assert!(
            (p.total() - 202.28).abs() / 202.28 < 0.05,
            "total {}",
            p.total()
        );
    }

    #[test]
    fn exemplar_forest_covers_sumcheck_lanes() {
        // 80 trees × 8 = 640 ≥ 16 PEs × 5 PLs × 6 = 480.
        assert!(ZkphireConfig::exemplar().forest_covers_lanes());
    }

    #[test]
    fn lane_deficit_charged_when_forest_small() {
        let mut cfg = ZkphireConfig::exemplar();
        cfg.forest = ForestConfig { trees: 10 };
        assert!(!cfg.forest_covers_lanes());
        let a = cfg.area();
        let covered = ZkphireConfig::exemplar().area();
        // SumCheck area grows to pay for the uncovered lane multipliers.
        assert!(a.sumcheck > covered.sumcheck);
    }

    #[test]
    fn fixed_primes_halve_multiplier_area() {
        let mut arb = ZkphireConfig::exemplar();
        arb.prime = PrimeMode::Arbitrary;
        let fixed = ZkphireConfig::exemplar().area();
        let arbitrary = arb.area();
        let ratio = arbitrary.compute() / fixed.compute();
        assert!(ratio > 1.5 && ratio < 2.2, "ratio {ratio}");
    }
}
