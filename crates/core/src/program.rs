//! Lowering schedules to the unit's instruction stream (paper §III-E).
//!
//! The automated scheduler does not just produce an abstract plan — the
//! paper loads "a list of computational steps ... annotated with signals
//! for control registers (e.g., MLE bank selection, arbitration, bypassing
//! update), address offsets, and FSM configuration ... into on-chip
//! controllers as instructions". [`lower`] performs that translation: the
//! Fig. 2 schedule becomes a per-round [`ScProgram`] of [`ScInstruction`]s
//! with bank assignments, prefetch ordering and lane arbitration
//! (including the §III-D delay-buffer interleaving when `K > P`).

use crate::profile::PolyProfile;
use crate::sched::{schedule, Schedule};
use crate::sumcheck_unit::SumcheckUnitConfig;

/// One controller instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScInstruction {
    /// FSM configuration for a round: table size class, lane count and
    /// whether MLE Update is bypassed (round 1 reads raw tables).
    ConfigureRound {
        /// 1-based SumCheck round.
        round: usize,
        /// Product lanes active this round.
        lanes: usize,
        /// Update units bypassed (round 1 only).
        bypass_update: bool,
    },
    /// Prefetch a tile of an MLE into a scratchpad bank (issued during
    /// the *preceding* step, §III-C).
    Prefetch {
        /// Constituent MLE slot.
        slot: usize,
        /// Destination scratchpad bank.
        bank: usize,
    },
    /// Route the Build-MLE lane's `f_r` output to its dedicated bank
    /// (§III-F; round 1 only).
    BuildEq {
        /// Destination bank.
        bank: usize,
    },
    /// Execute one scheduler node: feed `slots` to the Extension Engines,
    /// multiply in the product lanes, optionally folding the Tmp buffer.
    ExecNode {
        /// Term index in the composite.
        term: usize,
        /// Node index within the term.
        node: usize,
        /// MLE slots consumed (with multiplicity), in EE order.
        slots: Vec<usize>,
        /// Source banks, parallel to `slots`.
        banks: Vec<usize>,
        /// Whether the Tmp accumulation buffer is an input.
        uses_tmp: bool,
        /// Extension points computed (early-exit aware).
        points: usize,
        /// Lane passes = ceil(points / lanes); passes beyond the first
        /// consume the §III-D delay buffers.
        lane_passes: usize,
    },
    /// Drain updated tables to the write-back FIFOs (rounds ≥ 2 while the
    /// tables still live off-chip).
    WriteBack {
        /// Slot being drained.
        slot: usize,
    },
    /// Hash the round evaluations and latch the next challenge (SHA3).
    EmitRound {
        /// Evaluations produced (`degree + 1`).
        evaluations: usize,
    },
}

/// A complete SumCheck program for one polynomial on one configuration.
#[derive(Clone, Debug)]
pub struct ScProgram {
    /// The instruction stream in execution order.
    pub instructions: Vec<ScInstruction>,
    /// Rounds programmed.
    pub rounds: usize,
}

impl ScProgram {
    /// Instructions of a given 1-based round (by position of
    /// ConfigureRound markers). Returns `None` when `round` is 0 or
    /// beyond the programmed rounds.
    pub fn round_slice(&self, round: usize) -> Option<&[ScInstruction]> {
        if round == 0 {
            return None;
        }
        let starts: Vec<usize> = self
            .instructions
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op {
                ScInstruction::ConfigureRound { .. } => Some(i),
                _ => None,
            })
            .collect();
        let begin = *starts.get(round - 1)?;
        let end = starts
            .get(round)
            .copied()
            .unwrap_or(self.instructions.len());
        Some(&self.instructions[begin..end])
    }

    /// Total ExecNode instructions (the Fig. 2 step count × rounds).
    pub fn exec_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|op| matches!(op, ScInstruction::ExecNode { .. }))
            .count()
    }
}

/// Assigns each distinct slot a scratchpad bank (round-robin over the 16
/// banks, §III-B).
fn bank_of(slot: usize) -> usize {
    slot % SumcheckUnitConfig::BANKS
}

/// Lowers `profile` onto `cfg` as a `mu`-round instruction stream.
///
/// # Panics
///
/// Panics on degenerate configurations (`ees < 2`).
pub fn lower(profile: &PolyProfile, cfg: &SumcheckUnitConfig, mu: usize) -> ScProgram {
    assert!(cfg.ees >= 2, "need at least two Extension Engines");
    let has_eq = profile.eq_slot.is_some();
    let r1_ees = if has_eq {
        (cfg.ees - 1).max(2)
    } else {
        cfg.ees
    };
    let r1_pls = if has_eq {
        (cfg.pls - 1).max(1)
    } else {
        cfg.pls
    };
    let sched_r1: Schedule = schedule(profile, r1_ees, has_eq);
    let sched_rest: Schedule = schedule(profile, cfg.ees, false);

    let mut instructions = Vec::new();
    for round in 1..=mu {
        let (plan, lanes) = if round == 1 {
            (&sched_r1, r1_pls)
        } else {
            (&sched_rest, cfg.pls)
        };
        instructions.push(ScInstruction::ConfigureRound {
            round,
            lanes,
            bypass_update: round == 1,
        });
        if round == 1 {
            if let Some(eq) = profile.eq_slot {
                instructions.push(ScInstruction::BuildEq { bank: bank_of(eq) });
            }
        }

        // Prefetch ordering (§III-C): the first node's inputs up front,
        // then each node's inputs during the previous node's execution.
        let mut execs: Vec<ScInstruction> = Vec::new();
        let mut prefetches: Vec<Vec<ScInstruction>> = Vec::new();
        let mut fetched: Vec<bool> = vec![false; profile.mle_kinds.len()];
        if let Some(eq) = profile.eq_slot {
            // f_r is produced on-chip in round 1 and re-fetched later.
            fetched[eq] = round == 1;
        }
        for (t, term_plan) in plan.terms.iter().enumerate() {
            for (n, node) in term_plan.nodes.iter().enumerate() {
                let mut node_prefetch = Vec::new();
                for &slot in &node.new_factors {
                    if !fetched[slot] {
                        fetched[slot] = true;
                        node_prefetch.push(ScInstruction::Prefetch {
                            slot,
                            bank: bank_of(slot),
                        });
                    }
                }
                prefetches.push(node_prefetch);
                execs.push(ScInstruction::ExecNode {
                    term: t,
                    node: n,
                    slots: node.new_factors.clone(),
                    banks: node.new_factors.iter().map(|&s| bank_of(s)).collect(),
                    uses_tmp: node.uses_tmp,
                    points: node.points,
                    lane_passes: node.points.div_ceil(lanes),
                });
            }
        }
        // Interleave: prefetch for node i is issued before exec of node i,
        // i.e. during exec of node i-1 (up front for i = 0).
        for (prefetch, exec) in prefetches.into_iter().zip(execs) {
            instructions.extend(prefetch);
            instructions.push(exec);
        }

        // Write-back of updated tables (rounds >= 2; the simulator decides
        // when tables fit on-chip, the program always carries the drains
        // and the controller elides them — "bypassing" per §III-E).
        if round >= 2 {
            for &slot in &profile.unique_slots() {
                instructions.push(ScInstruction::WriteBack { slot });
            }
        }
        instructions.push(ScInstruction::EmitRound {
            evaluations: profile.degree() + 1,
        });
    }
    ScProgram {
        instructions,
        rounds: mu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::{high_degree_gate, table1_gate};

    fn cfg() -> SumcheckUnitConfig {
        SumcheckUnitConfig {
            pes: 16,
            ees: 4,
            pls: 5,
            bank_words: 1 << 12,
            sparse_io: true,
        }
    }

    fn vanilla_program(mu: usize) -> (PolyProfile, ScProgram) {
        let p = PolyProfile::from_gate(&table1_gate(20));
        let prog = lower(&p, &cfg(), mu);
        (p, prog)
    }

    #[test]
    fn one_configure_per_round() {
        let (_, prog) = vanilla_program(6);
        let configures = prog
            .instructions
            .iter()
            .filter(|op| matches!(op, ScInstruction::ConfigureRound { .. }))
            .count();
        assert_eq!(configures, 6);
        assert_eq!(prog.rounds, 6);
    }

    #[test]
    fn round1_bypasses_update_and_builds_eq() {
        let (_, prog) = vanilla_program(4);
        let round1 = prog.round_slice(1).unwrap();
        assert!(matches!(
            round1[0],
            ScInstruction::ConfigureRound {
                bypass_update: true,
                ..
            }
        ));
        assert!(round1
            .iter()
            .any(|op| matches!(op, ScInstruction::BuildEq { .. })));
        // Later rounds must not rebuild f_r and must not bypass the update.
        let round2 = prog.round_slice(2).unwrap();
        assert!(!round2
            .iter()
            .any(|op| matches!(op, ScInstruction::BuildEq { .. })));
        assert!(matches!(
            round2[0],
            ScInstruction::ConfigureRound {
                bypass_update: false,
                ..
            }
        ));
    }

    #[test]
    fn every_slot_prefetched_before_first_use() {
        let (profile, prog) = vanilla_program(3);
        for round in 1..=3 {
            let mut available: Vec<bool> = vec![false; profile.mle_kinds.len()];
            for op in prog.round_slice(round).unwrap() {
                match op {
                    ScInstruction::Prefetch { slot, .. } => available[*slot] = true,
                    ScInstruction::BuildEq { .. } => {
                        available[profile.eq_slot.unwrap()] = true;
                    }
                    ScInstruction::ExecNode { slots, .. } => {
                        for s in slots {
                            assert!(available[*s], "round {round}: slot {s} used before fetch");
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn bank_assignments_are_legal_and_stable() {
        let (_, prog) = vanilla_program(2);
        for op in &prog.instructions {
            if let ScInstruction::ExecNode { slots, banks, .. } = op {
                assert_eq!(slots.len(), banks.len());
                for (&s, &b) in slots.iter().zip(banks) {
                    assert!(b < SumcheckUnitConfig::BANKS);
                    assert_eq!(b, s % SumcheckUnitConfig::BANKS);
                }
            }
        }
    }

    #[test]
    fn lane_passes_implement_delay_buffers() {
        // §III-D: K = 5 extensions on P = 3 lanes → 2 passes.
        let p = PolyProfile::from_gate(&high_degree_gate(4)); // K = 5
        let mut c = cfg();
        c.pls = 3;
        let prog = lower(&p, &c, 2);
        let max_passes = prog
            .instructions
            .iter()
            .filter_map(|op| match op {
                ScInstruction::ExecNode {
                    points,
                    lane_passes,
                    ..
                } => {
                    assert_eq!(*lane_passes, points.div_ceil(3));
                    Some(*lane_passes)
                }
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_passes, 2);
    }

    #[test]
    fn exec_count_matches_schedule_nodes() {
        let p = PolyProfile::from_gate(&table1_gate(22));
        let prog = lower(&p, &cfg(), 5);
        let per_round_rest = schedule(&p, 4, false).total_nodes();
        let per_round_r1 = schedule(&p, 3, true).total_nodes();
        assert_eq!(prog.exec_count(), per_round_r1 + 4 * per_round_rest);
    }

    #[test]
    fn writebacks_only_after_round_one() {
        let (profile, prog) = vanilla_program(3);
        assert!(!prog
            .round_slice(1)
            .unwrap()
            .iter()
            .any(|op| matches!(op, ScInstruction::WriteBack { .. })));
        let wb2 = prog
            .round_slice(2)
            .unwrap()
            .iter()
            .filter(|op| matches!(op, ScInstruction::WriteBack { .. }))
            .count();
        assert_eq!(wb2, profile.unique_slots().len());
    }
}
