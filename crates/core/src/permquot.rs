//! The Permutation Quotient Generator and its modular-inverse subsystem
//! (paper §IV-B5, Fig. 5).
//!
//! The unit streams witness/σ columns and emits the Numerator,
//! Denominator and Fraction MLEs at one element per cycle per PE after
//! warm-up. Denominator inversions use Montgomery batching with batch
//! size 2 and a round-robin pool of inverse units sized so one inversion
//! *initiates* every two cycles without backpressure — the design the
//! paper credits with a 4.2× area reduction over zkSpeed's batch-64
//! approach at equal throughput.

use crate::memory::MemoryConfig;
use crate::tech::{self, PrimeMode, ELEMENT_BYTES};

/// Latency of one hardware modular inversion in cycles (binary-GCD-style
/// iterative unit over the 255-bit field).
pub const INVERSION_LATENCY_CYCLES: f64 = 510.0;

/// Permutation Quotient Generator configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PermQuotConfig {
    /// Fraction-MLE PEs (Table III: 1–4; the paper's exemplar uses 5, one
    /// per Jellyfish witness, with cyclic reuse beyond that).
    pub pes: usize,
    /// Modular inverse units in the round-robin pool.
    pub inverse_units: usize,
}

impl PermQuotConfig {
    /// The paper's sizing: with batch size 2 an inversion starts every 2
    /// cycles, so `latency / 2` units hide the latency — 266 units
    /// (rounded up with margin, §IV-B5).
    pub const PAPER_INVERSE_UNITS: usize = 266;

    /// Inversion initiations per cycle the pool can sustain.
    pub fn inversion_throughput(&self) -> f64 {
        (self.inverse_units as f64 / INVERSION_LATENCY_CYCLES).min(0.5)
    }

    /// Compute area (mm², 7nm): per-PE N/D/ϕ pipelines (≈6 multipliers
    /// each), the inverse-unit pool, and the two shared batching
    /// multipliers.
    pub fn area_mm2(&self, prime: PrimeMode) -> f64 {
        let mm = prime.modmul_255_mm2();
        self.pes as f64 * 6.0 * mm + self.inverse_units as f64 * tech::MODINV_MM2 + 2.0 * mm
    }

    /// Area of zkSpeed's batch-64 ModInv design at equal throughput
    /// (dedicated output multipliers per in-flight inverse) — the
    /// baseline of the paper's 4.2× area claim.
    pub fn zkspeed_modinv_area_mm2(prime: PrimeMode) -> f64 {
        let mm = prime.modmul_255_mm2();
        64.0 * (tech::MODINV_MM2 + mm)
    }

    /// Area of just this design's ModInv subsystem.
    pub fn modinv_area_mm2(&self, prime: PrimeMode) -> f64 {
        self.inverse_units as f64 * tech::MODINV_MM2 + 2.0 * prime.modmul_255_mm2()
    }
}

/// Simulation output for the N/D/ϕ generation phase.
#[derive(Clone, Copy, Debug)]
pub struct PermQuotReport {
    /// End-to-end cycles.
    pub cycles: f64,
    /// Off-chip traffic in bytes.
    pub mem_bytes: f64,
}

/// Simulates generating N/D/ϕ for `w_cols` witness columns of `2^mu` rows.
pub fn simulate_permquot(
    mu: usize,
    w_cols: usize,
    cfg: &PermQuotConfig,
    mem: &MemoryConfig,
) -> PermQuotReport {
    let n = (1u64 << mu) as f64;
    let w = w_cols as f64;

    // Element generation: each PE emits one N/D element per cycle; columns
    // beyond the PE count wrap around (overlapped scheduling, §IV-B5).
    let gen_cycles = n * w / cfg.pes as f64;
    // ϕ needs one inversion per row of the combined denominator; the pool
    // sustains `inversion_throughput` initiations per cycle.
    let inv_cycles = n / (2.0 * cfg.inversion_throughput().max(1e-9)) + INVERSION_LATENCY_CYCLES;

    // Traffic: read witnesses (sparse) and σ (dense), write N/D to HBM
    // (§IV-B5: intermediate N, D MLEs are written to HBM), stream ϕ out.
    let witness_bytes = n * w * (0.1 * ELEMENT_BYTES + 0.4);
    let sigma_bytes = n * w * ELEMENT_BYTES;
    let nd_write = 2.0 * n * w * ELEMENT_BYTES;
    let phi_write = n * ELEMENT_BYTES;
    let mem_bytes = witness_bytes + sigma_bytes + nd_write + phi_write;
    let mem_cycles = mem.cycles_for_bytes(mem_bytes);

    PermQuotReport {
        cycles: gen_cycles.max(inv_cycles).max(mem_cycles) + INVERSION_LATENCY_CYCLES,
        mem_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PermQuotConfig {
        PermQuotConfig {
            pes: 5,
            inverse_units: PermQuotConfig::PAPER_INVERSE_UNITS,
        }
    }

    #[test]
    fn paper_pool_sustains_half_inversion_per_cycle() {
        // 266 units / 510-cycle latency ≥ 0.5/cycle (§IV-B5).
        assert!((cfg().inversion_throughput() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn area_reduction_over_zkspeed_matches_paper() {
        // §IV-B5 claims a 4.2× ModInv area reduction.
        let ours = cfg().modinv_area_mm2(PrimeMode::Arbitrary);
        let zkspeed = PermQuotConfig::zkspeed_modinv_area_mm2(PrimeMode::Arbitrary);
        let ratio = zkspeed / ours;
        assert!(ratio > 3.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn runtime_scales_linearly() {
        let mem = MemoryConfig::new(2048.0);
        let a = simulate_permquot(20, 5, &cfg(), &mem).cycles;
        let b = simulate_permquot(22, 5, &cfg(), &mem).cycles;
        assert!(b / a > 3.3 && b / a < 4.5, "{}", b / a);
    }

    #[test]
    fn too_few_inverse_units_backpressure() {
        let mem = MemoryConfig::new(1_000_000.0);
        let starved = PermQuotConfig {
            pes: 5,
            inverse_units: 16,
        };
        let ok = cfg();
        let slow = simulate_permquot(22, 5, &starved, &mem).cycles;
        let fast = simulate_permquot(22, 5, &ok, &mem).cycles;
        assert!(slow > 2.0 * fast);
    }
}
