//! On-chip interconnect model (paper §IV-B6).
//!
//! zkPHIRE's six modules hang off a multi-channel shared bus provisioned
//! for peak data movement; two 32×32 bit-sliced crossbars feed the MSM
//! and SumCheck units. During Wire Identity, bidirectional
//! SumCheck↔Forest transfers plus the PermQuotGen→MSM stream require
//! three concurrent channels to avoid stalls; at the 294 mm² exemplar the
//! aggregate on-chip bandwidth requirement reaches ≈19 TB/s.

use crate::system::ZkphireConfig;
use crate::tech::{ELEMENT_BYTES, POINT_BYTES};

/// Protocol phases with distinct interconnect traffic patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusPhase {
    /// Witness commitments: memory → MSM only.
    WitnessCommit,
    /// Gate Identity: memory ↔ SumCheck.
    GateIdentity,
    /// Wire Identity: SumCheck ↔ Forest (bidirectional) plus
    /// PermQuotGen → MSM (§IV-B6's three-channel case).
    WireIdentity,
    /// Batch Evaluations: memory → Forest.
    BatchEvaluations,
    /// Polynomial Opening: Combine → MSM plus memory ↔ SumCheck.
    PolynomialOpening,
}

impl BusPhase {
    /// Concurrent bus channels the phase needs to run stall-free.
    pub fn required_channels(self) -> usize {
        match self {
            BusPhase::WitnessCommit | BusPhase::GateIdentity | BusPhase::BatchEvaluations => 1,
            BusPhase::PolynomialOpening => 2,
            // SumCheck→Forest, Forest→SumCheck, PermQuotGen→MSM.
            BusPhase::WireIdentity => 3,
        }
    }
}

/// A shared-bus specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusSpec {
    /// Independent channels.
    pub channels: usize,
    /// Payload bytes per channel per cycle (bit-sliced crossbar width).
    pub bytes_per_cycle: usize,
}

impl BusSpec {
    /// Aggregate on-chip bandwidth in GB/s at the 1 GHz clock.
    pub fn aggregate_gbps(&self) -> f64 {
        (self.channels * self.bytes_per_cycle) as f64
    }

    /// Whether the bus covers every phase's channel demand.
    pub fn covers_all_phases(&self) -> bool {
        self.channels >= BusPhase::WireIdentity.required_channels()
    }
}

/// Peak aggregate port bandwidth (GB/s) the modules of `cfg` can demand —
/// the quantity the paper reports as "up to 19 TB/s" for the exemplar.
///
/// Per module, ports × elements/cycle × element size:
/// * SumCheck PEs stream 4 raw values in + 2 updated values out per MLE
///   pair slot;
/// * each Forest tree consumes two operands per cycle;
/// * each MSM PE ingests one (point, scalar) pair per cycle;
/// * MLE Combine streams one element per multiplier;
/// * PermQuotGen reads witness+σ and writes N/D/ϕ per PE.
pub fn peak_onchip_bandwidth_gbps(cfg: &ZkphireConfig) -> f64 {
    let sumcheck = cfg.sumcheck.pes as f64 * 6.0 * ELEMENT_BYTES;
    let forest = cfg.forest.trees as f64 * 2.0 * ELEMENT_BYTES;
    let msm = cfg.msm.pes as f64 * (POINT_BYTES + ELEMENT_BYTES);
    let combine = cfg.combine.muls as f64 * ELEMENT_BYTES;
    let permquot = cfg.permquot.pes as f64 * 6.0 * ELEMENT_BYTES;
    sumcheck + forest + msm + combine + permquot
}

/// Sizes a bus (64-byte channels) that covers both the phase-concurrency
/// requirement and the configuration's peak bandwidth.
pub fn provision_bus(cfg: &ZkphireConfig) -> BusSpec {
    let bytes_per_cycle = 64;
    let for_bandwidth = (peak_onchip_bandwidth_gbps(cfg) / bytes_per_cycle as f64).ceil() as usize;
    BusSpec {
        channels: for_bandwidth.max(BusPhase::WireIdentity.required_channels()),
        bytes_per_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemplar_peaks_near_19_tbps() {
        // §IV-B6: "the peak bandwidth requirement reaches 19 TB/s".
        let peak = peak_onchip_bandwidth_gbps(&ZkphireConfig::exemplar());
        assert!(peak > 15_000.0 && peak < 23_000.0, "peak {peak} GB/s");
    }

    #[test]
    fn wire_identity_needs_three_channels() {
        assert_eq!(BusPhase::WireIdentity.required_channels(), 3);
        assert!(BusPhase::GateIdentity.required_channels() < 3);
    }

    #[test]
    fn provisioned_bus_covers_exemplar() {
        let cfg = ZkphireConfig::exemplar();
        let bus = provision_bus(&cfg);
        assert!(bus.covers_all_phases());
        assert!(bus.aggregate_gbps() >= peak_onchip_bandwidth_gbps(&cfg));
    }

    #[test]
    fn small_designs_need_smaller_buses() {
        let mut small = ZkphireConfig::exemplar();
        small.msm.pes = 4;
        small.sumcheck.pes = 2;
        small.forest.trees = 16;
        let big_bus = provision_bus(&ZkphireConfig::exemplar());
        let small_bus = provision_bus(&small);
        assert!(small_bus.channels < big_bus.channels);
        assert!(small_bus.covers_all_phases());
    }
}
