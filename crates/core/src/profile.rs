//! Hardware-facing polynomial profiles.
//!
//! The performance model never materializes MLE tables (the paper
//! simulates up to 2^30 gates); it only needs the composite polynomial's
//! *structure* — terms, factor multiplicities, per-slot sparsity class and
//! whether a fused `f_r` lane is in play. [`PolyProfile`] extracts exactly
//! that from the same [`CompositePoly`] IR the functional prover executes,
//! so the model and the real code path can never drift apart.

use zkphire_poly::{CompositePoly, GateInfo, MleKind};
use zkphire_sumcheck::coeff_needs_mul;

use crate::tech::ELEMENT_BYTES;

/// One product term as the scheduler sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermProfile {
    /// Constituent slot ids, with multiplicity (e.g. `w^5` = five copies).
    pub factors: Vec<usize>,
    /// Whether the coefficient costs a real multiplication (not ±1).
    pub coeff_needs_mul: bool,
}

impl TermProfile {
    /// Total degree (factor count with multiplicity).
    pub fn degree(&self) -> usize {
        self.factors.len()
    }

    /// Factors excluding a given slot (used to drop the fused `f_r` in
    /// round 1).
    pub fn factors_excluding(&self, slot: Option<usize>) -> Vec<usize> {
        match slot {
            None => self.factors.clone(),
            Some(s) => self.factors.iter().copied().filter(|&f| f != s).collect(),
        }
    }
}

/// The structure of a composite polynomial plus per-slot statistics.
#[derive(Clone, Debug)]
pub struct PolyProfile {
    /// Human-readable name (Table I row name or synthetic).
    pub name: String,
    /// Product terms.
    pub terms: Vec<TermProfile>,
    /// Statistical kind of each MLE slot.
    pub mle_kinds: Vec<MleKind>,
    /// Slot of a single fused `f_r` (Build-MLE lane, §III-F), if any.
    pub eq_slot: Option<usize>,
}

impl PolyProfile {
    /// Builds a profile from a Table I gate description.
    pub fn from_gate(gate: &GateInfo) -> Self {
        Self::from_composite(&gate.poly, &gate.mle_kinds, gate.name)
    }

    /// Builds a profile from a raw composite and its slot kinds.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` does not cover every slot.
    pub fn from_composite(poly: &CompositePoly, kinds: &[MleKind], name: &str) -> Self {
        assert!(
            kinds.len() >= poly.num_mles(),
            "kinds must cover all {} slots",
            poly.num_mles()
        );
        let terms = poly
            .terms()
            .iter()
            .map(|t| TermProfile {
                factors: t.factors.iter().map(|id| id.0).collect(),
                coeff_needs_mul: coeff_needs_mul(&t.coeff),
            })
            .collect();
        let challenge_slots: Vec<usize> = kinds
            .iter()
            .take(poly.num_mles())
            .enumerate()
            .filter(|(_, k)| **k == MleKind::Challenge)
            .map(|(i, _)| i)
            .collect();
        let eq_slot = if challenge_slots.len() == 1 {
            Some(challenge_slots[0])
        } else {
            None
        };
        Self {
            name: name.to_string(),
            terms,
            mle_kinds: kinds[..poly.num_mles()].to_vec(),
            eq_slot,
        }
    }

    /// Composite degree: `K = degree() + 1` evaluations per round.
    pub fn degree(&self) -> usize {
        self.terms
            .iter()
            .map(TermProfile::degree)
            .max()
            .unwrap_or(0)
    }

    /// Distinct slots referenced anywhere.
    pub fn unique_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self
            .terms
            .iter()
            .flat_map(|t| t.factors.iter().copied())
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Off-chip bytes per entry when streaming a slot in **round 1**,
    /// where the sparsity encodings of §IV-B1 apply: selectors as raw
    /// bits, witnesses via per-tile offset buffers, `f_r` generated
    /// on-chip.
    pub fn round1_bytes_per_entry(&self, slot: usize) -> f64 {
        match self.mle_kinds[slot] {
            MleKind::Selector => 1.0 / 8.0,
            // 10% dense 255-bit elements + offset-buffer overhead.
            MleKind::Witness => 0.1 * ELEMENT_BYTES + 0.4,
            MleKind::Dense => ELEMENT_BYTES,
            MleKind::Challenge => 0.0,
        }
    }

    /// Total field multiplications for a full SumCheck at `2^mu` —
    /// delegates to the same closed form the functional prover validates
    /// ([`zkphire_sumcheck::count_ops`]), plus the `f_r` build cost.
    pub fn total_muls(&self, mu: usize) -> f64 {
        let k = self.degree() as u64 + 1;
        let unique = self.unique_slots().len() as u64;
        let num_slots = self.mle_kinds.len() as u64;
        let mut per_pair = 0u64;
        for t in &self.terms {
            if t.degree() == 0 {
                continue; // constant terms add, never multiply
            }
            per_pair += k * (t.degree() as u64 - 1 + u64::from(t.coeff_needs_mul));
        }
        let mut total = 0f64;
        for round in 1..=mu {
            let half = (1u64 << (mu - round)) as f64;
            total += half * per_pair as f64;
            total += num_slots as f64 * half;
        }
        if self.eq_slot.is_some() {
            total += (1u64 << mu) as f64; // Build-MLE: one mul per entry
        }
        let _ = unique;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::{high_degree_gate, table1_gate};

    #[test]
    fn vanilla_profile_shape() {
        let p = PolyProfile::from_gate(&table1_gate(20));
        assert_eq!(p.terms.len(), 5);
        assert_eq!(p.degree(), 4);
        assert_eq!(p.eq_slot, Some(8));
        assert_eq!(p.unique_slots().len(), 9);
    }

    #[test]
    fn jellyfish_profile_shape() {
        let p = PolyProfile::from_gate(&table1_gate(22));
        assert_eq!(p.terms.len(), 13);
        assert_eq!(p.degree(), 7);
        assert_eq!(p.eq_slot, Some(18));
        // w1^5 term has 5 copies of one slot plus q_H1 and f_r.
        let max_mult = p.terms.iter().map(|t| t.factors.len()).max().unwrap();
        assert_eq!(max_mult, 7);
    }

    #[test]
    fn opencheck_has_no_single_eq_slot() {
        // Row 24 has six challenge slots; no single fused lane applies.
        let p = PolyProfile::from_gate(&table1_gate(24));
        assert_eq!(p.eq_slot, None);
    }

    #[test]
    fn sparsity_bytes_ordering() {
        let p = PolyProfile::from_gate(&table1_gate(20));
        // selector < witness < dense bytes per entry.
        let sel = p.round1_bytes_per_entry(0);
        let wit = p.round1_bytes_per_entry(5);
        assert!(sel < wit && wit < ELEMENT_BYTES);
    }

    #[test]
    fn high_degree_family_profiles() {
        for d in [2usize, 6, 17, 30] {
            let p = PolyProfile::from_gate(&high_degree_gate(d));
            assert_eq!(p.degree(), d, "degree {d}");
        }
    }

    #[test]
    fn mul_counts_grow_with_degree() {
        let lo = PolyProfile::from_gate(&high_degree_gate(3)).total_muls(20);
        let hi = PolyProfile::from_gate(&high_degree_gate(20)).total_muls(20);
        assert!(hi > 3.0 * lo);
    }
}
