//! Cycle model of the MSM unit (paper §IV-B3 — "the same MSM architecture
//! as zkSpeed"): Pippenger bucket accumulation over fully pipelined PADD
//! cores, with the sparse-scalar fast paths that witness commitments
//! exploit (§II-B, §IV-B1).

use crate::memory::MemoryConfig;
use crate::tech::{self, PrimeMode, ELEMENT_BYTES, POINT_BYTES};

/// MSM unit configuration (Table III knobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MsmUnitConfig {
    /// Processing elements, each a fully pipelined PADD core.
    pub pes: usize,
    /// Pippenger window size in bits (Table III: 7–10).
    pub window_bits: usize,
    /// On-chip point-buffer capacity per PE (Table III: 1K–16K points).
    pub points_per_pe: usize,
}

/// Scalar statistics of an MSM workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalarProfile {
    /// Uniformly random scalars (committing ϕ, π, quotients, ...).
    Dense,
    /// Witness-style scalars: ~90% zero, the rest full-width (§IV-B1).
    SparseWitness,
    /// Selector-style scalars: zero or one.
    Binary,
}

/// Simulation output for one MSM.
#[derive(Clone, Copy, Debug)]
pub struct MsmReport {
    /// End-to-end cycles.
    pub cycles: f64,
    /// Point additions executed (the PADD-equivalent work).
    pub padds: f64,
    /// Off-chip traffic in bytes.
    pub mem_bytes: f64,
}

impl MsmUnitConfig {
    /// Pippenger windows over 255-bit scalars.
    pub fn num_windows(&self) -> usize {
        255usize.div_ceil(self.window_bits)
    }

    /// Compute area (mm², 7nm): PADD pipeline + bucket/digit control.
    pub fn area_mm2(&self, prime: PrimeMode) -> f64 {
        self.pes as f64 * (tech::PADD_MULS * prime.modmul_381_mm2() + tech::MSM_PE_OVERHEAD_MM2)
    }

    /// On-chip SRAM demand in MB: resident point buffers plus the bucket
    /// set of the window currently being processed (windows are walked
    /// one at a time against resident points, as in zkSpeed).
    pub fn sram_mb(&self) -> f64 {
        let buckets = 1usize << self.window_bits;
        self.pes as f64 * (self.points_per_pe as f64 + buckets as f64) * POINT_BYTES
            / (1024.0 * 1024.0)
    }
}

/// Simulates an `n`-point MSM.
pub fn simulate_msm(
    n: u64,
    scalars: ScalarProfile,
    cfg: &MsmUnitConfig,
    mem: &MemoryConfig,
) -> MsmReport {
    let windows = cfg.num_windows() as f64;
    let n = n as f64;

    // Effective bucket-insertion work per point.
    let (points_touched, windows_per_point, scalar_bytes_each) = match scalars {
        ScalarProfile::Dense => (n, windows, ELEMENT_BYTES),
        // 10% of scalars are non-zero full-width elements.
        ScalarProfile::SparseWitness => (0.1 * n, windows, 0.1 * ELEMENT_BYTES + 0.4),
        // Half the scalars are 1: a single bucket add, no window walk.
        ScalarProfile::Binary => (0.5 * n, 1.0, 1.0 / 8.0),
    };

    let bucket_adds = points_touched * windows_per_point;
    // Each PE accumulates its own bucket set and reduces it serially
    // (running sum: 2 adds per bucket), then per-window partials merge
    // across PEs.
    let buckets_per_pe = windows * (1u64 << cfg.window_bits) as f64;
    let reduction_adds = 2.0 * buckets_per_pe * cfg.pes as f64;
    let merge = (cfg.pes as f64).log2().ceil() * windows;
    // Final window aggregation: doublings + one add per window.
    let tail = 255.0 + windows + merge;
    let padds = bucket_adds + reduction_adds + tail;

    // PADDs pipeline at II=1 per PE; bucket insertion parallelizes across
    // PEs, but each PE pays its own serial reduction.
    let compute = bucket_adds / cfg.pes as f64 + 2.0 * buckets_per_pe + tail;

    // Points are fetched once (only for non-zero scalars); scalars stream
    // compressed. MSM has high reuse, so traffic is a single pass.
    let mem_bytes = points_touched * POINT_BYTES + n * scalar_bytes_each;
    let mem_cycles = mem.cycles_for_bytes(mem_bytes);

    MsmReport {
        cycles: compute.max(mem_cycles),
        padds,
        mem_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MsmUnitConfig {
        MsmUnitConfig {
            pes: 32,
            window_bits: 8,
            points_per_pe: 8192,
        }
    }

    #[test]
    fn dense_msm_scales_linearly() {
        let mem = MemoryConfig::new(2048.0);
        let small = simulate_msm(1 << 20, ScalarProfile::Dense, &cfg(), &mem);
        let large = simulate_msm(1 << 22, ScalarProfile::Dense, &cfg(), &mem);
        let ratio = large.cycles / small.cycles;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn sparse_is_much_cheaper_than_dense() {
        let mem = MemoryConfig::new(2048.0);
        let dense = simulate_msm(1 << 22, ScalarProfile::Dense, &cfg(), &mem);
        let sparse = simulate_msm(1 << 22, ScalarProfile::SparseWitness, &cfg(), &mem);
        assert!(sparse.cycles < dense.cycles / 5.0);
        let binary = simulate_msm(1 << 22, ScalarProfile::Binary, &cfg(), &mem);
        assert!(binary.cycles < sparse.cycles);
    }

    #[test]
    fn msm_is_compute_bound_at_hbm() {
        // §IV-A: "MSMs ... have low bandwidth pressure due to high data
        // reuse" — at HBM bandwidth the unit must not be memory bound.
        let mem = MemoryConfig::new(2048.0);
        let r = simulate_msm(1 << 24, ScalarProfile::Dense, &cfg(), &mem);
        let compute_only = simulate_msm(
            1 << 24,
            ScalarProfile::Dense,
            &cfg(),
            &MemoryConfig::new(1e9),
        );
        assert!((r.cycles - compute_only.cycles).abs() / r.cycles < 0.01);
    }

    #[test]
    fn more_pes_reduce_cycles() {
        let mem = MemoryConfig::new(4096.0);
        let base = simulate_msm(1 << 22, ScalarProfile::Dense, &cfg(), &mem);
        let mut big = cfg();
        big.pes = 64;
        let faster = simulate_msm(1 << 22, ScalarProfile::Dense, &big, &mem);
        assert!(faster.cycles < base.cycles);
    }

    #[test]
    fn window_tradeoff_exists() {
        // Bigger windows mean fewer insertions but more reduction work.
        let mem = MemoryConfig::new(4096.0);
        let mut w7 = cfg();
        w7.window_bits = 7;
        let mut w10 = cfg();
        w10.window_bits = 10;
        let small_n = simulate_msm(1 << 14, ScalarProfile::Dense, &w10, &mem);
        let small_n_w7 = simulate_msm(1 << 14, ScalarProfile::Dense, &w7, &mem);
        // At small n the small window wins (reduction dominates).
        assert!(small_n_w7.cycles < small_n.cycles);
    }

    #[test]
    fn exemplar_area_matches_table5() {
        // 32 PEs ≈ 105.69 mm² (Table V).
        let area = cfg().area_mm2(PrimeMode::Fixed);
        assert!((area - 105.69).abs() < 3.0, "area {area}");
    }
}
