//! Full-protocol scheduler: composes the per-unit models into the five
//! HyperPlonk steps (paper §IV-A) and implements the Masked-ZeroCheck
//! optimization — overlapping the Gate Identity ZeroCheck under the Wire
//! Identity MSMs, which dominate runtime and have low bandwidth pressure.

use crate::msm_unit::{simulate_msm, ScalarProfile};
use crate::permquot::simulate_permquot;
use crate::profile::PolyProfile;
use crate::sumcheck_unit::simulate_sumcheck;
use crate::system::ZkphireConfig;
use zkphire_poly::table1_gate;

/// Which arithmetization the protocol model simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Gate {
    /// Vanilla Plonk gates (Table I rows 20/21).
    Vanilla,
    /// Jellyfish gates (rows 22/23).
    Jellyfish,
}

impl Gate {
    /// Witness columns (→ sparse witness MSM count).
    pub fn witness_columns(self) -> usize {
        match self {
            Gate::Vanilla => 3,
            Gate::Jellyfish => 5,
        }
    }

    /// Gate-identity ZeroCheck profile.
    pub fn zerocheck_profile(self) -> PolyProfile {
        PolyProfile::from_gate(&table1_gate(match self {
            Gate::Vanilla => 20,
            Gate::Jellyfish => 22,
        }))
    }

    /// PermCheck profile.
    pub fn permcheck_profile(self) -> PolyProfile {
        PolyProfile::from_gate(&table1_gate(match self {
            Gate::Vanilla => 21,
            Gate::Jellyfish => 23,
        }))
    }

    /// OpenCheck profile (Table I row 24 for both systems).
    pub fn opencheck_profile(self) -> PolyProfile {
        PolyProfile::from_gate(&table1_gate(24))
    }

    /// Batch-evaluation claims the protocol accumulates (selectors and
    /// witnesses at the gate point; π/p/ϕ, witnesses and σ at the
    /// PermCheck point; the root opening).
    pub fn batch_eval_claims(self) -> usize {
        let (s, w) = match self {
            Gate::Vanilla => (5, 3),
            Gate::Jellyfish => (13, 5),
        };
        (s + w) + (4 + 2 * w) + 1
    }

    /// Distinct committed polynomials entering the final MLE Combine.
    pub fn distinct_polys(self) -> usize {
        let (s, w) = match self {
            Gate::Vanilla => (5, 3),
            Gate::Jellyfish => (13, 5),
        };
        s + 2 * w + 4
    }
}

/// Per-step runtimes in milliseconds (the Fig. 11/12 categories).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolReport {
    /// Step 1: witness-commitment sparse MSMs.
    pub witness_msm_ms: f64,
    /// Step 3: dense MSMs committing ϕ, π, p1, p2.
    pub wiring_msm_ms: f64,
    /// Step 5: the batched-opening MSMs (combined poly + quotients).
    pub polyopen_msm_ms: f64,
    /// Step 2: Gate Identity ZeroCheck.
    pub zerocheck_ms: f64,
    /// Step 3: PermCheck SumCheck.
    pub permcheck_ms: f64,
    /// Step 5: OpenCheck SumCheck.
    pub opencheck_ms: f64,
    /// Step 3: N/D/ϕ generation (PermQuotGen) + π build (Forest).
    pub permquot_ms: f64,
    /// Step 4: Batch Evaluations on the Forest.
    pub batch_eval_ms: f64,
    /// Step 5: MLE Combine.
    pub combine_ms: f64,
    /// Whether Masked ZeroCheck was applied.
    pub masked: bool,
    /// End-to-end prover latency.
    pub total_ms: f64,
}

impl ProtocolReport {
    /// All MSM time.
    pub fn msm_ms(&self) -> f64 {
        self.witness_msm_ms + self.wiring_msm_ms + self.polyopen_msm_ms
    }

    /// All SumCheck time.
    pub fn sumcheck_ms(&self) -> f64 {
        self.zerocheck_ms + self.permcheck_ms + self.opencheck_ms
    }

    /// Everything else (PermQuotGen, Batch Evals, Combine).
    pub fn other_ms(&self) -> f64 {
        self.permquot_ms + self.batch_eval_ms + self.combine_ms
    }
}

/// Simulates the full HyperPlonk prover on a zkPHIRE design point for a
/// `2^mu`-gate circuit.
pub fn simulate_protocol(
    cfg: &ZkphireConfig,
    gate: Gate,
    mu: usize,
    masking: bool,
) -> ProtocolReport {
    let n = 1u64 << mu;
    let w = gate.witness_columns();
    let to_ms = |cycles: f64| cycles / 1e6;

    // Step 1 — Witness Commitments: W sparse MSMs, run back to back on
    // the MSM unit.
    let sparse = simulate_msm(n, ScalarProfile::SparseWitness, &cfg.msm, &cfg.mem);
    let witness_msm_ms = to_ms(w as f64 * sparse.cycles);

    // Step 2 — Gate Identity ZeroCheck on the programmable unit.
    let zc = simulate_sumcheck(&gate.zerocheck_profile(), mu, &cfg.sumcheck, &cfg.mem);
    let zerocheck_ms = zc.ms();

    // Step 3 — Wire Identity.
    let pq = simulate_permquot(mu, w, &cfg.permquot, &cfg.mem);
    let pi_build = cfg.forest.tree_product_cycles(n, &cfg.mem);
    let permquot_ms = to_ms(pq.cycles + pi_build);
    let dense = simulate_msm(n, ScalarProfile::Dense, &cfg.msm, &cfg.mem);
    // §IV-B3's dense-MSM count: ϕ and π plus the p1/p2 pair batched into
    // one streaming pass, as in zkSpeed.
    let wiring_msm_ms = to_ms(3.0 * dense.cycles);
    let pc = simulate_sumcheck(&gate.permcheck_profile(), mu, &cfg.sumcheck, &cfg.mem);
    let permcheck_ms = pc.ms();

    // Step 4 — Batch Evaluations on the Multifunction Forest.
    let batch_eval_ms = to_ms(
        cfg.forest
            .batch_eval_cycles(gate.batch_eval_claims(), n, &cfg.mem),
    );

    // Step 5 — Polynomial Opening: OpenCheck, MLE Combine, batched opening
    // (one dense MSM for the combined polynomial's quotients at each
    // level sums to ≈ one more dense MSM).
    let oc = simulate_sumcheck(&gate.opencheck_profile(), mu, &cfg.sumcheck, &cfg.mem);
    let opencheck_ms = oc.ms();
    let combine_ms = to_ms(
        cfg.combine
            .combine_cycles(gate.distinct_polys(), n, &cfg.mem),
    );
    let polyopen_msm_ms = to_ms(2.0 * dense.cycles);

    // Composition: Masked ZeroCheck overlaps the Gate Identity ZeroCheck
    // under Wire Identity's MSM phase (§IV-A "Masking ZeroCheck").
    let serial_tail = permcheck_ms + batch_eval_ms + opencheck_ms + combine_ms + polyopen_msm_ms;
    let total_ms = if masking {
        witness_msm_ms + permquot_ms + zerocheck_ms.max(wiring_msm_ms) + serial_tail
    } else {
        witness_msm_ms + zerocheck_ms + permquot_ms + wiring_msm_ms + serial_tail
    };

    ProtocolReport {
        witness_msm_ms,
        wiring_msm_ms,
        polyopen_msm_ms,
        zerocheck_ms,
        permcheck_ms,
        opencheck_ms,
        permquot_ms,
        batch_eval_ms,
        combine_ms,
        masked: masking,
        total_ms,
    }
}

/// Protocol runtime for an arbitrary custom gate family (the Fig. 14
/// sweep): the ZeroCheck runs over `profile` instead of the standard
/// gate, everything else follows the Vanilla pipeline with `profile`'s
/// witness count.
pub fn simulate_protocol_with_gate(
    cfg: &ZkphireConfig,
    profile: &PolyProfile,
    witness_columns: usize,
    mu: usize,
    masking: bool,
) -> ProtocolReport {
    let base = simulate_protocol(cfg, Gate::Vanilla, mu, masking);
    let zc = simulate_sumcheck(profile, mu, &cfg.sumcheck, &cfg.mem);
    let n = 1u64 << mu;
    let sparse = simulate_msm(n, ScalarProfile::SparseWitness, &cfg.msm, &cfg.mem);
    let witness_msm_ms = witness_columns as f64 * sparse.cycles / 1e6;
    let mut report = base;
    report.zerocheck_ms = zc.ms();
    report.witness_msm_ms = witness_msm_ms;
    let serial_tail = report.permcheck_ms
        + report.batch_eval_ms
        + report.opencheck_ms
        + report.combine_ms
        + report.polyopen_msm_ms;
    report.total_ms = if masking {
        witness_msm_ms
            + report.permquot_ms
            + report.zerocheck_ms.max(report.wiring_msm_ms)
            + serial_tail
    } else {
        witness_msm_ms
            + report.zerocheck_ms
            + report.permquot_ms
            + report.wiring_msm_ms
            + serial_tail
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::high_degree_gate;

    #[test]
    fn masking_never_hurts() {
        let cfg = ZkphireConfig::exemplar();
        for gate in [Gate::Vanilla, Gate::Jellyfish] {
            let plain = simulate_protocol(&cfg, gate, 20, false);
            let masked = simulate_protocol(&cfg, gate, 20, true);
            assert!(masked.total_ms <= plain.total_ms);
        }
    }

    #[test]
    fn runtime_scales_with_gates() {
        let cfg = ZkphireConfig::exemplar();
        let small = simulate_protocol(&cfg, Gate::Jellyfish, 18, true);
        let large = simulate_protocol(&cfg, Gate::Jellyfish, 21, true);
        let ratio = large.total_ms / small.total_ms;
        assert!(ratio > 5.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn msm_dominates_at_exemplar_like_paper() {
        // Fig. 12b: MSM-heavy steps dominate zkPHIRE runtime.
        let cfg = ZkphireConfig::exemplar();
        let r = simulate_protocol(&cfg, Gate::Jellyfish, 24, false);
        assert!(
            r.msm_ms() > r.sumcheck_ms(),
            "msm {} sc {}",
            r.msm_ms(),
            r.sumcheck_ms()
        );
    }

    #[test]
    fn jellyfish_workload_reduction_wins() {
        // The same application: 2^24 Vanilla vs 2^19 Jellyfish (Rollup 25,
        // Table VIII) — Jellyfish must be far faster despite the more
        // complex gate.
        let cfg = ZkphireConfig::exemplar();
        let vanilla = simulate_protocol(&cfg, Gate::Vanilla, 24, true);
        let jellyfish = simulate_protocol(&cfg, Gate::Jellyfish, 19, true);
        let speedup = vanilla.total_ms / jellyfish.total_ms;
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn high_degree_gate_shifts_bottleneck_to_sumcheck() {
        // Fig. 14: as gate degree grows at fixed witness count, SumCheck
        // overtakes MSM.
        let cfg = ZkphireConfig::exemplar();
        let lo = simulate_protocol_with_gate(
            &cfg,
            &PolyProfile::from_gate(&high_degree_gate(3)),
            2,
            22,
            false,
        );
        let hi = simulate_protocol_with_gate(
            &cfg,
            &PolyProfile::from_gate(&high_degree_gate(30)),
            2,
            22,
            false,
        );
        assert!(hi.total_ms > lo.total_ms);
        assert!(hi.sumcheck_ms() / hi.total_ms > lo.sumcheck_ms() / lo.total_ms);
    }

    #[test]
    fn claim_counts_match_functional_protocol() {
        // Mirror of zkphire-hyperplonk's claim_layout sizes.
        assert_eq!(Gate::Vanilla.batch_eval_claims(), 19);
        assert_eq!(Gate::Jellyfish.batch_eval_claims(), 33);
        assert_eq!(Gate::Vanilla.distinct_polys(), 15);
        assert_eq!(Gate::Jellyfish.distinct_polys(), 27);
    }
}
