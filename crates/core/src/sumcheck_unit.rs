//! Cycle-level performance model of the programmable SumCheck unit
//! (paper §III, Fig. 3).
//!
//! Round structure follows §III-B exactly:
//!
//! * **Round 1** streams the original (sparsity-compressed) tables, two
//!   values per MLE per cycle, with the Build-MLE lane fused in when the
//!   composite carries a single `f_r` factor (§III-F) — costing one
//!   Extension Engine and one Product Lane for that round;
//! * **Rounds ≥ 2** read the previous tables four values at a time,
//!   pipeline the MLE Update into the extensions, and write the halved
//!   tables back — unless they now fit in the scratchpad banks, in which
//!   case off-chip traffic stops (§III-B, §IV-B1);
//! * per MLE-pair, the product lanes impose `Σ ceil(points / P)` cycles
//!   over the scheduler nodes (§III-D's initiation interval).
//!
//! Round time is `max(compute, memory)` plus tile fill/drain overheads —
//! the same analytical-overlap altitude as the paper's own methodology
//! (§V).

use crate::memory::MemoryConfig;
use crate::profile::PolyProfile;
use crate::sched::{schedule, Schedule};
use crate::tech::{self, PrimeMode, ELEMENT_BYTES};

/// Per-tile pipeline fill/drain overhead in cycles.
const TILE_OVERHEAD_CYCLES: f64 = 32.0;
/// Per-round drain overhead in cycles.
const ROUND_DRAIN_CYCLES: f64 = 300.0;

/// Configuration of one programmable SumCheck unit (Table III knobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SumcheckUnitConfig {
    /// Processing elements.
    pub pes: usize,
    /// Extension Engines per PE.
    pub ees: usize,
    /// Product Lanes per PE.
    pub pls: usize,
    /// Words per scratchpad bank (the unit has [`Self::BANKS`] banks).
    pub bank_words: usize,
    /// Whether the unit streams sparsity-compressed tables (the per-tile
    /// offset buffers of §IV-B1 — a full-system zkPHIRE extension; the
    /// standalone §III unit of Figs. 6-9 streams dense 32 B elements).
    pub sparse_io: bool,
}

impl SumcheckUnitConfig {
    /// Scratchpad banks (§III-B: "we allocate 16 scratchpad buffers").
    pub const BANKS: usize = 16;

    /// Total scratchpad capacity in MLE words.
    pub fn scratch_words(&self) -> usize {
        Self::BANKS * self.bank_words
    }

    /// Scratchpad capacity in bytes.
    pub fn scratch_bytes(&self) -> f64 {
        self.scratch_words() as f64 * ELEMENT_BYTES
    }

    /// Modular multipliers in the unit (update + product-lane).
    pub fn total_muls(&self) -> usize {
        self.pes * (tech::UPDATE_MULS_PER_PE as usize + self.pls * (self.ees - 1))
    }

    /// Standalone unit area (mm², 7nm) — used for the iso-area SumCheck
    /// studies (Fig. 6–9), where the product-lane multipliers belong to
    /// the unit itself rather than a shared Forest.
    pub fn standalone_area_mm2(&self, prime: PrimeMode) -> f64 {
        let mm = prime.modmul_255_mm2();
        let pe = tech::UPDATE_MULS_PER_PE * mm
            + self.ees as f64 * tech::EE_MM2
            + self.pls as f64 * ((self.ees - 1) as f64 * mm + tech::PL_CTRL_MM2);
        let sram_mb = self.scratch_bytes() / (1024.0 * 1024.0);
        self.pes as f64 * pe + sram_mb / tech::SRAM_MB_PER_MM2 + tech::SHA3_MM2
    }

    /// PE area only (mm²) when the product-lane multipliers are provided
    /// by the Multifunction Forest (full-system zkPHIRE, §IV-B2).
    pub fn shared_pe_area_mm2(&self, prime: PrimeMode) -> f64 {
        let mm = prime.modmul_255_mm2();
        let pe = tech::UPDATE_MULS_PER_PE * mm
            + self.ees as f64 * tech::EE_MM2
            + self.pls as f64 * tech::PL_CTRL_MM2;
        self.pes as f64 * pe
    }

    /// Product-lane multipliers this unit borrows from the Forest in the
    /// shared configuration.
    pub fn shared_lane_muls(&self) -> usize {
        self.pes * self.pls * (self.ees - 1)
    }
}

/// Simulation output for one complete SumCheck.
#[derive(Clone, Debug)]
pub struct SumcheckReport {
    /// End-to-end cycles (= ns at 1 GHz).
    pub total_cycles: f64,
    /// Per-round cycles.
    pub round_cycles: Vec<f64>,
    /// Total off-chip traffic in bytes.
    pub mem_bytes: f64,
    /// Fraction of rounds (cycle-weighted) limited by memory.
    pub memory_bound_fraction: f64,
    /// Multiplier utilization: useful mult-cycles over capacity.
    pub utilization: f64,
}

impl SumcheckReport {
    /// Runtime in milliseconds at the 1 GHz clock.
    pub fn ms(&self) -> f64 {
        self.total_cycles / 1e6
    }
}

/// Simulates one SumCheck of `profile` over `2^mu` entries.
///
/// # Panics
///
/// Panics on degenerate configurations (`ees < 2`, `pls < 1`, `pes < 1`).
pub fn simulate_sumcheck(
    profile: &PolyProfile,
    mu: usize,
    cfg: &SumcheckUnitConfig,
    mem: &MemoryConfig,
) -> SumcheckReport {
    assert!(
        cfg.ees >= 2 && cfg.pls >= 1 && cfg.pes >= 1,
        "degenerate config"
    );
    assert!(mu >= 1);
    let has_eq = profile.eq_slot.is_some();
    let unique = profile.unique_slots();
    let n_unique = unique.len();
    let k = profile.degree() + 1;

    // Round-1 schedule with f_r fused out (one EE + one PL reserved).
    let r1_ees = if has_eq {
        (cfg.ees - 1).max(2)
    } else {
        cfg.ees
    };
    let r1_pls = if has_eq {
        (cfg.pls - 1).max(1)
    } else {
        cfg.pls
    };
    let sched_r1: Schedule = schedule(profile, r1_ees, has_eq);
    let sched_rest: Schedule = schedule(profile, cfg.ees, false);

    let mut round_cycles = Vec::with_capacity(mu);
    let mut total_bytes = 0f64;
    let mut useful_muls = 0f64;
    let mut mem_bound_cycles = 0f64;
    // Whether the (updated) tables already live in the scratchpads.
    let mut on_chip = false;

    for round in 1..=mu {
        let in_size = if round == 1 {
            (1u64 << mu) as f64
        } else {
            (1u64 << (mu - round + 2)) as f64
        };
        let out_size = in_size / 2.0;
        let pairs = (1u64 << (mu - round)) as f64;

        // --- Compute ---
        let (sched, lanes) = if round == 1 {
            (&sched_r1, r1_pls)
        } else {
            (&sched_rest, cfg.pls)
        };
        let cycles_per_pair = sched.cycles_per_pair(lanes) as f64;
        let compute = pairs * cycles_per_pair / cfg.pes as f64;

        // --- Memory ---
        let mut read = 0f64;
        let mut write = 0f64;
        let entry_bytes = |slot: usize| {
            if cfg.sparse_io {
                profile.round1_bytes_per_entry(slot)
            } else if Some(slot) == profile.eq_slot {
                0.0 // f_r is still built on-chip (§III-F)
            } else {
                ELEMENT_BYTES
            }
        };
        if round == 1 {
            for &slot in &unique {
                read += in_size * entry_bytes(slot);
            }
            if has_eq {
                // Built f_r is spilled for round 2 (§III-F: later rounds
                // treat it as any other MLE fetched from off-chip).
                write += in_size * ELEMENT_BYTES;
            }
        } else if !on_chip {
            for &slot in &unique {
                let per_entry = if round == 2 {
                    // Round 2 re-reads the original tables (update is
                    // pipelined in); f_r reads back dense.
                    if Some(slot) == profile.eq_slot {
                        ELEMENT_BYTES
                    } else {
                        entry_bytes(slot)
                    }
                } else {
                    ELEMENT_BYTES
                };
                read += in_size * per_entry;
            }
            let out_fits = n_unique as f64 * out_size <= cfg.scratch_words() as f64;
            if out_fits {
                on_chip = true; // updated tables stay in the banks
            } else {
                write += n_unique as f64 * out_size * ELEMENT_BYTES;
            }
        }
        let mem_cycles = mem.cycles_for_bytes(read + write);
        total_bytes += read + write;

        // --- Overheads ---
        let tiles = (in_size / cfg.bank_words as f64).ceil();
        let overhead = tiles * TILE_OVERHEAD_CYCLES + ROUND_DRAIN_CYCLES;

        let body = compute.max(mem_cycles);
        if mem_cycles > compute {
            mem_bound_cycles += body;
        }
        round_cycles.push(body + overhead);

        // --- Useful multiplier work (for utilization) ---
        useful_muls += pairs * sched.muls_per_pair() as f64;
        if round == 1 && has_eq {
            // Reserved lane multiplies f_r into each term's product.
            useful_muls += pairs * k as f64;
            // Build-MLE: one multiplication per generated entry.
            useful_muls += in_size;
        }
        if round >= 2 {
            // MLE Update: one multiplication per updated entry.
            useful_muls += n_unique as f64 * out_size;
        }
    }

    let total_cycles: f64 = round_cycles.iter().sum();
    let capacity = cfg.total_muls() as f64 * total_cycles;
    SumcheckReport {
        total_cycles,
        round_cycles,
        mem_bytes: total_bytes,
        memory_bound_fraction: mem_bound_cycles / total_cycles,
        utilization: (useful_muls / capacity).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PolyProfile;
    use zkphire_poly::{high_degree_gate, table1_gate};

    fn cfg() -> SumcheckUnitConfig {
        SumcheckUnitConfig {
            pes: 16,
            ees: 7,
            pls: 5,
            bank_words: 1 << 13,
            sparse_io: true,
        }
    }

    fn vanilla() -> PolyProfile {
        PolyProfile::from_gate(&table1_gate(20))
    }

    #[test]
    fn runtime_scales_with_problem_size() {
        let p = vanilla();
        let mem = MemoryConfig::new(1024.0);
        let small = simulate_sumcheck(&p, 18, &cfg(), &mem);
        let large = simulate_sumcheck(&p, 20, &cfg(), &mem);
        let ratio = large.total_cycles / small.total_cycles;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn more_bandwidth_never_slower() {
        let p = vanilla();
        let mut last = f64::INFINITY;
        for bw in MemoryConfig::sweep_tiers() {
            let r = simulate_sumcheck(&p, 22, &cfg(), &MemoryConfig::new(bw));
            assert!(r.total_cycles <= last * 1.0001, "bw {bw}");
            last = r.total_cycles;
        }
    }

    #[test]
    fn low_bandwidth_is_memory_bound() {
        let p = vanilla();
        let r = simulate_sumcheck(&p, 22, &cfg(), &MemoryConfig::new(64.0));
        assert!(r.memory_bound_fraction > 0.9, "{}", r.memory_bound_fraction);
        let r_hi = simulate_sumcheck(&p, 22, &cfg(), &MemoryConfig::new(4096.0));
        assert!(r_hi.memory_bound_fraction < r.memory_bound_fraction);
    }

    #[test]
    fn more_pes_help_when_compute_bound() {
        let p = PolyProfile::from_gate(&high_degree_gate(24));
        let mem = MemoryConfig::new(4096.0);
        let base = simulate_sumcheck(&p, 22, &cfg(), &mem);
        let mut big = cfg();
        big.pes *= 2;
        let faster = simulate_sumcheck(&p, 22, &big, &mem);
        assert!(faster.total_cycles < base.total_cycles);
    }

    #[test]
    fn high_degree_costs_more_compute() {
        let mem = MemoryConfig::new(4096.0);
        let lo = simulate_sumcheck(
            &PolyProfile::from_gate(&high_degree_gate(4)),
            20,
            &cfg(),
            &mem,
        );
        let hi = simulate_sumcheck(
            &PolyProfile::from_gate(&high_degree_gate(28)),
            20,
            &cfg(),
            &mem,
        );
        assert!(hi.total_cycles > 2.0 * lo.total_cycles);
    }

    #[test]
    fn sparsity_reduces_round1_traffic() {
        // The vanilla gate (sparse selectors/witnesses) must move far less
        // than 32 B/entry in round 1.
        let p = vanilla();
        let n = (1u64 << 20) as f64;
        let dense_equivalent = p.unique_slots().len() as f64 * n * ELEMENT_BYTES;
        let r = simulate_sumcheck(&p, 20, &cfg(), &MemoryConfig::new(64.0));
        // Round-1 sparsity compression keeps the whole run within ~3x one
        // dense pass even though later rounds stream dense tables.
        assert!(r.mem_bytes < 3.0 * dense_equivalent);
    }

    #[test]
    fn utilization_is_moderate_like_paper() {
        // §VI-A1 reports ~0.4–0.5 mean utilization for sized-right designs.
        let p = vanilla();
        let small = SumcheckUnitConfig {
            pes: 4,
            ees: 2,
            pls: 5,
            bank_words: 1 << 12,
            sparse_io: true,
        };
        let r = simulate_sumcheck(&p, 22, &small, &MemoryConfig::new(1024.0));
        assert!(
            r.utilization > 0.1 && r.utilization < 0.95,
            "{}",
            r.utilization
        );
    }

    #[test]
    fn onchip_rounds_stop_traffic() {
        let p = vanilla();
        let mem = MemoryConfig::new(64.0);
        let r = simulate_sumcheck(&p, 16, &cfg(), &mem);
        // With 2^17-word scratch and 9 slots, tables fit within a few
        // rounds; trailing rounds must add no bytes. Compare against a
        // hypothetical all-off-chip traffic.
        let n = (1u64 << 16) as f64;
        let all_offchip = 9.0 * n * ELEMENT_BYTES * 4.0;
        assert!(r.mem_bytes < all_offchip);
        let _ = &mem;
    }
}
