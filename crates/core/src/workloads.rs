//! The paper's evaluation workloads (Tables VI and VII): published gate
//! counts for Vanilla and Jellyfish arithmetizations plus the paper's
//! measured CPU (32-thread EPYC 7502) and zkSpeed+ runtimes, used as
//! baseline anchors per DESIGN.md substitution S2.

/// One evaluation workload.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Workload name as printed in the paper.
    pub name: &'static str,
    /// log2 of the Vanilla gate count, if the paper reports one.
    pub vanilla_log2: Option<usize>,
    /// log2 of the Jellyfish gate count, if the paper reports one.
    pub jellyfish_log2: Option<usize>,
    /// Paper CPU runtime (ms) for the Vanilla arithmetization (Table VI).
    pub cpu_vanilla_ms: Option<f64>,
    /// Paper CPU runtime (ms) for the Jellyfish arithmetization (Table VII).
    pub cpu_jellyfish_ms: Option<f64>,
    /// Paper zkSpeed+ runtime (ms) for Vanilla gates (Table VI).
    pub zkspeed_plus_ms: Option<f64>,
}

/// All workloads of Tables VI/VII, in Table VI order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "ZCash",
            vanilla_log2: Some(17),
            jellyfish_log2: Some(15),
            cpu_vanilla_ms: Some(1_429.0),
            cpu_jellyfish_ms: Some(701.0),
            zkspeed_plus_ms: Some(1.825),
        },
        Workload {
            name: "Auction",
            vanilla_log2: Some(20),
            jellyfish_log2: None,
            cpu_vanilla_ms: Some(8_619.0),
            cpu_jellyfish_ms: None,
            zkspeed_plus_ms: Some(10.171),
        },
        Workload {
            name: "2^12 Rescue Hashes",
            vanilla_log2: Some(21),
            jellyfish_log2: Some(20),
            cpu_vanilla_ms: Some(18_637.0),
            cpu_jellyfish_ms: Some(11_532.0),
            zkspeed_plus_ms: Some(19.631),
        },
        Workload {
            name: "Zexe Recursive Ckt",
            vanilla_log2: Some(22),
            jellyfish_log2: Some(17),
            cpu_vanilla_ms: Some(37_469.0),
            cpu_jellyfish_ms: Some(1_951.0),
            zkspeed_plus_ms: Some(38.535),
        },
        Workload {
            name: "Rollup of 10 Pvt Tx",
            vanilla_log2: Some(23),
            jellyfish_log2: Some(18),
            cpu_vanilla_ms: Some(74_052.0),
            cpu_jellyfish_ms: Some(3_339.0),
            zkspeed_plus_ms: Some(76.356),
        },
        Workload {
            name: "Rollup of 25 Pvt Tx",
            vanilla_log2: Some(24),
            jellyfish_log2: Some(19),
            cpu_vanilla_ms: Some(145_500.0),
            cpu_jellyfish_ms: Some(6_161.0),
            zkspeed_plus_ms: Some(151.973),
        },
        Workload {
            name: "Rollup of 50 Pvt Tx",
            vanilla_log2: Some(25),
            jellyfish_log2: Some(20),
            cpu_vanilla_ms: Some(325_048.0),
            cpu_jellyfish_ms: Some(11_533.0),
            zkspeed_plus_ms: None,
        },
        Workload {
            name: "Rollup of 100 Pvt Tx",
            vanilla_log2: Some(26),
            jellyfish_log2: Some(21),
            cpu_vanilla_ms: Some(640_987.0),
            cpu_jellyfish_ms: Some(24_071.0),
            zkspeed_plus_ms: None,
        },
        Workload {
            name: "Rollup of 1600 Pvt Tx",
            vanilla_log2: Some(30),
            jellyfish_log2: Some(25),
            cpu_vanilla_ms: None,
            cpu_jellyfish_ms: Some(355_406.0),
            zkspeed_plus_ms: None,
        },
        Workload {
            name: "zkEVM",
            vanilla_log2: None,
            jellyfish_log2: Some(27),
            cpu_vanilla_ms: None,
            cpu_jellyfish_ms: Some(25.0 * 60.0 * 1000.0),
            zkspeed_plus_ms: None,
        },
    ]
}

/// Looks up a workload by name.
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_workloads_in_table_order() {
        let all = all_workloads();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].name, "ZCash");
        assert_eq!(all[9].name, "zkEVM");
    }

    #[test]
    fn jellyfish_always_smaller_than_vanilla() {
        for w in all_workloads() {
            if let (Some(v), Some(j)) = (w.vanilla_log2, w.jellyfish_log2) {
                assert!(j < v, "{}", w.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("zkEVM").is_some());
        assert!(workload("nonexistent").is_none());
    }
}
