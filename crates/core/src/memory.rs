//! Off-chip memory model: bandwidth tiers and PHY provisioning (§IV-B6,
//! §VI-B1).
//!
//! At the 1 GHz design clock, one GB/s is exactly one byte per cycle, so
//! transfer-time math stays in cycles (= nanoseconds).

use crate::tech;

/// The off-chip memory system of a design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryConfig {
    /// Peak bandwidth in GB/s (the paper sweeps 64 GB/s – 4 TB/s).
    pub bandwidth_gbps: f64,
}

impl MemoryConfig {
    /// Creates a memory system with the given peak bandwidth.
    pub fn new(bandwidth_gbps: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        Self { bandwidth_gbps }
    }

    /// Bytes transferable per cycle at 1 GHz.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Cycles to move `bytes` at peak bandwidth.
    pub fn cycles_for_bytes(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth_gbps
    }

    /// PHY count and area for this bandwidth tier.
    pub fn phy(&self) -> (usize, f64) {
        tech::phy_for_bandwidth(self.bandwidth_gbps)
    }

    /// Memory-system power (W), scaling with provisioned bandwidth.
    pub fn power_watts(&self) -> f64 {
        self.bandwidth_gbps / 1024.0 * tech::HBM_WATTS_PER_TBPS
    }

    /// The paper's seven bandwidth tiers (Table III).
    pub fn sweep_tiers() -> [f64; 7] {
        [64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_gbps_is_one_byte_per_cycle() {
        let m = MemoryConfig::new(1.0);
        assert!((m.bytes_per_cycle() - 1.0).abs() < 1e-12);
        assert!((m.cycles_for_bytes(1e9) - 1e9).abs() < 1.0);
    }

    #[test]
    fn phy_area_scales_with_tier() {
        let small = MemoryConfig::new(128.0).phy().1;
        let large = MemoryConfig::new(4096.0).phy().1;
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = MemoryConfig::new(0.0);
    }
}
