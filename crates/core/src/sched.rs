//! The graph-decomposition scheduler of paper Fig. 2 / §III-C.
//!
//! A term with more factors than there are Extension Engines is split into
//! *nodes*: the first node extends and multiplies up to `E` factors, and
//! every subsequent node folds up to `E - 1` new factors into the single
//! Tmp-MLE accumulation buffer (the right-hand schedule of Fig. 2, which
//! needs exactly one Tmp buffer regardless of degree — the left-hand
//! balanced tree would need a growing set).
//!
//! The schedule also carries the early-exit extension counts: a node that
//! has covered `c` factors so far only needs its products at
//! `min(c + 1, K)` extension points, which is why runtime grows gradually
//! with degree *within* a node-count cluster and jumps *between* clusters
//! (paper Fig. 8 and §VI-A2).

use crate::profile::{PolyProfile, TermProfile};

/// One scheduler node: a batch of factors processed together on the EEs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSchedule {
    /// Factors (slot ids, with multiplicity) newly folded in.
    pub new_factors: Vec<usize>,
    /// Whether the node multiplies against the Tmp accumulation buffer.
    pub uses_tmp: bool,
    /// Factors covered after this node (drives the early-exit `K`).
    pub cumulative: usize,
    /// Extension points this node computes products for.
    pub points: usize,
}

/// The node sequence for one term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermSchedule {
    /// Nodes in execution order.
    pub nodes: Vec<NodeSchedule>,
}

/// A complete schedule: the program loaded into the on-chip controllers
/// (§III-E).
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Per-term node sequences, in term order.
    pub terms: Vec<TermSchedule>,
    /// Extension-point budget `K = degree + 1` of the whole composite.
    pub k_points: usize,
    /// Extension Engines assumed by this schedule.
    pub ees: usize,
}

/// Number of scheduler nodes for a term of `m` factors on `ees` engines
/// (the Fig. 2 accumulation decomposition):
/// `1` if `m <= E`, else `1 + ceil((m - E) / (E - 1))`.
pub fn node_count(m: usize, ees: usize) -> usize {
    assert!(ees >= 2, "need at least two Extension Engines");
    if m <= ees {
        1
    } else {
        1 + (m - ees).div_ceil(ees - 1)
    }
}

/// Builds the schedule for `profile` on `ees` Extension Engines.
///
/// `exclude_eq` drops the fused `f_r` slot from factor lists (round 1,
/// where the Build-MLE lane produces it — §III-F).
pub fn schedule(profile: &PolyProfile, ees: usize, exclude_eq: bool) -> Schedule {
    let k_points = profile.degree() + 1;
    let eq = if exclude_eq { profile.eq_slot } else { None };
    let terms = profile
        .terms
        .iter()
        .map(|t| schedule_term(t, ees, eq, k_points))
        .collect();
    Schedule {
        terms,
        k_points,
        ees,
    }
}

fn schedule_term(
    term: &TermProfile,
    ees: usize,
    exclude_slot: Option<usize>,
    k_points: usize,
) -> TermSchedule {
    let factors = term.factors_excluding(exclude_slot);
    // The term's own extension budget: its full degree + 1 (early exit for
    // low-degree terms — §VI-A1 utilization factor 2), capped by K.
    let term_k = (term.degree() + 1).min(k_points);
    let mut nodes = Vec::new();
    let mut remaining = factors.as_slice();
    let mut cumulative = 0usize;
    let mut first = true;
    while !remaining.is_empty() || first {
        let capacity = if first { ees } else { ees - 1 };
        let take = remaining.len().min(capacity);
        let (batch, rest) = remaining.split_at(take);
        cumulative += take;
        nodes.push(NodeSchedule {
            new_factors: batch.to_vec(),
            uses_tmp: !first,
            cumulative,
            points: (cumulative + 1).min(term_k),
        });
        remaining = rest;
        first = false;
    }
    TermSchedule { nodes }
}

impl Schedule {
    /// Total nodes across all terms (the step count of Fig. 2).
    pub fn total_nodes(&self) -> usize {
        self.terms.iter().map(|t| t.nodes.len()).sum()
    }

    /// Maximum concurrent Tmp-MLE buffers — always 1 for the accumulation
    /// schedule (the property the right-hand side of Fig. 2 exists for).
    pub fn tmp_buffers(&self) -> usize {
        usize::from(
            self.terms
                .iter()
                .any(|t| t.nodes.iter().any(|n| n.uses_tmp)),
        )
    }

    /// Product-lane invocations per MLE-pair: `Σ_terms Σ_nodes
    /// ceil(points / lanes)` — the per-pair cycle count of one PE.
    pub fn cycles_per_pair(&self, lanes: usize) -> u64 {
        assert!(lanes >= 1);
        self.terms
            .iter()
            .flat_map(|t| &t.nodes)
            .map(|n| n.points.div_ceil(lanes) as u64)
            .sum()
    }

    /// Product-lane multiplications per MLE-pair (for utilization): each
    /// node multiplies its new factors (and Tmp) at each of its points.
    pub fn muls_per_pair(&self) -> u64 {
        self.terms
            .iter()
            .flat_map(|t| &t.nodes)
            .map(|n| {
                let values = n.new_factors.len() + usize::from(n.uses_tmp);
                (n.points * values.saturating_sub(1)) as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PolyProfile;
    use zkphire_poly::{high_degree_gate, table1_gate};

    #[test]
    fn node_count_matches_paper_clusters() {
        // §VI-A2: with 6 EEs, degree 1–6 polynomials have 1 node,
        // degree 7–11 have 2.
        for m in 1..=6 {
            assert_eq!(node_count(m, 6), 1, "m={m}");
        }
        for m in 7..=11 {
            assert_eq!(node_count(m, 6), 2, "m={m}");
        }
        assert_eq!(node_count(12, 6), 3);
    }

    #[test]
    fn high_degree_family_follows_node_formula() {
        for ees in 2..=7 {
            for d in 2..=30 {
                let p = PolyProfile::from_gate(&high_degree_gate(d));
                let s = schedule(&p, ees, false);
                let big_term = s.terms.iter().map(|t| t.nodes.len()).max().unwrap();
                assert_eq!(big_term, node_count(d, ees), "d={d} ees={ees}");
            }
        }
    }

    #[test]
    fn every_factor_scheduled_exactly_once() {
        let p = PolyProfile::from_gate(&table1_gate(22));
        let s = schedule(&p, 3, false);
        for (t, ts) in p.terms.iter().zip(&s.terms) {
            let scheduled: usize = ts.nodes.iter().map(|n| n.new_factors.len()).sum();
            assert_eq!(scheduled, t.factors.len());
        }
    }

    #[test]
    fn single_tmp_buffer() {
        // The accumulation schedule never needs more than one Tmp MLE.
        let p = PolyProfile::from_gate(&high_degree_gate(30));
        let s = schedule(&p, 2, false);
        assert_eq!(s.tmp_buffers(), 1);
    }

    #[test]
    fn eq_exclusion_reduces_round1_factors() {
        let p = PolyProfile::from_gate(&table1_gate(20));
        let with_eq = schedule(&p, 7, false);
        let without_eq = schedule(&p, 7, true);
        let count = |s: &Schedule| -> usize {
            s.terms
                .iter()
                .flat_map(|t| &t.nodes)
                .map(|n| n.new_factors.len())
                .sum()
        };
        assert_eq!(count(&with_eq), count(&without_eq) + p.terms.len());
    }

    #[test]
    fn early_exit_points_are_monotone() {
        let p = PolyProfile::from_gate(&high_degree_gate(18));
        let s = schedule(&p, 4, false);
        for t in &s.terms {
            for w in t.nodes.windows(2) {
                assert!(w[0].points <= w[1].points);
            }
            if let Some(last) = t.nodes.last() {
                assert!(last.points <= s.k_points);
            }
        }
    }

    #[test]
    fn cycles_per_pair_decrease_with_lanes() {
        let p = PolyProfile::from_gate(&table1_gate(22));
        let s = schedule(&p, 4, false);
        let c3 = s.cycles_per_pair(3);
        let c8 = s.cycles_per_pair(8);
        assert!(c8 < c3);
    }

    #[test]
    fn single_factor_term_has_one_node() {
        // q_C alone (plus f_r) still schedules.
        let p = PolyProfile::from_gate(&table1_gate(20));
        let s = schedule(&p, 2, true);
        assert!(s.terms.iter().all(|t| !t.nodes.is_empty()));
    }
}
