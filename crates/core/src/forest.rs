//! The Multifunction Forest (paper §IV-B2): a pool of binary-tree
//! multiplier units shared between tree-shaped kernels (product-MLE
//! construction, MLE evaluation, Build-MLE) and the SumCheck unit's
//! product lanes — the resource sharing that saves 15% of zkSpeed's
//! multipliers at equal latency.

use crate::memory::MemoryConfig;
use crate::tech::{self, PrimeMode, ELEMENT_BYTES};

/// Multifunction Forest configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ForestConfig {
    /// Number of tree units.
    pub trees: usize,
}

impl ForestConfig {
    /// Modular multipliers in the forest.
    pub fn total_muls(&self) -> usize {
        self.trees * tech::MULS_PER_TREE
    }

    /// Compute area (mm², 7nm).
    pub fn area_mm2(&self, prime: PrimeMode) -> f64 {
        self.trees as f64
            * (tech::MULS_PER_TREE as f64 * prime.modmul_255_mm2() + tech::TREE_OVERHEAD_MM2)
    }

    /// Cycles to build a product MLE (the grand-product tree π) over `n`
    /// leaves: `n - 1` multiplications streamed through the tree pool.
    pub fn tree_product_cycles(&self, n: u64, mem: &MemoryConfig) -> f64 {
        let n = n as f64;
        let compute = n / self.total_muls() as f64 + (n.log2().ceil() + 8.0);
        let mem_cycles = mem.cycles_for_bytes(2.0 * n * ELEMENT_BYTES); // read ϕ, write π/p1/p2 stream
        compute.max(mem_cycles)
    }

    /// Cycles to evaluate one size-`n` MLE at a field point (successive
    /// fold layers: `n - 1` multiplications, halving each layer).
    pub fn mle_eval_cycles(&self, n: u64, mem: &MemoryConfig) -> f64 {
        let n = n as f64;
        let compute = n / self.total_muls() as f64 + (n.log2().ceil() + 8.0);
        let mem_cycles = mem.cycles_for_bytes(n * ELEMENT_BYTES);
        compute.max(mem_cycles)
    }

    /// Cycles for the Batch Evaluations step: `claims` MLE evaluations of
    /// size-`n` tables (paper §IV-A), pipelined through the forest.
    pub fn batch_eval_cycles(&self, claims: usize, n: u64, mem: &MemoryConfig) -> f64 {
        let n = n as f64;
        let k = claims as f64;
        let compute = k * n / self.total_muls() as f64 + n.log2().ceil() + 8.0;
        let mem_cycles = mem.cycles_for_bytes(k * n * ELEMENT_BYTES);
        compute.max(mem_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: ForestConfig = ForestConfig { trees: 80 };

    #[test]
    fn exemplar_area_matches_table5() {
        let area = CFG.area_mm2(PrimeMode::Fixed);
        assert!((area - 48.18).abs() < 1.0, "area {area}");
    }

    #[test]
    fn product_tree_scales_linearly() {
        let mem = MemoryConfig::new(2048.0);
        let a = CFG.tree_product_cycles(1 << 20, &mem);
        let b = CFG.tree_product_cycles(1 << 22, &mem);
        assert!(b / a > 3.5 && b / a < 4.5);
    }

    #[test]
    fn batch_eval_scales_with_claims() {
        let mem = MemoryConfig::new(4096.0);
        let few = CFG.batch_eval_cycles(5, 1 << 22, &mem);
        let many = CFG.batch_eval_cycles(30, 1 << 22, &mem);
        assert!(many > 4.0 * few);
    }

    #[test]
    fn more_trees_help_compute_bound_kernels() {
        let mem = MemoryConfig::new(1_000_000.0);
        let small = ForestConfig { trees: 10 }.tree_product_cycles(1 << 22, &mem);
        let large = ForestConfig { trees: 160 }.tree_product_cycles(1 << 22, &mem);
        assert!(large < small / 4.0);
    }
}
