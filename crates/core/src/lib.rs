//! zkPHIRE: the programmable SumCheck accelerator and full-system
//! performance model — the primary contribution of the paper.
//!
//! The crate models the hardware at the same altitude as the paper's own
//! methodology (§V): HLS-derived pipeline constants + analytical
//! bandwidth/cycle models, driven by the *same* composite-polynomial IR
//! the functional prover executes.
//!
//! * [`profile`] — hardware-facing polynomial profiles;
//! * [`sched`] — the Fig. 2 graph-decomposition scheduler;
//! * [`program`] — lowering schedules to controller instructions (§III-E);
//! * [`sumcheck_unit`] — the programmable SumCheck unit cycle model (§III);
//! * [`msm_unit`], [`forest`], [`permquot`], [`mle_combine`], [`noc`] —
//!   the other zkPHIRE modules (§IV-B);
//! * [`system`] — full-chip area/power (Table V);
//! * [`protocol`] — the five-step HyperPlonk schedule with Masked
//!   ZeroCheck (§IV-A);
//! * [`costdb`] — memoized protocol-cost queries (the service-time
//!   oracle behind the `zkphire-fleet` discrete-event simulator);
//! * [`workloads`] — the Tables VI/VII workload suite.
//!
//! # Examples
//!
//! ```
//! use zkphire_core::protocol::{simulate_protocol, Gate};
//! use zkphire_core::system::ZkphireConfig;
//!
//! let cfg = ZkphireConfig::exemplar();
//! let report = simulate_protocol(&cfg, Gate::Jellyfish, 20, true);
//! assert!(report.total_ms > 0.0);
//! println!("2^20 Jellyfish gates: {:.3} ms", report.total_ms);
//! ```

pub mod costdb;
pub mod forest;
pub mod memory;
pub mod mle_combine;
pub mod msm_unit;
pub mod noc;
pub mod permquot;
pub mod profile;
pub mod program;
pub mod protocol;
pub mod sched;
pub mod sumcheck_unit;
pub mod system;
pub mod tech;
pub mod workloads;

pub use costdb::CostModel;
pub use memory::MemoryConfig;
pub use profile::PolyProfile;
pub use sumcheck_unit::{simulate_sumcheck, SumcheckReport, SumcheckUnitConfig};
pub use system::{AreaBreakdown, PowerBreakdown, ZkphireConfig};
pub use tech::PrimeMode;
