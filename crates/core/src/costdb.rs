//! Memoized protocol-cost queries.
//!
//! The discrete-event fleet simulator (`zkphire-fleet`) asks for the
//! per-proof latency of a `(gate, 2^mu)` request class on every dispatch
//! decision. Re-running [`simulate_protocol`] each time would redo the
//! whole five-step analytical schedule — identical inputs, identical
//! outputs — millions of times per simulation. [`CostModel`] wraps one
//! design point and caches every report by `(gate, mu)` (the masking
//! flag is fixed per model), so the steady-state cost of a query is one
//! `HashMap` probe.

use std::collections::HashMap;

use crate::protocol::{simulate_protocol, Gate, ProtocolReport};
use crate::system::ZkphireConfig;

/// A memoized view of [`simulate_protocol`] for one design point.
#[derive(Clone, Debug)]
pub struct CostModel {
    cfg: ZkphireConfig,
    masking: bool,
    cache: HashMap<(Gate, usize), ProtocolReport>,
    hits: u64,
    misses: u64,
}

impl CostModel {
    /// Wraps `cfg`; `masking` selects Masked-ZeroCheck composition.
    pub fn new(cfg: ZkphireConfig, masking: bool) -> Self {
        Self {
            cfg,
            masking,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The exemplar Table V design with Masked ZeroCheck — the default
    /// chip the fleet simulator deploys.
    pub fn exemplar() -> Self {
        Self::new(ZkphireConfig::exemplar(), true)
    }

    /// The wrapped design point.
    pub fn config(&self) -> &ZkphireConfig {
        &self.cfg
    }

    /// Full per-step report for a `2^mu`-gate proof, memoized.
    pub fn report(&mut self, gate: Gate, mu: usize) -> ProtocolReport {
        match self.cache.get(&(gate, mu)) {
            Some(r) => {
                self.hits += 1;
                *r
            }
            None => {
                self.misses += 1;
                let r = simulate_protocol(&self.cfg, gate, mu, self.masking);
                self.cache.insert((gate, mu), r);
                r
            }
        }
    }

    /// End-to-end prover latency in milliseconds, memoized.
    pub fn proof_ms(&mut self, gate: Gate, mu: usize) -> f64 {
        self.report(gate, mu).total_ms
    }

    /// Pins the end-to-end latency of one `(gate, mu)` class to a
    /// measured value, overriding the analytical schedule's total.
    ///
    /// This is how a wall-clock measurement (e.g. `zkphire-serve`'s
    /// startup calibration of the software prover) is injected into the
    /// fleet simulator: pin each served class to its measured
    /// milliseconds and the DES predicts *this machine's* latency
    /// distribution instead of the accelerator's. Only `total_ms` is
    /// replaced; the per-step breakdown in [`CostModel::report`] keeps
    /// the analytical numbers and no longer sums to the pinned total.
    ///
    /// # Panics
    ///
    /// If `total_ms` is not finite and non-negative.
    pub fn pin_proof_ms(&mut self, gate: Gate, mu: usize, total_ms: f64) {
        assert!(
            total_ms.is_finite() && total_ms >= 0.0,
            "pinned latency must be finite and non-negative, got {total_ms}"
        );
        let mut r = self.report(gate, mu);
        r.total_ms = total_ms;
        self.cache.insert((gate, mu), r);
    }

    /// Fills the cache for every `(gate, mu)` pair up front so a
    /// simulation's hot loop never pays a model evaluation.
    pub fn prewarm<I: IntoIterator<Item = (Gate, usize)>>(&mut self, classes: I) {
        for (gate, mu) in classes {
            self.report(gate, mu);
        }
    }

    /// `(cache hits, cache misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoized_matches_direct() {
        let mut db = CostModel::exemplar();
        let direct = simulate_protocol(&ZkphireConfig::exemplar(), Gate::Jellyfish, 20, true);
        let cached_cold = db.proof_ms(Gate::Jellyfish, 20);
        let cached_warm = db.proof_ms(Gate::Jellyfish, 20);
        assert_eq!(cached_cold, direct.total_ms);
        assert_eq!(cached_warm, direct.total_ms);
        assert_eq!(db.stats(), (1, 1));
    }

    #[test]
    fn prewarm_fills_cache() {
        let mut db = CostModel::exemplar();
        db.prewarm([(Gate::Vanilla, 18), (Gate::Jellyfish, 18)]);
        assert_eq!(db.stats(), (0, 2));
        db.proof_ms(Gate::Vanilla, 18);
        db.proof_ms(Gate::Jellyfish, 18);
        assert_eq!(db.stats(), (2, 2));
    }

    #[test]
    fn pinned_latency_overrides_the_analytical_total() {
        let mut db = CostModel::exemplar();
        let analytical = db.proof_ms(Gate::Vanilla, 18);
        db.pin_proof_ms(Gate::Vanilla, 18, 123.25);
        assert_eq!(db.proof_ms(Gate::Vanilla, 18), 123.25);
        // Other classes keep the analytical schedule.
        assert_ne!(db.proof_ms(Gate::Jellyfish, 18), 123.25);
        assert_ne!(analytical, 123.25, "pin chose a non-model value");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn pinning_nan_is_refused() {
        CostModel::exemplar().pin_proof_ms(Gate::Vanilla, 10, f64::NAN);
    }

    #[test]
    fn distinct_classes_distinct_costs() {
        let mut db = CostModel::exemplar();
        let small = db.proof_ms(Gate::Jellyfish, 18);
        let large = db.proof_ms(Gate::Jellyfish, 22);
        assert!(large > small);
        assert!(small > 0.0);
    }
}
