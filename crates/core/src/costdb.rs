//! Memoized protocol-cost queries.
//!
//! The discrete-event fleet simulator (`zkphire-fleet`) asks for the
//! per-proof latency of a `(gate, 2^mu)` request class on every dispatch
//! decision. Re-running [`simulate_protocol`] each time would redo the
//! whole five-step analytical schedule — identical inputs, identical
//! outputs — millions of times per simulation. [`CostModel`] wraps one
//! design point and caches every report by `(gate, mu)` (the masking
//! flag is fixed per model), so the steady-state cost of a query is one
//! `HashMap` probe.

use std::collections::HashMap;

use crate::protocol::{simulate_protocol, Gate, ProtocolReport};
use crate::system::ZkphireConfig;

/// A memoized view of [`simulate_protocol`] for one design point.
#[derive(Clone, Debug)]
pub struct CostModel {
    cfg: ZkphireConfig,
    masking: bool,
    cache: HashMap<(Gate, usize), ProtocolReport>,
    hits: u64,
    misses: u64,
}

impl CostModel {
    /// Wraps `cfg`; `masking` selects Masked-ZeroCheck composition.
    pub fn new(cfg: ZkphireConfig, masking: bool) -> Self {
        Self {
            cfg,
            masking,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The exemplar Table V design with Masked ZeroCheck — the default
    /// chip the fleet simulator deploys.
    pub fn exemplar() -> Self {
        Self::new(ZkphireConfig::exemplar(), true)
    }

    /// The wrapped design point.
    pub fn config(&self) -> &ZkphireConfig {
        &self.cfg
    }

    /// Full per-step report for a `2^mu`-gate proof, memoized.
    pub fn report(&mut self, gate: Gate, mu: usize) -> ProtocolReport {
        match self.cache.get(&(gate, mu)) {
            Some(r) => {
                self.hits += 1;
                *r
            }
            None => {
                self.misses += 1;
                let r = simulate_protocol(&self.cfg, gate, mu, self.masking);
                self.cache.insert((gate, mu), r);
                r
            }
        }
    }

    /// End-to-end prover latency in milliseconds, memoized.
    pub fn proof_ms(&mut self, gate: Gate, mu: usize) -> f64 {
        self.report(gate, mu).total_ms
    }

    /// Fills the cache for every `(gate, mu)` pair up front so a
    /// simulation's hot loop never pays a model evaluation.
    pub fn prewarm<I: IntoIterator<Item = (Gate, usize)>>(&mut self, classes: I) {
        for (gate, mu) in classes {
            self.report(gate, mu);
        }
    }

    /// `(cache hits, cache misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoized_matches_direct() {
        let mut db = CostModel::exemplar();
        let direct = simulate_protocol(&ZkphireConfig::exemplar(), Gate::Jellyfish, 20, true);
        let cached_cold = db.proof_ms(Gate::Jellyfish, 20);
        let cached_warm = db.proof_ms(Gate::Jellyfish, 20);
        assert_eq!(cached_cold, direct.total_ms);
        assert_eq!(cached_warm, direct.total_ms);
        assert_eq!(db.stats(), (1, 1));
    }

    #[test]
    fn prewarm_fills_cache() {
        let mut db = CostModel::exemplar();
        db.prewarm([(Gate::Vanilla, 18), (Gate::Jellyfish, 18)]);
        assert_eq!(db.stats(), (0, 2));
        db.proof_ms(Gate::Vanilla, 18);
        db.proof_ms(Gate::Jellyfish, 18);
        assert_eq!(db.stats(), (2, 2));
    }

    #[test]
    fn distinct_classes_distinct_costs() {
        let mut db = CostModel::exemplar();
        let small = db.proof_ms(Gate::Jellyfish, 18);
        let large = db.proof_ms(Gate::Jellyfish, 22);
        assert!(large > small);
        assert!(small > 0.0);
    }
}
