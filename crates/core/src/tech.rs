//! Technology constants: the paper's HLS/synthesis-derived component
//! areas and powers (TSMC 22nm, §V) and the standard scaling factors to
//! 7nm (×3.6 area, ×3.3 power) used by zkSpeed, SZKP and zkPHIRE alike.
//!
//! Where the paper reports only module-level totals (Table V), the
//! per-component constants below are calibrated so the exemplar
//! 294 mm² / 202 W design point reproduces that table; each calibrated
//! constant is marked.

/// Clock frequency (§V): cycles at 1 GHz equal nanoseconds.
pub const CLOCK_GHZ: f64 = 1.0;

/// Bytes per MLE element (255-bit padded to 32 B).
pub const ELEMENT_BYTES: f64 = 32.0;

/// Bytes per affine elliptic-curve point (2 × 381-bit padded to 48 B).
pub const POINT_BYTES: f64 = 96.0;

/// Area scale factor 22nm → 7nm (paper §V, after [65], [66]).
pub const AREA_SCALE_22_TO_7: f64 = 3.6;

/// Power scale factor 22nm → 7nm.
pub const POWER_SCALE_22_TO_7: f64 = 3.3;

/// Which modular-multiplier flavour a design uses (§V: fixed primes save
/// ~50% area and ~2× computational density).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimeMode {
    /// Montgomery multipliers for arbitrary primes (zkSpeed-compatible).
    Arbitrary,
    /// Multipliers specialised to the BLS12-381 primes.
    Fixed,
}

impl PrimeMode {
    /// 255-bit modular multiplier area in mm² at 7nm.
    pub fn modmul_255_mm2(self) -> f64 {
        match self {
            // 0.478 / 0.264 mm² at 22nm (§V).
            PrimeMode::Arbitrary => 0.478 / AREA_SCALE_22_TO_7,
            PrimeMode::Fixed => 0.264 / AREA_SCALE_22_TO_7,
        }
    }

    /// 381-bit modular multiplier area in mm² at 7nm.
    pub fn modmul_381_mm2(self) -> f64 {
        match self {
            // 1.13 / 0.582 mm² at 22nm (§V).
            PrimeMode::Arbitrary => 1.13 / AREA_SCALE_22_TO_7,
            PrimeMode::Fixed => 0.582 / AREA_SCALE_22_TO_7,
        }
    }
}

/// Modular inverse unit area at 7nm (0.027 mm² at 22nm, §IV-B5).
pub const MODINV_MM2: f64 = 0.027 / AREA_SCALE_22_TO_7;

/// 381-bit multiplications (incl. squarings) per Jacobian mixed point
/// addition — the depth of a fully pipelined PADD core.
pub const PADD_MULS: f64 = 16.0;

/// Extension Engine area (adder/subtractor chains, registers, packing) at
/// 7nm. Calibrated: 16 SumCheck PEs with 7 EEs + 5 PLs ≈ 16.65 mm²
/// (Table V) once product-lane multipliers live in the Forest.
pub const EE_MM2: f64 = 0.08;

/// Product-lane control/datapath overhead (excluding shared multipliers).
/// Calibrated against Table V (see [`EE_MM2`]).
pub const PL_CTRL_MM2: f64 = 0.066;

/// Update multipliers per SumCheck PE (4 reads → 2 updated values/cycle).
pub const UPDATE_MULS_PER_PE: f64 = 2.0;

/// Per-tree overhead beyond its 8 multipliers (pipeline registers,
/// routing). Calibrated: 80 trees ≈ 48.18 mm² (Table V).
pub const TREE_OVERHEAD_MM2: f64 = 0.016;

/// Modular multipliers per Multifunction-Forest tree (Table V).
pub const MULS_PER_TREE: usize = 8;

/// Per-MSM-PE overhead beyond the PADD pipeline (bucket control, digit
/// decode). Calibrated: 32 MSM PEs ≈ 105.69 mm² (Table V).
pub const MSM_PE_OVERHEAD_MM2: f64 = 0.71;

/// SRAM density at 7nm in MB per mm². Calibrated from Table V's 27.55 mm²
/// against the §IV-B6 capacities (43 MB MSM + 6 MB SumCheck + 3 × 6 MB).
pub const SRAM_MB_PER_MM2: f64 = 2.43;

/// Interconnect area as a fraction of compute area (two 32×32 bit-sliced
/// crossbars + multi-channel shared bus). Calibrated: 26.42 mm² over
/// 181.15 mm² compute (Table V).
pub const INTERCONNECT_FRACTION: f64 = 0.146;

/// HBM2-class PHY: area (mm²) and peak bandwidth (GB/s) per PHY (§VI-B1,
/// after [2]).
pub const HBM2_PHY_MM2: f64 = 14.9;
/// Peak bandwidth served per HBM2-class PHY.
pub const HBM2_PHY_GBPS: f64 = 512.0;
/// HBM3 PHY area per PHY (Table V: 2 PHYs = 59.20 mm² at 2 TB/s).
pub const HBM3_PHY_MM2: f64 = 29.6;
/// Peak bandwidth served per HBM3 PHY.
pub const HBM3_PHY_GBPS: f64 = 1024.0;

/// SHA3 + padding unit area (OpenCores IP, §V). Calibrated within the
/// Table V "Other" bucket.
pub const SHA3_MM2: f64 = 0.6;

// --- Power (average W at 7nm, calibrated to Table V) ---

/// Average power per MSM PE (58.99 W / 32 PEs).
pub const MSM_PE_WATTS: f64 = 58.99 / 32.0;
/// Average power per Forest tree (40.69 W / 80 trees).
pub const TREE_WATTS: f64 = 40.69 / 80.0;
/// Average power per SumCheck PE (14.43 W / 16 PEs).
pub const SUMCHECK_PE_WATTS: f64 = 0.902;
/// "Other" modules' average power (PermQuotGen, MLE Combine, SHA3).
pub const OTHER_WATTS: f64 = 6.17;
/// SRAM average power per MB (3.56 W / ~67 MB).
pub const SRAM_WATTS_PER_MB: f64 = 0.053;
/// Interconnect power per mm² of interconnect (14.83 W / 26.42 mm²).
pub const INTERCONNECT_WATTS_PER_MM2: f64 = 0.561;
/// HBM power per TB/s of provisioned bandwidth (63.6 W / 2 TB/s).
pub const HBM_WATTS_PER_TBPS: f64 = 31.8;

/// Memory-PHY provisioning for a target bandwidth: `(phys, area_mm2)`.
///
/// DDR-class tiers (≤ 512 GB/s) use HBM2-class PHY area; ≥ 1 TB/s tiers
/// use HBM3 PHYs, matching the paper's Pareto methodology (§VI-B1).
pub fn phy_for_bandwidth(gbps: f64) -> (usize, f64) {
    if gbps <= HBM2_PHY_GBPS {
        (1, HBM2_PHY_MM2)
    } else if gbps <= 2.0 * HBM2_PHY_GBPS {
        (2, 2.0 * HBM2_PHY_MM2)
    } else {
        let phys = (gbps / HBM3_PHY_GBPS).ceil() as usize;
        (phys, phys as f64 * HBM3_PHY_MM2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modmul_areas_match_table9() {
        // Table IX: zkPHIRE modmul 0.073 / 0.162 mm² (fixed 255b / 381b).
        assert!((PrimeMode::Fixed.modmul_255_mm2() - 0.073).abs() < 0.002);
        assert!((PrimeMode::Fixed.modmul_381_mm2() - 0.162).abs() < 0.002);
        // zkSpeed's arbitrary-prime multipliers: 0.133 / 0.314.
        assert!((PrimeMode::Arbitrary.modmul_255_mm2() - 0.133).abs() < 0.002);
        assert!((PrimeMode::Arbitrary.modmul_381_mm2() - 0.314).abs() < 0.002);
    }

    #[test]
    fn hbm3_phy_matches_table5() {
        let (phys, area) = phy_for_bandwidth(2048.0);
        assert_eq!(phys, 2);
        assert!((area - 59.2).abs() < 0.01);
    }

    #[test]
    fn ddr_tier_uses_small_phy() {
        let (phys, area) = phy_for_bandwidth(256.0);
        assert_eq!(phys, 1);
        assert!((area - HBM2_PHY_MM2).abs() < 1e-9);
    }
}
