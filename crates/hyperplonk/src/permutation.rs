//! The wire-identity (PermCheck) polynomial machinery (paper §IV-A,
//! §IV-B5).
//!
//! For witness columns `w_1..w_W` and wiring permutation σ, the prover
//! builds per-column Numerator and Denominator MLEs
//!
//! ```text
//! N_i(x) = w_i(x) + β id_i(x) + γ        D_i(x) = w_i(x) + β σ_i(x) + γ
//! ```
//!
//! the Fraction MLE `ϕ = Π N_i / Π D_i` (elementwise, via Montgomery batch
//! inversion — the job of the hardware Permutation Quotient Generator),
//! and the grand-product tree `π` with child tables `p1, p2` (built by the
//! Multifunction Forest). The wiring is consistent iff the tree root —
//! the grand product of ϕ — equals one, which the verifier checks by
//! opening `π` at [`root_index`].

use zkphire_field::{batch_inverse, Fr};
use zkphire_poly::Mle;

/// All polynomials the Wire Identity step materializes.
#[derive(Clone, Debug)]
pub struct PermutationData {
    /// Per-column numerators `N_i`.
    pub numerators: Vec<Mle>,
    /// Per-column denominators `D_i`.
    pub denominators: Vec<Mle>,
    /// Elementwise fraction `ϕ = Π N_i / Π D_i`.
    pub phi: Mle,
    /// Grand-product tree nodes, layer-concatenated, padded with a final 1.
    pub pi: Mle,
    /// Left child of each `π` node.
    pub p1: Mle,
    /// Right child of each `π` node.
    pub p2: Mle,
}

/// Identity value of a global cell: `column * n + row` as a field element.
pub fn id_value(column: usize, n: usize, row: usize) -> Fr {
    Fr::from_u64((column * n + row) as u64)
}

/// Closed-form evaluation of the column-`k` identity MLE at a field point:
/// `id_k(r) = k·n + Σ_b 2^b r_b` (the MLE of the linear row-index
/// function), so the verifier never needs an identity commitment.
pub fn id_eval(column: usize, n: usize, point: &[Fr]) -> Fr {
    let mut acc = Fr::from_u64((column * n) as u64);
    let mut pow = Fr::ONE;
    for &r in point {
        acc += pow * r;
        pow = pow.double();
    }
    acc
}

/// Builds the per-column σ MLEs (entry `row` of column `k` holds the field
/// encoding of `σ(k·n + row)`). These are preprocessed and committed at
/// setup time.
pub fn sigma_mles(sigma: &[usize], num_columns: usize, num_vars: usize) -> Vec<Mle> {
    let n = 1usize << num_vars;
    assert_eq!(sigma.len(), num_columns * n, "sigma arity");
    (0..num_columns)
        .map(|k| Mle::from_fn(num_vars, |row| Fr::from_u64(sigma[k * n + row] as u64)))
        .collect()
}

/// Index of the grand-product root inside the `π` table.
pub fn root_index(n: usize) -> usize {
    n - 2
}

/// The boolean point (LSB-first) selecting index `i` of a `2^µ` table.
pub fn index_point(i: usize, num_vars: usize) -> Vec<Fr> {
    (0..num_vars)
        .map(|b| if (i >> b) & 1 == 1 { Fr::ONE } else { Fr::ZERO })
        .collect()
}

/// Builds the full wire-identity polynomial set.
///
/// # Panics
///
/// Panics if the witness columns disagree in arity with σ, or if any
/// denominator is zero (probability ~`n/|F|` over random β, γ).
pub fn build_permutation_data(
    witness_columns: &[Mle],
    sigma: &[usize],
    beta: Fr,
    gamma: Fr,
) -> PermutationData {
    let w_cols = witness_columns.len();
    let num_vars = witness_columns[0].num_vars();
    let n = 1usize << num_vars;
    assert_eq!(sigma.len(), w_cols * n, "sigma covers all cells");

    let mut numerators = Vec::with_capacity(w_cols);
    let mut denominators = Vec::with_capacity(w_cols);
    for (k, w) in witness_columns.iter().enumerate() {
        let num = Mle::from_fn(num_vars, |row| {
            w.evals()[row] + beta * id_value(k, n, row) + gamma
        });
        let den = Mle::from_fn(num_vars, |row| {
            w.evals()[row] + beta * Fr::from_u64(sigma[k * n + row] as u64) + gamma
        });
        numerators.push(num);
        denominators.push(den);
    }

    // ϕ = Π N / Π D elementwise; denominators inverted in one batch
    // (the Permutation Quotient Generator's ModInv pipeline).
    let mut den_products: Vec<Fr> = (0..n)
        .map(|row| denominators.iter().map(|d| d.evals()[row]).product::<Fr>())
        .collect();
    batch_inverse(&mut den_products);
    let phi = Mle::from_fn(num_vars, |row| {
        let num: Fr = numerators.iter().map(|m| m.evals()[row]).product();
        assert!(
            !den_products[row].is_zero(),
            "zero denominator at row {row}; re-sample beta/gamma"
        );
        num * den_products[row]
    });

    // Grand-product tree: layer 0 = ϕ leaves; layer k halves layer k-1.
    // π concatenates layers 1..µ then pads one final 1-entry; p1/p2 hold
    // each node's children so that π(x) = p1(x) · p2(x) pointwise.
    let mut pi_evals = Vec::with_capacity(n);
    let mut p1_evals = Vec::with_capacity(n);
    let mut p2_evals = Vec::with_capacity(n);
    let mut layer: Vec<Fr> = phi.evals().to_vec();
    while layer.len() > 1 {
        let next: Vec<Fr> = (0..layer.len() / 2)
            .map(|i| layer[2 * i] * layer[2 * i + 1])
            .collect();
        for i in 0..next.len() {
            pi_evals.push(next[i]);
            p1_evals.push(layer[2 * i]);
            p2_evals.push(layer[2 * i + 1]);
        }
        layer = next;
    }
    // Pad to a full power-of-two table.
    while pi_evals.len() < n {
        pi_evals.push(Fr::ONE);
        p1_evals.push(Fr::ONE);
        p2_evals.push(Fr::ONE);
    }

    PermutationData {
        numerators,
        denominators,
        phi,
        pi: Mle::new(pi_evals),
        p1: Mle::new(p1_evals),
        p2: Mle::new(p2_evals),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, GateSystem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Circuit, crate::circuit::Witness, PermutationData) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (circuit, witness) = Circuit::random(GateSystem::Vanilla, 5, 0.6, &mut rng);
        let beta = Fr::random(&mut rng);
        let gamma = Fr::random(&mut rng);
        let data = build_permutation_data(&witness.columns, &circuit.sigma, beta, gamma);
        (circuit, witness, data)
    }

    #[test]
    fn phi_is_elementwise_fraction() {
        let (_, _, data) = setup(1);
        for row in 0..data.phi.len() {
            let num: Fr = data.numerators.iter().map(|m| m.evals()[row]).product();
            let den: Fr = data.denominators.iter().map(|m| m.evals()[row]).product();
            assert_eq!(data.phi.evals()[row] * den, num);
        }
    }

    #[test]
    fn tree_relation_holds_pointwise() {
        let (_, _, data) = setup(2);
        for i in 0..data.pi.len() {
            assert_eq!(
                data.pi.evals()[i],
                data.p1.evals()[i] * data.p2.evals()[i],
                "node {i}"
            );
        }
    }

    #[test]
    fn root_is_one_for_consistent_wiring() {
        let (circuit, _, data) = setup(3);
        let n = circuit.num_rows();
        assert_eq!(data.pi.evals()[root_index(n)], Fr::ONE);
    }

    #[test]
    fn root_detects_copy_violation() {
        let mut rng = StdRng::seed_from_u64(4);
        let (circuit, mut witness) = Circuit::random(GateSystem::Vanilla, 5, 0.9, &mut rng);
        // Find a non-trivial copy pair and break it.
        let n = circuit.num_rows();
        let cell = circuit
            .sigma
            .iter()
            .enumerate()
            .find(|(i, &s)| *i != s)
            .map(|(i, _)| i)
            .expect("a copy constraint exists");
        let (col, row) = (cell / n, cell % n);
        let bad = witness.columns[col].evals()[row] + Fr::ONE;
        witness.columns[col].evals_mut()[row] = bad;
        let beta = Fr::random(&mut rng);
        let gamma = Fr::random(&mut rng);
        let data = build_permutation_data(&witness.columns, &circuit.sigma, beta, gamma);
        assert_ne!(data.pi.evals()[root_index(n)], Fr::ONE);
    }

    #[test]
    fn id_eval_closed_form_matches_table() {
        let mut rng = StdRng::seed_from_u64(5);
        let num_vars = 4;
        let n = 1 << num_vars;
        for col in 0..3 {
            let table = Mle::from_fn(num_vars, |row| id_value(col, n, row));
            let point: Vec<Fr> = (0..num_vars).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(table.evaluate(&point), id_eval(col, n, &point));
        }
    }

    #[test]
    fn index_point_selects_entry() {
        let mut rng = StdRng::seed_from_u64(6);
        let f = Mle::from_fn(4, |_| Fr::random(&mut rng));
        for i in [0usize, 5, 14, 15] {
            assert_eq!(f.evaluate(&index_point(i, 4)), f.evals()[i]);
        }
    }

    #[test]
    fn permcheck_gate_vanishes_on_honest_data() {
        // The row-21 composite must vanish everywhere given honest π/p/ϕ/N/D.
        let (circuit, _, data) = setup(7);
        let system = circuit.system;
        let gate = system.perm_gate();
        let alpha = Fr::from_u64(12345);
        let poly = gate.poly.specialize(&[alpha]);
        let num_vars = circuit.num_vars;
        let mut mles = vec![
            data.pi.clone(),
            data.p1.clone(),
            data.p2.clone(),
            data.phi.clone(),
        ];
        mles.extend(data.denominators.iter().cloned());
        mles.extend(data.numerators.iter().cloned());
        mles.push(Mle::constant(Fr::ONE, num_vars)); // f_r := 1
                                                     // π - p1 p2 == 0 and ϕ D - N == 0 pointwise => composite zero.
        for i in 0..(1 << num_vars) {
            assert!(poly.evaluate_at_index(&mles, i).is_zero(), "row {i}");
        }
    }
}
