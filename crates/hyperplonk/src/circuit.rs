//! Plonk-style constraint systems: the Vanilla gate set and HyperPlonk's
//! high-degree Jellyfish gate set (paper §II-C1, §II-C2).
//!
//! A circuit is `2^µ` gate rows over selector columns and witness columns,
//! plus a copy-constraint permutation σ over all witness cells. The
//! synthetic generators follow the paper's workload statistics
//! (DESIGN.md S3): most rows idle (≈90%-sparse witnesses), active rows
//! drawn from the gate repertoire (including the Rescue-style `w^5`
//! S-box and the 4-ary ECC product that motivate Jellyfish gates).

use rand::Rng;
use zkphire_field::Fr;
use zkphire_poly::{table1_gate, GateInfo, Mle, MleId};

/// Which arithmetization a circuit uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateSystem {
    /// Plonk's original add/mul gate (Table I row 20, degree 3 + `f_r`).
    Vanilla,
    /// HyperPlonk's Jellyfish gate with `w^5` and ECC terms (row 22).
    Jellyfish,
}

impl GateSystem {
    /// Number of selector columns (including the constant column `q_C`).
    pub fn num_selectors(&self) -> usize {
        match self {
            Self::Vanilla => 5,
            Self::Jellyfish => 13,
        }
    }

    /// Number of witness columns.
    pub fn num_witness_columns(&self) -> usize {
        match self {
            Self::Vanilla => 3,
            Self::Jellyfish => 5,
        }
    }

    /// The gate-identity constraint (Table I row 20 or 22). Slot layout:
    /// selectors, then witnesses, then the trailing `f_r` slot.
    pub fn gate(&self) -> GateInfo {
        match self {
            Self::Vanilla => table1_gate(20),
            Self::Jellyfish => table1_gate(22),
        }
    }

    /// The PermCheck constraint (Table I row 21 or 23). Slot layout:
    /// `π, p1, p2, ϕ, D_1.., N_1.., f_r`, with scalar `α`.
    pub fn perm_gate(&self) -> GateInfo {
        match self {
            Self::Vanilla => table1_gate(21),
            Self::Jellyfish => table1_gate(23),
        }
    }

    /// Slot of `f_r` in [`gate`](Self::gate)'s composite.
    pub fn gate_eq_slot(&self) -> MleId {
        MleId(self.num_selectors() + self.num_witness_columns())
    }

    /// Slot of `f_r` in [`perm_gate`](Self::perm_gate)'s composite.
    pub fn perm_eq_slot(&self) -> MleId {
        // π, p1, p2, ϕ + 2W numerator/denominator columns.
        MleId(4 + 2 * self.num_witness_columns())
    }

    /// Short protocol tag for transcript domain separation.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Vanilla => "vanilla",
            Self::Jellyfish => "jellyfish",
        }
    }
}

/// A constraint system: selectors plus the wiring permutation.
#[derive(Clone, Debug)]
pub struct Circuit {
    /// Gate repertoire.
    pub system: GateSystem,
    /// log2 of the row count.
    pub num_vars: usize,
    /// Selector MLEs in the slot order of [`GateSystem::gate`].
    pub selectors: Vec<Mle>,
    /// Wiring permutation over global cells (`column * n + row`).
    pub sigma: Vec<usize>,
}

/// A witness assignment: one MLE per witness column.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Witness columns in gate slot order.
    pub columns: Vec<Mle>,
}

impl Circuit {
    /// Number of gate rows.
    pub fn num_rows(&self) -> usize {
        1 << self.num_vars
    }

    /// Total witness cells (`columns * rows`).
    pub fn num_cells(&self) -> usize {
        self.system.num_witness_columns() * self.num_rows()
    }

    /// Checks every gate row and every copy constraint.
    pub fn is_satisfied(&self, witness: &Witness) -> bool {
        let n = self.num_rows();
        let w_cols = self.system.num_witness_columns();
        if witness.columns.len() != w_cols {
            return false;
        }
        // Gate identities (evaluate the raw gate, f_r slot bound to 1).
        let gate = self.system.gate();
        let mut values = vec![Fr::ZERO; gate.poly.num_mles()];
        for row in 0..n {
            for (s, sel) in self.selectors.iter().enumerate() {
                values[s] = sel.evals()[row];
            }
            for (w, col) in witness.columns.iter().enumerate() {
                values[self.system.num_selectors() + w] = col.evals()[row];
            }
            values[self.system.gate_eq_slot().0] = Fr::ONE;
            if !gate.poly.evaluate_with_mle_values(&values).is_zero() {
                return false;
            }
        }
        // Copy constraints: w[cell] == w[σ(cell)].
        let cell_value = |cell: usize| witness.columns[cell / n].evals()[cell % n];
        (0..self.num_cells()).all(|cell| cell_value(cell) == cell_value(self.sigma[cell]))
    }

    /// Generates a random *satisfied* circuit + witness with roughly
    /// `active_fraction` non-idle rows and copy constraints wiring outputs
    /// of earlier gates into inputs of later ones.
    pub fn random<R: Rng + ?Sized>(
        system: GateSystem,
        num_vars: usize,
        active_fraction: f64,
        rng: &mut R,
    ) -> (Self, Witness) {
        let n = 1usize << num_vars;
        let n_sel = system.num_selectors();
        let w_cols = system.num_witness_columns();
        let mut selectors = vec![vec![Fr::ZERO; n]; n_sel];
        let mut witness = vec![vec![Fr::ZERO; n]; w_cols];
        let mut sigma: Vec<usize> = (0..w_cols * n).collect();

        // Outputs of earlier rows that may be copied into later inputs:
        // (cell index, value). Each used at most once (2-cycles in sigma).
        let mut available_outputs: Vec<(usize, Fr)> = Vec::new();
        let out_col = w_cols - 1;

        for row in 0..n {
            if !rng.gen_bool(active_fraction) {
                continue; // idle row: all-zero selectors and witnesses
            }
            // Inputs: fresh random, sparse-random, or copied from an output.
            // (Indexing by column is intentional: `cell` needs `col`.)
            let num_inputs = w_cols - 1;
            #[allow(clippy::needless_range_loop)]
            for col in 0..num_inputs {
                let cell = col * n + row;
                if !available_outputs.is_empty() && rng.gen_bool(0.3) {
                    let (src_cell, value) =
                        available_outputs.swap_remove(rng.gen_range(0..available_outputs.len()));
                    witness[col][row] = value;
                    sigma.swap(cell, src_cell);
                } else if rng.gen_bool(0.5) {
                    witness[col][row] = Fr::random(rng);
                } // else stays zero (sparsity)
            }

            let w_row: Vec<Fr> = (0..w_cols).map(|c| witness[c][row]).collect();
            let out = match system {
                GateSystem::Vanilla => {
                    // Selector layout: q_L q_R q_M q_O q_C.
                    match rng.gen_range(0..3) {
                        0 => {
                            selectors[0][row] = Fr::ONE;
                            selectors[1][row] = Fr::ONE;
                            selectors[3][row] = Fr::ONE;
                            w_row[0] + w_row[1]
                        }
                        1 => {
                            selectors[2][row] = Fr::ONE;
                            selectors[3][row] = Fr::ONE;
                            w_row[0] * w_row[1]
                        }
                        _ => {
                            let c = Fr::random(rng);
                            selectors[4][row] = c;
                            selectors[3][row] = Fr::ONE;
                            c
                        }
                    }
                }
                GateSystem::Jellyfish => {
                    // Selector layout: q1 q2 q3 q4 qM1 qM2 qH1..qH4 qO qecc qC.
                    selectors[10][row] = Fr::ONE; // q_O
                    match rng.gen_range(0..5) {
                        0 => {
                            selectors[0][row] = Fr::ONE;
                            selectors[1][row] = Fr::ONE;
                            w_row[0] + w_row[1]
                        }
                        1 => {
                            selectors[4][row] = Fr::ONE;
                            w_row[0] * w_row[1]
                        }
                        2 => {
                            // Rescue S-box: w1^5.
                            selectors[6][row] = Fr::ONE;
                            let w1 = w_row[0];
                            w1 * w1 * w1 * w1 * w1
                        }
                        3 => {
                            selectors[11][row] = Fr::ONE;
                            w_row[0] * w_row[1] * w_row[2] * w_row[3]
                        }
                        _ => {
                            let c = Fr::random(rng);
                            selectors[12][row] = c;
                            c
                        }
                    }
                }
            };
            witness[out_col][row] = out;
            available_outputs.push((out_col * n + row, out));
        }

        let circuit = Self {
            system,
            num_vars,
            selectors: selectors.into_iter().map(Mle::new).collect(),
            sigma,
        };
        let witness = Witness {
            columns: witness.into_iter().map(Mle::new).collect(),
        };
        debug_assert!(circuit.is_satisfied(&witness));
        (circuit, witness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_vanilla_is_satisfied() {
        let mut rng = StdRng::seed_from_u64(1);
        let (circuit, witness) = Circuit::random(GateSystem::Vanilla, 5, 0.4, &mut rng);
        assert!(circuit.is_satisfied(&witness));
    }

    #[test]
    fn random_jellyfish_is_satisfied() {
        let mut rng = StdRng::seed_from_u64(2);
        let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, 5, 0.4, &mut rng);
        assert!(circuit.is_satisfied(&witness));
    }

    #[test]
    fn tampered_witness_fails() {
        let mut rng = StdRng::seed_from_u64(3);
        let (circuit, mut witness) = Circuit::random(GateSystem::Vanilla, 5, 0.9, &mut rng);
        // Corrupt an output cell.
        let bad = witness.columns[2].evals()[7] + Fr::ONE;
        witness.columns[2].evals_mut()[7] = bad;
        assert!(!circuit.is_satisfied(&witness));
    }

    #[test]
    fn sigma_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let (circuit, _) = Circuit::random(GateSystem::Jellyfish, 6, 0.5, &mut rng);
        let mut seen = vec![false; circuit.num_cells()];
        for &s in &circuit.sigma {
            assert!(!seen[s]);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn copy_constraints_are_nontrivial() {
        let mut rng = StdRng::seed_from_u64(5);
        let (circuit, _) = Circuit::random(GateSystem::Vanilla, 8, 0.8, &mut rng);
        let nontrivial = circuit
            .sigma
            .iter()
            .enumerate()
            .filter(|(i, &s)| *i != s)
            .count();
        assert!(nontrivial > 0, "expected some copy constraints");
    }

    #[test]
    fn witness_is_sparse_at_low_activity() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, witness) = Circuit::random(GateSystem::Jellyfish, 9, 0.1, &mut rng);
        for col in &witness.columns {
            assert!(
                col.zero_fraction() > 0.7,
                "zero fraction {}",
                col.zero_fraction()
            );
        }
    }

    #[test]
    fn slot_layouts_match_gate_library() {
        for system in [GateSystem::Vanilla, GateSystem::Jellyfish] {
            let gate = system.gate();
            assert_eq!(
                gate.poly.num_mles(),
                system.num_selectors() + system.num_witness_columns() + 1
            );
            assert_eq!(system.gate_eq_slot().0, gate.poly.num_mles() - 1);
            let perm = system.perm_gate();
            assert_eq!(system.perm_eq_slot().0, perm.poly.num_mles() - 1);
        }
    }
}
