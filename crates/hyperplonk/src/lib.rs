//! A functional HyperPlonk zkSNARK — the protocol zkPHIRE accelerates.
//!
//! Implements the full five-step prover of paper §IV-A (Witness
//! Commitments, Gate Identity, Wire Identity, Batch Evaluations,
//! Polynomial Opening) and the matching verifier, over both the Vanilla
//! Plonk gate and HyperPlonk's high-degree Jellyfish gate. The
//! permutation argument follows the paper's N/D/ϕ/π construction
//! (§IV-B5); verification substitutes a trapdoor check for the pairing
//! (DESIGN.md S1) and commits the grand-product child tables `p1, p2`
//! directly rather than deriving them from a single rotation-openable
//! commitment (DESIGN.md S5) — the prover-side computation pattern, which
//! is what the accelerator executes, is identical.
//!
//! # Examples
//!
//! ```no_run
//! use rand::SeedableRng;
//! use zkphire_hyperplonk::{prove, setup, verify, Circuit, GateSystem};
//! use zkphire_transcript::Transcript;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, 6, 0.5, &mut rng);
//! let (pk, vk) = setup(circuit, &mut rng);
//! let proof = prove(&pk, &witness, &mut Transcript::new(b"example"));
//! verify(&vk, &proof, &mut Transcript::new(b"example")).expect("valid proof");
//! println!("proof size: {} bytes", proof.size_bytes());
//! ```

mod circuit;
mod codec;
mod keys;
mod permutation;
mod proof;
mod prover;
mod verifier;

pub use circuit::{Circuit, GateSystem, Witness};
pub use codec::DecodeError;
pub use keys::{setup, ProvingKey, VerifyingKey};
pub use permutation::{
    build_permutation_data, id_eval, index_point, root_index, sigma_mles, PermutationData,
};
pub use proof::HyperPlonkProof;
pub use prover::{prove, prove_with_config, ProverConfig};
pub use verifier::{verify, HyperPlonkError};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_field::Fr;
    use zkphire_transcript::Transcript;

    fn roundtrip(system: GateSystem, mu: usize, seed: u64) -> (VerifyingKey, HyperPlonkProof) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (circuit, witness) = Circuit::random(system, mu, 0.5, &mut rng);
        let (pk, vk) = setup(circuit, &mut rng);
        let proof = prove(&pk, &witness, &mut Transcript::new(b"test"));
        (vk, proof)
    }

    #[test]
    fn vanilla_end_to_end() {
        let (vk, proof) = roundtrip(GateSystem::Vanilla, 5, 1);
        verify(&vk, &proof, &mut Transcript::new(b"test")).unwrap();
    }

    #[test]
    fn jellyfish_end_to_end() {
        let (vk, proof) = roundtrip(GateSystem::Jellyfish, 5, 2);
        verify(&vk, &proof, &mut Transcript::new(b"test")).unwrap();
    }

    #[test]
    fn prover_config_does_not_change_proof() {
        let mut rng = StdRng::seed_from_u64(11);
        let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, 6, 0.5, &mut rng);
        let (pk, vk) = setup(circuit, &mut rng);
        let sequential = prove_with_config(
            &pk,
            &witness,
            &mut Transcript::new(b"cfg"),
            ProverConfig { threads: 1 },
        );
        for threads in [2usize, 4] {
            let parallel = prove_with_config(
                &pk,
                &witness,
                &mut Transcript::new(b"cfg"),
                ProverConfig { threads },
            );
            assert_eq!(
                parallel.to_bytes(),
                sequential.to_bytes(),
                "threads={threads}"
            );
        }
        verify(&vk, &sequential, &mut Transcript::new(b"cfg")).unwrap();
    }

    #[test]
    fn unsatisfied_witness_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let (circuit, mut witness) = Circuit::random(GateSystem::Vanilla, 5, 0.8, &mut rng);
        let bad = witness.columns[2].evals()[9] + Fr::ONE;
        witness.columns[2].evals_mut()[9] = bad;
        let (pk, vk) = setup(circuit, &mut rng);
        let proof = prove(&pk, &witness, &mut Transcript::new(b"test"));
        assert!(verify(&vk, &proof, &mut Transcript::new(b"test")).is_err());
    }

    #[test]
    fn tampered_proof_rejected() {
        let (vk, mut proof) = roundtrip(GateSystem::Vanilla, 4, 4);
        proof.opening_value += Fr::ONE;
        assert!(verify(&vk, &proof, &mut Transcript::new(b"test")).is_err());
    }

    #[test]
    fn tampered_witness_commitment_rejected() {
        let (vk, mut proof) = roundtrip(GateSystem::Vanilla, 4, 5);
        proof.witness_commitments[0] = proof.perm_commitments[0];
        assert!(verify(&vk, &proof, &mut Transcript::new(b"test")).is_err());
    }

    #[test]
    fn wrong_domain_rejected() {
        let (vk, proof) = roundtrip(GateSystem::Vanilla, 4, 6);
        assert!(verify(&vk, &proof, &mut Transcript::new(b"other")).is_err());
    }

    #[test]
    fn proof_size_is_succinct() {
        // At 2^5 rows the proof must be a few KB, not tables of size n.
        let (_, proof) = roundtrip(GateSystem::Jellyfish, 5, 7);
        let size = proof.size_bytes();
        assert!(size < 16 * 1024, "size {size}");
        assert!(size > 1024, "size {size}");
    }
}
