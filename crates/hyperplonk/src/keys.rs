//! Setup: preprocessing the circuit into proving/verifying keys.
//!
//! HyperPlonk has a *universal* setup (paper Table IX): the SRS depends
//! only on the maximum circuit size. Per-circuit preprocessing commits the
//! selector and σ polynomials so the verifier never sees them in the
//! clear.

use rand::Rng;
use zkphire_pcs::{Commitment, MultilinearKzg, TrapdoorVerifier};
use zkphire_poly::Mle;

use crate::circuit::{Circuit, GateSystem};
use crate::permutation::sigma_mles;

/// Everything the prover needs: the circuit, the SRS, and preprocessed
/// wiring polynomials.
#[derive(Clone, Debug)]
pub struct ProvingKey {
    /// The constraint system.
    pub circuit: Circuit,
    /// Prover-side SRS.
    pub pcs: MultilinearKzg,
    /// Per-column σ MLEs (preprocessed).
    pub sigma_mles: Vec<Mle>,
    /// Commitments to the selector columns.
    pub selector_commitments: Vec<Commitment>,
    /// Commitments to the σ columns.
    pub sigma_commitments: Vec<Commitment>,
}

/// Everything the verifier needs (no private material beyond the
/// DESIGN.md-S1 trapdoor, which replaces the pairing check).
#[derive(Clone, Debug)]
pub struct VerifyingKey {
    /// Gate repertoire.
    pub system: GateSystem,
    /// log2 of the row count.
    pub num_vars: usize,
    /// Commitments to the selector columns.
    pub selector_commitments: Vec<Commitment>,
    /// Commitments to the σ columns.
    pub sigma_commitments: Vec<Commitment>,
    /// Opening verifier (substitution S1).
    pub pcs_verifier: TrapdoorVerifier,
}

/// Runs setup + preprocessing for a circuit.
pub fn setup<R: Rng + ?Sized>(circuit: Circuit, rng: &mut R) -> (ProvingKey, VerifyingKey) {
    let (pcs, pcs_verifier) = MultilinearKzg::setup(circuit.num_vars, rng);
    let sigmas = sigma_mles(
        &circuit.sigma,
        circuit.system.num_witness_columns(),
        circuit.num_vars,
    );
    let selector_commitments: Vec<Commitment> =
        circuit.selectors.iter().map(|s| pcs.commit(s)).collect();
    let sigma_commitments: Vec<Commitment> = sigmas.iter().map(|s| pcs.commit(s)).collect();

    let vk = VerifyingKey {
        system: circuit.system,
        num_vars: circuit.num_vars,
        selector_commitments: selector_commitments.clone(),
        sigma_commitments: sigma_commitments.clone(),
        pcs_verifier,
    };
    let pk = ProvingKey {
        circuit,
        pcs,
        sigma_mles: sigmas,
        selector_commitments,
        sigma_commitments,
    };
    (pk, vk)
}
