//! The HyperPlonk prover: the five protocol steps of paper §IV-A.
//!
//! 1. **Witness Commitments** — one (sparse) MSM per witness column;
//! 2. **Gate Identity** — ZeroCheck of the gate composite × `f_r`;
//! 3. **Wire Identity** — N/D/ϕ/π construction (the Permutation Quotient
//!    Generator + Multifunction Forest dataflow), commitments, and the
//!    PermCheck SumCheck;
//! 4. **Batch Evaluations** — evaluation claims for every committed
//!    polynomial at every challenge point;
//! 5. **Polynomial Opening** — the OpenCheck SumCheck that merges all
//!    claims into one point, an MLE Combine, and a single PCS opening.

use zkphire_field::Fr;
use zkphire_pcs::Commitment;
use zkphire_poly::{CompositePoly, Mle, MleId, Term};
use zkphire_sumcheck::{prove_with_threads as sumcheck_prove, prove_zero_check_with_threads};
use zkphire_telemetry as tele;
use zkphire_transcript::Transcript;

use crate::circuit::{GateSystem, Witness};
use crate::keys::ProvingKey;
use crate::permutation::{build_permutation_data, index_point, root_index};
use crate::proof::{claim_layout, num_distinct_polys, HyperPlonkProof, NUM_POINTS};

/// Builds the OpenCheck composite: claim `j` contributes
/// `η_j · poly_j(x) · eq(point_j, x)` (the Table I row-24 structure).
pub(crate) fn opencheck_composite(system: GateSystem, etas: &[Fr]) -> CompositePoly {
    let k_p = num_distinct_polys(system);
    let terms = claim_layout(system)
        .iter()
        .zip(etas)
        .map(|(&(poly, point), &eta)| Term {
            coeff: eta,
            scalars: vec![],
            factors: vec![MleId(poly), MleId(k_p + point)],
        })
        .collect();
    CompositePoly::new(terms)
}

/// Binds the public statement (system, size, preprocessed commitments)
/// into the transcript. Shared by prover and verifier.
pub(crate) fn bind_statement(
    transcript: &mut Transcript,
    system: GateSystem,
    num_vars: usize,
    selector_commitments: &[Commitment],
    sigma_commitments: &[Commitment],
) {
    transcript.append_bytes(b"hyperplonk/system", system.tag().as_bytes());
    transcript.append_u64(b"hyperplonk/num_vars", num_vars as u64);
    for c in selector_commitments {
        transcript.append_bytes(b"hyperplonk/vk/selector", &c.to_bytes());
    }
    for c in sigma_commitments {
        transcript.append_bytes(b"hyperplonk/vk/sigma", &c.to_bytes());
    }
}

/// Knobs for the prover's execution strategy (not its output: proofs are
/// bit-identical for every configuration).
#[derive(Clone, Copy, Debug)]
pub struct ProverConfig {
    /// Worker threads for the SumCheck rounds, MLE folds, and the MLE
    /// Combine. `1` forces the sequential reference path.
    pub threads: usize,
}

impl Default for ProverConfig {
    /// One worker per available core.
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Generates a HyperPlonk proof for `witness` under `pk` with the default
/// (all-cores) [`ProverConfig`].
///
/// # Panics
///
/// Panics if the witness shape does not match the circuit. (An unsatisfied
/// witness does not panic — it yields a proof the verifier rejects.)
pub fn prove(pk: &ProvingKey, witness: &Witness, transcript: &mut Transcript) -> HyperPlonkProof {
    prove_with_config(pk, witness, transcript, ProverConfig::default())
}

/// [`prove`] with an explicit [`ProverConfig`]; the proof bytes do not
/// depend on the configuration.
pub fn prove_with_config(
    pk: &ProvingKey,
    witness: &Witness,
    transcript: &mut Transcript,
    config: ProverConfig,
) -> HyperPlonkProof {
    // Phase spans cover the five protocol steps contiguously; `repro obs`
    // asserts their sum reconciles with the enclosing `prove` span.
    let _prove_span = tele::span("prove");
    let threads = config.threads.max(1);
    let system = pk.circuit.system;
    let mu = pk.circuit.num_vars;
    let n = 1usize << mu;
    let s = system.num_selectors();
    let w_cols = system.num_witness_columns();
    assert_eq!(witness.columns.len(), w_cols, "witness column count");

    bind_statement(
        transcript,
        system,
        mu,
        &pk.selector_commitments,
        &pk.sigma_commitments,
    );

    // Step 1 — Witness Commitments.
    let witness_commitments: Vec<Commitment> = {
        let _s = tele::span("prove/witness_commit");
        witness
            .columns
            .iter()
            .map(|c| {
                let _w = tele::span("prove/witness_commit/column");
                pk.pcs.commit(c)
            })
            .collect()
    };
    for c in &witness_commitments {
        transcript.append_bytes(b"hyperplonk/witness", &c.to_bytes());
    }

    // Step 2 — Gate Identity ZeroCheck.
    let gate_span = tele::span("prove/gate_zerocheck");
    let gate = system.gate();
    let mut gate_mles: Vec<Mle> = pk.circuit.selectors.clone();
    gate_mles.extend(witness.columns.iter().cloned());
    gate_mles.push(Mle::zero(mu)); // f_r placeholder, filled by ZeroCheck
    let (gate_out, _) = prove_zero_check_with_threads(
        &gate.poly,
        system.gate_eq_slot(),
        gate_mles,
        transcript,
        threads,
    );
    let x_zc = gate_out.challenges.clone();
    drop(gate_span);

    // Step 3 — Wire Identity.
    let perm_span = tele::span("prove/permcheck");
    let beta = transcript.challenge_fr(b"hyperplonk/beta");
    let gamma = transcript.challenge_fr(b"hyperplonk/gamma");
    let perm = build_permutation_data(&witness.columns, &pk.circuit.sigma, beta, gamma);
    let perm_commitments = [
        pk.pcs.commit(&perm.phi),
        pk.pcs.commit(&perm.pi),
        pk.pcs.commit(&perm.p1),
        pk.pcs.commit(&perm.p2),
    ];
    for c in &perm_commitments {
        transcript.append_bytes(b"hyperplonk/perm", &c.to_bytes());
    }
    let alpha = transcript.challenge_fr(b"hyperplonk/alpha");
    let perm_poly = system.perm_gate().poly.specialize(&[alpha]);
    let mut perm_mles = vec![
        perm.pi.clone(),
        perm.p1.clone(),
        perm.p2.clone(),
        perm.phi.clone(),
    ];
    perm_mles.extend(perm.denominators.iter().cloned());
    perm_mles.extend(perm.numerators.iter().cloned());
    perm_mles.push(Mle::zero(mu)); // f_r placeholder
    let (perm_out, _) = prove_zero_check_with_threads(
        &perm_poly,
        system.perm_eq_slot(),
        perm_mles,
        transcript,
        threads,
    );
    let x_pc = perm_out.challenges.clone();
    drop(perm_span);

    // Step 4 — Batch Evaluations. Claims already bound inside the two
    // SumChecks are reused; the remaining ones are evaluated here.
    let evals_span = tele::span("prove/batch_evals");
    let mut extra_evals: Vec<Fr> = witness.columns.iter().map(|w| w.evaluate(&x_pc)).collect();
    extra_evals.extend(pk.sigma_mles.iter().map(|sg| sg.evaluate(&x_pc)));
    transcript.append_frs(b"hyperplonk/extra_evals", &extra_evals);

    let layout = claim_layout(system);
    let mut claim_values = Vec::with_capacity(layout.len());
    // Selectors + witnesses at the gate point.
    claim_values.extend_from_slice(&gate_out.proof.final_mle_evals[..s + w_cols]);
    // π, p1, p2, ϕ at the PermCheck point.
    claim_values.extend_from_slice(&perm_out.proof.final_mle_evals[..4]);
    // Witnesses + sigmas at the PermCheck point.
    claim_values.extend_from_slice(&extra_evals);
    // π at the root index: the grand product must be one.
    claim_values.push(Fr::ONE);
    debug_assert_eq!(claim_values.len(), layout.len());
    drop(evals_span);

    // Step 5 — OpenCheck + MLE Combine + single opening.
    let oc_span = tele::span("prove/opencheck");
    let etas = transcript.challenge_frs(b"hyperplonk/opencheck/eta", layout.len());
    let oc_poly = opencheck_composite(system, &etas);
    let k_p = num_distinct_polys(system);
    let mut oc_mles: Vec<Mle> = Vec::with_capacity(k_p + NUM_POINTS);
    oc_mles.extend(pk.circuit.selectors.iter().cloned());
    oc_mles.extend(witness.columns.iter().cloned());
    oc_mles.extend(pk.sigma_mles.iter().cloned());
    oc_mles.push(perm.phi.clone());
    oc_mles.push(perm.pi.clone());
    oc_mles.push(perm.p1.clone());
    oc_mles.push(perm.p2.clone());
    oc_mles.push(Mle::eq_table(&x_zc));
    oc_mles.push(Mle::eq_table(&x_pc));
    oc_mles.push(Mle::eq_table(&index_point(root_index(n), mu)));
    let combine_inputs = oc_mles[..k_p].to_vec();
    let oc_out = sumcheck_prove(&oc_poly, oc_mles, transcript, threads);
    let r_star = oc_out.challenges.clone();
    drop(oc_span);

    // MLE Combine: g = Σ ζ_i poly_i, opened once.
    let opening_span = tele::span("prove/opening");
    let zetas = transcript.challenge_frs(b"hyperplonk/combine/zeta", k_p);
    let g = {
        let _s = tele::span("prove/opening/mle_combine");
        mle_combine(&combine_inputs, &zetas, mu, threads)
    };
    let (opening, opening_value) = {
        let _s = tele::span("prove/opening/pcs_open");
        pk.pcs.open(&g, &r_star)
    };
    drop(opening_span);

    HyperPlonkProof {
        witness_commitments,
        gate_zerocheck: gate_out.proof,
        perm_commitments,
        perm_zerocheck: perm_out.proof,
        extra_evals,
        opencheck: oc_out.proof,
        opening,
        opening_value,
    }
}

/// The paper's *MLE Combine* kernel: `g = Σ_i ζ_i · poly_i`, chunked over
/// disjoint row ranges so the result is thread-count independent.
fn mle_combine(inputs: &[Mle], zetas: &[Fr], mu: usize, threads: usize) -> Mle {
    let n = 1usize << mu;
    let combine_row = |row: usize| -> Fr {
        inputs
            .iter()
            .zip(zetas)
            .map(|(m, z)| m.evals()[row] * *z)
            .sum()
    };
    if threads <= 1 || n < (1 << 12) {
        return Mle::from_fn(mu, combine_row);
    }
    let mut out = vec![Fr::ZERO; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let combine_row = &combine_row;
            scope.spawn(move || {
                for (i, o) in out_chunk.iter_mut().enumerate() {
                    *o = combine_row(t * chunk + i);
                }
            });
        }
    });
    Mle::new(out)
}
