//! The HyperPlonk verifier.
//!
//! Mirrors the prover's transcript step for step, checks both ZeroChecks,
//! reconstructs the Numerator/Denominator claims from witness/σ openings
//! and the closed-form identity MLE, replays the Batch-Evaluation claim
//! list, checks the OpenCheck combination, and finally verifies the single
//! batched PCS opening.

use core::fmt;

use zkphire_field::Fr;
use zkphire_pcs::{combine_commitments, Commitment};
use zkphire_sumcheck::{eq_eval, verify as sumcheck_verify, verify_zero_check, SumCheckError};
use zkphire_transcript::Transcript;

use crate::keys::VerifyingKey;
use crate::permutation::{id_eval, index_point, root_index};
use crate::proof::{claim_layout, num_distinct_polys, HyperPlonkProof, NUM_POINTS};
use crate::prover::{bind_statement, opencheck_composite};

/// Why a HyperPlonk proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HyperPlonkError {
    /// The proof shape does not match the verifying key.
    ShapeMismatch,
    /// The Gate Identity ZeroCheck failed.
    GateCheck(SumCheckError),
    /// The Wire Identity PermCheck failed.
    PermCheck(SumCheckError),
    /// A claimed numerator `N_i` disagrees with `w_i + β id_i + γ`.
    NumeratorMismatch {
        /// Offending witness column.
        column: usize,
    },
    /// A claimed denominator `D_i` disagrees with `w_i + β σ_i + γ`.
    DenominatorMismatch {
        /// Offending witness column.
        column: usize,
    },
    /// The OpenCheck SumCheck failed.
    OpenCheck(SumCheckError),
    /// The OpenCheck claim does not equal `Σ η_j y_j`.
    ClaimSumMismatch,
    /// An `eq` evaluation inside OpenCheck disagrees with its closed form.
    EqEvalMismatch {
        /// Offending point index (0 = gate, 1 = perm, 2 = root).
        point: usize,
    },
    /// The combined polynomial's claimed value disagrees with `Σ ζ_i y_i`.
    CombinedEvalMismatch,
    /// The final PCS opening failed.
    OpeningInvalid,
}

impl fmt::Display for HyperPlonkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch => write!(f, "proof shape does not match the verifying key"),
            Self::GateCheck(e) => write!(f, "gate identity check failed: {e}"),
            Self::PermCheck(e) => write!(f, "wire identity check failed: {e}"),
            Self::NumeratorMismatch { column } => {
                write!(f, "numerator claim mismatch in column {column}")
            }
            Self::DenominatorMismatch { column } => {
                write!(f, "denominator claim mismatch in column {column}")
            }
            Self::OpenCheck(e) => write!(f, "opencheck failed: {e}"),
            Self::ClaimSumMismatch => write!(f, "opencheck claim does not match the batch"),
            Self::EqEvalMismatch { point } => {
                write!(f, "eq evaluation mismatch at point {point}")
            }
            Self::CombinedEvalMismatch => {
                write!(f, "combined polynomial evaluation mismatch")
            }
            Self::OpeningInvalid => write!(f, "final polynomial opening is invalid"),
        }
    }
}

impl std::error::Error for HyperPlonkError {}

/// Verifies a HyperPlonk proof.
///
/// # Errors
///
/// Returns the first failed check as a [`HyperPlonkError`].
pub fn verify(
    vk: &VerifyingKey,
    proof: &HyperPlonkProof,
    transcript: &mut Transcript,
) -> Result<(), HyperPlonkError> {
    let system = vk.system;
    let mu = vk.num_vars;
    let n = 1usize << mu;
    let s = system.num_selectors();
    let w_cols = system.num_witness_columns();
    if proof.witness_commitments.len() != w_cols || proof.extra_evals.len() != 2 * w_cols {
        return Err(HyperPlonkError::ShapeMismatch);
    }

    bind_statement(
        transcript,
        system,
        mu,
        &vk.selector_commitments,
        &vk.sigma_commitments,
    );
    for c in &proof.witness_commitments {
        transcript.append_bytes(b"hyperplonk/witness", &c.to_bytes());
    }

    // Step 2 — Gate Identity.
    let gate = system.gate();
    let gate_verified = verify_zero_check(
        &gate.poly,
        system.gate_eq_slot(),
        mu,
        &proof.gate_zerocheck,
        transcript,
    )
    .map_err(HyperPlonkError::GateCheck)?;
    let x_zc = gate_verified.challenges.clone();

    // Step 3 — Wire Identity.
    let beta = transcript.challenge_fr(b"hyperplonk/beta");
    let gamma = transcript.challenge_fr(b"hyperplonk/gamma");
    for c in &proof.perm_commitments {
        transcript.append_bytes(b"hyperplonk/perm", &c.to_bytes());
    }
    let alpha = transcript.challenge_fr(b"hyperplonk/alpha");
    let perm_poly = system.perm_gate().poly.specialize(&[alpha]);
    let perm_verified = verify_zero_check(
        &perm_poly,
        system.perm_eq_slot(),
        mu,
        &proof.perm_zerocheck,
        transcript,
    )
    .map_err(HyperPlonkError::PermCheck)?;
    let x_pc = perm_verified.challenges.clone();

    // Reconstruct N_i / D_i from the witness/σ claims and the closed-form
    // identity MLE; slots in the PermCheck composite: π p1 p2 ϕ D_1.. N_1..
    transcript.append_frs(b"hyperplonk/extra_evals", &proof.extra_evals);
    let (w_at_pc, sigma_at_pc) = proof.extra_evals.split_at(w_cols);
    for i in 0..w_cols {
        let expected_n = w_at_pc[i] + beta * id_eval(i, n, &x_pc) + gamma;
        if perm_verified.mle_evals[4 + w_cols + i] != expected_n {
            return Err(HyperPlonkError::NumeratorMismatch { column: i });
        }
        let expected_d = w_at_pc[i] + beta * sigma_at_pc[i] + gamma;
        if perm_verified.mle_evals[4 + i] != expected_d {
            return Err(HyperPlonkError::DenominatorMismatch { column: i });
        }
    }

    // Step 4 — replay the Batch-Evaluation claim list.
    let layout = claim_layout(system);
    let mut claim_values = Vec::with_capacity(layout.len());
    claim_values.extend_from_slice(&gate_verified.mle_evals[..s + w_cols]);
    claim_values.extend_from_slice(&perm_verified.mle_evals[..4]);
    claim_values.extend_from_slice(&proof.extra_evals);
    claim_values.push(Fr::ONE); // π at the root must be exactly one
    debug_assert_eq!(claim_values.len(), layout.len());

    // Step 5 — OpenCheck.
    let etas = transcript.challenge_frs(b"hyperplonk/opencheck/eta", layout.len());
    let expected_claim: Fr = etas.iter().zip(&claim_values).map(|(e, y)| *e * *y).sum();
    let oc_poly = opencheck_composite(system, &etas);
    let oc_verified = sumcheck_verify(&oc_poly, mu, &proof.opencheck, transcript)
        .map_err(HyperPlonkError::OpenCheck)?;
    if proof.opencheck.claimed_sum != expected_claim {
        return Err(HyperPlonkError::ClaimSumMismatch);
    }
    let r_star = oc_verified.challenges.clone();
    let k_p = num_distinct_polys(system);
    let points = [x_zc, x_pc, index_point(root_index(n), mu)];
    for (t, point) in points.iter().enumerate() {
        if oc_verified.mle_evals[k_p + t] != eq_eval(&r_star, point) {
            return Err(HyperPlonkError::EqEvalMismatch { point: t });
        }
    }
    debug_assert_eq!(oc_verified.mle_evals.len(), k_p + NUM_POINTS);

    // Combine commitments homomorphically and verify the single opening.
    let zetas = transcript.challenge_frs(b"hyperplonk/combine/zeta", k_p);
    let mut all_commitments: Vec<Commitment> = Vec::with_capacity(k_p);
    all_commitments.extend_from_slice(&vk.selector_commitments);
    all_commitments.extend_from_slice(&proof.witness_commitments);
    all_commitments.extend_from_slice(&vk.sigma_commitments);
    all_commitments.extend_from_slice(&proof.perm_commitments);
    let combined = combine_commitments(&all_commitments, &zetas);
    let expected_g: Fr = zetas
        .iter()
        .zip(&oc_verified.mle_evals[..k_p])
        .map(|(z, y)| *z * *y)
        .sum();
    if proof.opening_value != expected_g {
        return Err(HyperPlonkError::CombinedEvalMismatch);
    }
    if !vk
        .pcs_verifier
        .verify(&combined, &r_star, proof.opening_value, &proof.opening)
    {
        return Err(HyperPlonkError::OpeningInvalid);
    }
    Ok(())
}
