//! Wire format for HyperPlonk proofs.
//!
//! A simple self-describing byte format: little-endian `u32` counts
//! prefix every variable-length section; field elements are 32-byte
//! canonical little-endian; G1 points use the 97-byte uncompressed
//! encoding of [`G1Affine::to_bytes`]. (The paper's proof-size accounting
//! assumes 48-byte compressed points; [`HyperPlonkProof::size_bytes`]
//! reports that figure, while this codec favours simplicity.)

use core::fmt;

use zkphire_curve::G1Affine;
use zkphire_field::{Fq, Fr};
use zkphire_pcs::{Commitment, OpeningProof};
use zkphire_sumcheck::SumCheckProof;

use crate::proof::HyperPlonkProof;

/// Why a proof failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before a section was complete.
    UnexpectedEnd,
    /// A point failed the curve-membership check.
    InvalidPoint,
    /// A declared count is implausibly large for the input length.
    CorruptCount,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd => write!(f, "input truncated"),
            Self::InvalidPoint => write!(f, "encoded point is not on the curve"),
            Self::CorruptCount => write!(f, "section count exceeds input length"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::CorruptCount)?;
        if end > self.data.len() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn count(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        // Every counted element occupies at least one byte.
        if n > self.data.len() {
            return Err(DecodeError::CorruptCount);
        }
        Ok(n)
    }

    fn fr(&mut self) -> Result<Fr, DecodeError> {
        Ok(Fr::from_le_bytes_mod_order(self.take(32)?))
    }

    fn frs(&mut self) -> Result<Vec<Fr>, DecodeError> {
        let n = self.count()?;
        (0..n).map(|_| self.fr()).collect()
    }

    fn point(&mut self) -> Result<G1Affine, DecodeError> {
        let bytes = self.take(97)?;
        if bytes[0] == 1 {
            return Ok(G1Affine::identity());
        }
        let x = Fq::from_le_bytes_mod_order(&bytes[1..49]);
        let y = Fq::from_le_bytes_mod_order(&bytes[49..97]);
        let p = G1Affine {
            x,
            y,
            infinity: false,
        };
        if !p.is_on_curve() {
            return Err(DecodeError::InvalidPoint);
        }
        Ok(p)
    }

    fn points(&mut self) -> Result<Vec<G1Affine>, DecodeError> {
        let n = self.count()?;
        (0..n).map(|_| self.point()).collect()
    }
}

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn put_frs(out: &mut Vec<u8>, values: &[Fr]) {
    put_u32(out, values.len());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_points(out: &mut Vec<u8>, points: &[G1Affine]) {
    put_u32(out, points.len());
    for p in points {
        out.extend_from_slice(&p.to_bytes());
    }
}

fn put_sumcheck(out: &mut Vec<u8>, proof: &SumCheckProof) {
    out.extend_from_slice(&proof.claimed_sum.to_le_bytes());
    put_u32(out, proof.round_evals.len());
    for round in &proof.round_evals {
        put_frs(out, round);
    }
    put_frs(out, &proof.final_mle_evals);
}

fn read_sumcheck(r: &mut Reader<'_>) -> Result<SumCheckProof, DecodeError> {
    let claimed_sum = r.fr()?;
    let rounds = r.count()?;
    let round_evals = (0..rounds)
        .map(|_| r.frs())
        .collect::<Result<Vec<_>, _>>()?;
    let final_mle_evals = r.frs()?;
    Ok(SumCheckProof {
        claimed_sum,
        round_evals,
        final_mle_evals,
    })
}

impl HyperPlonkProof {
    /// Serializes the proof to a self-describing byte string.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_points(
            &mut out,
            &self
                .witness_commitments
                .iter()
                .map(|c| c.0)
                .collect::<Vec<_>>(),
        );
        put_sumcheck(&mut out, &self.gate_zerocheck);
        put_points(
            &mut out,
            &self
                .perm_commitments
                .iter()
                .map(|c| c.0)
                .collect::<Vec<_>>(),
        );
        put_sumcheck(&mut out, &self.perm_zerocheck);
        put_frs(&mut out, &self.extra_evals);
        put_sumcheck(&mut out, &self.opencheck);
        put_points(&mut out, &self.opening.quotients);
        out.extend_from_slice(&self.opening_value.to_le_bytes());
        out
    }

    /// Decodes a proof produced by [`to_bytes`](Self::to_bytes).
    ///
    /// Structural validity (curve membership, section framing) is checked
    /// here; cryptographic validity is the verifier's job.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader { data, pos: 0 };
        let witness_commitments = r.points()?.into_iter().map(Commitment).collect();
        let gate_zerocheck = read_sumcheck(&mut r)?;
        let perm_points = r.points()?;
        if perm_points.len() != 4 {
            return Err(DecodeError::CorruptCount);
        }
        let perm_commitments = [
            Commitment(perm_points[0]),
            Commitment(perm_points[1]),
            Commitment(perm_points[2]),
            Commitment(perm_points[3]),
        ];
        let perm_zerocheck = read_sumcheck(&mut r)?;
        let extra_evals = r.frs()?;
        let opencheck = read_sumcheck(&mut r)?;
        let opening = OpeningProof {
            quotients: r.points()?,
        };
        let opening_value = r.fr()?;
        Ok(Self {
            witness_commitments,
            gate_zerocheck,
            perm_commitments,
            perm_zerocheck,
            extra_evals,
            opencheck,
            opening,
            opening_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prove, setup, verify, Circuit, GateSystem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_transcript::Transcript;

    fn sample_proof() -> (crate::VerifyingKey, HyperPlonkProof) {
        let mut rng = StdRng::seed_from_u64(314);
        let (circuit, witness) = Circuit::random(GateSystem::Vanilla, 4, 0.5, &mut rng);
        let (pk, vk) = setup(circuit, &mut rng);
        let proof = prove(&pk, &witness, &mut Transcript::new(b"codec"));
        (vk, proof)
    }

    #[test]
    fn roundtrip_preserves_verification() {
        let (vk, proof) = sample_proof();
        let bytes = proof.to_bytes();
        let decoded = HyperPlonkProof::from_bytes(&bytes).unwrap();
        verify(&vk, &decoded, &mut Transcript::new(b"codec")).unwrap();
    }

    #[test]
    fn roundtrip_is_identity_on_bytes() {
        let (_, proof) = sample_proof();
        let bytes = proof.to_bytes();
        let decoded = HyperPlonkProof::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn truncated_input_rejected() {
        let (_, proof) = sample_proof();
        let bytes = proof.to_bytes();
        for cut in [0usize, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                HyperPlonkProof::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn off_curve_point_rejected() {
        let (_, proof) = sample_proof();
        let mut bytes = proof.to_bytes();
        // Corrupt the first witness commitment's x-coordinate (skip the
        // 4-byte count and the infinity flag).
        bytes[5] ^= 0xff;
        assert_eq!(
            HyperPlonkProof::from_bytes(&bytes).unwrap_err(),
            DecodeError::InvalidPoint
        );
    }

    #[test]
    fn corrupt_count_rejected() {
        let (_, proof) = sample_proof();
        let mut bytes = proof.to_bytes();
        bytes[0] = 0xff;
        bytes[1] = 0xff;
        assert!(HyperPlonkProof::from_bytes(&bytes).is_err());
    }

    #[test]
    fn tampered_scalar_decodes_but_fails_verification() {
        let (vk, proof) = sample_proof();
        let mut bytes = proof.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1; // opening value
        let decoded = HyperPlonkProof::from_bytes(&bytes).unwrap();
        assert!(verify(&vk, &decoded, &mut Transcript::new(b"codec")).is_err());
    }
}
