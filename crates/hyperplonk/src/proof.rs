//! The HyperPlonk proof object and the shared claim-layout logic that
//! keeps prover and verifier in lockstep through Batch Evaluation and
//! Polynomial Opening.

use zkphire_field::Fr;
use zkphire_pcs::{Commitment, OpeningProof};
use zkphire_sumcheck::SumCheckProof;

use crate::circuit::GateSystem;

/// A complete HyperPlonk proof (paper §IV-A's five steps).
#[derive(Clone, Debug)]
pub struct HyperPlonkProof {
    /// Step 1 — Witness Commitments (sparse MSMs).
    pub witness_commitments: Vec<Commitment>,
    /// Step 2 — Gate Identity ZeroCheck.
    pub gate_zerocheck: SumCheckProof,
    /// Step 3 — Wire Identity: commitments to `ϕ, π, p1, p2`.
    pub perm_commitments: [Commitment; 4],
    /// Step 3 — the PermCheck SumCheck.
    pub perm_zerocheck: SumCheckProof,
    /// Step 4 — Batch Evaluations not already bound by a SumCheck:
    /// `w_i(x_pc)` then `σ_i(x_pc)`.
    pub extra_evals: Vec<Fr>,
    /// Step 5 — the OpenCheck SumCheck combining all claims.
    pub opencheck: SumCheckProof,
    /// Step 5 — the single batched PCS opening.
    pub opening: OpeningProof,
    /// Claimed value of the combined polynomial at the final point.
    pub opening_value: Fr,
}

impl HyperPlonkProof {
    /// Wire size in bytes: 48 B per (compressed) G1 point, 32 B per
    /// scalar — the accounting behind the paper's 4–5 KB proof sizes
    /// (Table IX).
    pub fn size_bytes(&self) -> usize {
        let commitments = self.witness_commitments.len() + self.perm_commitments.len();
        commitments * Commitment::COMPRESSED_SIZE
            + self.gate_zerocheck.size_bytes()
            + self.perm_zerocheck.size_bytes()
            + self.extra_evals.len() * 32
            + self.opencheck.size_bytes()
            + self.opening.size_bytes()
            + 32
    }
}

/// Identifies one committed polynomial in the canonical opening order:
/// selectors, witnesses, sigmas, then `ϕ, π, p1, p2`.
pub(crate) fn num_distinct_polys(system: GateSystem) -> usize {
    system.num_selectors() + 2 * system.num_witness_columns() + 4
}

/// Index of evaluation points: 0 = gate-ZeroCheck point, 1 = PermCheck
/// point, 2 = the grand-product root index point.
pub(crate) const NUM_POINTS: usize = 3;

/// The canonical list of `(poly, point)` evaluation claims every proof
/// carries, in transcript order. Values are supplied separately (most are
/// already bound inside the SumCheck proofs).
pub(crate) fn claim_layout(system: GateSystem) -> Vec<(usize, usize)> {
    let s = system.num_selectors();
    let w = system.num_witness_columns();
    let sel = 0..s;
    let wit = s..s + w;
    let sig = s + w..s + 2 * w;
    let phi = s + 2 * w;
    let pi = phi + 1;
    let p1 = pi + 1;
    let p2 = p1 + 1;

    let mut claims = Vec::new();
    // Gate identity point: selectors and witnesses.
    for idx in sel {
        claims.push((idx, 0));
    }
    for idx in wit.clone() {
        claims.push((idx, 0));
    }
    // PermCheck point: π, p1, p2, ϕ plus witnesses and sigmas (used by the
    // verifier to reconstruct N_i and D_i).
    for idx in [pi, p1, p2, phi] {
        claims.push((idx, 1));
    }
    for idx in wit {
        claims.push((idx, 1));
    }
    for idx in sig {
        claims.push((idx, 1));
    }
    // Root point: π must open to exactly 1.
    claims.push((pi, 2));
    claims
}
