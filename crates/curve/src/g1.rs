//! BLS12-381 G1 group arithmetic (Jacobian projective coordinates).
//!
//! The curve is `y^2 = x^3 + 4` over the 381-bit base field. The paper's
//! MSM unit is built from fully pipelined point-addition (PADD) cores over
//! exactly these coordinates (§V); this module is the functional
//! counterpart, including the mixed-addition fast path the hardware uses
//! when one operand comes straight from memory in affine form.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Neg};

use rand::Rng;
use zkphire_field::{Fq, Fr};

/// The curve constant `b` in `y^2 = x^3 + b`.
pub fn curve_b() -> Fq {
    Fq::from_u64(4)
}

/// A G1 point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct G1Affine {
    /// x-coordinate (meaningless when `infinity` is set).
    pub x: Fq,
    /// y-coordinate (meaningless when `infinity` is set).
    pub y: Fq,
    /// Marks the group identity.
    pub infinity: bool,
}

impl G1Affine {
    /// The group identity.
    pub const fn identity() -> Self {
        Self {
            x: Fq::ZERO,
            y: Fq::ZERO,
            infinity: true,
        }
    }

    /// The standard BLS12-381 G1 generator.
    pub fn generator() -> Self {
        let x = Fq::from_canonical_limbs([
            0xfb3a_f00a_db22_c6bb,
            0x6c55_e83f_f97a_1aef,
            0xa14e_3a3f_171b_ac58,
            0xc368_8c4f_9774_b905,
            0x2695_638c_4fa9_ac0f,
            0x17f1_d3a7_3197_d794,
        ])
        .expect("generator x is canonical");
        let y = Fq::from_canonical_limbs([
            0x0caa_2329_46c5_e7e1,
            0xd03c_c744_a288_8ae4,
            0x00db_18cb_2c04_b3ed,
            0xfcf5_e095_d5d0_0af6,
            0xa09e_30ed_741d_8ae4,
            0x08b3_f481_e3aa_a0f1,
        ])
        .expect("generator y is canonical");
        Self {
            x,
            y,
            infinity: false,
        }
    }

    /// Returns `true` if the point satisfies the curve equation (or is the
    /// identity).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + curve_b()
    }

    /// Returns `true` for the group identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Multiplies by a scalar (double-and-add; see [`G1Projective::mul_fr`]).
    pub fn mul_fr(&self, scalar: &Fr) -> G1Projective {
        G1Projective::from(*self).mul_fr(scalar)
    }

    /// Samples a random group element as `generator * random_scalar`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul_fr(&Fr::random(rng)).to_affine()
    }

    /// Serializes to uncompressed bytes (96 bytes; identity is all zeros
    /// with a marker).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(97);
        out.push(u8::from(self.infinity));
        out.extend_from_slice(&self.x.to_le_bytes());
        out.extend_from_slice(&self.y.to_le_bytes());
        out
    }
}

impl Default for G1Affine {
    fn default() -> Self {
        Self::identity()
    }
}

impl Neg for G1Affine {
    type Output = Self;

    fn neg(self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }
}

impl fmt::Display for G1Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "G1(infinity)")
        } else {
            write!(f, "G1({:?}, {:?})", self.x, self.y)
        }
    }
}

/// A G1 point in Jacobian projective coordinates `(X, Y, Z)` representing
/// the affine point `(X/Z^2, Y/Z^3)`; `Z = 0` is the identity.
#[derive(Clone, Copy, Debug)]
pub struct G1Projective {
    x: Fq,
    y: Fq,
    z: Fq,
}

impl G1Projective {
    /// The group identity.
    pub const fn identity() -> Self {
        Self {
            x: Fq::ZERO,
            y: Fq::ZERO,
            z: Fq::ZERO,
        }
    }

    /// The standard generator.
    pub fn generator() -> Self {
        G1Affine::generator().into()
    }

    /// Returns `true` for the group identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity();
        }
        let z_inv = self.z.inverse().expect("non-identity has z != 0");
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2 * z_inv;
        G1Affine {
            x: self.x * z_inv2,
            y: self.y * z_inv3,
            infinity: false,
        }
    }

    /// Doubles the point (`dbl-2009-l`, specialised to `a = 0`).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let mut d = (self.x + b).square() - a - c;
        d = d.double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let eight_c = c.double().double().double();
        let y3 = e * (d - x3) - eight_c;
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Adds a point given in affine coordinates (mixed addition — the
    /// hardware PADD fast path for streamed bucket updates).
    pub fn add_mixed(&self, rhs: &G1Affine) -> Self {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return Self::from(*rhs);
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x * z1z1;
        let s2 = rhs.y * self.z * z1z1;
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Multiplies by a scalar-field element.
    pub fn mul_fr(&self, scalar: &Fr) -> Self {
        self.mul_limbs(&scalar.to_canonical_limbs())
    }

    /// Multiplies by an arbitrary little-endian limb integer (used e.g. to
    /// check the group order: `r * G == identity`).
    pub fn mul_limbs(&self, limbs: &[u64]) -> Self {
        let mut acc = Self::identity();
        let mut started = false;
        for limb in limbs.iter().rev() {
            for bit_index in (0..64).rev() {
                if started {
                    acc = acc.double();
                }
                if (limb >> bit_index) & 1 == 1 {
                    acc += *self;
                    started = true;
                }
            }
        }
        acc
    }
}

/// Converts a batch of projective points to affine with a single field
/// inversion (Montgomery batch trick over the `z` coordinates) — the way
/// the perf harness materializes large MSM input sets without paying one
/// 381-bit inversion per point.
pub fn batch_normalize(points: &[G1Projective]) -> Vec<G1Affine> {
    let mut z_invs: Vec<Fq> = points.iter().map(|p| p.z).collect();
    zkphire_field::batch_inverse(&mut z_invs);
    points
        .iter()
        .zip(&z_invs)
        .map(|(p, z_inv)| {
            if p.is_identity() {
                G1Affine::identity()
            } else {
                let z_inv2 = z_inv.square();
                let z_inv3 = z_inv2 * *z_inv;
                G1Affine {
                    x: p.x * z_inv2,
                    y: p.y * z_inv3,
                    infinity: false,
                }
            }
        })
        .collect()
}

impl Default for G1Projective {
    fn default() -> Self {
        Self::identity()
    }
}

impl From<G1Affine> for G1Projective {
    fn from(p: G1Affine) -> Self {
        if p.infinity {
            Self::identity()
        } else {
            Self {
                x: p.x,
                y: p.y,
                z: Fq::ONE,
            }
        }
    }
}

impl PartialEq for G1Projective {
    /// Compares the underlying group elements (coordinate-system agnostic).
    fn eq(&self, other: &Self) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                // X1 Z2^2 == X2 Z1^2 and Y1 Z2^3 == Y2 Z1^3
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}

impl Eq for G1Projective {}

impl Add for G1Projective {
    type Output = Self;

    /// Full Jacobian addition (`add-2007-bl` with doubling/identity handling).
    fn add(self, rhs: Self) -> Self {
        if self.is_identity() {
            return rhs;
        }
        if rhs.is_identity() {
            return self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * rhs.z * z2z2;
        let s2 = rhs.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

impl AddAssign for G1Projective {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Neg for G1Projective {
    type Output = Self;

    fn neg(self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }
}

impl Sum for G1Projective {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::identity(), |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_field::{FieldParams, FrParams};

    #[test]
    fn generator_is_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
        assert!(G1Affine::identity().is_on_curve());
    }

    #[test]
    fn generator_has_order_r() {
        let g = G1Projective::generator();
        let rg = g.mul_limbs(&FrParams::MODULUS);
        assert!(rg.is_identity());
    }

    #[test]
    fn double_matches_add() {
        let g = G1Projective::generator();
        assert_eq!(g + g, g.double());
        assert_eq!(g.mul_fr(&Fr::from_u64(2)), g.double());
    }

    #[test]
    fn mixed_addition_matches_full() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..8 {
            let p = G1Projective::generator().mul_fr(&Fr::random(&mut rng));
            let q_affine = G1Affine::random(&mut rng);
            assert_eq!(p.add_mixed(&q_affine), p + G1Projective::from(q_affine));
        }
    }

    #[test]
    fn mixed_addition_edge_cases() {
        let g = G1Projective::generator();
        let g_affine = G1Affine::generator();
        // identity + P
        assert_eq!(G1Projective::identity().add_mixed(&g_affine), g);
        // P + identity
        assert_eq!(g.add_mixed(&G1Affine::identity()), g);
        // P + P (doubling path)
        assert_eq!(g.add_mixed(&g_affine), g.double());
        // P + (-P)
        assert!(g.add_mixed(&-g_affine).is_identity());
    }

    #[test]
    fn scalar_distributes_over_addition() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = G1Projective::generator();
        for _ in 0..4 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            assert_eq!(g.mul_fr(&(a + b)), g.mul_fr(&a) + g.mul_fr(&b));
        }
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = G1Projective::generator().mul_fr(&Fr::random(&mut rng));
        let q = G1Projective::generator().mul_fr(&Fr::random(&mut rng));
        let r = G1Projective::generator().mul_fr(&Fr::random(&mut rng));
        assert_eq!(p + q, q + p);
        assert_eq!((p + q) + r, p + (q + r));
    }

    #[test]
    fn affine_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = G1Projective::generator().mul_fr(&Fr::random(&mut rng));
        let affine = p.to_affine();
        assert!(affine.is_on_curve());
        assert_eq!(G1Projective::from(affine), p);
    }

    #[test]
    fn batch_normalize_matches_to_affine() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut points: Vec<G1Projective> = (0..16)
            .map(|_| G1Projective::generator().mul_fr(&Fr::random(&mut rng)))
            .collect();
        points[5] = G1Projective::identity();
        let affine = batch_normalize(&points);
        for (p, a) in points.iter().zip(&affine) {
            assert_eq!(p.to_affine(), *a);
        }
        assert!(affine[5].is_identity());
    }

    #[test]
    fn negation_cancels() {
        let g = G1Projective::generator();
        assert!((g + (-g)).is_identity());
    }

    #[test]
    fn mul_zero_and_one() {
        let g = G1Projective::generator();
        assert!(g.mul_fr(&Fr::ZERO).is_identity());
        assert_eq!(g.mul_fr(&Fr::ONE), g);
    }
}
