//! BLS12-381 G1 group arithmetic and multi-scalar multiplication.
//!
//! zkPHIRE targets the same elliptic curve as HyperPlonk — BLS12-381, with
//! 255-bit scalars and 381-bit point coordinates (paper §V). This crate
//! provides the group operations behind the paper's MSM unit: Jacobian
//! point addition/doubling (the hardware's fully pipelined PADD cores) and
//! Pippenger's bucket algorithm (§II-B), including the sparse-scalar
//! behaviour the accelerator exploits for witness commitments.
//!
//! # Examples
//!
//! ```
//! use zkphire_curve::{msm, G1Affine};
//! use zkphire_field::Fr;
//!
//! let points = vec![G1Affine::generator(); 4];
//! let scalars: Vec<Fr> = (1..=4).map(Fr::from_u64).collect();
//! // 1g + 2g + 3g + 4g == 10g
//! assert_eq!(msm(&points, &scalars), G1Affine::generator().mul_fr(&Fr::from_u64(10)));
//! ```

mod g1;
mod msm;

pub use g1::{batch_normalize, curve_b, G1Affine, G1Projective};
pub use msm::{
    msm, msm_naive, msm_unsigned, msm_unsigned_with_ops, msm_with_ops, msm_with_ops_threads,
    optimal_window_bits, MsmOps,
};
