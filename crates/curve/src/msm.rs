//! Multi-scalar multiplication (MSM) via Pippenger's bucket method.
//!
//! MSM is the dominant kernel of HyperPlonk's polynomial commitments
//! (paper §II-B): `S = Σ k_i · P_i`. Two implementations live here:
//!
//! * [`msm`] / [`msm_with_ops`] — the production path: **signed-digit**
//!   windows (digits in `[-2^(c-1), 2^(c-1)]`, halving the bucket count
//!   versus unsigned windows because `-P` is a free y-negation) with
//!   **batched-affine** bucket accumulation — bucket updates are performed
//!   in affine coordinates, with every inversion in a pass amortized
//!   through one [`zkphire_field::batch_inverse`] call. A scheduler defers
//!   colliding bucket indices to the next pass so each pass touches every
//!   bucket at most once. This is the same constant-factor structure SZKP
//!   and cuZK exploit and the shape the paper's streamed MSM unit
//!   pipelines.
//! * [`msm_unsigned_with_ops`] — the previous unsigned-window path with one
//!   projective mixed-add per streamed pair, kept as the regression
//!   baseline the `repro perf` harness compares against.
//!
//! Both report the operation counts the hardware model consumes. Zero
//! scalars are skipped, which is exactly how the accelerator's *sparse
//! MSMs* over ~90%-sparse witness MLEs gain their advantage (§IV-B1,
//! §IV-B3). Per-window work is deterministic, so [`MsmOps`] counts are
//! bit-identical regardless of the worker-thread count.

use crate::g1::{G1Affine, G1Projective};
use zkphire_field::{batch_inverse, Fq, Fr};
use zkphire_telemetry as tele;

/// Operation counts for one MSM, used to validate the hardware MSM model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsmOps {
    /// Point additions performed during bucket accumulation.
    pub bucket_adds: u64,
    /// Point additions performed during bucket reduction.
    pub reduction_adds: u64,
    /// Point doublings performed during window aggregation.
    pub doublings: u64,
    /// Scalars skipped because they were zero.
    pub skipped_zeros: u64,
}

impl MsmOps {
    /// Total point additions plus doublings (the PADD-equivalent work).
    pub fn total_padds(&self) -> u64 {
        self.bucket_adds + self.reduction_adds + self.doublings
    }
}

/// Picks a window width (in bits) for a problem of `n` points.
///
/// The standard Pippenger heuristic `~ log2(n)`; the paper's design-space
/// exploration sweeps windows of 7–10 bits for its hardware (Table III).
pub fn optimal_window_bits(n: usize) -> u32 {
    match n {
        0..=3 => 1,
        4..=31 => 3,
        _ => {
            let bits = usize::BITS - n.leading_zeros() - 1;
            (bits.saturating_sub(3)).clamp(4, 16)
        }
    }
}

/// Scalar width budget for window decomposition (`Fr` is 255 bits).
const SCALAR_BITS: u32 = 255;

/// Computes `Σ scalars[i] * points[i]` with signed-digit Pippenger,
/// parallelized across windows.
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
pub fn msm(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    msm_with_ops(points, scalars).0
}

/// [`msm`] plus the operation counts incurred.
pub fn msm_with_ops(points: &[G1Affine], scalars: &[Fr]) -> (G1Projective, MsmOps) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    msm_with_ops_threads(points, scalars, threads)
}

/// [`msm_with_ops`] with an explicit worker-thread count.
///
/// The result *and* the [`MsmOps`] counts are identical for every
/// `threads` value — windows are data-independent and each window's
/// schedule depends only on the input order.
pub fn msm_with_ops_threads(
    points: &[G1Affine],
    scalars: &[Fr],
    threads: usize,
) -> (G1Projective, MsmOps) {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points and scalars must pair up"
    );
    if points.is_empty() {
        return (G1Projective::identity(), MsmOps::default());
    }

    let window_bits = optimal_window_bits(points.len());
    // One extra window absorbs the final carry of the signed recoding.
    let num_windows = SCALAR_BITS.div_ceil(window_bits) as usize + 1;
    tele::counter_add("msm/calls", 1);
    tele::counter_add("msm/windows", num_windows as u64);

    // Signed digits for every scalar, recoded once and shared by all
    // windows (scalar-major layout: digit of window `w` for scalar `i`
    // lives at `i * num_windows + w`).
    let mut digits = vec![0i32; points.len() * num_windows];
    let mut skipped_zeros = 0u64;
    for (i, s) in scalars.iter().enumerate() {
        if s.is_zero() {
            skipped_zeros += 1;
            continue; // digits stay 0: the windows skip this point entirely
        }
        let limbs = s.to_canonical_limbs();
        recode_signed(
            &limbs,
            window_bits,
            &mut digits[i * num_windows..(i + 1) * num_windows],
        );
    }

    // Each window is independent; workers take windows round-robin and
    // reuse one pre-sized scheduler arena across all of their windows.
    // Small problems run sequentially — thread spawns cost more than the
    // bucket work below ~2^10 points.
    let workers = if points.len() < (1 << 10) {
        1
    } else {
        threads.clamp(1, num_windows)
    };
    let window_results: Vec<(G1Projective, MsmOps)> = if workers <= 1 {
        let mut arena = BucketArena::new(window_bits, points.len());
        (0..num_windows)
            .map(|w| window_sum_signed(points, &digits, num_windows, w, &mut arena))
            .collect()
    } else {
        let mut results = vec![(G1Projective::identity(), MsmOps::default()); num_windows];
        std::thread::scope(|scope| {
            // Hand each worker a disjoint strided set of result slots.
            let mut slots: Vec<Vec<(usize, &mut (G1Projective, MsmOps))>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (w, slot) in results.iter_mut().enumerate() {
                slots[w % workers].push((w, slot));
            }
            for worker_slots in slots {
                let digits = &digits;
                scope.spawn(move || {
                    let mut arena = BucketArena::new(window_bits, points.len());
                    for (w, slot) in worker_slots {
                        *slot = window_sum_signed(points, digits, num_windows, w, &mut arena);
                    }
                });
            }
        });
        results
    };

    // Aggregate windows from most significant down.
    let mut ops = MsmOps {
        skipped_zeros,
        ..MsmOps::default()
    };
    let mut acc = G1Projective::identity();
    for (i, (w_sum, w_ops)) in window_results.iter().enumerate().rev() {
        if i != num_windows - 1 {
            for _ in 0..window_bits {
                acc = acc.double();
            }
            ops.doublings += u64::from(window_bits);
        }
        ops.bucket_adds += w_ops.bucket_adds;
        ops.reduction_adds += w_ops.reduction_adds;
        acc += *w_sum;
    }
    (acc, ops)
}

/// Recodes a canonical 255-bit scalar into signed base-`2^window_bits`
/// digits in `[-(2^(c-1) - 1), 2^(c-1)]`, one per window.
///
/// Standard carry recoding: a raw digit above `2^(c-1)` becomes
/// `raw - 2^c` and carries `1` into the next window; the last window holds
/// at most the final carry. The digit vector reconstructs the scalar
/// exactly: `Σ_w digit_w · 2^(w·c)`.
fn recode_signed(limbs: &[u64; 4], window_bits: u32, out: &mut [i32]) {
    let half = 1i64 << (window_bits - 1);
    let full = 1i64 << window_bits;
    let mut carry = 0i64;
    for (w, digit) in out.iter_mut().enumerate() {
        let raw = extract_digit(limbs, w, window_bits) as i64 + carry;
        if raw > half {
            *digit = (raw - full) as i32;
            carry = 1;
        } else {
            *digit = raw as i32;
            carry = 0;
        }
    }
    debug_assert_eq!(carry, 0, "top window must absorb the final carry");
}

/// Batched-affine accumulation amortizes one field inversion over a pass
/// of independent affine additions; the scheduling only pays off once a
/// window has this many buckets (2^8 ⇒ n ≥ 2^12 under
/// [`optimal_window_bits`]). Narrower windows accumulate in projective
/// coordinates instead — still with signed digits and half the buckets.
const BATCHED_AFFINE_MIN_BUCKETS: usize = 1 << 8;

/// Reusable per-worker buffers for one window's bucket accumulation —
/// allocated once per worker and recycled across windows instead of
/// reallocating `vec![...; bucket_count]` per window.
struct BucketArena {
    /// Whether this arena runs the batched-affine scheme (wide windows)
    /// or plain projective accumulation (narrow windows).
    batched: bool,
    /// Projective buckets for the non-batched scheme.
    proj_buckets: Vec<G1Projective>,
    /// Bucket-major (counting-sorted) window points; each bucket owns the
    /// segment `starts[b] .. starts[b] + lens[b]`, compacted in place as
    /// the pair-reduction tree collapses it.
    sorted: Vec<G1Affine>,
    /// Per-bucket segment starts (`bucket_count + 1` entries).
    starts: Vec<u32>,
    /// Per-bucket live point count within its segment.
    lens: Vec<u32>,
    /// Buckets still holding ≥ 2 points (current / next pass).
    active: Vec<u32>,
    next_active: Vec<u32>,
    /// Pairs scheduled this pass: `(bucket, a, b)`.
    pairs: Vec<(u32, G1Affine, G1Affine)>,
    /// Slope denominators for `pairs` (batch-inverted in place).
    denoms: Vec<Fq>,
}

impl BucketArena {
    fn new(window_bits: u32, n_hint: usize) -> Self {
        let bucket_count = 1usize << (window_bits - 1);
        let batched = bucket_count >= BATCHED_AFFINE_MIN_BUCKETS;
        Self {
            batched,
            proj_buckets: vec![G1Projective::identity(); if batched { 0 } else { bucket_count }],
            sorted: Vec::with_capacity(if batched { n_hint } else { 0 }),
            starts: vec![0; if batched { bucket_count + 1 } else { 0 }],
            lens: vec![0; if batched { bucket_count } else { 0 }],
            active: Vec::new(),
            next_active: Vec::new(),
            pairs: Vec::new(),
            denoms: Vec::new(),
        }
    }
}

/// Accumulates one window's buckets (batched-affine pair-reduction) and
/// reduces them.
fn window_sum_signed(
    points: &[G1Affine],
    digits: &[i32],
    num_windows: usize,
    window_index: usize,
    arena: &mut BucketArena,
) -> (G1Projective, MsmOps) {
    let mut ops = MsmOps::default();
    let digit_at = |i: usize| digits[i * num_windows + window_index];

    if !arena.batched {
        // Narrow window: accumulate directly in projective coordinates.
        arena
            .proj_buckets
            .iter_mut()
            .for_each(|b| *b = G1Projective::identity());
        let mut occupancy = if tele::is_enabled() {
            vec![0u32; arena.proj_buckets.len()]
        } else {
            Vec::new()
        };
        for (i, point) in points.iter().enumerate() {
            let d = digit_at(i);
            if d == 0 || point.infinity {
                continue;
            }
            let (b, p) = if d > 0 {
                (d as usize - 1, *point)
            } else {
                ((-d) as usize - 1, -*point)
            };
            arena.proj_buckets[b] = arena.proj_buckets[b].add_mixed(&p);
            ops.bucket_adds += 1;
            if let Some(c) = occupancy.get_mut(b) {
                *c += 1;
            }
        }
        // Same histogram the batched path records: occupancy of the hit
        // buckets, window-determined and thus thread-count invariant.
        // Accumulated locally and merged in one recorder access.
        if !occupancy.is_empty() {
            let mut hist = tele::Histogram::default();
            for &c in &occupancy {
                if c > 0 {
                    hist.record(u64::from(c));
                }
            }
            tele::hist_merge("msm/bucket_occupancy", &hist);
        }
        let mut running = G1Projective::identity();
        let mut total = G1Projective::identity();
        for bucket in arena.proj_buckets.iter().rev() {
            running += *bucket;
            total += running;
            ops.reduction_adds += 2;
        }
        return (total, ops);
    }

    let bucket_count = arena.lens.len();
    let bucket_of = |d: i32| if d > 0 { d as u32 - 1 } else { (-d) as u32 - 1 };

    // Counting sort the window's non-zero digits into bucket-major order
    // (a negative digit contributes `-P`, a free affine negation).
    arena.lens.iter_mut().for_each(|l| *l = 0);
    for (i, point) in points.iter().enumerate() {
        let d = digit_at(i);
        if d != 0 && !point.infinity {
            arena.lens[bucket_of(d) as usize] += 1;
        }
    }
    arena.starts[0] = 0;
    for b in 0..bucket_count {
        arena.starts[b + 1] = arena.starts[b] + arena.lens[b];
    }
    if tele::is_enabled() {
        // Occupancy of the hit buckets only — this is the distribution
        // the pair-reduction pass count is logarithmic in. The set of
        // samples is window-determined, so the merged histogram is
        // identical at every thread count. Accumulated locally and
        // merged in one recorder access per window.
        let mut hist = tele::Histogram::default();
        for &l in arena.lens.iter() {
            if l > 0 {
                hist.record(u64::from(l));
            }
        }
        tele::hist_merge("msm/bucket_occupancy", &hist);
    }
    let total_updates = arena.starts[bucket_count] as usize;
    arena.sorted.resize(total_updates, G1Affine::identity());
    {
        // Scatter; `lens` doubles as the per-bucket write cursor and is
        // recomputed from the segment bounds afterwards.
        arena.lens.iter_mut().for_each(|l| *l = 0);
        for (i, point) in points.iter().enumerate() {
            let d = digit_at(i);
            if d == 0 || point.infinity {
                continue;
            }
            let b = bucket_of(d) as usize;
            let pos = arena.starts[b] + arena.lens[b];
            arena.sorted[pos as usize] = if d > 0 { *point } else { -*point };
            arena.lens[b] += 1;
        }
    }

    // Pair-reduction tree: each pass pairs up the surviving points inside
    // every active bucket — pairs are independent affine additions, so
    // one batch inversion serves the entire pass and the pass count is
    // logarithmic in the worst bucket occupancy (robust even when every
    // update hits a single bucket, as in the recoding carry window).
    arena.active.clear();
    for b in 0..bucket_count {
        if arena.lens[b] >= 2 {
            arena.active.push(b as u32);
        }
    }
    let mut inverse_passes = 0u64;
    while !arena.active.is_empty() {
        inverse_passes += 1;
        arena.pairs.clear();
        arena.denoms.clear();
        for &b in &arena.active {
            let s = arena.starts[b as usize] as usize;
            let l = arena.lens[b as usize] as usize;
            for i in 0..l / 2 {
                let a = arena.sorted[s + 2 * i];
                let c = arena.sorted[s + 2 * i + 1];
                // λ denominator: x2 - x1 for distinct x, 2y for doubling;
                // zero marks cancellation (batch_inverse skips zeros and
                // the apply step never reads the placeholder).
                let denom = if a.x != c.x {
                    c.x - a.x
                } else if a.y == c.y {
                    a.y.double()
                } else {
                    Fq::ZERO
                };
                arena.pairs.push((b, a, c));
                arena.denoms.push(denom);
            }
        }
        batch_inverse(&mut arena.denoms);

        // Apply bucket-by-bucket (`pairs` is bucket-major), compacting
        // each segment: pair results first, odd leftover appended.
        arena.next_active.clear();
        let mut pair_idx = 0usize;
        for &b in &arena.active {
            let s = arena.starts[b as usize] as usize;
            let l = arena.lens[b as usize] as usize;
            let mut write = 0usize;
            for _ in 0..l / 2 {
                let (_, a, c) = arena.pairs[pair_idx];
                let inv = &arena.denoms[pair_idx];
                pair_idx += 1;
                ops.bucket_adds += 1;
                if let Some(sum) = affine_add_with_inv(&a, &c, inv) {
                    arena.sorted[s + write] = sum;
                    write += 1;
                }
            }
            if l % 2 == 1 {
                arena.sorted[s + write] = arena.sorted[s + l - 1];
                write += 1;
            }
            arena.lens[b as usize] = write as u32;
            if write >= 2 {
                arena.next_active.push(b);
            }
        }
        std::mem::swap(&mut arena.active, &mut arena.next_active);
    }
    if inverse_passes > 0 {
        tele::counter_add("msm/batch_inverse_passes", inverse_passes);
    }

    // Running-sum reduction: sum_j j * bucket_j with 2 * |buckets| adds.
    let mut running = G1Projective::identity();
    let mut total = G1Projective::identity();
    for b in (0..bucket_count).rev() {
        if arena.lens[b] == 1 {
            running = running.add_mixed(&arena.sorted[arena.starts[b] as usize]);
        }
        total += running;
        ops.reduction_adds += 2;
    }
    (total, ops)
}

/// Affine addition `q + p` given `inv`, the precomputed inverse of the
/// slope denominator (`1/(x_p - x_q)`, or `1/(2 y_q)` for doubling).
///
/// Returns `None` for the identity (cancellation `p = -q`, including the
/// 2-torsion case `y = 0`).
fn affine_add_with_inv(q: &G1Affine, p: &G1Affine, inv: &Fq) -> Option<G1Affine> {
    let lambda = if p.x != q.x {
        (p.y - q.y) * *inv
    } else if p.y == q.y {
        if q.y.is_zero() {
            return None; // 2-torsion: doubling lands on the identity
        }
        let x2 = q.x.square();
        (x2.double() + x2) * *inv
    } else {
        return None; // p = -q
    };
    let x3 = lambda.square() - q.x - p.x;
    let y3 = lambda * (q.x - x3) - q.y;
    Some(G1Affine {
        x: x3,
        y: y3,
        infinity: false,
    })
}

/// The pre-rewrite unsigned-window Pippenger with one projective mixed-add
/// per streamed pair — the `repro perf` regression baseline.
pub fn msm_unsigned(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    msm_unsigned_with_ops(points, scalars).0
}

/// [`msm_unsigned`] plus the operation counts incurred.
pub fn msm_unsigned_with_ops(points: &[G1Affine], scalars: &[Fr]) -> (G1Projective, MsmOps) {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points and scalars must pair up"
    );
    if points.is_empty() {
        return (G1Projective::identity(), MsmOps::default());
    }

    let window_bits = optimal_window_bits(points.len());
    let num_windows = SCALAR_BITS.div_ceil(window_bits) as usize;

    let canonical: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();

    // Each window is independent: accumulate buckets, then reduce.
    let window_results: Vec<(G1Projective, MsmOps)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_windows)
            .map(|w| {
                let canonical = &canonical;
                scope.spawn(move || window_sum_unsigned(points, canonical, w, window_bits))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("window thread"))
            .collect()
    });

    // Aggregate windows from most significant down.
    let mut ops = MsmOps::default();
    let mut acc = G1Projective::identity();
    for (w_sum, w_ops) in window_results.iter().rev() {
        for _ in 0..window_bits {
            acc = acc.double();
        }
        ops.doublings += u64::from(window_bits);
        ops.bucket_adds += w_ops.bucket_adds;
        ops.reduction_adds += w_ops.reduction_adds;
        ops.skipped_zeros += w_ops.skipped_zeros;
        acc += *w_sum;
    }
    // The doublings above over-count by window_bits for the top window
    // (doubling the identity); keep the simple accounting — the model uses
    // scalar_bits doublings total.
    ops.doublings = u64::from(SCALAR_BITS);
    (acc, ops)
}

fn window_sum_unsigned(
    points: &[G1Affine],
    canonical: &[[u64; 4]],
    window_index: usize,
    window_bits: u32,
) -> (G1Projective, MsmOps) {
    let mut ops = MsmOps::default();
    let bucket_count = (1usize << window_bits) - 1;
    let mut buckets = vec![G1Projective::identity(); bucket_count];

    for (point, limbs) in points.iter().zip(canonical) {
        let digit = extract_digit(limbs, window_index, window_bits);
        if digit == 0 {
            ops.skipped_zeros += 1;
            continue;
        }
        buckets[digit - 1] = buckets[digit - 1].add_mixed(point);
        ops.bucket_adds += 1;
    }

    // Running-sum reduction: sum_j j * bucket_j with 2 * |buckets| adds.
    let mut running = G1Projective::identity();
    let mut total = G1Projective::identity();
    for bucket in buckets.iter().rev() {
        running += *bucket;
        total += running;
        ops.reduction_adds += 2;
    }
    (total, ops)
}

/// Extracts the `window_index`-th base-`2^window_bits` digit of a 256-bit
/// little-endian integer.
fn extract_digit(limbs: &[u64; 4], window_index: usize, window_bits: u32) -> usize {
    let bit_offset = window_index * window_bits as usize;
    let limb_index = bit_offset / 64;
    if limb_index >= 4 {
        return 0;
    }
    let shift = (bit_offset % 64) as u32;
    let mut digit = limbs[limb_index] >> shift;
    if shift + window_bits > 64 && limb_index + 1 < 4 {
        digit |= limbs[limb_index + 1] << (64 - shift);
    }
    (digit & ((1u64 << window_bits) - 1)) as usize
}

/// Reference MSM by direct double-and-add; used to validate [`msm`].
pub fn msm_naive(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(points.len(), scalars.len());
    points.iter().zip(scalars).map(|(p, s)| p.mul_fr(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_inputs(n: usize, seed: u64) -> (Vec<G1Affine>, Vec<Fr>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        (points, scalars)
    }

    #[test]
    fn matches_naive_small() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            let (points, scalars) = random_inputs(n, n as u64);
            assert_eq!(
                msm(&points, &scalars),
                msm_naive(&points, &scalars),
                "n={n}"
            );
        }
    }

    #[test]
    fn matches_naive_medium() {
        let (points, scalars) = random_inputs(200, 99);
        assert_eq!(msm(&points, &scalars), msm_naive(&points, &scalars));
    }

    #[test]
    fn matches_unsigned_reference() {
        for n in [5usize, 64, 300] {
            let (points, scalars) = random_inputs(n, 1000 + n as u64);
            assert_eq!(
                msm(&points, &scalars),
                msm_unsigned(&points, &scalars),
                "n={n}"
            );
        }
    }

    #[test]
    fn batched_affine_path_matches_unsigned() {
        // n = 4096 gives 9-bit windows (256 buckets), the smallest size
        // where the batched-affine pair-reduction scheduler activates —
        // every other test in this suite stays on the narrow-window
        // projective path. Points come from a generator chain (cheap to
        // build) and scalars mix dense randoms with zeros and duplicates
        // so buckets both collide and cancel.
        let n = 4096;
        let g = G1Affine::generator();
        let mut acc = G1Projective::from(g);
        let mut chain = Vec::with_capacity(n);
        for _ in 0..n {
            chain.push(acc);
            acc = acc.add_mixed(&g);
        }
        let points = crate::g1::batch_normalize(&chain);
        let mut rng = StdRng::seed_from_u64(44);
        let dup = Fr::random(&mut rng);
        let scalars: Vec<Fr> = (0..n)
            .map(|i| match i % 8 {
                0 => Fr::ZERO,
                1 | 2 => dup,
                _ => Fr::random(&mut rng),
            })
            .collect();
        let (signed, ops) = msm_with_ops_threads(&points, &scalars, 1);
        let (par, par_ops) = msm_with_ops_threads(&points, &scalars, 4);
        let (unsigned, _) = msm_unsigned_with_ops(&points, &scalars);
        assert_eq!(signed, unsigned);
        assert_eq!(par, signed);
        assert_eq!(par_ops, ops);
        assert_eq!(ops.skipped_zeros, (n / 8) as u64);
    }

    #[test]
    fn empty_msm_is_identity() {
        assert!(msm(&[], &[]).is_identity());
        assert!(msm_unsigned(&[], &[]).is_identity());
    }

    #[test]
    fn sparse_scalars_are_skipped() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100;
        let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        // 90% zeros, like the paper's witness MLEs.
        let scalars: Vec<Fr> = (0..n)
            .map(|_| {
                if rng.gen_ratio(9, 10) {
                    Fr::ZERO
                } else {
                    Fr::random(&mut rng)
                }
            })
            .collect();
        let (result, ops) = msm_with_ops(&points, &scalars);
        assert_eq!(result, msm_naive(&points, &scalars));
        assert!(ops.skipped_zeros > 0);
    }

    #[test]
    fn binary_scalars() {
        // Selector MLEs are 0/1-valued; the MSM must handle them exactly.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 64;
        let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        let scalars: Vec<Fr> = (0..n)
            .map(|i| if i % 2 == 0 { Fr::ONE } else { Fr::ZERO })
            .collect();
        let expected: G1Projective = points
            .iter()
            .step_by(2)
            .map(|p| G1Projective::from(*p))
            .sum();
        assert_eq!(msm(&points, &scalars), expected);
    }

    #[test]
    fn repeated_points_collide_in_buckets() {
        // Many copies of one point with one scalar force maximal bucket
        // collisions (every update targets the same bucket), exercising
        // the deferred-pass scheduler and the affine doubling path.
        let mut rng = StdRng::seed_from_u64(40);
        let p = G1Affine::random(&mut rng);
        let s = Fr::random(&mut rng);
        let n = 50;
        let points = vec![p; n];
        let scalars = vec![s; n];
        assert_eq!(msm(&points, &scalars), msm_naive(&points, &scalars));
    }

    #[test]
    fn cancelling_pairs_reach_identity_buckets() {
        // P and -P with the same scalar cancel inside one bucket; the
        // bucket must return to the empty state and accept later points.
        let mut rng = StdRng::seed_from_u64(41);
        let p = G1Affine::random(&mut rng);
        let q = G1Affine::random(&mut rng);
        let s = Fr::random(&mut rng);
        let points = vec![p, -p, q];
        let scalars = vec![s, s, s];
        assert_eq!(msm(&points, &scalars), msm_naive(&points, &scalars));
    }

    #[test]
    fn identity_points_are_skipped() {
        let (mut points, scalars) = random_inputs(10, 43);
        points[3] = G1Affine::identity();
        points[7] = G1Affine::identity();
        assert_eq!(msm(&points, &scalars), msm_naive(&points, &scalars));
    }

    #[test]
    fn digit_extraction_reassembles_scalar() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = Fr::random(&mut rng);
        let limbs = s.to_canonical_limbs();
        for bits in [4u32, 7, 8, 9, 13] {
            let windows = 256u32.div_ceil(bits) as usize;
            // Σ digit_w * 2^(w*bits) should reconstruct the scalar.
            let g = G1Projective::generator();
            let mut acc = G1Projective::identity();
            for w in (0..windows).rev() {
                for _ in 0..bits {
                    acc = acc.double();
                }
                let d = extract_digit(&limbs, w, bits);
                acc += g.mul_fr(&Fr::from_u64(d as u64));
            }
            assert_eq!(acc, g.mul_fr(&s), "window bits {bits}");
        }
    }

    #[test]
    fn signed_recoding_reassembles_scalar() {
        let mut rng = StdRng::seed_from_u64(8);
        for bits in [4u32, 7, 9, 13] {
            let s = Fr::random(&mut rng);
            let limbs = s.to_canonical_limbs();
            let num_windows = SCALAR_BITS.div_ceil(bits) as usize + 1;
            let mut digits = vec![0i32; num_windows];
            recode_signed(&limbs, bits, &mut digits);
            let half = 1i32 << (bits - 1);
            assert!(digits.iter().all(|d| -half < *d && *d <= half));
            // Σ digit_w * 2^(w*bits) * G should reconstruct s * G.
            let g = G1Projective::generator();
            let mut acc = G1Projective::identity();
            for &d in digits.iter().rev() {
                for _ in 0..bits {
                    acc = acc.double();
                }
                let term = g.mul_fr(&Fr::from_u64(d.unsigned_abs() as u64));
                acc += if d < 0 { -term } else { term };
            }
            assert_eq!(acc, g.mul_fr(&s), "window bits {bits}");
        }
    }

    #[test]
    fn ops_accounting_is_consistent() {
        let (points, scalars) = random_inputs(128, 11);
        let (_, ops) = msm_with_ops(&points, &scalars);
        let window_bits = optimal_window_bits(128);
        let windows = SCALAR_BITS.div_ceil(window_bits) as u64 + 1;
        // Reduction adds: 2 per bucket per window; signed digits halve the
        // bucket count to 2^(c-1).
        assert_eq!(
            ops.reduction_adds,
            windows * 2 * (1u64 << (window_bits - 1))
        );
        // At most one bucket add per (point, window) pair.
        assert!(ops.bucket_adds <= 128 * windows);
        // Window aggregation doubles between consecutive windows.
        assert_eq!(ops.doublings, (windows - 1) * u64::from(window_bits));
    }

    #[test]
    fn ops_independent_of_thread_count() {
        let (points, scalars) = random_inputs(200, 12);
        let (r1, o1) = msm_with_ops_threads(&points, &scalars, 1);
        let (r4, o4) = msm_with_ops_threads(&points, &scalars, 4);
        let (r9, o9) = msm_with_ops_threads(&points, &scalars, 9);
        assert_eq!(r1, r4);
        assert_eq!(r1, r9);
        assert_eq!(o1, o4);
        assert_eq!(o1, o9);
    }

    #[test]
    fn unsigned_ops_accounting_unchanged() {
        let (points, scalars) = random_inputs(128, 11);
        let (_, ops) = msm_unsigned_with_ops(&points, &scalars);
        let window_bits = optimal_window_bits(128);
        let windows = SCALAR_BITS.div_ceil(window_bits) as u64;
        assert_eq!(
            ops.reduction_adds,
            windows * 2 * ((1u64 << window_bits) - 1)
        );
        assert!(ops.bucket_adds <= 128 * windows);
        assert_eq!(ops.doublings, u64::from(SCALAR_BITS));
    }
}
