//! Multi-scalar multiplication (MSM) via Pippenger's bucket method.
//!
//! MSM is the dominant kernel of HyperPlonk's polynomial commitments
//! (paper §II-B): `S = Σ k_i · P_i`. The implementation mirrors the
//! structure the paper's MSM unit accelerates — per-window bucket
//! accumulation out of streamed (scalar, point) pairs, a running-sum bucket
//! reduction, and a final window aggregation — and reports the operation
//! counts the hardware model consumes. Zero scalars are skipped, which is
//! exactly how the accelerator's *sparse MSMs* over ~90%-sparse witness
//! MLEs gain their advantage (§IV-B1, §IV-B3).

use crate::g1::{G1Affine, G1Projective};
use zkphire_field::Fr;

/// Operation counts for one MSM, used to validate the hardware MSM model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsmOps {
    /// Point additions performed during bucket accumulation.
    pub bucket_adds: u64,
    /// Point additions performed during bucket reduction.
    pub reduction_adds: u64,
    /// Point doublings performed during window aggregation.
    pub doublings: u64,
    /// Scalars skipped because they were zero.
    pub skipped_zeros: u64,
}

impl MsmOps {
    /// Total point additions plus doublings (the PADD-equivalent work).
    pub fn total_padds(&self) -> u64 {
        self.bucket_adds + self.reduction_adds + self.doublings
    }
}

/// Picks a window width (in bits) for a problem of `n` points.
///
/// The standard Pippenger heuristic `~ log2(n)`; the paper's design-space
/// exploration sweeps windows of 7–10 bits for its hardware (Table III).
pub fn optimal_window_bits(n: usize) -> u32 {
    match n {
        0..=3 => 1,
        4..=31 => 3,
        _ => {
            let bits = usize::BITS - n.leading_zeros() - 1;
            (bits.saturating_sub(3)).clamp(4, 16)
        }
    }
}

/// Computes `Σ scalars[i] * points[i]` with Pippenger's algorithm,
/// parallelized across windows.
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
pub fn msm(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    msm_with_ops(points, scalars).0
}

/// [`msm`] plus the operation counts incurred.
pub fn msm_with_ops(points: &[G1Affine], scalars: &[Fr]) -> (G1Projective, MsmOps) {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points and scalars must pair up"
    );
    if points.is_empty() {
        return (G1Projective::identity(), MsmOps::default());
    }

    let window_bits = optimal_window_bits(points.len());
    let scalar_bits = 255u32;
    let num_windows = scalar_bits.div_ceil(window_bits) as usize;

    let canonical: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();

    // Each window is independent: accumulate buckets, then reduce.
    let window_results: Vec<(G1Projective, MsmOps)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_windows)
            .map(|w| {
                let canonical = &canonical;
                scope.spawn(move || window_sum(points, canonical, w, window_bits))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("window thread"))
            .collect()
    });

    // Aggregate windows from most significant down.
    let mut ops = MsmOps::default();
    let mut acc = G1Projective::identity();
    for (w_sum, w_ops) in window_results.iter().rev() {
        for _ in 0..window_bits {
            acc = acc.double();
        }
        ops.doublings += u64::from(window_bits);
        ops.bucket_adds += w_ops.bucket_adds;
        ops.reduction_adds += w_ops.reduction_adds;
        ops.skipped_zeros += w_ops.skipped_zeros;
        acc += *w_sum;
    }
    // The doublings above over-count by window_bits for the top window
    // (doubling the identity); keep the simple accounting — the model uses
    // scalar_bits doublings total.
    ops.doublings = u64::from(scalar_bits);
    (acc, ops)
}

fn window_sum(
    points: &[G1Affine],
    canonical: &[[u64; 4]],
    window_index: usize,
    window_bits: u32,
) -> (G1Projective, MsmOps) {
    let mut ops = MsmOps::default();
    let bucket_count = (1usize << window_bits) - 1;
    let mut buckets = vec![G1Projective::identity(); bucket_count];

    for (point, limbs) in points.iter().zip(canonical) {
        let digit = extract_digit(limbs, window_index, window_bits);
        if digit == 0 {
            ops.skipped_zeros += 1;
            continue;
        }
        buckets[digit - 1] = buckets[digit - 1].add_mixed(point);
        ops.bucket_adds += 1;
    }

    // Running-sum reduction: sum_j j * bucket_j with 2 * |buckets| adds.
    let mut running = G1Projective::identity();
    let mut total = G1Projective::identity();
    for bucket in buckets.iter().rev() {
        running += *bucket;
        total += running;
        ops.reduction_adds += 2;
    }
    (total, ops)
}

/// Extracts the `window_index`-th base-`2^window_bits` digit of a 256-bit
/// little-endian integer.
fn extract_digit(limbs: &[u64; 4], window_index: usize, window_bits: u32) -> usize {
    let bit_offset = window_index * window_bits as usize;
    let limb_index = bit_offset / 64;
    if limb_index >= 4 {
        return 0;
    }
    let shift = (bit_offset % 64) as u32;
    let mut digit = limbs[limb_index] >> shift;
    if shift + window_bits > 64 && limb_index + 1 < 4 {
        digit |= limbs[limb_index + 1] << (64 - shift);
    }
    (digit & ((1u64 << window_bits) - 1)) as usize
}

/// Reference MSM by direct double-and-add; used to validate [`msm`].
pub fn msm_naive(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(points.len(), scalars.len());
    points.iter().zip(scalars).map(|(p, s)| p.mul_fr(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_inputs(n: usize, seed: u64) -> (Vec<G1Affine>, Vec<Fr>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        (points, scalars)
    }

    #[test]
    fn matches_naive_small() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            let (points, scalars) = random_inputs(n, n as u64);
            assert_eq!(
                msm(&points, &scalars),
                msm_naive(&points, &scalars),
                "n={n}"
            );
        }
    }

    #[test]
    fn matches_naive_medium() {
        let (points, scalars) = random_inputs(200, 99);
        assert_eq!(msm(&points, &scalars), msm_naive(&points, &scalars));
    }

    #[test]
    fn empty_msm_is_identity() {
        assert!(msm(&[], &[]).is_identity());
    }

    #[test]
    fn sparse_scalars_are_skipped() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100;
        let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        // 90% zeros, like the paper's witness MLEs.
        let scalars: Vec<Fr> = (0..n)
            .map(|_| {
                if rng.gen_ratio(9, 10) {
                    Fr::ZERO
                } else {
                    Fr::random(&mut rng)
                }
            })
            .collect();
        let (result, ops) = msm_with_ops(&points, &scalars);
        assert_eq!(result, msm_naive(&points, &scalars));
        assert!(ops.skipped_zeros > 0);
    }

    #[test]
    fn binary_scalars() {
        // Selector MLEs are 0/1-valued; the MSM must handle them exactly.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 64;
        let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        let scalars: Vec<Fr> = (0..n)
            .map(|i| if i % 2 == 0 { Fr::ONE } else { Fr::ZERO })
            .collect();
        let expected: G1Projective = points
            .iter()
            .step_by(2)
            .map(|p| G1Projective::from(*p))
            .sum();
        assert_eq!(msm(&points, &scalars), expected);
    }

    #[test]
    fn digit_extraction_reassembles_scalar() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = Fr::random(&mut rng);
        let limbs = s.to_canonical_limbs();
        for bits in [4u32, 7, 8, 9, 13] {
            let windows = 256u32.div_ceil(bits) as usize;
            // Σ digit_w * 2^(w*bits) should reconstruct the scalar.
            let g = G1Projective::generator();
            let mut acc = G1Projective::identity();
            for w in (0..windows).rev() {
                for _ in 0..bits {
                    acc = acc.double();
                }
                let d = extract_digit(&limbs, w, bits);
                acc += g.mul_fr(&Fr::from_u64(d as u64));
            }
            assert_eq!(acc, g.mul_fr(&s), "window bits {bits}");
        }
    }

    #[test]
    fn ops_accounting_is_consistent() {
        let (points, scalars) = random_inputs(128, 11);
        let (_, ops) = msm_with_ops(&points, &scalars);
        let window_bits = optimal_window_bits(128);
        let windows = 255u32.div_ceil(window_bits) as u64;
        // Reduction adds: 2 per bucket per window.
        assert_eq!(
            ops.reduction_adds,
            windows * 2 * ((1u64 << window_bits) - 1)
        );
        assert!(ops.bucket_adds <= 128 * windows);
    }
}
