//! TCP front-end for the proving service: the untrusted network edge.
//!
//! [`NetServer`] fronts one [`ProvingService`] with the length-prefixed
//! protocol in [`crate::codec`], on `std` threads (no async runtime in
//! this container):
//!
//! ```text
//! accept loop ──► handler pool ──► ProvingService ──► router thread
//! (nonblocking    (max_conns        (submit under      (outcome stream
//!  listener,       threads, one     the admission       → per-connection
//!  hard cap →      connection       mutex; queue        channels; drops
//!  Busy frame)     each; framed     depth → retry       for dead peers
//!                  read/write,      hints)              counted, never
//!                  deadlines)                           panicking)
//! ```
//!
//! Robustness contract, enforced end to end:
//!
//! - **Nothing a peer sends can panic the server.** Garbage bytes,
//!   oversized length declarations, truncated frames, unknown types —
//!   every one decodes to a typed [`crate::codec::FrameError`], is answered with a
//!   structured [`Frame::Error`], and closes that connection only.
//!   (`no_panic_gate` scans this module like the rest of the crate.)
//! - **Slow peers cannot hold resources.** A connection mid-frame past
//!   [`ServeOpts::read_timeout_ms`] is closed as `stalled` (slow-loris
//!   defense); one silent between frames past
//!   [`ServeOpts::idle_timeout_ms`] is reaped as `idle_timeout`; the
//!   handler pool is hard-capped at [`ServeOpts::max_conns`], and the
//!   connection past the cap gets [`Frame::Busy`] with a live
//!   retry-after hint, not a queue slot.
//! - **Backpressure is visible on the wire.** Tenant-cap and
//!   queue-full rejections, brown-out sheds, and drain-time refusals
//!   come back as distinct [`Frame::Rejected`] reasons carrying
//!   [`ProvingService::retry_after_hint_ms`].
//! - **Accounting survives the network.** Terminal outcomes ride the
//!   service's [`crate::ServeConfig::with_outcome_stream`] channel to a
//!   router that forwards each to the connection that submitted it; a
//!   peer that disconnected mid-proof costs a counted
//!   [`NetStats::outcomes_dropped`], never a lost record — the
//!   post-drain [`ServeReport`] still satisfies conservation and
//!   [`crate::reconcile_wall`] exactly.
//!
//! See `docs/SERVE.md` for the frame grammar and the failure-mode
//! matrix; `crates/bench`'s `repro net` drives every row of it over
//! loopback.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zkphire_fleet::{OutcomeRecord, RequestClass};
use zkphire_telemetry::{wall_event, WallEventKind};

use crate::codec::{
    decode_frame, encode_frame, outcome_frame, ErrorCode, Frame, RejectReason, MAX_FRAME, VERSION,
};
use crate::error::ServeError;
use crate::service::{ProvingService, ServeConfig, ServeReport};

/// Accept-loop poll period while the nonblocking listener has nothing
/// to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Read-slice granularity: the blocking-read timeout each handler loop
/// iteration waits before re-checking its outcome channel, stall
/// deadline, and the drain flag.
const READ_SLICE: Duration = Duration::from_millis(5);
/// Per-connection write deadline. Loopback writes of ≤ [`MAX_FRAME`]
/// bytes never block this long unless the peer stopped reading, at
/// which point the connection is torn down as an I/O error.
const WRITE_TIMEOUT: Duration = Duration::from_millis(2000);

/// Why a connection ended — the discriminant recorded in the
/// [`WallEventKind::ConnClose`] event's `arg` and tallied in
/// [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Flushed and closed with a final [`Frame::Bye`].
    Drained,
    /// Peer closed cleanly with nothing buffered and nothing pending.
    ClientClosed,
    /// Peer half-closed with a partial frame buffered.
    Truncated,
    /// Peer vanished with proofs still in flight.
    Disconnected,
    /// Peer sent bytes that failed to parse, or a server-only frame.
    Protocol,
    /// Peer went silent mid-frame past the read deadline.
    Stalled,
    /// Peer sat idle between frames past the idle deadline.
    Idle,
    /// The service failed internally handling a valid frame.
    Internal,
    /// A transport read/write failed outright.
    Io,
}

impl CloseReason {
    fn discriminant(self) -> u64 {
        match self {
            CloseReason::Drained => 0,
            CloseReason::ClientClosed => 1,
            CloseReason::Truncated => 2,
            CloseReason::Disconnected => 3,
            CloseReason::Protocol => 4,
            CloseReason::Stalled => 5,
            CloseReason::Idle => 6,
            CloseReason::Internal => 7,
            CloseReason::Io => 8,
        }
    }
}

/// Counters the front-end accumulates while serving, snapshotted into
/// the [`NetReport`] at shutdown. All motion is monotonic and relaxed:
/// these are tallies, not synchronization.
#[derive(Debug, Default)]
struct StatsInner {
    conns_accepted: AtomicU64,
    conns_refused: AtomicU64,
    clean_closes: AtomicU64,
    protocol_errors: AtomicU64,
    stalled_closes: AtomicU64,
    idle_closes: AtomicU64,
    truncated_closes: AtomicU64,
    disconnects: AtomicU64,
    submits: AtomicU64,
    accepted_submits: AtomicU64,
    rejected_submits: AtomicU64,
    outcomes_streamed: AtomicU64,
    outcomes_dropped: AtomicU64,
}

/// Snapshot of the front-end's wire-level accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Connections handed to the handler pool.
    pub conns_accepted: u64,
    /// Connections refused at the hard cap with a [`Frame::Busy`].
    pub conns_refused: u64,
    /// Connections that ended with a clean drain (`Bye`) or a clean
    /// peer close.
    pub clean_closes: u64,
    /// Connections closed for unparsable bytes or protocol misuse.
    pub protocol_errors: u64,
    /// Connections closed mid-frame by the read deadline.
    pub stalled_closes: u64,
    /// Connections reaped between frames by the idle deadline.
    pub idle_closes: u64,
    /// Connections whose peer half-closed with a partial frame.
    pub truncated_closes: u64,
    /// Connections whose peer vanished with proofs in flight.
    pub disconnects: u64,
    /// Submit frames received.
    pub submits: u64,
    /// Submits admitted by the service.
    pub accepted_submits: u64,
    /// Submits refused with a [`Frame::Rejected`].
    pub rejected_submits: u64,
    /// Outcome frames delivered to peers.
    pub outcomes_streamed: u64,
    /// Outcomes whose peer was gone at delivery time — counted here,
    /// still present in the drain report's accounting.
    pub outcomes_dropped: u64,
}

impl StatsInner {
    fn snapshot(&self) -> NetStats {
        NetStats {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            clean_closes: self.clean_closes.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            stalled_closes: self.stalled_closes.load(Ordering::Relaxed),
            idle_closes: self.idle_closes.load(Ordering::Relaxed),
            truncated_closes: self.truncated_closes.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            submits: self.submits.load(Ordering::Relaxed),
            accepted_submits: self.accepted_submits.load(Ordering::Relaxed),
            rejected_submits: self.rejected_submits.load(Ordering::Relaxed),
            outcomes_streamed: self.outcomes_streamed.load(Ordering::Relaxed),
            outcomes_dropped: self.outcomes_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Everything one served run produced: the drained service's report
/// plus the wire-level accounting around it.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// The fronted service's own drain report — same conservation and
    /// [`crate::reconcile_wall`] contract as an in-process run.
    pub serve: ServeReport,
    /// Wire-level counters.
    pub stats: NetStats,
}

/// Outcome routing table: request id → the submitting connection's
/// outcome channel. The router owns removal; handlers only insert.
type Registry = Arc<Mutex<BTreeMap<u64, Sender<OutcomeRecord>>>>;

/// Recovers a poisoned mutex instead of propagating the panic that
/// poisoned it: the guarded state (registry map, idle list) stays
/// structurally valid across a panicking peer thread, and the no-panic
/// contract matters more than poison propagation here.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Clamps a millisecond hint into the `u32` the wire carries, floored
/// at 1 so "retry immediately" is still a positive wait.
fn hint_u32(ms: f64) -> u32 {
    if !ms.is_finite() || ms < 1.0 {
        1
    } else if ms >= u32::MAX as f64 {
        u32::MAX
    } else {
        ms.ceil() as u32
    }
}

fn net_err(op: &'static str, e: &std::io::Error) -> ServeError {
    ServeError::Net {
        op,
        detail: e.to_string(),
    }
}

/// The TCP front-end: owns the listener, the bounded handler pool, the
/// outcome router, and the [`ProvingService`] they front.
pub struct NetServer {
    service: Option<Arc<ProvingService>>,
    local_addr: SocketAddr,
    draining: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
    stats: Arc<StatsInner>,
}

impl NetServer {
    /// Starts the fronted service and binds the listener at
    /// `cfg.opts.addr` (port 0 = OS-assigned; see
    /// [`Self::local_addr`]). If `cfg` already carries an outcome
    /// stream, the router tees every record to it after routing.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] if the bind fails, plus everything
    /// [`ProvingService::start`] can return.
    pub fn start(mut cfg: ServeConfig) -> Result<Self, ServeError> {
        let tee = cfg.outcome_tx.take();
        let (router_tx, router_rx) = mpsc::channel::<OutcomeRecord>();
        cfg.outcome_tx = Some(router_tx);
        let opts = cfg.opts;

        let listener = TcpListener::bind(opts.addr).map_err(|e| net_err("bind", &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| net_err("local_addr", &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err("set_nonblocking", &e))?;

        let service = Arc::new(ProvingService::start(cfg)?);
        let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));
        let stats = Arc::new(StatsInner::default());
        let draining = Arc::new(AtomicBool::new(false));

        // The router: one thread draining the service's outcome stream
        // into per-connection channels. It exits when the service's
        // sender side drops at drain. A record whose id was never
        // registered belongs to an in-process rejection or a non-net
        // submitter — not ours to deliver, silently skipped. A record
        // whose connection hung up is a counted drop, and the router
        // (not the handler) removes dead entries so the table cannot
        // leak.
        let router = {
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("zkphire-net-router".into())
                .spawn(move || {
                    for rec in router_rx {
                        let tx = lock_or_recover(&registry).get(&rec.id).cloned();
                        if let Some(tx) = tx {
                            if tx.send(rec).is_err() {
                                stats.outcomes_dropped.fetch_add(1, Ordering::Relaxed);
                            }
                            lock_or_recover(&registry).remove(&rec.id);
                        }
                        if let Some(tee) = &tee {
                            let _ = tee.send(rec);
                        }
                    }
                })
                .map_err(|e| ServeError::Invariant(format!("spawn net router: {e}")))?
        };

        // The handler pool: `max_conns` threads, each with a private
        // depth-1 handoff channel, registered on an idle stack. The
        // acceptor pops an idle handler per connection; an empty stack
        // IS the hard cap.
        let idle: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new((0..opts.max_conns).collect()));
        let mut handler_txs: Vec<SyncSender<(TcpStream, u64)>> = Vec::new();
        let mut handlers = Vec::new();
        for h in 0..opts.max_conns {
            let (tx, rx) = mpsc::sync_channel::<(TcpStream, u64)>(1);
            handler_txs.push(tx);
            let service = Arc::clone(&service);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let draining = Arc::clone(&draining);
            let idle = Arc::clone(&idle);
            let handle = std::thread::Builder::new()
                .name(format!("zkphire-net-handler-{h}"))
                .spawn(move || {
                    handler_pool_loop(h, &rx, &service, &registry, &stats, &draining, &idle, opts)
                })
                .map_err(|e| ServeError::Invariant(format!("spawn net handler {h}: {e}")))?;
            handlers.push(handle);
        }

        let acceptor = {
            let service = Arc::clone(&service);
            let stats = Arc::clone(&stats);
            let draining = Arc::clone(&draining);
            let idle = Arc::clone(&idle);
            std::thread::Builder::new()
                .name("zkphire-net-acceptor".into())
                .spawn(move || {
                    accept_loop(&listener, handler_txs, &service, &stats, &draining, &idle)
                })
                .map_err(|e| ServeError::Invariant(format!("spawn net acceptor: {e}")))?
        };

        Ok(Self {
            service: Some(service),
            local_addr,
            draining,
            acceptor: Some(acceptor),
            handlers,
            router: Some(router),
            stats,
        })
    }

    /// The address the listener actually bound — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The fronted service, for in-process probes (queue depth, clock)
    /// alongside wire traffic.
    ///
    /// # Errors
    ///
    /// [`ServeError::AlreadyShutDown`] after [`Self::shutdown`].
    pub fn service(&self) -> Result<&ProvingService, ServeError> {
        self.service.as_deref().ok_or(ServeError::AlreadyShutDown)
    }

    /// Live snapshot of the wire counters.
    pub fn stats(&self) -> NetStats {
        self.stats.snapshot()
    }

    /// Graceful drain: stop accepting, flush every in-flight
    /// connection (pending outcomes stream out, then `Bye`), join the
    /// pool, then drain the fronted service itself to a
    /// [`ServeReport`] whose conservation and
    /// [`crate::reconcile_wall`] contracts still hold.
    ///
    /// # Errors
    ///
    /// [`ServeError::AlreadyShutDown`] on a second call; otherwise
    /// whatever [`ProvingService::shutdown`] reports.
    pub fn shutdown(&mut self) -> Result<NetReport, ServeError> {
        let service = self.service.take().ok_or(ServeError::AlreadyShutDown)?;
        self.draining.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            a.join()
                .map_err(|_| ServeError::Invariant("net acceptor thread panicked".into()))?;
        }
        // The acceptor dropped the pool's handoff senders on exit, so
        // every parked handler unblocks; ones mid-connection see the
        // drain flag, flush, and say Bye.
        for (h, handle) in self.handlers.drain(..).enumerate() {
            handle
                .join()
                .map_err(|_| ServeError::Invariant(format!("net handler {h} thread panicked")))?;
        }
        let service = Arc::try_unwrap(service).map_err(|_| {
            ServeError::Invariant("net service still shared after pool join".into())
        })?;
        let serve = service.shutdown()?;
        // The service's drain dropped the router's sender; the router
        // finishes forwarding whatever was in flight and exits.
        if let Some(r) = self.router.take() {
            r.join()
                .map_err(|_| ServeError::Invariant("net router thread panicked".into()))?;
        }
        Ok(NetReport {
            serve,
            stats: self.stats.snapshot(),
        })
    }
}

impl Drop for NetServer {
    /// Best-effort: raises the drain flag so the acceptor and pool
    /// wind down even if [`Self::shutdown`] was never called. No joins
    /// here — drop must not block.
    fn drop(&mut self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// The accept loop: nonblocking accept + short poll so the drain flag
/// is honored within [`ACCEPT_POLL`]. A connection with no idle
/// handler gets a [`Frame::Busy`] carrying the live retry-after hint
/// and an immediate close — the cap spends no memory on excess peers.
fn accept_loop(
    listener: &TcpListener,
    handler_txs: Vec<SyncSender<(TcpStream, u64)>>,
    service: &ProvingService,
    stats: &StatsInner,
    draining: &AtomicBool,
    idle: &Mutex<Vec<usize>>,
) {
    let mut next_conn_id: u64 = 0;
    while !draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn_id;
                next_conn_id += 1;
                let slot = lock_or_recover(idle).pop();
                match slot {
                    Some(h) => {
                        stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                        wall_event(
                            WallEventKind::ConnOpen,
                            conn_id,
                            0,
                            0,
                            service.now_ms(),
                            0.0,
                        );
                        // Depth-1 channel to an idle handler: the send
                        // cannot block. A send error means the handler
                        // died; put the connection down and retire the
                        // slot rather than panic.
                        if handler_txs
                            .get(h)
                            .is_none_or(|tx| tx.send((stream, conn_id)).is_err())
                        {
                            stats.conns_refused.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => {
                        stats.conns_refused.fetch_add(1, Ordering::Relaxed);
                        let hint = hint_u32(service.retry_after_hint_ms());
                        wall_event(
                            WallEventKind::ConnBusy,
                            conn_id,
                            0,
                            0,
                            service.now_ms(),
                            f64::from(hint),
                        );
                        let mut stream = stream;
                        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                        let _ = stream.write_all(&encode_frame(&Frame::Busy {
                            retry_after_ms: hint,
                        }));
                        // stream drops: FIN closes the connection.
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (peer reset during handshake):
            // keep serving. The listener socket itself cannot error
            // permanently in a way worth crashing the loop over.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // handler_txs drop here, unparking every idle handler for exit.
}

/// One pool slot: park on the private handoff channel, serve the
/// connection start to finish, re-register as idle, repeat. Exits when
/// the acceptor drops the channel at drain.
#[allow(clippy::too_many_arguments)]
fn handler_pool_loop(
    slot: usize,
    rx: &Receiver<(TcpStream, u64)>,
    service: &ProvingService,
    registry: &Registry,
    stats: &StatsInner,
    draining: &AtomicBool,
    idle: &Mutex<Vec<usize>>,
    opts: crate::ServeOpts,
) {
    while let Ok((stream, conn_id)) = rx.recv() {
        let reason = serve_conn(stream, service, registry, stats, draining, &opts);
        match reason {
            CloseReason::Drained | CloseReason::ClientClosed => {
                stats.clean_closes.fetch_add(1, Ordering::Relaxed)
            }
            CloseReason::Truncated => stats.truncated_closes.fetch_add(1, Ordering::Relaxed),
            CloseReason::Disconnected => stats.disconnects.fetch_add(1, Ordering::Relaxed),
            CloseReason::Protocol => stats.protocol_errors.fetch_add(1, Ordering::Relaxed),
            CloseReason::Stalled => stats.stalled_closes.fetch_add(1, Ordering::Relaxed),
            CloseReason::Idle => stats.idle_closes.fetch_add(1, Ordering::Relaxed),
            CloseReason::Internal | CloseReason::Io => 0,
        };
        wall_event(
            WallEventKind::ConnClose,
            conn_id,
            0,
            reason.discriminant(),
            service.now_ms(),
            0.0,
        );
        lock_or_recover(idle).push(slot);
    }
}

/// Serves one connection to completion. Returns how it closed; every
/// abnormal path writes a final [`Frame::Error`] naming the cause
/// (best-effort — the peer may already be gone) before the socket
/// drops.
fn serve_conn(
    mut stream: TcpStream,
    service: &ProvingService,
    registry: &Registry,
    stats: &StatsInner,
    draining: &AtomicBool,
    opts: &crate::ServeOpts,
) -> CloseReason {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    if stream.set_read_timeout(Some(READ_SLICE)).is_err() {
        return CloseReason::Io;
    }
    if stream
        .write_all(&encode_frame(&Frame::Welcome {
            version: VERSION,
            max_frame: MAX_FRAME as u32,
        }))
        .is_err()
    {
        return CloseReason::Io;
    }

    let (outcome_tx, outcome_rx) = mpsc::channel::<OutcomeRecord>();
    let mut pending: BTreeSet<u64> = BTreeSet::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 1024];
    let mut goodbye = false;
    let mut last_activity = Instant::now();
    let mut frame_deadline: Option<Instant> = None;
    let read_timeout = Duration::from_millis(opts.read_timeout_ms);
    let idle_timeout = Duration::from_millis(opts.idle_timeout_ms);

    let bail = |stream: &mut TcpStream, code: ErrorCode, detail: String, reason: CloseReason| {
        let _ = stream.write_all(&encode_frame(&Frame::Error { code, detail }));
        reason
    };

    loop {
        // Flush any outcomes the router delivered for our requests.
        while let Ok(rec) = outcome_rx.try_recv() {
            pending.remove(&rec.id);
            stats.outcomes_streamed.fetch_add(1, Ordering::Relaxed);
            if stream
                .write_all(&encode_frame(&outcome_frame(&rec)))
                .is_err()
            {
                return CloseReason::Io;
            }
        }
        // A drained connection: the client said Goodbye (or the server
        // is draining), and nothing is pending. Say Bye and close.
        if (goodbye || draining.load(Ordering::SeqCst)) && pending.is_empty() {
            let _ = stream.write_all(&encode_frame(&Frame::Bye));
            return CloseReason::Drained;
        }
        match stream.read(&mut tmp) {
            Ok(0) => {
                return if !buf.is_empty() {
                    bail(
                        &mut stream,
                        ErrorCode::Truncated,
                        format!("peer closed with {} buffered bytes mid-frame", buf.len()),
                        CloseReason::Truncated,
                    )
                } else if !pending.is_empty() {
                    // Mid-proof disconnect: the proofs finish and their
                    // outcomes are counted as drops at the router.
                    CloseReason::Disconnected
                } else {
                    CloseReason::ClientClosed
                };
            }
            Ok(n) => {
                last_activity = Instant::now();
                buf.extend_from_slice(&tmp[..n]);
                loop {
                    match decode_frame(&buf) {
                        Ok(Some((frame, used))) => {
                            buf.drain(..used);
                            frame_deadline = None;
                            match on_frame(
                                frame,
                                &mut stream,
                                service,
                                registry,
                                stats,
                                &outcome_tx,
                                &mut pending,
                                &mut goodbye,
                            ) {
                                FrameStep::Continue => {}
                                FrameStep::Close(reason) => return reason,
                            }
                        }
                        Ok(None) => {
                            if !buf.is_empty() && frame_deadline.is_none() {
                                frame_deadline = Some(Instant::now() + read_timeout);
                            }
                            break;
                        }
                        Err(e) => {
                            return bail(
                                &mut stream,
                                ErrorCode::Protocol,
                                e.to_string(),
                                CloseReason::Protocol,
                            );
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if let Some(deadline) = frame_deadline {
                    if Instant::now() >= deadline {
                        return bail(
                            &mut stream,
                            ErrorCode::Stalled,
                            format!(
                                "peer stalled mid-frame past the {} ms read deadline",
                                opts.read_timeout_ms
                            ),
                            CloseReason::Stalled,
                        );
                    }
                } else if buf.is_empty()
                    && pending.is_empty()
                    && last_activity.elapsed() >= idle_timeout
                {
                    return bail(
                        &mut stream,
                        ErrorCode::IdleTimeout,
                        format!("idle past the {} ms reaper deadline", opts.idle_timeout_ms),
                        CloseReason::Idle,
                    );
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return CloseReason::Io,
        }
    }
}

/// What handling one client frame decided about the connection.
enum FrameStep {
    Continue,
    Close(CloseReason),
}

/// Handles one decoded client frame. `Submit` maps straight onto
/// [`ProvingService::submit`], with every typed refusal becoming a
/// distinct [`Frame::Rejected`] reason carrying a live retry hint;
/// `Goodbye` flips the drain flag for this connection; a peer sending
/// server-only frames is a protocol error.
#[allow(clippy::too_many_arguments)]
fn on_frame(
    frame: Frame,
    stream: &mut TcpStream,
    service: &ProvingService,
    registry: &Registry,
    stats: &StatsInner,
    outcome_tx: &Sender<OutcomeRecord>,
    pending: &mut BTreeSet<u64>,
    goodbye: &mut bool,
) -> FrameStep {
    match frame {
        Frame::Submit {
            seq,
            gate,
            mu,
            tenant,
        } => {
            stats.submits.fetch_add(1, Ordering::Relaxed);
            let class = RequestClass::new(gate, mu as usize);
            match service.submit(class, tenant) {
                Ok(id) => {
                    // Register before acking so the router can never
                    // see the outcome earlier than the registration.
                    // (It cannot anyway — the proof has to run — but
                    // the invariant should not rest on timing.)
                    lock_or_recover(registry).insert(id, outcome_tx.clone());
                    pending.insert(id);
                    stats.accepted_submits.fetch_add(1, Ordering::Relaxed);
                    let depth = service.queue_depth().min(u32::MAX as usize) as u32;
                    if stream
                        .write_all(&encode_frame(&Frame::Accepted {
                            seq,
                            id,
                            queue_depth: depth,
                        }))
                        .is_err()
                    {
                        return FrameStep::Close(CloseReason::Io);
                    }
                    FrameStep::Continue
                }
                Err(e) => {
                    let reason = match &e {
                        ServeError::TenantCapExceeded { cap, .. } => {
                            Some(RejectReason::TenantCap {
                                cap: (*cap).min(u32::MAX as usize) as u32,
                            })
                        }
                        ServeError::QueueFull { capacity } => Some(RejectReason::QueueFull {
                            capacity: (*capacity).min(u32::MAX as usize) as u32,
                        }),
                        ServeError::ShuttingDown => Some(RejectReason::ShuttingDown),
                        ServeError::UnknownClass(_) => Some(RejectReason::UnknownClass),
                        _ => None,
                    };
                    match reason {
                        Some(reason) => {
                            stats.rejected_submits.fetch_add(1, Ordering::Relaxed);
                            let hint = hint_u32(service.retry_after_hint_ms());
                            if stream
                                .write_all(&encode_frame(&Frame::Rejected {
                                    seq,
                                    reason,
                                    retry_after_ms: hint,
                                }))
                                .is_err()
                            {
                                return FrameStep::Close(CloseReason::Io);
                            }
                            FrameStep::Continue
                        }
                        None => {
                            let _ = stream.write_all(&encode_frame(&Frame::Error {
                                code: ErrorCode::Internal,
                                detail: e.to_string(),
                            }));
                            FrameStep::Close(CloseReason::Internal)
                        }
                    }
                }
            }
        }
        Frame::Goodbye => {
            *goodbye = true;
            FrameStep::Continue
        }
        // Everything else is server→client only; a peer sending one is
        // misusing the protocol.
        other => {
            let _ = stream.write_all(&encode_frame(&Frame::Error {
                code: ErrorCode::Protocol,
                detail: format!(
                    "unexpected client frame of server-only kind ({:?} discriminant)",
                    std::mem::discriminant(&other)
                ),
            }));
            FrameStep::Close(CloseReason::Protocol)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_clamps_to_wire_range() {
        assert_eq!(hint_u32(f64::NAN), 1);
        assert_eq!(hint_u32(-5.0), 1);
        assert_eq!(hint_u32(0.2), 1);
        assert_eq!(hint_u32(1.2), 2);
        assert_eq!(hint_u32(1e12), u32::MAX);
    }

    #[test]
    fn close_reason_discriminants_are_stable() {
        // These land in golden-pinned telemetry exports; renumbering
        // them is a format break.
        assert_eq!(CloseReason::Drained.discriminant(), 0);
        assert_eq!(CloseReason::Io.discriminant(), 8);
    }
}
