//! `zkphire-serve`: an in-process asynchronous proving service — the
//! live counterpart of the `zkphire-fleet` discrete-event simulator.
//!
//! The fleet DES predicts what a proving fleet *would* do from the
//! paper's cycle model; this crate *runs* one, with real HyperPlonk
//! provers standing in for the simulated chips:
//!
//! ```text
//! submit() ──► admission ──► dispatcher ──► worker pool ──► ServeReport
//!              (per-tenant    (BatchPolicy,  (prove +        (same
//!               caps, queue    RetryPolicy   verify per      summarizer
//!               capacity)      backoff,      request, real   as the DES)
//!                              brown-out)    wall clock)
//! ```
//!
//! Every policy object is shared with the simulator — the same
//! [`zkphire_fleet::PolicyKind`] batching, [`zkphire_fleet::RetryPolicy`]
//! backoff, [`zkphire_fleet::BrownOutConfig`] shedding, and per-tenant
//! caps — and both sides reduce the same
//! [`zkphire_fleet::RequestRecord`]s through the same summarizer. Replay
//! one arrival trace through both ([`loadgen::replay`] live,
//! [`zkphire_fleet::simulate`] modeled) and the per-tenant latency
//! quantiles are directly comparable; `repro serve` automates exactly
//! that check. See `docs/SERVE.md` for the architecture and the
//! sim-vs-wall methodology.
//!
//! The run is observable in wall time as well: with
//! `zkphire-telemetry`'s `record` feature on, every lifecycle
//! transition (admission, dispatch, prove, verify, retry parking,
//! shedding, terminal outcome) records a
//! [`zkphire_telemetry::WallEvent`]; drain the telemetry profile into a
//! [`zkphire_telemetry::WallTimeline`] and [`reconcile_wall`] asserts
//! it agrees with the [`ServeReport`] exactly — outcome counts as
//! integers, worker busy integrals bitwise. Terminal outcomes can also
//! stream live through [`ServeConfig::with_outcome_stream`], and
//! [`ServeReport::dispatch_wakeup_us`] /
//! [`LoadGenReport::arrival_error_us`] decompose the sim-vs-wall
//! latency gap into its named contributors. See
//! `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```no_run
//! use zkphire_core::protocol::Gate;
//! use zkphire_fleet::RequestClass;
//! use zkphire_serve::{ProvingService, ServeConfig, ServeOpts};
//!
//! let class = RequestClass::new(Gate::Vanilla, 6);
//! let cfg = ServeConfig::new(vec![class])
//!     .with_opts(ServeOpts::default().with_workers(2));
//! let service = ProvingService::start(cfg).expect("startup");
//! let id = service.submit(class, 0).expect("admitted");
//! let report = service.shutdown().expect("clean drain");
//! assert_eq!(report.summary.completed, 1);
//! assert_eq!(report.records[0].id, id);
//! ```

//!
//! The service also has a network face: [`net::NetServer`] fronts a
//! [`ProvingService`] with a length-prefixed TCP protocol ([`codec`]) —
//! bounded handler pool, hard connection cap, per-connection read
//! deadlines and an idle reaper, admission rejections mapped to
//! distinct wire status frames with live retry-after hints, and a
//! drain-on-shutdown that still satisfies [`reconcile_wall`]. The
//! protocol and its failure-mode matrix are documented in
//! `docs/SERVE.md`; [`loadgen::NetClient`] and the deterministic
//! [`loadgen::chaos`] client exercise it.

pub mod codec;
pub mod error;
pub mod loadgen;
pub mod net;
pub mod opts;
pub mod recon;
pub mod service;

pub use codec::{Frame, FrameError};
pub use error::ServeError;
pub use loadgen::{chaos, replay, replay_net, ChaosMode, LoadGenReport, NetClient, SubmitResult};
pub use net::{NetReport, NetServer, NetStats};
pub use opts::ServeOpts;
pub use recon::reconcile_wall;
pub use service::{ProvingService, ServeConfig, ServeReport};
