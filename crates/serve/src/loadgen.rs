//! Replays the simulator's arrival processes against a live
//! [`ProvingService`].
//!
//! Any [`ArrivalSource`] — Poisson, bursty ON/OFF, or a recorded trace
//! — drives the service in wall-clock time: each arrival is submitted
//! when the wall clock reaches its (scaled) timestamp. Replaying the
//! *same* source the DES consumed, at a `time_scale` that maps the cost
//! model's chip-milliseconds onto this machine's measured
//! proof-milliseconds, is what makes the sim-vs-wall comparison in
//! `repro serve` apples-to-apples.

use std::collections::BTreeMap;

use zkphire_fleet::{ArrivalSource, TenantId};
use zkphire_telemetry::Histogram;

use crate::error::ServeError;
use crate::service::ProvingService;

/// What one replay run observed at the submission boundary. Rejections
/// here are the *client's* view of admission; the service's own
/// [`crate::service::ServeReport`] counts the same events on the server
/// side, and the two must agree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadGenReport {
    /// Arrivals the source produced within the horizon.
    pub submitted: u64,
    /// Submissions the service admitted.
    pub accepted: u64,
    /// Submissions refused by per-tenant cap or queue capacity.
    pub rejected: u64,
    /// Policy rejections by submitting tenant.
    pub rejected_by_tenant: BTreeMap<TenantId, u64>,
    /// Achieved-vs-intended arrival error (µs): how late each
    /// submission left the generator relative to its scaled trace
    /// timestamp. The loadgen side of the sim-vs-wall gap — the DES
    /// injects arrivals at exact timestamps; this histogram is what the
    /// hybrid sleep/spin wait in
    /// [`ProvingService::sleep_until_ms`] actually achieved.
    pub arrival_error_us: Histogram,
}

/// Replays `source` against `service` in real time.
///
/// Each arrival at source-time `t` ms is submitted once the wall clock
/// (measured from the service's start) reaches `t × time_scale` ms; the
/// generator sleeps between arrivals, so the inter-arrival process —
/// including bursts — survives the replay. Arrivals past `horizon_ms`
/// (source time) are dropped, mirroring the DES horizon. A
/// `time_scale` of 1.0 replays source milliseconds as wall
/// milliseconds; use `measured_ms / modeled_ms` to restate a cost-model
/// trace in this machine's proof latency.
///
/// Policy rejections ([`ServeError::is_rejection`]) are expected
/// outcomes and are counted, not returned; any other submission error
/// aborts the replay.
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] for a non-finite/non-positive
/// `time_scale` or a non-finite `horizon_ms`; otherwise whatever
/// non-rejection error [`ProvingService::submit`] surfaced (e.g.
/// [`ServeError::ShuttingDown`]).
pub fn replay<S: ArrivalSource>(
    service: &ProvingService,
    source: &mut S,
    horizon_ms: f64,
    time_scale: f64,
) -> Result<LoadGenReport, ServeError> {
    if !time_scale.is_finite() || time_scale <= 0.0 {
        return Err(ServeError::InvalidConfig(format!(
            "time_scale must be finite and positive, got {time_scale}"
        )));
    }
    if !horizon_ms.is_finite() {
        return Err(ServeError::InvalidConfig(format!(
            "non-finite horizon {horizon_ms}"
        )));
    }
    let mut report = LoadGenReport::default();
    while let Some((t, class, tenant)) = source.next_arrival() {
        if t > horizon_ms {
            break;
        }
        let target_ms = t * time_scale;
        service.sleep_until_ms(target_ms);
        report
            .arrival_error_us
            .record(((service.now_ms() - target_ms).max(0.0) * 1e3) as u64);
        report.submitted += 1;
        match service.submit(class, tenant) {
            Ok(_) => report.accepted += 1,
            Err(e) if e.is_rejection() => {
                report.rejected += 1;
                *report.rejected_by_tenant.entry(tenant).or_insert(0) += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(report)
}
