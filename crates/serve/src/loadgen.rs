//! Replays the simulator's arrival processes against a live
//! [`ProvingService`] — in-process or over the wire.
//!
//! Any [`ArrivalSource`] — Poisson, bursty ON/OFF, or a recorded trace
//! — drives the service in wall-clock time: each arrival is submitted
//! when the wall clock reaches its (scaled) timestamp. Replaying the
//! *same* source the DES consumed, at a `time_scale` that maps the cost
//! model's chip-milliseconds onto this machine's measured
//! proof-milliseconds, is what makes the sim-vs-wall comparison in
//! `repro serve` apples-to-apples.
//!
//! The network half of this module drives a [`crate::net::NetServer`]
//! instead: [`NetClient`] is a well-behaved framed-protocol client
//! ([`replay_net`] paces a trace through one), and [`chaos`] is a
//! deliberately *mis*behaved one — a deterministic, seeded adversary
//! that sends garbage frames, oversized declarations, truncated
//! writes, stalled reads, mid-proof disconnects, and connection floods,
//! then reports how the server answered each. `repro net` asserts the
//! server survives every mode with its accounting intact.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use zkphire_fleet::{ArrivalSource, OutcomeRecord, RequestClass, SplitMix64, TenantId};
use zkphire_telemetry::Histogram;

use crate::codec::{
    decode_frame, encode_frame, record_from_outcome, Frame, RejectReason, HEADER_LEN, MAGIC,
    MAX_FRAME,
};
use crate::error::ServeError;
use crate::service::ProvingService;

/// What one replay run observed at the submission boundary. Rejections
/// here are the *client's* view of admission; the service's own
/// [`crate::service::ServeReport`] counts the same events on the server
/// side, and the two must agree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadGenReport {
    /// Arrivals the source produced within the horizon.
    pub submitted: u64,
    /// Submissions the service admitted.
    pub accepted: u64,
    /// Submissions refused by per-tenant cap or queue capacity.
    pub rejected: u64,
    /// Policy rejections by submitting tenant.
    pub rejected_by_tenant: BTreeMap<TenantId, u64>,
    /// Achieved-vs-intended arrival error (µs): how late each
    /// submission left the generator relative to its scaled trace
    /// timestamp. The loadgen side of the sim-vs-wall gap — the DES
    /// injects arrivals at exact timestamps; this histogram is what the
    /// hybrid sleep/spin wait in
    /// [`ProvingService::sleep_until_ms`] actually achieved.
    pub arrival_error_us: Histogram,
}

/// Replays `source` against `service` in real time.
///
/// Each arrival at source-time `t` ms is submitted once the wall clock
/// (measured from the service's start) reaches `t × time_scale` ms; the
/// generator sleeps between arrivals, so the inter-arrival process —
/// including bursts — survives the replay. Arrivals past `horizon_ms`
/// (source time) are dropped, mirroring the DES horizon. A
/// `time_scale` of 1.0 replays source milliseconds as wall
/// milliseconds; use `measured_ms / modeled_ms` to restate a cost-model
/// trace in this machine's proof latency.
///
/// Policy rejections ([`ServeError::is_rejection`]) are expected
/// outcomes and are counted, not returned; any other submission error
/// aborts the replay.
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] for a non-finite/non-positive
/// `time_scale` or a non-finite `horizon_ms`; otherwise whatever
/// non-rejection error [`ProvingService::submit`] surfaced (e.g.
/// [`ServeError::ShuttingDown`]).
pub fn replay<S: ArrivalSource>(
    service: &ProvingService,
    source: &mut S,
    horizon_ms: f64,
    time_scale: f64,
) -> Result<LoadGenReport, ServeError> {
    if !time_scale.is_finite() || time_scale <= 0.0 {
        return Err(ServeError::InvalidConfig(format!(
            "time_scale must be finite and positive, got {time_scale}"
        )));
    }
    if !horizon_ms.is_finite() {
        return Err(ServeError::InvalidConfig(format!(
            "non-finite horizon {horizon_ms}"
        )));
    }
    let mut report = LoadGenReport::default();
    while let Some((t, class, tenant)) = source.next_arrival() {
        if t > horizon_ms {
            break;
        }
        let target_ms = t * time_scale;
        service.sleep_until_ms(target_ms);
        report
            .arrival_error_us
            .record(((service.now_ms() - target_ms).max(0.0) * 1e3) as u64);
        report.submitted += 1;
        match service.submit(class, tenant) {
            Ok(_) => report.accepted += 1,
            Err(e) if e.is_rejection() => {
                report.rejected += 1;
                *report.rejected_by_tenant.entry(tenant).or_insert(0) += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(report)
}

// -- network client -------------------------------------------------------

fn io_err(op: &'static str, e: &std::io::Error) -> ServeError {
    ServeError::Net {
        op,
        detail: e.to_string(),
    }
}

/// How the server answered one [`NetClient::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// Admitted; a [`Frame::Outcome`] for `id` will stream later.
    Accepted {
        /// Service-assigned request id.
        id: u64,
        /// Queue depth the `Accepted` frame reported.
        queue_depth: u32,
    },
    /// Refused; no outcome will follow.
    Rejected {
        /// Which admission gate said no.
        reason: RejectReason,
        /// The wire's suggested wait before retrying.
        retry_after_ms: u32,
    },
}

/// A well-behaved client for the [`crate::net::NetServer`] protocol:
/// connects, submits, and collects streamed outcomes, rebuilding each
/// into the same [`OutcomeRecord`] the in-process stream carries
/// (f64 fields bit-exact — the codec ships them as raw bits).
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
    next_seq: u64,
    classes: BTreeMap<u64, RequestClass>,
    outcomes: Vec<OutcomeRecord>,
    epoch: Instant,
    /// The `max_frame` the server's `Welcome` advertised.
    pub max_frame: u32,
}

impl NetClient {
    /// Connects and consumes the server's greeting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] on transport failure or if the server
    /// answered [`Frame::Busy`] (the hard connection cap).
    pub fn connect(addr: SocketAddr) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", &e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_millis(5)))
            .map_err(|e| io_err("set_read_timeout", &e))?;
        let _ = stream.set_write_timeout(Some(Duration::from_millis(2000)));
        let mut client = Self {
            stream,
            buf: Vec::new(),
            next_seq: 0,
            classes: BTreeMap::new(),
            outcomes: Vec::new(),
            epoch: Instant::now(),
            max_frame: 0,
        };
        match client.read_frame(Duration::from_millis(5000))? {
            Some(Frame::Welcome { max_frame, .. }) => {
                client.max_frame = max_frame;
                Ok(client)
            }
            Some(Frame::Busy { retry_after_ms }) => Err(ServeError::Net {
                op: "connect",
                detail: format!("server busy, retry after {retry_after_ms} ms"),
            }),
            Some(other) => Err(ServeError::Invariant(format!(
                "expected welcome, got {other:?}"
            ))),
            None => Err(ServeError::Net {
                op: "connect",
                detail: "server closed before greeting".into(),
            }),
        }
    }

    /// Wall-clock ms since this client connected — the pacing clock
    /// for [`replay_net`].
    pub fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }

    /// Hybrid sleep/spin to `target_ms` on this client's clock — same
    /// pacing discipline as [`ProvingService::sleep_until_ms`], so a
    /// wire replay's arrival-error histogram is comparable to the
    /// in-process one.
    pub fn sleep_until_ms(&self, target_ms: f64) {
        if !target_ms.is_finite() {
            return;
        }
        const SPIN_MARGIN_MS: f64 = 1.5;
        let remaining = target_ms - self.now_ms();
        if remaining > SPIN_MARGIN_MS {
            std::thread::sleep(Duration::from_secs_f64((remaining - SPIN_MARGIN_MS) / 1e3));
        }
        while self.now_ms() < target_ms {
            std::hint::spin_loop();
        }
    }

    /// Reads one frame, waiting at most `deadline`. `Ok(None)` is a
    /// clean peer close.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] on transport failure or deadline,
    /// [`ServeError::Protocol`] if the server's bytes fail to decode.
    pub fn read_frame(&mut self, deadline: Duration) -> Result<Option<Frame>, ServeError> {
        let until = Instant::now() + deadline;
        loop {
            if let Some((frame, used)) = decode_frame(&self.buf)? {
                self.buf.drain(..used);
                return Ok(Some(frame));
            }
            if Instant::now() >= until {
                return Err(ServeError::Net {
                    op: "read",
                    detail: "deadline expired waiting for a frame".into(),
                });
            }
            let mut tmp = [0u8; 1024];
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err("read", &e)),
            }
        }
    }

    /// Buffers a streamed outcome, rebuilding its [`OutcomeRecord`]
    /// from the class remembered at submit time.
    fn note_outcome(&mut self, frame: &Frame) -> Result<(), ServeError> {
        if let Frame::Outcome {
            id,
            tenant,
            outcome,
            t_ms,
            latency_ms,
            attempts,
        } = *frame
        {
            let class = self.classes.get(&id).copied().ok_or_else(|| {
                ServeError::Invariant(format!("outcome for id {id} this client never submitted"))
            })?;
            self.outcomes.push(record_from_outcome(
                id, tenant, outcome, t_ms, latency_ms, attempts, class,
            ));
        }
        Ok(())
    }

    /// Submits one request and waits for the server's admission
    /// verdict. Outcome frames for earlier submits that arrive while
    /// waiting are buffered, not lost.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] on transport failure or deadline;
    /// [`ServeError::Invariant`] on a protocol-order violation.
    pub fn submit(
        &mut self,
        class: RequestClass,
        tenant: TenantId,
        deadline: Duration,
    ) -> Result<SubmitResult, ServeError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stream
            .write_all(&encode_frame(&Frame::Submit {
                seq,
                gate: class.gate,
                mu: class.mu.min(u32::MAX as usize) as u32,
                tenant,
            }))
            .map_err(|e| io_err("write", &e))?;
        let until = Instant::now() + deadline;
        loop {
            let remaining = until.saturating_duration_since(Instant::now());
            match self.read_frame(remaining)? {
                Some(Frame::Accepted {
                    seq: s,
                    id,
                    queue_depth,
                }) if s == seq => {
                    self.classes.insert(id, class);
                    return Ok(SubmitResult::Accepted { id, queue_depth });
                }
                Some(Frame::Rejected {
                    seq: s,
                    reason,
                    retry_after_ms,
                }) if s == seq => {
                    return Ok(SubmitResult::Rejected {
                        reason,
                        retry_after_ms,
                    })
                }
                Some(f @ Frame::Outcome { .. }) => self.note_outcome(&f)?,
                Some(Frame::Error { code, detail }) => {
                    return Err(ServeError::Net {
                        op: "submit",
                        detail: format!("server error ({}): {detail}", code.as_str()),
                    })
                }
                Some(other) => {
                    return Err(ServeError::Invariant(format!(
                        "unexpected frame awaiting admission verdict: {other:?}"
                    )))
                }
                None => {
                    return Err(ServeError::Net {
                        op: "submit",
                        detail: "connection closed awaiting admission verdict".into(),
                    })
                }
            }
        }
    }

    /// Says `Goodbye`, drains every remaining outcome until the
    /// server's `Bye`, and returns all outcomes this connection
    /// received, in arrival order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] if the connection dies or the deadline
    /// expires before the `Bye`.
    pub fn finish(mut self, deadline: Duration) -> Result<Vec<OutcomeRecord>, ServeError> {
        self.stream
            .write_all(&encode_frame(&Frame::Goodbye))
            .map_err(|e| io_err("write", &e))?;
        let until = Instant::now() + deadline;
        loop {
            let remaining = until.saturating_duration_since(Instant::now());
            match self.read_frame(remaining)? {
                Some(f @ Frame::Outcome { .. }) => self.note_outcome(&f)?,
                Some(Frame::Bye) => {
                    let _ = self.stream.shutdown(Shutdown::Both);
                    return Ok(self.outcomes);
                }
                Some(Frame::Error { code, detail }) => {
                    return Err(ServeError::Net {
                        op: "drain",
                        detail: format!("server error ({}): {detail}", code.as_str()),
                    })
                }
                Some(other) => {
                    return Err(ServeError::Invariant(format!(
                        "unexpected frame while draining: {other:?}"
                    )))
                }
                None => {
                    return Err(ServeError::Net {
                        op: "drain",
                        detail: "connection closed before Bye".into(),
                    })
                }
            }
        }
    }
}

/// Replays `source` over the wire through `client`, pacing arrivals on
/// the client's clock exactly like [`replay`] paces on the service's.
/// Admission verdicts come back through [`NetClient::submit`], so the
/// report's accepted/rejected split is the *wire's* view of admission
/// — `repro net` cross-checks it against the server's drain report.
///
/// # Errors
///
/// Same contract as [`replay`], plus [`ServeError::Net`] for
/// transport failures.
pub fn replay_net<S: ArrivalSource>(
    client: &mut NetClient,
    source: &mut S,
    horizon_ms: f64,
    time_scale: f64,
    submit_deadline: Duration,
) -> Result<LoadGenReport, ServeError> {
    if !time_scale.is_finite() || time_scale <= 0.0 {
        return Err(ServeError::InvalidConfig(format!(
            "time_scale must be finite and positive, got {time_scale}"
        )));
    }
    if !horizon_ms.is_finite() {
        return Err(ServeError::InvalidConfig(format!(
            "non-finite horizon {horizon_ms}"
        )));
    }
    let mut report = LoadGenReport::default();
    while let Some((t, class, tenant)) = source.next_arrival() {
        if t > horizon_ms {
            break;
        }
        let target_ms = t * time_scale;
        client.sleep_until_ms(target_ms);
        report
            .arrival_error_us
            .record(((client.now_ms() - target_ms).max(0.0) * 1e3) as u64);
        report.submitted += 1;
        match client.submit(class, tenant, submit_deadline)? {
            SubmitResult::Accepted { .. } => report.accepted += 1,
            SubmitResult::Rejected { .. } => {
                report.rejected += 1;
                *report.rejected_by_tenant.entry(tenant).or_insert(0) += 1;
            }
        }
    }
    Ok(report)
}

// -- chaos client ---------------------------------------------------------

/// One way to abuse the server. Every mode must end in a typed error
/// or a clean close — never a panic, never a wedged connection slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// 64 seeded random bytes that are not a frame header.
    GarbageFrame,
    /// A valid magic word declaring a body longer than the cap.
    OversizedFrame,
    /// Half a submit frame, then a write-side close.
    TruncatedWrite,
    /// Half a submit frame, then silence (slow-loris).
    StalledRead,
    /// A real submit, then vanish before the outcome streams back.
    MidProofDisconnect,
    /// Sequential connections held open until the server says busy.
    ConnectionFlood,
}

impl ChaosMode {
    /// Every mode, in the order `repro net` tables them.
    pub const ALL: [ChaosMode; 6] = [
        ChaosMode::GarbageFrame,
        ChaosMode::OversizedFrame,
        ChaosMode::TruncatedWrite,
        ChaosMode::StalledRead,
        ChaosMode::MidProofDisconnect,
        ChaosMode::ConnectionFlood,
    ];

    /// Stable lower-snake name, used in tables and BENCH JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosMode::GarbageFrame => "garbage_frame",
            ChaosMode::OversizedFrame => "oversized_frame",
            ChaosMode::TruncatedWrite => "truncated_write",
            ChaosMode::StalledRead => "stalled_read",
            ChaosMode::MidProofDisconnect => "mid_proof_disconnect",
            ChaosMode::ConnectionFlood => "connection_flood",
        }
    }
}

/// Connects and consumes the `Welcome`, returning the raw stream for
/// byte-level abuse.
fn connect_expect_welcome(addr: SocketAddr) -> Result<(TcpStream, Vec<u8>), ServeError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", &e))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_millis(5)))
        .map_err(|e| io_err("set_read_timeout", &e))?;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2000)));
    let mut buf = Vec::new();
    let until = Instant::now() + Duration::from_millis(5000);
    loop {
        match decode_frame(&buf) {
            Ok(Some((Frame::Welcome { .. }, used))) => {
                buf.drain(..used);
                return Ok((stream, buf));
            }
            Ok(Some((other, _))) => {
                return Err(ServeError::Invariant(format!(
                    "expected welcome, got {other:?}"
                )))
            }
            Ok(None) => {}
            Err(e) => return Err(ServeError::Protocol(e)),
        }
        if Instant::now() >= until {
            return Err(ServeError::Net {
                op: "read",
                detail: "deadline expired waiting for welcome".into(),
            });
        }
        let mut tmp = [0u8; 256];
        match stream.read(&mut tmp) {
            Ok(0) => {
                return Err(ServeError::Net {
                    op: "read",
                    detail: "server closed before greeting".into(),
                })
            }
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read", &e)),
        }
    }
}

/// Reads frames until the peer closes or `deadline` passes. Returns
/// the frames seen and whether the close was observed.
fn drain_until_close(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Duration,
) -> (Vec<Frame>, bool) {
    let until = Instant::now() + deadline;
    let mut frames = Vec::new();
    loop {
        match decode_frame(buf) {
            Ok(Some((frame, used))) => {
                buf.drain(..used);
                frames.push(frame);
                continue;
            }
            Ok(None) => {}
            // The server would have to emit malformed bytes for this
            // to trigger; surface it as "no clean close observed".
            Err(_) => return (frames, false),
        }
        if Instant::now() >= until {
            return (frames, false);
        }
        let mut tmp = [0u8; 256];
        match stream.read(&mut tmp) {
            Ok(0) => return (frames, true),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return (frames, true),
        }
    }
}

/// Renders what the server did to one abused connection: the error
/// code it answered with (if any) and whether it closed. These strings
/// are deterministic — they feed the golden-pinned chaos table.
fn classify(frames: &[Frame], closed: bool) -> String {
    let mut parts: Vec<String> = Vec::new();
    for f in frames {
        match f {
            Frame::Error { code, .. } => parts.push(format!("error({})", code.as_str())),
            Frame::Busy { .. } => parts.push("busy".into()),
            other => parts.push(format!("{other:?}")),
        }
    }
    if closed {
        parts.push("close".into());
    } else {
        parts.push("NO-CLOSE".into());
    }
    parts.join(" + ")
}

/// A partial (header + truncated body) submit frame: structurally a
/// valid prefix, so the server must wait — and then give up via its
/// read deadline (stall) or see the half-close (truncation).
fn partial_submit_bytes(class: RequestClass) -> Vec<u8> {
    let full = encode_frame(&Frame::Submit {
        seq: 0,
        gate: class.gate,
        mu: class.mu.min(u32::MAX as usize) as u32,
        tenant: 0,
    });
    full[..HEADER_LEN + 3].to_vec()
}

/// Runs one chaos mode against a live server and reports what the
/// server did, as a deterministic classification string (golden-pinned
/// by `repro net`). The server must answer every mode with a typed
/// error or a clean close; [`ChaosMode::MidProofDisconnect`] and
/// [`ChaosMode::ConnectionFlood`] additionally leave evidence in
/// [`crate::net::NetStats`] that the caller asserts on.
///
/// # Errors
///
/// [`ServeError::Net`] / [`ServeError::Protocol`] only for transport
/// problems *setting up* the abuse (the abuse's own effects come back
/// in the classification string, not as errors).
pub fn chaos(
    addr: SocketAddr,
    mode: ChaosMode,
    seed: u64,
    class: RequestClass,
    opts: &crate::ServeOpts,
) -> Result<String, ServeError> {
    let read_wait = Duration::from_millis(opts.read_timeout_ms + 3000);
    match mode {
        ChaosMode::GarbageFrame => {
            let (mut stream, mut buf) = connect_expect_welcome(addr)?;
            let mut rng = SplitMix64::new(seed);
            let mut junk = [0u8; 64];
            for b in junk.iter_mut() {
                *b = (rng.next_u64() >> 32) as u8;
            }
            // Guarantee the first word is not the magic: the abuse is
            // "not our protocol", not "unlucky collision".
            junk[0] = !(MAGIC.to_le_bytes()[0]);
            stream.write_all(&junk).map_err(|e| io_err("write", &e))?;
            let (frames, closed) = drain_until_close(&mut stream, &mut buf, read_wait);
            Ok(classify(&frames, closed))
        }
        ChaosMode::OversizedFrame => {
            let (mut stream, mut buf) = connect_expect_welcome(addr)?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC.to_le_bytes());
            header.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
            stream.write_all(&header).map_err(|e| io_err("write", &e))?;
            let (frames, closed) = drain_until_close(&mut stream, &mut buf, read_wait);
            Ok(classify(&frames, closed))
        }
        ChaosMode::TruncatedWrite => {
            let (mut stream, mut buf) = connect_expect_welcome(addr)?;
            stream
                .write_all(&partial_submit_bytes(class))
                .map_err(|e| io_err("write", &e))?;
            // Half-close: the read side stays open, so the server's
            // typed error is still observable.
            stream
                .shutdown(Shutdown::Write)
                .map_err(|e| io_err("shutdown", &e))?;
            let (frames, closed) = drain_until_close(&mut stream, &mut buf, read_wait);
            Ok(classify(&frames, closed))
        }
        ChaosMode::StalledRead => {
            let (mut stream, mut buf) = connect_expect_welcome(addr)?;
            stream
                .write_all(&partial_submit_bytes(class))
                .map_err(|e| io_err("write", &e))?;
            // …and say nothing more. The server's read deadline must
            // fire; the client just waits to observe it.
            let (frames, closed) = drain_until_close(&mut stream, &mut buf, read_wait);
            Ok(classify(&frames, closed))
        }
        ChaosMode::MidProofDisconnect => {
            let mut client = NetClient::connect(addr)?;
            match client.submit(class, 0, Duration::from_millis(10_000))? {
                SubmitResult::Accepted { .. } => {
                    // Vanish. The proof completes server-side; its
                    // outcome becomes a counted router drop, and the
                    // drain report still conserves it.
                    drop(client);
                    Ok("accepted + disconnect mid-proof".into())
                }
                SubmitResult::Rejected { reason, .. } => Ok(format!(
                    "UNEXPECTED rejection({}) before disconnect",
                    reason.as_str()
                )),
            }
        }
        ChaosMode::ConnectionFlood => {
            let mut held: Vec<NetClient> = Vec::new();
            let mut welcomes = 0usize;
            let mut busy = false;
            // Strictly sequential: each connection waits for its
            // greeting before the next opens, so the count of accepted
            // connections before the first Busy is exactly the
            // configured cap, deterministically.
            for _ in 0..opts.max_conns + 3 {
                match NetClient::connect(addr) {
                    Ok(c) => {
                        welcomes += 1;
                        held.push(c);
                    }
                    Err(ServeError::Net {
                        op: "connect",
                        detail,
                    }) if detail.starts_with("server busy") => {
                        busy = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            drop(held);
            if busy {
                Ok(format!("{welcomes} welcomes + busy + close"))
            } else {
                Ok(format!("{welcomes} welcomes + NO-BUSY"))
            }
        }
    }
}
