//! Length-prefixed frame codec for the `zkphire-serve` TCP front-end.
//!
//! Every frame on the wire is `[magic u32 LE][len u32 LE][body]` where
//! `body` is `[type u8][payload]` and `len` counts the body bytes. The
//! magic word rejects non-protocol peers before any payload parsing,
//! and the length prefix is bounded by [`MAX_FRAME`] so a hostile
//! header can never make the server buffer an unbounded body. Decoding
//! is total: every byte sequence either yields a frame, asks for more
//! bytes, or returns a typed [`FrameError`] — no panicking index math,
//! no `unwrap` (`no_panic_gate` scans this module like the rest of the
//! crate).
//!
//! Payload scalars are little-endian; `f64` travels as its IEEE-754
//! bit pattern so wall-clock numbers survive the wire bitwise (the
//! reconciliation story in [`crate::recon`] depends on nobody rounding
//! in transit). Strings are u16-length-prefixed UTF-8, capped at
//! [`MAX_DETAIL`] bytes at encode time.

use std::fmt;

use zkphire_core::protocol::Gate;
use zkphire_fleet::{Outcome, OutcomeRecord, RequestClass};

/// Magic word opening every frame: `"zkPH"` little-endian.
pub const MAGIC: u32 = 0x487A_6B50;
/// Protocol version carried in the [`Frame::Welcome`] greeting.
pub const VERSION: u8 = 1;
/// Hard cap on the body length a peer may declare. Anything larger is
/// a protocol error before a single body byte is read.
pub const MAX_FRAME: usize = 4096;
/// Cap on the `detail` string inside [`Frame::Error`] frames.
pub const MAX_DETAIL: usize = 512;
/// Bytes in the fixed header (`magic` + `len`).
pub const HEADER_LEN: usize = 8;

const TYPE_WELCOME: u8 = 1;
const TYPE_BUSY: u8 = 2;
const TYPE_SUBMIT: u8 = 3;
const TYPE_ACCEPTED: u8 = 4;
const TYPE_REJECTED: u8 = 5;
const TYPE_OUTCOME: u8 = 6;
const TYPE_GOODBYE: u8 = 7;
const TYPE_BYE: u8 = 8;
const TYPE_ERROR: u8 = 9;

/// Why the server turned a [`Frame::Submit`] away. Mirrors the
/// rejection arms of [`crate::ServeError`] so the wire carries the
/// same distinctions the in-process API does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's private admission cap is full.
    TenantCap {
        /// The cap that was hit.
        cap: u32,
    },
    /// The shared queue is at capacity.
    QueueFull {
        /// The queue capacity that was hit.
        capacity: u32,
    },
    /// The service is draining and no longer accepts work.
    ShuttingDown,
    /// The submit named a gate/μ combination the service has no
    /// calibrated cost for.
    UnknownClass,
}

impl RejectReason {
    fn code(self) -> u8 {
        match self {
            RejectReason::TenantCap { .. } => 1,
            RejectReason::QueueFull { .. } => 2,
            RejectReason::ShuttingDown => 3,
            RejectReason::UnknownClass => 4,
        }
    }

    /// Stable lower-snake name, used in tables and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::TenantCap { .. } => "tenant_cap",
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::UnknownClass => "unknown_class",
        }
    }

    fn arg(self) -> u32 {
        match self {
            RejectReason::TenantCap { cap } => cap,
            RejectReason::QueueFull { capacity } => capacity,
            RejectReason::ShuttingDown | RejectReason::UnknownClass => 0,
        }
    }

    fn from_wire(code: u8, arg: u32) -> Result<Self, FrameError> {
        match code {
            1 => Ok(RejectReason::TenantCap { cap: arg }),
            2 => Ok(RejectReason::QueueFull { capacity: arg }),
            3 => Ok(RejectReason::ShuttingDown),
            4 => Ok(RejectReason::UnknownClass),
            other => Err(FrameError::BadPayload(format!(
                "unknown reject reason code {other}"
            ))),
        }
    }
}

/// Error codes carried by [`Frame::Error`]. The server closes the
/// connection after sending one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer's bytes failed to parse as a frame.
    Protocol,
    /// The peer went silent mid-frame past the read deadline.
    Stalled,
    /// The peer sat idle past the idle deadline.
    IdleTimeout,
    /// The peer half-closed with a partial frame buffered.
    Truncated,
    /// The server hit an internal error handling a valid frame.
    Internal,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Stalled => 2,
            ErrorCode::IdleTimeout => 3,
            ErrorCode::Truncated => 4,
            ErrorCode::Internal => 5,
        }
    }

    /// Stable lower-snake name, used in tables and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Stalled => "stalled",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::Truncated => "truncated",
            ErrorCode::Internal => "internal",
        }
    }

    fn from_wire(code: u8) -> Result<Self, FrameError> {
        match code {
            1 => Ok(ErrorCode::Protocol),
            2 => Ok(ErrorCode::Stalled),
            3 => Ok(ErrorCode::IdleTimeout),
            4 => Ok(ErrorCode::Truncated),
            5 => Ok(ErrorCode::Internal),
            other => Err(FrameError::BadPayload(format!(
                "unknown error code {other}"
            ))),
        }
    }
}

/// One protocol frame. Client→server: `Submit`, `Goodbye`.
/// Server→client: everything else.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Server greeting sent on accept.
    Welcome {
        /// Protocol version the server speaks.
        version: u8,
        /// The server's [`MAX_FRAME`], so clients can size writes.
        max_frame: u32,
    },
    /// Server is at its hard connection cap; it hangs up after this.
    Busy {
        /// Suggested wait before reconnecting, from live queue depth.
        retry_after_ms: u32,
    },
    /// Client asks for one proof.
    Submit {
        /// Client-chosen correlation number echoed in the response.
        seq: u64,
        /// Circuit gate kind.
        gate: Gate,
        /// log2 constraint count.
        mu: u32,
        /// Tenant the request bills to.
        tenant: u32,
    },
    /// The submit was admitted; a [`Frame::Outcome`] will follow.
    Accepted {
        /// Echo of the submit's `seq`.
        seq: u64,
        /// Service-assigned request id (matches the outcome stream).
        id: u64,
        /// Queue depth right after admission.
        queue_depth: u32,
    },
    /// The submit was turned away; no outcome will follow.
    Rejected {
        /// Echo of the submit's `seq`.
        seq: u64,
        /// Which admission gate said no.
        reason: RejectReason,
        /// Suggested wait before retrying, from live queue depth.
        retry_after_ms: u32,
    },
    /// Terminal outcome for an accepted request.
    Outcome {
        /// The id from [`Frame::Accepted`].
        id: u64,
        /// Tenant the request billed to.
        tenant: u32,
        /// How the request ended.
        outcome: Outcome,
        /// Service-clock completion time, ms (bit-exact).
        t_ms: f64,
        /// Queue-to-terminal latency, ms (bit-exact).
        latency_ms: f64,
        /// Prove attempts consumed.
        attempts: u32,
    },
    /// Client is done submitting; server flushes outcomes then `Bye`s.
    Goodbye,
    /// Server's final frame before closing a drained connection.
    Bye,
    /// Typed failure; the server closes the connection after this.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail, capped at [`MAX_DETAIL`] bytes.
        detail: String,
    },
}

/// Why a byte sequence failed to decode. Carried inside
/// [`crate::ServeError::Protocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic(u32),
    /// The header declared a body longer than [`MAX_FRAME`].
    Oversized {
        /// Declared body length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The buffer ended inside a frame that can never complete (e.g.
    /// the peer half-closed mid-frame).
    Truncated {
        /// Bytes the frame needs.
        need: usize,
        /// Bytes that arrived.
        got: usize,
    },
    /// The body's type byte named no known frame.
    UnknownType(u8),
    /// A `Welcome` advertised a version this build does not speak.
    UnknownVersion(u8),
    /// The payload failed structural validation.
    BadPayload(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(got) => {
                write!(f, "bad magic {got:#010x}, expected {MAGIC:#010x}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "declared frame body of {len} bytes exceeds cap {max}")
            }
            FrameError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            FrameError::UnknownVersion(v) => write!(f, "unknown protocol version {v}"),
            FrameError::BadPayload(why) => write!(f, "bad frame payload: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

// -- encode ---------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn gate_code(g: Gate) -> u8 {
    match g {
        Gate::Vanilla => 0,
        Gate::Jellyfish => 1,
    }
}

fn gate_from_wire(code: u8) -> Result<Gate, FrameError> {
    match code {
        0 => Ok(Gate::Vanilla),
        1 => Ok(Gate::Jellyfish),
        other => Err(FrameError::BadPayload(format!("unknown gate code {other}"))),
    }
}

fn outcome_code(o: Outcome) -> u8 {
    match o {
        Outcome::Completed => 0,
        Outcome::Rejected => 1,
        Outcome::Shed => 2,
        Outcome::Lost => 3,
    }
}

fn outcome_from_wire(code: u8) -> Result<Outcome, FrameError> {
    match code {
        0 => Ok(Outcome::Completed),
        1 => Ok(Outcome::Rejected),
        2 => Ok(Outcome::Shed),
        3 => Ok(Outcome::Lost),
        other => Err(FrameError::BadPayload(format!(
            "unknown outcome code {other}"
        ))),
    }
}

/// Encodes `frame` as one wire frame (header + body). Always succeeds:
/// the only variable-size field, `Error::detail`, is truncated to
/// [`MAX_DETAIL`] bytes on a UTF-8 boundary before encoding.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    match frame {
        Frame::Welcome { version, max_frame } => {
            body.push(TYPE_WELCOME);
            body.push(*version);
            put_u32(&mut body, *max_frame);
        }
        Frame::Busy { retry_after_ms } => {
            body.push(TYPE_BUSY);
            put_u32(&mut body, *retry_after_ms);
        }
        Frame::Submit {
            seq,
            gate,
            mu,
            tenant,
        } => {
            body.push(TYPE_SUBMIT);
            put_u64(&mut body, *seq);
            body.push(gate_code(*gate));
            put_u32(&mut body, *mu);
            put_u32(&mut body, *tenant);
        }
        Frame::Accepted {
            seq,
            id,
            queue_depth,
        } => {
            body.push(TYPE_ACCEPTED);
            put_u64(&mut body, *seq);
            put_u64(&mut body, *id);
            put_u32(&mut body, *queue_depth);
        }
        Frame::Rejected {
            seq,
            reason,
            retry_after_ms,
        } => {
            body.push(TYPE_REJECTED);
            put_u64(&mut body, *seq);
            body.push(reason.code());
            put_u32(&mut body, reason.arg());
            put_u32(&mut body, *retry_after_ms);
        }
        Frame::Outcome {
            id,
            tenant,
            outcome,
            t_ms,
            latency_ms,
            attempts,
        } => {
            body.push(TYPE_OUTCOME);
            put_u64(&mut body, *id);
            put_u32(&mut body, *tenant);
            body.push(outcome_code(*outcome));
            put_f64(&mut body, *t_ms);
            put_f64(&mut body, *latency_ms);
            put_u32(&mut body, *attempts);
        }
        Frame::Goodbye => body.push(TYPE_GOODBYE),
        Frame::Bye => body.push(TYPE_BYE),
        Frame::Error { code, detail } => {
            body.push(TYPE_ERROR);
            body.push(code.code());
            let mut end = detail.len().min(MAX_DETAIL);
            while end > 0 && !detail.is_char_boundary(end) {
                end -= 1;
            }
            let bytes = &detail.as_bytes()[..end];
            put_u16(&mut body, bytes.len() as u16);
            body.extend_from_slice(bytes);
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    put_u32(&mut out, MAGIC);
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

// -- decode ---------------------------------------------------------------

/// Bounds-checked little-endian reader over a frame body. Every `take_*`
/// returns `None` past the end, which the frame parser maps to a typed
/// [`FrameError::BadPayload`] — malformed lengths can never index out
/// of range.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn take_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn take_u16(&mut self) -> Option<u16> {
        self.take(2)
            .and_then(|b| b.try_into().ok())
            .map(u16::from_le_bytes)
    }

    fn take_u32(&mut self) -> Option<u32> {
        self.take(4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
    }

    fn take_u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
    }

    fn take_f64(&mut self) -> Option<f64> {
        self.take_u64().map(f64::from_bits)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn short(field: &str) -> FrameError {
    FrameError::BadPayload(format!("body too short for {field}"))
}

fn parse_body(body: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor::new(body);
    let ty = c
        .take_u8()
        .ok_or(FrameError::Truncated { need: 1, got: 0 })?;
    let frame = match ty {
        TYPE_WELCOME => {
            let version = c.take_u8().ok_or_else(|| short("version"))?;
            if version != VERSION {
                return Err(FrameError::UnknownVersion(version));
            }
            let max_frame = c.take_u32().ok_or_else(|| short("max_frame"))?;
            Frame::Welcome { version, max_frame }
        }
        TYPE_BUSY => Frame::Busy {
            retry_after_ms: c.take_u32().ok_or_else(|| short("retry_after_ms"))?,
        },
        TYPE_SUBMIT => {
            let seq = c.take_u64().ok_or_else(|| short("seq"))?;
            let gate = gate_from_wire(c.take_u8().ok_or_else(|| short("gate"))?)?;
            let mu = c.take_u32().ok_or_else(|| short("mu"))?;
            let tenant = c.take_u32().ok_or_else(|| short("tenant"))?;
            Frame::Submit {
                seq,
                gate,
                mu,
                tenant,
            }
        }
        TYPE_ACCEPTED => {
            let seq = c.take_u64().ok_or_else(|| short("seq"))?;
            let id = c.take_u64().ok_or_else(|| short("id"))?;
            let queue_depth = c.take_u32().ok_or_else(|| short("queue_depth"))?;
            Frame::Accepted {
                seq,
                id,
                queue_depth,
            }
        }
        TYPE_REJECTED => {
            let seq = c.take_u64().ok_or_else(|| short("seq"))?;
            let code = c.take_u8().ok_or_else(|| short("reason"))?;
            let arg = c.take_u32().ok_or_else(|| short("reason arg"))?;
            let retry_after_ms = c.take_u32().ok_or_else(|| short("retry_after_ms"))?;
            Frame::Rejected {
                seq,
                reason: RejectReason::from_wire(code, arg)?,
                retry_after_ms,
            }
        }
        TYPE_OUTCOME => {
            let id = c.take_u64().ok_or_else(|| short("id"))?;
            let tenant = c.take_u32().ok_or_else(|| short("tenant"))?;
            let outcome = outcome_from_wire(c.take_u8().ok_or_else(|| short("outcome"))?)?;
            let t_ms = c.take_f64().ok_or_else(|| short("t_ms"))?;
            let latency_ms = c.take_f64().ok_or_else(|| short("latency_ms"))?;
            let attempts = c.take_u32().ok_or_else(|| short("attempts"))?;
            Frame::Outcome {
                id,
                tenant,
                outcome,
                t_ms,
                latency_ms,
                attempts,
            }
        }
        TYPE_GOODBYE => Frame::Goodbye,
        TYPE_BYE => Frame::Bye,
        TYPE_ERROR => {
            let code = ErrorCode::from_wire(c.take_u8().ok_or_else(|| short("code"))?)?;
            let len = c.take_u16().ok_or_else(|| short("detail length"))? as usize;
            let bytes = c.take(len).ok_or_else(|| short("detail"))?;
            let detail = std::str::from_utf8(bytes)
                .map_err(|_| FrameError::BadPayload("detail is not UTF-8".into()))?
                .to_string();
            Frame::Error { code, detail }
        }
        other => return Err(FrameError::UnknownType(other)),
    };
    if !c.done() {
        return Err(FrameError::BadPayload(format!(
            "{} trailing bytes after {} frame",
            body.len() - c.pos,
            frame_name(&frame)
        )));
    }
    Ok(frame)
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Welcome { .. } => "welcome",
        Frame::Busy { .. } => "busy",
        Frame::Submit { .. } => "submit",
        Frame::Accepted { .. } => "accepted",
        Frame::Rejected { .. } => "rejected",
        Frame::Outcome { .. } => "outcome",
        Frame::Goodbye => "goodbye",
        Frame::Bye => "bye",
        Frame::Error { .. } => "error",
    }
}

/// Tries to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some((frame, consumed)))` when a complete frame parsed
/// (`consumed` includes the header), `Ok(None)` when the bytes so far
/// are a valid prefix and more input is needed, and `Err` when the
/// stream can never recover — bad magic, an oversized declaration, or
/// a body that failed to parse. Callers close the connection on `Err`.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() >= 4 {
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len: len as u32,
            max: MAX_FRAME as u32,
        });
    }
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let frame = parse_body(&buf[HEADER_LEN..total])?;
    Ok(Some((frame, total)))
}

/// Builds the [`Frame::Outcome`] carrying `rec` — the wire image of
/// one [`OutcomeRecord`], f64 fields bit-exact.
pub fn outcome_frame(rec: &OutcomeRecord) -> Frame {
    Frame::Outcome {
        id: rec.id,
        tenant: rec.tenant,
        outcome: rec.outcome,
        t_ms: rec.t_ms,
        latency_ms: rec.latency_ms,
        attempts: rec.attempts,
    }
}

/// Rebuilds an [`OutcomeRecord`] from a decoded [`Frame::Outcome`];
/// `class` comes from the client's own submit bookkeeping since the
/// wire frame does not repeat it.
pub fn record_from_outcome(
    id: u64,
    tenant: u32,
    outcome: Outcome,
    t_ms: f64,
    latency_ms: f64,
    attempts: u32,
    class: RequestClass,
) -> OutcomeRecord {
    OutcomeRecord {
        id,
        tenant,
        class,
        outcome,
        t_ms,
        latency_ms,
        attempts,
    }
}

// ---------------------------------------------------------------------------
#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = decode_frame(&bytes)
            .expect("valid frame decodes")
            .expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Frame::Welcome {
            version: VERSION,
            max_frame: MAX_FRAME as u32,
        });
        roundtrip(Frame::Busy { retry_after_ms: 7 });
        roundtrip(Frame::Submit {
            seq: 42,
            gate: Gate::Jellyfish,
            mu: 14,
            tenant: 3,
        });
        roundtrip(Frame::Accepted {
            seq: 42,
            id: 9,
            queue_depth: 2,
        });
        for reason in [
            RejectReason::TenantCap { cap: 4 },
            RejectReason::QueueFull { capacity: 64 },
            RejectReason::ShuttingDown,
            RejectReason::UnknownClass,
        ] {
            roundtrip(Frame::Rejected {
                seq: 1,
                reason,
                retry_after_ms: 120,
            });
        }
        roundtrip(Frame::Outcome {
            id: 5,
            tenant: 0,
            outcome: Outcome::Completed,
            t_ms: 123.456,
            latency_ms: 0.25,
            attempts: 1,
        });
        roundtrip(Frame::Goodbye);
        roundtrip(Frame::Bye);
        roundtrip(Frame::Error {
            code: ErrorCode::Protocol,
            detail: "bad magic".into(),
        });
    }

    #[test]
    fn partial_header_asks_for_more() {
        let bytes = encode_frame(&Frame::Goodbye);
        for n in 0..HEADER_LEN.min(4) {
            assert_eq!(decode_frame(&bytes[..n]), Ok(None), "prefix {n}");
        }
    }

    #[test]
    fn partial_body_asks_for_more() {
        let bytes = encode_frame(&Frame::Submit {
            seq: 1,
            gate: Gate::Vanilla,
            mu: 12,
            tenant: 0,
        });
        for n in HEADER_LEN..bytes.len() {
            assert_eq!(decode_frame(&bytes[..n]), Ok(None), "prefix {n}");
        }
    }

    #[test]
    fn bad_magic_is_rejected_immediately() {
        let err = decode_frame(b"GET / HTTP/1.1\r\n").expect_err("not our magic");
        assert!(matches!(err, FrameError::BadMagic(_)), "{err:?}");
    }

    #[test]
    fn oversized_declaration_is_rejected_before_body() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let err = decode_frame(&bytes).expect_err("oversized");
        assert_eq!(
            err,
            FrameError::Oversized {
                len: MAX_FRAME as u32 + 1,
                max: MAX_FRAME as u32
            }
        );
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0xEE);
        let err = decode_frame(&bytes).expect_err("unknown type");
        assert_eq!(err, FrameError::UnknownType(0xEE));
    }

    #[test]
    fn short_payload_is_bad_payload_not_panic() {
        // A submit frame truncated inside its payload but with a
        // matching (small) length declaration: structurally complete,
        // semantically short.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.push(TYPE_SUBMIT);
        bytes.extend_from_slice(&[0, 0]);
        let err = decode_frame(&bytes).expect_err("short payload");
        assert!(matches!(err, FrameError::BadPayload(_)), "{err:?}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.push(TYPE_GOODBYE);
        bytes.push(0x55);
        let err = decode_frame(&bytes).expect_err("trailing byte");
        assert!(matches!(err, FrameError::BadPayload(_)), "{err:?}");
    }

    #[test]
    fn wrong_version_welcome_is_rejected() {
        let bytes = encode_frame(&Frame::Welcome {
            version: VERSION,
            max_frame: 64,
        });
        let mut tampered = bytes.clone();
        tampered[HEADER_LEN + 1] = VERSION + 1;
        let err = decode_frame(&tampered).expect_err("future version");
        assert_eq!(err, FrameError::UnknownVersion(VERSION + 1));
    }

    #[test]
    fn error_detail_is_capped_on_encode() {
        let long = "x".repeat(MAX_DETAIL * 3);
        let bytes = encode_frame(&Frame::Error {
            code: ErrorCode::Internal,
            detail: long,
        });
        assert!(bytes.len() <= HEADER_LEN + 1 + 1 + 2 + MAX_DETAIL);
        let (frame, _) = decode_frame(&bytes).expect("decodes").expect("complete");
        match frame {
            Frame::Error { detail, .. } => assert_eq!(detail.len(), MAX_DETAIL),
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    #[test]
    fn detail_cap_respects_utf8_boundaries() {
        // 'é' is 2 bytes; an odd cap would land mid-char without the
        // boundary walk-back.
        let detail = "é".repeat(MAX_DETAIL);
        let bytes = encode_frame(&Frame::Error {
            code: ErrorCode::Internal,
            detail,
        });
        let (frame, _) = decode_frame(&bytes).expect("decodes").expect("complete");
        match frame {
            Frame::Error { detail, .. } => assert!(detail.len() <= MAX_DETAIL),
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    #[test]
    fn decode_concatenated_frames_consumes_one_at_a_time() {
        let a = encode_frame(&Frame::Goodbye);
        let b = encode_frame(&Frame::Bye);
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let (f1, n1) = decode_frame(&buf).expect("first").expect("complete");
        assert_eq!(f1, Frame::Goodbye);
        assert_eq!(n1, a.len());
        let (f2, n2) = decode_frame(&buf[n1..]).expect("second").expect("complete");
        assert_eq!(f2, Frame::Bye);
        assert_eq!(n2, b.len());
    }

    #[test]
    fn random_bytes_never_panic() {
        // Deterministic pseudo-random fuzz: every prefix of every
        // buffer must decode to Ok or a typed error, never panic.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u8
        };
        for _ in 0..256 {
            let len = (next() as usize) % 64;
            let buf: Vec<u8> = (0..len).map(|_| next()).collect();
            for n in 0..=buf.len() {
                let _ = decode_frame(&buf[..n]);
            }
        }
    }

    fn finite_f64() -> impl Strategy<Value = f64> {
        (any::<u32>(), 1u32..1000u32).prop_map(|(n, d)| n as f64 / d as f64)
    }

    proptest! {
        #[test]
        fn prop_submit_roundtrips(seq in any::<u64>(), mu in 0u32..64, tenant in any::<u32>(), jelly in any::<bool>()) {
            let gate = if jelly { Gate::Jellyfish } else { Gate::Vanilla };
            roundtrip(Frame::Submit { seq, gate, mu, tenant });
        }

        #[test]
        fn prop_accepted_roundtrips(seq in any::<u64>(), id in any::<u64>(), queue_depth in any::<u32>()) {
            roundtrip(Frame::Accepted { seq, id, queue_depth });
        }

        #[test]
        fn prop_outcome_roundtrips(
            id in any::<u64>(),
            tenant in any::<u32>(),
            which in 0u8..4,
            t_ms in finite_f64(),
            latency_ms in finite_f64(),
            attempts in any::<u32>(),
        ) {
            let outcome = match which {
                0 => Outcome::Completed,
                1 => Outcome::Rejected,
                2 => Outcome::Shed,
                _ => Outcome::Lost,
            };
            roundtrip(Frame::Outcome { id, tenant, outcome, t_ms, latency_ms, attempts });
        }

        #[test]
        fn prop_rejected_roundtrips(seq in any::<u64>(), which in 0u8..4, arg in any::<u32>(), retry in any::<u32>()) {
            let reason = match which {
                0 => RejectReason::TenantCap { cap: arg },
                1 => RejectReason::QueueFull { capacity: arg },
                2 => RejectReason::ShuttingDown,
                _ => RejectReason::UnknownClass,
            };
            roundtrip(Frame::Rejected { seq, reason, retry_after_ms: retry });
        }

        #[test]
        fn prop_busy_and_error_roundtrip(retry in any::<u32>(), code in 0u8..5) {
            roundtrip(Frame::Busy { retry_after_ms: retry });
            let code = match code {
                0 => ErrorCode::Protocol,
                1 => ErrorCode::Stalled,
                2 => ErrorCode::IdleTimeout,
                3 => ErrorCode::Truncated,
                _ => ErrorCode::Internal,
            };
            roundtrip(Frame::Error { code, detail: "detail".into() });
        }

        #[test]
        fn prop_decode_never_panics_on_random_prefixes(bytes in any::<[u8; 32]>(), cut in 0usize..33) {
            let _ = decode_frame(&bytes[..cut]);
        }
    }
}
