//! Reconciliation between the wall timeline and the drain summary.
//!
//! The [`zkphire_telemetry::WallTimeline`] is rebuilt from events the
//! service recorded as it ran; the [`FleetSummary`] is reduced from the
//! records it handed back at drain. The two are independent paths over
//! the same run, so they must agree *exactly* — terminal-outcome counts
//! as integers, per-worker busy time bitwise (the timeline replays the
//! dispatcher's own `busy_ms += finish - start` ops with the same f64
//! operands in the same order). Any mismatch means events were dropped,
//! double-recorded, or the service's accounting drifted — a bug, not
//! noise, which is why the check returns a typed [`ServeError`] instead
//! of a tolerance.

use zkphire_fleet::{FleetSummary, Outcome};
use zkphire_telemetry::WallTimeline;

use crate::error::ServeError;

/// Asserts that `timeline` and `summary` describe the same run: every
/// terminal-outcome count equal, and every recorded worker's busy-span
/// integral bitwise equal to the busy time behind the summary's
/// per-chip utilization.
///
/// An empty timeline (recording disabled, or the `record` feature off)
/// reconciles only with an empty run — callers gate on
/// [`zkphire_telemetry::is_enabled`] before treating success as
/// evidence.
///
/// # Errors
///
/// [`ServeError::Invariant`] naming the first mismatching quantity.
pub fn reconcile_wall(timeline: &WallTimeline, summary: &FleetSummary) -> Result<(), ServeError> {
    for outcome in [
        Outcome::Completed,
        Outcome::Rejected,
        Outcome::Shed,
        Outcome::Lost,
    ] {
        let tl = timeline.outcome_count(outcome);
        let sm = summary.outcome_count(outcome);
        if tl != sm {
            return Err(ServeError::Invariant(format!(
                "wall timeline counts {tl} {} outcomes, summary counts {sm}",
                outcome.as_str()
            )));
        }
    }
    if timeline.num_workers() > summary.per_chip_utilization.len() {
        return Err(ServeError::Invariant(format!(
            "wall timeline saw {} workers, summary has {}",
            timeline.num_workers(),
            summary.per_chip_utilization.len()
        )));
    }
    // The summary stores busy as a fraction of makespan; undo the one
    // division it applied so the comparison is against the accumulator
    // itself, bitwise. A worker with no busy span integrates to 0.0,
    // matching a chip that never dispatched.
    for (w, &util) in summary.per_chip_utilization.iter().enumerate() {
        let tl_busy = timeline.worker_busy_ms(w);
        let tl_util = if summary.makespan_ms > 0.0 {
            tl_busy / summary.makespan_ms
        } else {
            0.0
        };
        if tl_util.to_bits() != util.to_bits() {
            return Err(ServeError::Invariant(format!(
                "worker {w} busy-span integral {tl_busy} ms (utilization {tl_util}) \
                 does not bitwise-match summary utilization {util}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_fleet::{try_summarize, RunAccumulators};
    use zkphire_telemetry::{WallEvent, WallEventKind};

    fn ev(
        t_ns: u64,
        seq: u64,
        kind: WallEventKind,
        id: u64,
        arg: u64,
        a: f64,
        b: f64,
    ) -> WallEvent {
        WallEvent {
            t_ns,
            seq,
            tid: 0,
            kind,
            id,
            tenant: 0,
            arg,
            a,
            b,
        }
    }

    fn empty_acc(workers: usize, makespan_ms: f64) -> RunAccumulators {
        RunAccumulators {
            busy_ms: vec![0.0; workers],
            depth_time_integral: 0.0,
            max_queue_depth: 0,
            batches: 0,
            arrivals: 0,
            rejected: 0,
            rejected_by_tenant: Default::default(),
            shed: 0,
            shed_by_tenant: Default::default(),
            lost: 0,
            lost_by_tenant: Default::default(),
            retries: 0,
            chip_failures: 0,
            chip_repairs: 0,
            makespan_ms,
            chip_time_integral_ms: workers as f64 * makespan_ms,
            peak_chips: workers,
            scale_ups: 0,
            scale_downs: 0,
        }
    }

    #[test]
    fn empty_timeline_reconciles_with_empty_run() {
        let tl = WallTimeline::from_events(&[]);
        let summary = try_summarize(&[], &empty_acc(1, 0.0), &[]).expect("summarize");
        reconcile_wall(&tl, &summary).expect("both empty");
    }

    #[test]
    fn outcome_count_mismatch_is_named() {
        let tl = WallTimeline::from_events(&[ev(10, 0, WallEventKind::Lost, 1, 0, 0.0, 0.0)]);
        let summary = try_summarize(&[], &empty_acc(1, 0.0), &[]).expect("summarize");
        let err = reconcile_wall(&tl, &summary).expect_err("1 lost vs 0");
        assert!(err.to_string().contains("lost"), "{err}");
    }

    #[test]
    fn busy_integral_must_match_bitwise() {
        // One busy op with operands that don't divide cleanly: replaying
        // the op reconciles; a hand-computed "close" value would not.
        let mut acc = empty_acc(1, 30.0);
        acc.busy_ms = vec![0.3 - 0.1];
        let summary = try_summarize(&[], &acc, &[]).expect("summarize");
        let good =
            WallTimeline::from_events(&[ev(5, 0, WallEventKind::WorkerBusy, 0, 0, 0.1, 0.3)]);
        reconcile_wall(&good, &summary).expect("same op, same bits");
        let bad = WallTimeline::from_events(&[ev(5, 0, WallEventKind::WorkerBusy, 0, 0, 0.0, 0.2)]);
        let err = reconcile_wall(&bad, &summary).expect_err("0.2 != 0.3-0.1 bitwise");
        assert!(err.to_string().contains("worker 0"), "{err}");
    }
}
