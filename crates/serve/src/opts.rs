//! Environment-tunable service knobs with `available_parallelism`-aware
//! defaults.
//!
//! Every knob reads `ZKPHIRE_SERVE_*` once at [`ServeOpts::from_env`].
//! Unset vars fall back to the default; a var that is *set but does not
//! parse* is a startup error ([`ServeError::InvalidEnv`]) naming the
//! variable — a typo'd `ZKPHIRE_SERVE_WORKERS=eight` must not silently
//! run with the baked-in worker count.
//!
//! | env var                       | meaning                          | default                    |
//! |-------------------------------|----------------------------------|----------------------------|
//! | `ZKPHIRE_SERVE_WORKERS`       | prover worker threads            | `max(1, cores / 4)`        |
//! | `ZKPHIRE_SERVE_PROVER_THREADS`| SumCheck threads per worker      | `max(1, cores / workers)`  |
//! | `ZKPHIRE_SERVE_MAX_BATCH`     | max requests per dispatch batch  | `8`                        |
//! | `ZKPHIRE_SERVE_QUEUE_CAP`     | shared admission queue capacity  | unbounded                  |

use crate::error::ServeError;

/// Execution-shape knobs for [`crate::service::ProvingService`]. These
/// tune *where the work runs*, not *what the service computes* — proofs
/// and admission decisions are identical for every setting; only
/// wall-clock latency moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOpts {
    /// Concurrent prover workers (the live analogue of the simulated
    /// chip pool size).
    pub workers: usize,
    /// Threads each worker's HyperPlonk prover uses
    /// ([`zkphire_hyperplonk::ProverConfig::threads`]). `workers ×
    /// prover_threads` defaults to about the machine's core count so
    /// saturating the pool does not oversubscribe.
    pub prover_threads: usize,
    /// Maximum requests per dispatched batch (same meaning as
    /// [`zkphire_fleet::FleetConfig::max_batch`]).
    pub max_batch: usize,
    /// Shared admission queue capacity; `None` = unbounded, `Some(0)`
    /// rejects everything that would have to wait.
    pub queue_capacity: Option<usize>,
}

/// Cores the OS reports, floored at 1 (the query can fail in minimal
/// containers).
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `Ok(Some(parsed))` when the var is set and parses, `Ok(None)` when
/// unset, and [`ServeError::InvalidEnv`] naming the variable when set
/// but malformed. Split from the env read so the failure path is
/// testable without mutating process env in a threaded test runner.
fn parse_env_usize(var: &'static str, raw: Option<&str>) -> Result<Option<usize>, ServeError> {
    match raw {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| ServeError::InvalidEnv {
                var,
                value: v.to_string(),
            }),
    }
}

/// Reads and parses one `ZKPHIRE_SERVE_*` var from the process env.
fn env_usize(var: &'static str) -> Result<Option<usize>, ServeError> {
    let raw = std::env::var(var).ok();
    parse_env_usize(var, raw.as_deref())
}

impl Default for ServeOpts {
    fn default() -> Self {
        let workers = (cores() / 4).max(1);
        Self {
            workers,
            prover_threads: (cores() / workers).max(1),
            max_batch: 8,
            queue_capacity: None,
        }
    }
}

impl ServeOpts {
    /// Defaults overridden by any `ZKPHIRE_SERVE_*` env vars set. A set
    /// but malformed var fails with [`ServeError::InvalidEnv`] naming
    /// it, rather than silently degrading to the default.
    pub fn from_env() -> Result<Self, ServeError> {
        let mut o = Self::default();
        if let Some(w) = env_usize("ZKPHIRE_SERVE_WORKERS")? {
            o.workers = w.max(1);
            // Re-derive the per-worker thread budget for the explicit
            // worker count before its own override is consulted.
            o.prover_threads = (cores() / o.workers).max(1);
        }
        if let Some(t) = env_usize("ZKPHIRE_SERVE_PROVER_THREADS")? {
            o.prover_threads = t.max(1);
        }
        if let Some(b) = env_usize("ZKPHIRE_SERVE_MAX_BATCH")? {
            o.max_batch = b.max(1);
        }
        if let Some(c) = env_usize("ZKPHIRE_SERVE_QUEUE_CAP")? {
            o.queue_capacity = Some(c);
        }
        Ok(o)
    }

    /// Sets the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets per-worker prover threads (builder style).
    pub fn with_prover_threads(mut self, threads: usize) -> Self {
        self.prover_threads = threads.max(1);
        self
    }

    /// Sets the batch cap (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the shared queue capacity (builder style).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_track_available_parallelism() {
        let o = ServeOpts::default();
        assert!(o.workers >= 1);
        assert!(o.prover_threads >= 1);
        // The product stays near the core count: no oversubscription by
        // more than the rounding slack of the two divisions.
        assert!(o.workers * o.prover_threads <= cores().max(4) * 2);
        assert_eq!(o.max_batch, 8);
        assert_eq!(o.queue_capacity, None);
    }

    #[test]
    fn builders_clamp_to_one() {
        let o = ServeOpts::default()
            .with_workers(0)
            .with_prover_threads(0)
            .with_max_batch(0);
        assert_eq!(o.workers, 1);
        assert_eq!(o.prover_threads, 1);
        assert_eq!(o.max_batch, 1);
    }

    #[test]
    fn unset_vars_fall_back_to_defaults() {
        assert_eq!(parse_env_usize("ZKPHIRE_SERVE_WORKERS", None), Ok(None));
        // from_env against the real (clean) env parses to the defaults.
        if std::env::var_os("ZKPHIRE_SERVE_WORKERS").is_none() {
            assert!(ServeOpts::from_env().is_ok());
        }
    }

    #[test]
    fn set_vars_parse_with_whitespace_tolerance() {
        assert_eq!(
            parse_env_usize("ZKPHIRE_SERVE_MAX_BATCH", Some(" 16 ")),
            Ok(Some(16))
        );
        assert_eq!(
            parse_env_usize("ZKPHIRE_SERVE_QUEUE_CAP", Some("0")),
            Ok(Some(0))
        );
    }

    #[test]
    fn malformed_vars_fail_naming_the_variable() {
        for (var, bad) in [
            ("ZKPHIRE_SERVE_WORKERS", "eight"),
            ("ZKPHIRE_SERVE_PROVER_THREADS", "2.5"),
            ("ZKPHIRE_SERVE_MAX_BATCH", "-1"),
            ("ZKPHIRE_SERVE_QUEUE_CAP", ""),
        ] {
            let err = parse_env_usize(var, Some(bad)).expect_err("malformed must fail");
            assert_eq!(
                err,
                ServeError::InvalidEnv {
                    var,
                    value: bad.to_string()
                }
            );
            let msg = err.to_string();
            assert!(msg.contains(var), "message names the variable: {msg}");
            assert!(
                msg.contains(&format!("{bad:?}")),
                "message quotes the value: {msg}"
            );
        }
    }
}
