//! Environment-tunable service knobs with `available_parallelism`-aware
//! defaults.
//!
//! Every knob reads `ZKPHIRE_SERVE_*` once at [`ServeOpts::from_env`].
//! Unset vars fall back to the default; a var that is *set but does not
//! parse* is a startup error ([`ServeError::InvalidEnv`]) naming the
//! variable — a typo'd `ZKPHIRE_SERVE_WORKERS=eight` must not silently
//! run with the baked-in worker count.
//!
//! | env var                         | meaning                           | default                    |
//! |---------------------------------|-----------------------------------|----------------------------|
//! | `ZKPHIRE_SERVE_WORKERS`         | prover worker threads             | `max(1, cores / 4)`        |
//! | `ZKPHIRE_SERVE_PROVER_THREADS`  | SumCheck threads per worker       | `max(1, cores / workers)`  |
//! | `ZKPHIRE_SERVE_MAX_BATCH`       | max requests per dispatch batch   | `8`                        |
//! | `ZKPHIRE_SERVE_QUEUE_CAP`       | shared admission queue capacity   | unbounded                  |
//! | `ZKPHIRE_SERVE_ADDR`            | TCP front-end bind address        | `127.0.0.1:0`              |
//! | `ZKPHIRE_SERVE_MAX_CONNS`       | hard concurrent-connection cap    | `32`                       |
//! | `ZKPHIRE_SERVE_READ_TIMEOUT_MS` | mid-frame read deadline (ms)      | `2000`                     |
//! | `ZKPHIRE_SERVE_IDLE_TIMEOUT_MS` | between-frame idle reaper (ms)    | `30000`                    |

use std::net::SocketAddr;

use crate::error::ServeError;

/// Execution-shape knobs for [`crate::service::ProvingService`]. These
/// tune *where the work runs*, not *what the service computes* — proofs
/// and admission decisions are identical for every setting; only
/// wall-clock latency moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOpts {
    /// Concurrent prover workers (the live analogue of the simulated
    /// chip pool size).
    pub workers: usize,
    /// Threads each worker's HyperPlonk prover uses
    /// ([`zkphire_hyperplonk::ProverConfig::threads`]). `workers ×
    /// prover_threads` defaults to about the machine's core count so
    /// saturating the pool does not oversubscribe.
    pub prover_threads: usize,
    /// Maximum requests per dispatched batch (same meaning as
    /// [`zkphire_fleet::FleetConfig::max_batch`]).
    pub max_batch: usize,
    /// Shared admission queue capacity; `None` = unbounded, `Some(0)`
    /// rejects everything that would have to wait.
    pub queue_capacity: Option<usize>,
    /// Bind address for the TCP front-end ([`crate::net::NetServer`]).
    /// Port `0` asks the OS for an ephemeral port; the bound address
    /// is reported by [`crate::net::NetServer::local_addr`].
    pub addr: SocketAddr,
    /// Hard cap on concurrently served connections. A connection past
    /// the cap gets a `Busy` frame with a retry-after hint and an
    /// immediate close instead of a queue slot.
    pub max_conns: usize,
    /// How long a connection may sit mid-frame (bytes of a frame
    /// arrived, the rest has not) before the server answers with a
    /// `stalled` error and closes — the slow-loris deadline.
    pub read_timeout_ms: u64,
    /// How long a connection may sit idle between frames before the
    /// idle-reaper closes it.
    pub idle_timeout_ms: u64,
}

/// Cores the OS reports, floored at 1 (the query can fail in minimal
/// containers).
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `Ok(Some(parsed))` when the var is set and parses, `Ok(None)` when
/// unset, and [`ServeError::InvalidEnv`] naming the variable when set
/// but malformed. Split from the env read so the failure path is
/// testable without mutating process env in a threaded test runner.
fn parse_env_usize(var: &'static str, raw: Option<&str>) -> Result<Option<usize>, ServeError> {
    match raw {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| ServeError::InvalidEnv {
                var,
                value: v.to_string(),
            }),
    }
}

/// Reads and parses one `ZKPHIRE_SERVE_*` var from the process env.
fn env_usize(var: &'static str) -> Result<Option<usize>, ServeError> {
    let raw = std::env::var(var).ok();
    parse_env_usize(var, raw.as_deref())
}

/// Like [`parse_env_usize`] but for `u64` millisecond knobs.
fn parse_env_u64(var: &'static str, raw: Option<&str>) -> Result<Option<u64>, ServeError> {
    match raw {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| ServeError::InvalidEnv {
                var,
                value: v.to_string(),
            }),
    }
}

fn env_u64(var: &'static str) -> Result<Option<u64>, ServeError> {
    let raw = std::env::var(var).ok();
    parse_env_u64(var, raw.as_deref())
}

/// Like [`parse_env_usize`] but for the `host:port` bind address.
fn parse_env_addr(var: &'static str, raw: Option<&str>) -> Result<Option<SocketAddr>, ServeError> {
    match raw {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| ServeError::InvalidEnv {
                var,
                value: v.to_string(),
            }),
    }
}

fn env_addr(var: &'static str) -> Result<Option<SocketAddr>, ServeError> {
    let raw = std::env::var(var).ok();
    parse_env_addr(var, raw.as_deref())
}

/// Default loopback bind with an OS-assigned port. Built from parts
/// rather than parsed so the default path has no fallible step.
fn default_addr() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

impl Default for ServeOpts {
    fn default() -> Self {
        let workers = (cores() / 4).max(1);
        Self {
            workers,
            prover_threads: (cores() / workers).max(1),
            max_batch: 8,
            queue_capacity: None,
            addr: default_addr(),
            max_conns: 32,
            read_timeout_ms: 2000,
            idle_timeout_ms: 30_000,
        }
    }
}

impl ServeOpts {
    /// Defaults overridden by any `ZKPHIRE_SERVE_*` env vars set. A set
    /// but malformed var fails with [`ServeError::InvalidEnv`] naming
    /// it, rather than silently degrading to the default.
    pub fn from_env() -> Result<Self, ServeError> {
        let mut o = Self::default();
        if let Some(w) = env_usize("ZKPHIRE_SERVE_WORKERS")? {
            o.workers = w.max(1);
            // Re-derive the per-worker thread budget for the explicit
            // worker count before its own override is consulted.
            o.prover_threads = (cores() / o.workers).max(1);
        }
        if let Some(t) = env_usize("ZKPHIRE_SERVE_PROVER_THREADS")? {
            o.prover_threads = t.max(1);
        }
        if let Some(b) = env_usize("ZKPHIRE_SERVE_MAX_BATCH")? {
            o.max_batch = b.max(1);
        }
        if let Some(c) = env_usize("ZKPHIRE_SERVE_QUEUE_CAP")? {
            o.queue_capacity = Some(c);
        }
        if let Some(a) = env_addr("ZKPHIRE_SERVE_ADDR")? {
            o.addr = a;
        }
        if let Some(c) = env_usize("ZKPHIRE_SERVE_MAX_CONNS")? {
            o.max_conns = c.max(1);
        }
        if let Some(ms) = env_u64("ZKPHIRE_SERVE_READ_TIMEOUT_MS")? {
            o.read_timeout_ms = ms.max(1);
        }
        if let Some(ms) = env_u64("ZKPHIRE_SERVE_IDLE_TIMEOUT_MS")? {
            o.idle_timeout_ms = ms.max(1);
        }
        Ok(o)
    }

    /// Sets the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets per-worker prover threads (builder style).
    pub fn with_prover_threads(mut self, threads: usize) -> Self {
        self.prover_threads = threads.max(1);
        self
    }

    /// Sets the batch cap (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the shared queue capacity (builder style).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Sets the TCP bind address (builder style).
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Sets the hard connection cap (builder style).
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Sets the mid-frame read deadline in ms (builder style).
    pub fn with_read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms.max(1);
        self
    }

    /// Sets the idle-reaper deadline in ms (builder style).
    pub fn with_idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_track_available_parallelism() {
        let o = ServeOpts::default();
        assert!(o.workers >= 1);
        assert!(o.prover_threads >= 1);
        // The product stays near the core count: no oversubscription by
        // more than the rounding slack of the two divisions.
        assert!(o.workers * o.prover_threads <= cores().max(4) * 2);
        assert_eq!(o.max_batch, 8);
        assert_eq!(o.queue_capacity, None);
        assert_eq!(o.addr, default_addr());
        assert_eq!(o.max_conns, 32);
        assert_eq!(o.read_timeout_ms, 2000);
        assert_eq!(o.idle_timeout_ms, 30_000);
    }

    #[test]
    fn builders_clamp_to_one() {
        let o = ServeOpts::default()
            .with_workers(0)
            .with_prover_threads(0)
            .with_max_batch(0);
        assert_eq!(o.workers, 1);
        assert_eq!(o.prover_threads, 1);
        assert_eq!(o.max_batch, 1);
    }

    #[test]
    fn unset_vars_fall_back_to_defaults() {
        assert_eq!(parse_env_usize("ZKPHIRE_SERVE_WORKERS", None), Ok(None));
        // from_env against the real (clean) env parses to the defaults.
        if std::env::var_os("ZKPHIRE_SERVE_WORKERS").is_none() {
            assert!(ServeOpts::from_env().is_ok());
        }
    }

    #[test]
    fn set_vars_parse_with_whitespace_tolerance() {
        assert_eq!(
            parse_env_usize("ZKPHIRE_SERVE_MAX_BATCH", Some(" 16 ")),
            Ok(Some(16))
        );
        assert_eq!(
            parse_env_usize("ZKPHIRE_SERVE_QUEUE_CAP", Some("0")),
            Ok(Some(0))
        );
    }

    #[test]
    fn net_builders_clamp_and_set() {
        let addr: SocketAddr = "0.0.0.0:9090".parse().expect("literal addr");
        let o = ServeOpts::default()
            .with_addr(addr)
            .with_max_conns(0)
            .with_read_timeout_ms(0)
            .with_idle_timeout_ms(0);
        assert_eq!(o.addr, addr);
        assert_eq!(o.max_conns, 1);
        assert_eq!(o.read_timeout_ms, 1);
        assert_eq!(o.idle_timeout_ms, 1);
    }

    #[test]
    fn net_vars_parse_with_whitespace_tolerance() {
        assert_eq!(
            parse_env_addr("ZKPHIRE_SERVE_ADDR", Some(" 127.0.0.1:7000 ")),
            Ok(Some(SocketAddr::from(([127, 0, 0, 1], 7000))))
        );
        assert_eq!(
            parse_env_usize("ZKPHIRE_SERVE_MAX_CONNS", Some("4")),
            Ok(Some(4))
        );
        assert_eq!(
            parse_env_u64("ZKPHIRE_SERVE_READ_TIMEOUT_MS", Some(" 250 ")),
            Ok(Some(250))
        );
        assert_eq!(
            parse_env_u64("ZKPHIRE_SERVE_IDLE_TIMEOUT_MS", Some("1000")),
            Ok(Some(1000))
        );
        assert_eq!(parse_env_addr("ZKPHIRE_SERVE_ADDR", None), Ok(None));
        assert_eq!(
            parse_env_u64("ZKPHIRE_SERVE_READ_TIMEOUT_MS", None),
            Ok(None)
        );
    }

    #[test]
    fn malformed_net_vars_fail_naming_the_variable() {
        let addr_err = parse_env_addr("ZKPHIRE_SERVE_ADDR", Some("localhost-no-port"))
            .expect_err("hostless addr must fail");
        assert_eq!(
            addr_err,
            ServeError::InvalidEnv {
                var: "ZKPHIRE_SERVE_ADDR",
                value: "localhost-no-port".to_string()
            }
        );
        for (var, bad) in [
            ("ZKPHIRE_SERVE_MAX_CONNS", "many"),
            ("ZKPHIRE_SERVE_READ_TIMEOUT_MS", "1.5s"),
            ("ZKPHIRE_SERVE_IDLE_TIMEOUT_MS", "-3"),
        ] {
            let err = if var == "ZKPHIRE_SERVE_MAX_CONNS" {
                parse_env_usize(var, Some(bad)).expect_err("malformed must fail")
            } else {
                parse_env_u64(var, Some(bad)).expect_err("malformed must fail")
            };
            let msg = err.to_string();
            assert!(msg.contains(var), "message names the variable: {msg}");
            assert!(
                msg.contains(&format!("{bad:?}")),
                "message quotes the value: {msg}"
            );
        }
    }

    #[test]
    fn malformed_vars_fail_naming_the_variable() {
        for (var, bad) in [
            ("ZKPHIRE_SERVE_WORKERS", "eight"),
            ("ZKPHIRE_SERVE_PROVER_THREADS", "2.5"),
            ("ZKPHIRE_SERVE_MAX_BATCH", "-1"),
            ("ZKPHIRE_SERVE_QUEUE_CAP", ""),
        ] {
            let err = parse_env_usize(var, Some(bad)).expect_err("malformed must fail");
            assert_eq!(
                err,
                ServeError::InvalidEnv {
                    var,
                    value: bad.to_string()
                }
            );
            let msg = err.to_string();
            assert!(msg.contains(var), "message names the variable: {msg}");
            assert!(
                msg.contains(&format!("{bad:?}")),
                "message quotes the value: {msg}"
            );
        }
    }
}
