//! Environment-tunable service knobs with `available_parallelism`-aware
//! defaults.
//!
//! Every knob reads `ZKPHIRE_SERVE_*` once at [`ServeOpts::from_env`];
//! unset or unparsable values fall back to the default, so a bad env
//! var degrades to the baked-in behavior instead of failing startup.
//!
//! | env var                       | meaning                          | default                    |
//! |-------------------------------|----------------------------------|----------------------------|
//! | `ZKPHIRE_SERVE_WORKERS`       | prover worker threads            | `max(1, cores / 4)`        |
//! | `ZKPHIRE_SERVE_PROVER_THREADS`| SumCheck threads per worker      | `max(1, cores / workers)`  |
//! | `ZKPHIRE_SERVE_MAX_BATCH`     | max requests per dispatch batch  | `8`                        |
//! | `ZKPHIRE_SERVE_QUEUE_CAP`     | shared admission queue capacity  | unbounded                  |

/// Execution-shape knobs for [`crate::service::ProvingService`]. These
/// tune *where the work runs*, not *what the service computes* — proofs
/// and admission decisions are identical for every setting; only
/// wall-clock latency moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOpts {
    /// Concurrent prover workers (the live analogue of the simulated
    /// chip pool size).
    pub workers: usize,
    /// Threads each worker's HyperPlonk prover uses
    /// ([`zkphire_hyperplonk::ProverConfig::threads`]). `workers ×
    /// prover_threads` defaults to about the machine's core count so
    /// saturating the pool does not oversubscribe.
    pub prover_threads: usize,
    /// Maximum requests per dispatched batch (same meaning as
    /// [`zkphire_fleet::FleetConfig::max_batch`]).
    pub max_batch: usize,
    /// Shared admission queue capacity; `None` = unbounded, `Some(0)`
    /// rejects everything that would have to wait.
    pub queue_capacity: Option<usize>,
}

/// Cores the OS reports, floored at 1 (the query can fail in minimal
/// containers).
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `Some(parsed)` when the var is set and parses, else `None`. A set
/// but malformed var is treated as unset — startup never fails on env.
fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

impl Default for ServeOpts {
    fn default() -> Self {
        let workers = (cores() / 4).max(1);
        Self {
            workers,
            prover_threads: (cores() / workers).max(1),
            max_batch: 8,
            queue_capacity: None,
        }
    }
}

impl ServeOpts {
    /// Defaults overridden by any `ZKPHIRE_SERVE_*` env vars set.
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Some(w) = env_usize("ZKPHIRE_SERVE_WORKERS") {
            o.workers = w.max(1);
            // Re-derive the per-worker thread budget for the explicit
            // worker count before its own override is consulted.
            o.prover_threads = (cores() / o.workers).max(1);
        }
        if let Some(t) = env_usize("ZKPHIRE_SERVE_PROVER_THREADS") {
            o.prover_threads = t.max(1);
        }
        if let Some(b) = env_usize("ZKPHIRE_SERVE_MAX_BATCH") {
            o.max_batch = b.max(1);
        }
        if let Some(c) = env_usize("ZKPHIRE_SERVE_QUEUE_CAP") {
            o.queue_capacity = Some(c);
        }
        o
    }

    /// Sets the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets per-worker prover threads (builder style).
    pub fn with_prover_threads(mut self, threads: usize) -> Self {
        self.prover_threads = threads.max(1);
        self
    }

    /// Sets the batch cap (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the shared queue capacity (builder style).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_track_available_parallelism() {
        let o = ServeOpts::default();
        assert!(o.workers >= 1);
        assert!(o.prover_threads >= 1);
        // The product stays near the core count: no oversubscription by
        // more than the rounding slack of the two divisions.
        assert!(o.workers * o.prover_threads <= cores().max(4) * 2);
        assert_eq!(o.max_batch, 8);
        assert_eq!(o.queue_capacity, None);
    }

    #[test]
    fn builders_clamp_to_one() {
        let o = ServeOpts::default()
            .with_workers(0)
            .with_prover_threads(0)
            .with_max_batch(0);
        assert_eq!(o.workers, 1);
        assert_eq!(o.prover_threads, 1);
        assert_eq!(o.max_batch, 1);
    }

    #[test]
    fn env_parsing_ignores_garbage() {
        // Malformed values fall back to defaults rather than failing:
        // exercised through the parser helper to avoid mutating process
        // env in a threaded test runner.
        assert_eq!(env_usize("ZKPHIRE_SERVE_SURELY_UNSET_VAR"), None);
    }
}
