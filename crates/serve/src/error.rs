//! Typed failure modes of the proving service.
//!
//! The serve dispatch loop has the same no-panic contract as the fleet
//! engine's `simulate()`: anything that can go wrong — a refused
//! submission, a poisoned lock, a dead worker, an engine invariant
//! breaking — comes back as a [`ServeError`] value, never a panic that
//! takes the whole front-end down with one bad request.

use zkphire_fleet::{MetricsError, SimError, TenantId};

use crate::codec::FrameError;

/// Typed failure modes of [`crate::service::ProvingService`].
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The [`crate::service::ServeConfig`] is unusable (no workers, no
    /// serveable classes, a non-finite deadline knob, …).
    InvalidConfig(String),
    /// Admission refused the request: the submitting tenant is at its
    /// queued-request cap.
    TenantCapExceeded {
        /// The capped tenant.
        tenant: TenantId,
        /// Its configured cap.
        cap: usize,
    },
    /// Admission refused the request: the shared queue is full.
    QueueFull {
        /// The configured shared capacity.
        capacity: usize,
    },
    /// The service is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// A request named a class the service did not bake prover assets
    /// for at startup.
    UnknownClass(String),
    /// A `ZKPHIRE_SERVE_*` env var is set but does not parse. Surfaced
    /// as a startup error naming the variable — a typo'd tuning knob
    /// must not silently degrade to the default.
    InvalidEnv {
        /// The offending variable name.
        var: &'static str,
        /// Its unparsable value.
        value: String,
    },
    /// A peer's bytes failed to parse as a protocol frame (bad magic,
    /// oversized declaration, truncated body, unknown type). The
    /// connection gets a structured [`crate::codec::Frame::Error`]
    /// response and a close — never a panic.
    Protocol(FrameError),
    /// A network operation on the front-end failed (bind, accept,
    /// read, write, connect). `op` names the operation; `detail` is
    /// the OS error text.
    Net {
        /// The operation that failed (`"bind"`, `"read"`, …).
        op: &'static str,
        /// OS-level detail.
        detail: String,
    },
    /// `shutdown()` was called on a server that already drained, or
    /// work was submitted after drain completed.
    AlreadyShutDown,
    /// A service invariant broke (a worker died, a lock was poisoned,
    /// accounting drifted, a proof failed verification). Mirrors
    /// [`SimError::Invariant`].
    Invariant(String),
    /// Wall-clock summarization rejected the run's latency sample.
    Metrics(MetricsError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid serve config: {why}"),
            Self::TenantCapExceeded { tenant, cap } => {
                write!(f, "tenant {tenant} at queued-request cap {cap}")
            }
            Self::QueueFull { capacity } => {
                write!(f, "shared queue at capacity {capacity}")
            }
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::UnknownClass(class) => {
                write!(f, "no prover assets baked for class {class}")
            }
            Self::InvalidEnv { var, value } => {
                write!(f, "env var {var} is set to the unparsable value {value:?}")
            }
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::Net { op, detail } => write!(f, "net {op} failed: {detail}"),
            Self::AlreadyShutDown => write!(f, "service already shut down"),
            Self::Invariant(why) => write!(f, "service invariant broke: {why}"),
            Self::Metrics(e) => write!(f, "metrics error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<MetricsError> for ServeError {
    fn from(e: MetricsError) -> Self {
        Self::Metrics(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        Self::Protocol(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Metrics(m) => Self::Metrics(m),
            other => Self::Invariant(other.to_string()),
        }
    }
}

impl ServeError {
    /// Whether this error is an admission refusal (the request was
    /// counted and rejected by policy) rather than a service fault.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            Self::TenantCapExceeded { .. } | Self::QueueFull { .. }
        )
    }
}
