//! The in-process proving service: listener → admission → dispatcher →
//! worker pool, with *real* HyperPlonk provers where the simulator has
//! a cost model.
//!
//! The thread topology mirrors the DES event pipeline one-to-one so the
//! two sides stay comparable (see `docs/SERVE.md` for the validation
//! methodology):
//!
//! ```text
//! submit() ──► admission ──► ctrl channel ──► dispatcher ──► workers
//! (callers)    (Mutex:        (mpsc)          (owns the      (one thread
//!              caps, queue                     BatchPolicy,   per "chip";
//!              capacity,                       retry parking, prove +
//!              shutdown                        brown-out,     verify per
//!              gate)                           repair timers) request)
//! ```
//!
//! Admission decisions are taken synchronously under one mutex, so
//! per-tenant caps are exact — a flood of concurrent submissions cannot
//! race past its cap. Everything after admission is asynchronous: the
//! dispatcher owns the same [`BatchPolicy`] objects the simulator
//! batches with, routes failures through the same [`RetryPolicy`]
//! backoff, sheds with the same [`BrownOutConfig`] rule, and the
//! workers report the same [`RequestRecord`]s the DES emits — so one
//! [`try_summarize`] call produces wall-clock per-tenant quantiles
//! directly comparable to a simulation of the same trace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_fleet::{
    try_summarize, BatchPolicy, BrownOutConfig, FleetSummary, Outcome, OutcomeRecord, PolicyKind,
    Request, RequestClass, RequestRecord, RetryPolicy, RunAccumulators, SplitMix64, TenantId,
};
use zkphire_hyperplonk::{
    prove_with_config, setup, verify, Circuit, GateSystem, ProverConfig, ProvingKey, VerifyingKey,
    Witness,
};
use zkphire_telemetry::{wall_event, Histogram, WallEventKind};
use zkphire_transcript::Transcript;

use crate::error::ServeError;
use crate::opts::ServeOpts;

/// Transcript domain for every proof the service produces.
const DOMAIN: &[u8] = b"zkphire-serve/v1";

/// Same stream tag the simulator XORs into its retry-jitter seed, so a
/// serve run and a sim run of one scenario draw identical backoffs.
const RETRY_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// Maps the fleet layer's protocol-level gate tag onto the prover's
/// arithmetization.
fn gate_system(gate: zkphire_core::protocol::Gate) -> GateSystem {
    match gate {
        zkphire_core::protocol::Gate::Vanilla => GateSystem::Vanilla,
        zkphire_core::protocol::Gate::Jellyfish => GateSystem::Jellyfish,
    }
}

/// Deployment knobs for one service instance. The resilience knobs
/// (`retry`, `brown_out`, tenant caps) are the *same types* the
/// simulator consumes, so a scenario validated in the DES drops into
/// the live service unchanged.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Request classes the service bakes prover assets for at startup;
    /// submissions outside this set are refused as [`ServeError::UnknownClass`].
    pub classes: Vec<RequestClass>,
    /// Batching policy for the dispatcher's queue.
    pub policy: PolicyKind,
    /// Per-tenant service weights for [`PolicyKind::WeightedFair`].
    pub tenant_weights: Vec<(TenantId, f64)>,
    /// Per-tenant queued-request caps (overrides `default_tenant_cap`).
    pub tenant_caps: Vec<(TenantId, usize)>,
    /// Cap for tenants absent from `tenant_caps`; `None` = unlimited.
    pub default_tenant_cap: Option<usize>,
    /// Rescue for failed or deadline-expired work; `None` = lost.
    pub retry: Option<RetryPolicy>,
    /// Latest-deadline shedding under worker loss; `None` = never shed.
    pub brown_out: Option<BrownOutConfig>,
    /// Deadline budget as a multiple of the class's calibrated proof
    /// latency (mirrors [`zkphire_fleet::FleetConfig::deadline_factor`]).
    pub deadline_factor: f64,
    /// Additive deadline slack (ms).
    pub deadline_slack_ms: f64,
    /// Wall-clock repair time after an injected worker failure (ms).
    pub repair_ms: f64,
    /// Failure injection: dispatch sequence numbers (0-based) whose
    /// batch is lost as if the worker's chip failed mid-proof. Empty in
    /// production; tests and the repro harness script outages with it.
    pub fail_batches: Vec<u64>,
    /// Seed for baked circuits and retry-backoff jitter.
    pub seed: u64,
    /// Active-row fraction of the baked random circuits.
    pub active_fraction: f64,
    /// Execution-shape knobs (worker count, threads, batch, queue cap).
    pub opts: ServeOpts,
    /// Streaming outcome sink: every terminal outcome (completed,
    /// rejected, shed, lost) is sent here the moment it resolves, as an
    /// [`OutcomeRecord`] — live visibility without waiting for drain.
    /// `None` (the default) streams nothing; a hung-up receiver is
    /// ignored, never an error.
    pub outcome_tx: Option<Sender<OutcomeRecord>>,
}

impl ServeConfig {
    /// A sensible default deployment over `classes`: size-class
    /// batching, deadlines at 5× calibrated latency + 50 ms, no
    /// resilience machinery, `available_parallelism`-derived execution
    /// shape. Apply [`ServeOpts::from_env`] explicitly (it can fail on
    /// malformed vars) to honor `ZKPHIRE_SERVE_*` overrides.
    pub fn new(classes: Vec<RequestClass>) -> Self {
        Self {
            classes,
            policy: PolicyKind::SizeClass,
            tenant_weights: Vec::new(),
            tenant_caps: Vec::new(),
            default_tenant_cap: None,
            retry: None,
            brown_out: None,
            deadline_factor: 5.0,
            deadline_slack_ms: 50.0,
            repair_ms: 25.0,
            fail_batches: Vec::new(),
            seed: 0,
            active_fraction: 0.5,
            opts: ServeOpts::default(),
            outcome_tx: None,
        }
    }

    /// Sets the batching policy (builder style).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets per-tenant service weights (builder style).
    pub fn with_tenant_weights(mut self, weights: Vec<(TenantId, f64)>) -> Self {
        self.tenant_weights = weights;
        self
    }

    /// Sets per-tenant queue caps (builder style).
    pub fn with_tenant_caps(mut self, caps: Vec<(TenantId, usize)>) -> Self {
        self.tenant_caps = caps;
        self
    }

    /// Caps every tenant not listed in `tenant_caps` (builder style).
    pub fn with_default_tenant_cap(mut self, cap: usize) -> Self {
        self.default_tenant_cap = Some(cap);
        self
    }

    /// Enables retry of lost and expired work (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Enables brown-out shedding under worker loss (builder style).
    pub fn with_brown_out(mut self, brown_out: BrownOutConfig) -> Self {
        self.brown_out = Some(brown_out);
        self
    }

    /// Scripts worker failures at the given dispatch sequence numbers
    /// (builder style).
    pub fn with_fail_batches(mut self, fail_batches: Vec<u64>) -> Self {
        self.fail_batches = fail_batches;
        self
    }

    /// Sets the instance seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution-shape knobs (builder style).
    pub fn with_opts(mut self, opts: ServeOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Streams every terminal outcome to `tx` as it resolves (builder
    /// style). Pair with a collector thread writing
    /// [`OutcomeRecord::to_jsonl_line`] for a live JSONL feed.
    pub fn with_outcome_stream(mut self, tx: Sender<OutcomeRecord>) -> Self {
        self.outcome_tx = Some(tx);
        self
    }

    /// The queued-request cap admission enforces for `tenant` — same
    /// resolution rule as [`zkphire_fleet::FleetConfig::tenant_cap`].
    pub fn tenant_cap(&self, tenant: TenantId) -> Option<usize> {
        self.tenant_caps
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, cap)| *cap)
            .or(self.default_tenant_cap)
    }
}

/// Everything one service run produces, in the same shape as the DES's
/// [`zkphire_fleet::SimReport`] so the two are diffable side by side.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Wall-clock aggregate metrics, computed by the *same*
    /// summarization code as the simulator's.
    pub summary: FleetSummary,
    /// Per-request completion records (wall-clock ms since service
    /// start), in completion order.
    pub records: Vec<RequestRecord>,
    /// Measured single-proof latency per class from startup
    /// calibration (ms) — pin these into a
    /// [`zkphire_core::costdb::CostModel`] to make the DES predict this
    /// service's wall clock.
    pub calibration: Vec<(RequestClass, f64)>,
    /// Dispatch wakeup latency (µs): submission → the dispatcher thread
    /// picking the job off the control channel. One of the named
    /// contributors to the sim-vs-wall latency gap — the DES dispatches
    /// at the exact event timestamp; the live dispatcher has to wake up
    /// first.
    pub dispatch_wakeup_us: Histogram,
}

/// Baked prover state for one request class: a satisfied random circuit
/// of that shape, its keys, and its witness. Workers prove this
/// instance per request — real MSMs, SumChecks, and opening proofs with
/// the class's exact cost profile, without per-request witness I/O.
struct ClassAssets {
    pk: ProvingKey,
    vk: VerifyingKey,
    witness: Witness,
}

/// Admission state, guarded by one mutex so cap checks are exact under
/// concurrent submission.
struct Admission {
    accepting: bool,
    queued_total: usize,
    queued_by_tenant: BTreeMap<TenantId, usize>,
    arrivals: u64,
    rejected: u64,
    rejected_by_tenant: BTreeMap<TenantId, u64>,
}

/// State shared between submitters, the dispatcher, and shutdown.
struct Inner {
    cfg: ServeConfig,
    admission: Mutex<Admission>,
    next_id: AtomicU64,
    started: Instant,
    /// Calibrated single-proof latency per class (ms): the deadline
    /// base, and the number to pin into a DES cost model.
    expected_ms: BTreeMap<RequestClass, f64>,
}

impl Inner {
    fn now_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    fn lock_admission(&self) -> Result<MutexGuard<'_, Admission>, ServeError> {
        self.admission
            .lock()
            .map_err(|_| ServeError::Invariant("admission lock poisoned".into()))
    }

    /// Streams a terminal outcome if a sink is configured. A hung-up
    /// receiver means the consumer stopped listening — not a service
    /// fault.
    fn stream_outcome(&self, rec: OutcomeRecord) {
        if let Some(tx) = &self.cfg.outcome_tx {
            let _ = tx.send(rec);
        }
    }
}

/// Dispatcher-bound control messages.
enum Ctrl {
    /// An admitted request from `submit`.
    Job(Request),
    /// A worker finished a batch; the records carry its timing.
    Done {
        worker: usize,
        records: Vec<RequestRecord>,
    },
    /// A worker's batch was lost to an injected failure.
    Failed { worker: usize, batch: Vec<Request> },
    /// A proof failed its own verification — an engine invariant, not a
    /// request outcome.
    ProofRejected { worker: usize, id: u64 },
    /// Graceful drain: stop admitting (already gated), finish
    /// everything queued/parked/in-flight, then exit.
    Shutdown,
}

/// Worker-bound messages.
enum Work {
    Batch {
        reqs: Vec<Request>,
        inject_failure: bool,
    },
    Stop,
}

#[derive(Clone, Copy, PartialEq)]
enum WorkerStatus {
    Idle,
    Busy,
    /// Failed; rejoins the pool at the deadline (wall-clock ms).
    Repairing {
        until_ms: f64,
    },
}

struct WorkerHandle {
    tx: Sender<Work>,
    status: WorkerStatus,
    busy_ms: f64,
}

/// What the dispatcher thread hands back at drain.
struct DispatcherOut {
    records: Vec<RequestRecord>,
    busy_ms: Vec<f64>,
    depth_time_integral: f64,
    max_queue_depth: usize,
    batches: u64,
    retries: u64,
    lost: u64,
    lost_by_tenant: BTreeMap<TenantId, u64>,
    shed: u64,
    shed_by_tenant: BTreeMap<TenantId, u64>,
    chip_failures: u64,
    chip_repairs: u64,
    makespan_ms: f64,
    invariant: Option<String>,
    dispatch_wakeup_us: Histogram,
}

/// The live proving front-end. Construct with [`ProvingService::start`],
/// feed with [`ProvingService::submit`], and finish with
/// [`ProvingService::shutdown`] — which drains all in-flight work and
/// returns the run's [`ServeReport`].
pub struct ProvingService {
    inner: Arc<Inner>,
    ctrl_tx: Sender<Ctrl>,
    dispatcher: JoinHandle<DispatcherOut>,
    workers: Vec<JoinHandle<()>>,
}

impl ProvingService {
    /// Bakes prover assets for every configured class, calibrates their
    /// single-proof latency, and spins up the worker pool + dispatcher.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an unusable configuration and
    /// [`ServeError::Invariant`] if a calibration proof fails to verify
    /// or a thread cannot spawn.
    pub fn start(cfg: ServeConfig) -> Result<Self, ServeError> {
        if cfg.classes.is_empty() {
            return Err(ServeError::InvalidConfig("no request classes".into()));
        }
        for knob in [
            cfg.deadline_factor,
            cfg.deadline_slack_ms,
            cfg.repair_ms,
            cfg.active_fraction,
        ] {
            if !knob.is_finite() || knob < 0.0 {
                return Err(ServeError::InvalidConfig(format!(
                    "non-finite or negative knob {knob}"
                )));
            }
        }
        let threads = cfg.opts.prover_threads;

        // Bake one satisfied instance per distinct class and measure it
        // once — the measurement both warms the code paths and anchors
        // deadlines (and the sim-vs-wall comparison) to this machine.
        let mut assets: BTreeMap<RequestClass, ClassAssets> = BTreeMap::new();
        let mut expected_ms = BTreeMap::new();
        for (i, &class) in cfg.classes.iter().enumerate() {
            if assets.contains_key(&class) {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
            let (circuit, witness) = Circuit::random(
                gate_system(class.gate),
                class.mu,
                cfg.active_fraction,
                &mut rng,
            );
            let (pk, vk) = setup(circuit, &mut rng);
            // Two proves: the first warms lazy init and caches (its
            // timing is not representative), the second is the
            // calibration measurement. Both must verify.
            let mut measured = 0.0;
            for pass in 0..2 {
                let t0 = Instant::now();
                let proof = prove_with_config(
                    &pk,
                    &witness,
                    &mut Transcript::new(DOMAIN),
                    ProverConfig { threads },
                );
                measured = t0.elapsed().as_secs_f64() * 1e3;
                if verify(&vk, &proof, &mut Transcript::new(DOMAIN)).is_err() {
                    return Err(ServeError::Invariant(format!(
                        "calibration proof {pass} for class {class} failed verification"
                    )));
                }
            }
            expected_ms.insert(class, measured);
            assets.insert(class, ClassAssets { pk, vk, witness });
        }
        let assets = Arc::new(assets);

        let inner = Arc::new(Inner {
            admission: Mutex::new(Admission {
                accepting: true,
                queued_total: 0,
                queued_by_tenant: BTreeMap::new(),
                arrivals: 0,
                rejected: 0,
                rejected_by_tenant: BTreeMap::new(),
            }),
            next_id: AtomicU64::new(0),
            started: Instant::now(),
            expected_ms,
            cfg,
        });

        let (ctrl_tx, ctrl_rx) = mpsc::channel();
        let mut worker_txs = Vec::new();
        let mut workers = Vec::new();
        for w in 0..inner.cfg.opts.workers {
            let (tx, rx) = mpsc::channel();
            worker_txs.push(tx);
            let assets = Arc::clone(&assets);
            let ctrl = ctrl_tx.clone();
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("zkphire-serve-worker-{w}"))
                .spawn(move || worker_loop(w, &inner, &assets, &rx, &ctrl, threads))
                .map_err(|e| ServeError::Invariant(format!("spawn worker {w}: {e}")))?;
            workers.push(handle);
        }
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("zkphire-serve-dispatcher".into())
                .spawn(move || dispatcher_loop(&inner, &ctrl_rx, worker_txs))
                .map_err(|e| ServeError::Invariant(format!("spawn dispatcher: {e}")))?
        };

        Ok(Self {
            inner,
            ctrl_tx,
            dispatcher,
            workers,
        })
    }

    /// Measured single-proof latency per class (ms) from startup
    /// calibration.
    pub fn calibration(&self) -> Vec<(RequestClass, f64)> {
        self.inner
            .expected_ms
            .iter()
            .map(|(&c, &ms)| (c, ms))
            .collect()
    }

    /// Wall-clock ms since the service started — the clock every
    /// request record and timeline payload is stated in.
    pub fn now_ms(&self) -> f64 {
        self.inner.now_ms()
    }

    /// Blocks the caller until the service clock reaches `target_ms`
    /// (wall-clock ms since the service started); returns immediately
    /// if that moment already passed. The load generator paces trace
    /// replay with this so arrivals land at their recorded offsets.
    ///
    /// Hybrid wait: a coarse `thread::sleep` covers all but the final
    /// ~1.5 ms, then the thread spins the remainder. A bare sleep
    /// overshoots by the OS scheduler quantum — milliseconds on a busy
    /// box — which smears sub-millisecond inter-arrival gaps and was
    /// one of the two named contributors to the sim-vs-wall p99 gap.
    pub fn sleep_until_ms(&self, target_ms: f64) {
        if !target_ms.is_finite() {
            return;
        }
        // Stay asleep until within the spin margin of the target.
        const SPIN_MARGIN_MS: f64 = 1.5;
        let remaining = target_ms - self.inner.now_ms();
        if remaining > SPIN_MARGIN_MS {
            std::thread::sleep(Duration::from_secs_f64((remaining - SPIN_MARGIN_MS) / 1e3));
        }
        while self.inner.now_ms() < target_ms {
            std::hint::spin_loop();
        }
    }

    /// Requests currently queued past admission but not yet terminal —
    /// the live depth behind wire-level retry-after hints.
    pub fn queue_depth(&self) -> usize {
        self.inner
            .lock_admission()
            .map(|adm| adm.queued_total)
            .unwrap_or(0)
    }

    /// Suggested client wait (ms) before retrying a rejected submit:
    /// the queue's expected drain time if every queued request cost
    /// the mean calibrated proof latency, spread across the worker
    /// pool. A hint, not a guarantee — the point is that the wait the
    /// wire advertises scales with live load instead of being a
    /// constant.
    pub fn retry_after_hint_ms(&self) -> f64 {
        let n = self.inner.expected_ms.len();
        if n == 0 {
            return 0.0;
        }
        let mean_ms = self.inner.expected_ms.values().sum::<f64>() / n as f64;
        let workers = self.inner.cfg.opts.workers.max(1) as f64;
        (self.queue_depth() + 1) as f64 * mean_ms / workers
    }

    /// Records and streams an admission rejection — a terminal outcome.
    fn note_rejection(&self, id: u64, class: RequestClass, tenant: TenantId) {
        let t_ms = self.inner.now_ms();
        wall_event(WallEventKind::Rejected, id, u64::from(tenant), 0, t_ms, 0.0);
        self.inner.stream_outcome(OutcomeRecord {
            id,
            tenant,
            class,
            outcome: Outcome::Rejected,
            t_ms,
            latency_ms: 0.0,
            attempts: 0,
        });
    }

    /// Submits one proof request. Admission runs synchronously under
    /// the service mutex (per-tenant cap first, then the shared queue
    /// capacity — the simulator's rule order); accepted requests return
    /// their id immediately and complete asynchronously.
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantCapExceeded`] / [`ServeError::QueueFull`]
    /// for policy rejections (counted in the final report),
    /// [`ServeError::ShuttingDown`] once shutdown began, and
    /// [`ServeError::UnknownClass`] for a class without baked assets.
    pub fn submit(&self, class: RequestClass, tenant: TenantId) -> Result<u64, ServeError> {
        let Some(&base_ms) = self.inner.expected_ms.get(&class) else {
            return Err(ServeError::UnknownClass(class.to_string()));
        };
        let req = {
            let mut adm = self.inner.lock_admission()?;
            if !adm.accepting {
                return Err(ServeError::ShuttingDown);
            }
            adm.arrivals += 1;
            // Ids are assigned to *every* arrival, rejected ones
            // included — the DES numbers arrivals the same way, so the
            // two sides agree on which id each trace entry got.
            let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
            if let Some(cap) = self.inner.cfg.tenant_cap(tenant) {
                if adm.queued_by_tenant.get(&tenant).copied().unwrap_or(0) >= cap {
                    adm.rejected += 1;
                    *adm.rejected_by_tenant.entry(tenant).or_insert(0) += 1;
                    drop(adm);
                    self.note_rejection(id, class, tenant);
                    return Err(ServeError::TenantCapExceeded { tenant, cap });
                }
            }
            if let Some(capacity) = self.inner.cfg.opts.queue_capacity {
                if adm.queued_total >= capacity {
                    adm.rejected += 1;
                    *adm.rejected_by_tenant.entry(tenant).or_insert(0) += 1;
                    drop(adm);
                    self.note_rejection(id, class, tenant);
                    return Err(ServeError::QueueFull { capacity });
                }
            }
            adm.queued_total += 1;
            *adm.queued_by_tenant.entry(tenant).or_insert(0) += 1;
            let now = self.inner.now_ms();
            Request {
                id,
                tenant,
                class,
                arrival_ms: now,
                deadline_ms: now
                    + self.inner.cfg.deadline_slack_ms
                    + self.inner.cfg.deadline_factor * base_ms,
                attempts: 0,
            }
        };
        let id = req.id;
        wall_event(
            WallEventKind::Admitted,
            id,
            u64::from(tenant),
            0,
            req.arrival_ms,
            0.0,
        );
        self.ctrl_tx
            .send(Ctrl::Job(req))
            .map_err(|_| ServeError::Invariant("dispatcher is gone".into()))?;
        Ok(id)
    }

    /// Stops admission, drains every queued, parked, and in-flight
    /// request to a terminal outcome, joins all threads, and returns
    /// the run's report — summarized by the same code path as the DES.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invariant`] if a thread died or a proof failed
    /// verification mid-run; [`ServeError::Metrics`] if summarization
    /// rejects the latency sample.
    pub fn shutdown(self) -> Result<ServeReport, ServeError> {
        self.inner.lock_admission()?.accepting = false;
        // A dead dispatcher is reported by join below, not the send.
        let _ = self.ctrl_tx.send(Ctrl::Shutdown);
        let out = self
            .dispatcher
            .join()
            .map_err(|_| ServeError::Invariant("dispatcher thread panicked".into()))?;
        for (w, h) in self.workers.into_iter().enumerate() {
            h.join()
                .map_err(|_| ServeError::Invariant(format!("worker {w} thread panicked")))?;
        }
        if let Some(why) = out.invariant {
            return Err(ServeError::Invariant(why));
        }
        let adm = self.inner.lock_admission()?;
        let workers = self.inner.cfg.opts.workers;
        let acc = RunAccumulators {
            busy_ms: out.busy_ms,
            depth_time_integral: out.depth_time_integral,
            max_queue_depth: out.max_queue_depth,
            batches: out.batches,
            arrivals: adm.arrivals,
            rejected: adm.rejected,
            rejected_by_tenant: adm.rejected_by_tenant.clone(),
            shed: out.shed,
            shed_by_tenant: out.shed_by_tenant,
            lost: out.lost,
            lost_by_tenant: out.lost_by_tenant,
            retries: out.retries,
            chip_failures: out.chip_failures,
            chip_repairs: out.chip_repairs,
            makespan_ms: out.makespan_ms,
            chip_time_integral_ms: workers as f64 * out.makespan_ms,
            peak_chips: workers,
            scale_ups: 0,
            scale_downs: 0,
        };
        let summary = try_summarize(&out.records, &acc, &self.inner.cfg.tenant_weights)?;
        Ok(ServeReport {
            summary,
            records: out.records,
            calibration: self
                .inner
                .expected_ms
                .iter()
                .map(|(&c, &ms)| (c, ms))
                .collect(),
            dispatch_wakeup_us: out.dispatch_wakeup_us,
        })
    }
}

/// One prover worker: receives batches, proves and verifies each
/// request against its class's baked instance, reports completion
/// records timed like the DES (whole batch shares start/finish).
fn worker_loop(
    idx: usize,
    inner: &Inner,
    assets: &BTreeMap<RequestClass, ClassAssets>,
    rx: &Receiver<Work>,
    ctrl: &Sender<Ctrl>,
    threads: usize,
) {
    while let Ok(work) = rx.recv() {
        let (reqs, inject_failure) = match work {
            Work::Stop => return,
            Work::Batch {
                reqs,
                inject_failure,
            } => (reqs, inject_failure),
        };
        if inject_failure {
            if ctrl
                .send(Ctrl::Failed {
                    worker: idx,
                    batch: reqs,
                })
                .is_err()
            {
                return;
            }
            continue;
        }
        let start = inner.now_ms();
        let size = reqs.len();
        let mut verified = true;
        for r in &reqs {
            let Some(a) = assets.get(&r.class) else {
                verified = false;
                let _ = ctrl.send(Ctrl::ProofRejected {
                    worker: idx,
                    id: r.id,
                });
                break;
            };
            wall_event(
                WallEventKind::ProveBegin,
                r.id,
                u64::from(r.tenant),
                idx as u64,
                inner.now_ms(),
                0.0,
            );
            let proof = prove_with_config(
                &a.pk,
                &a.witness,
                &mut Transcript::new(DOMAIN),
                ProverConfig { threads },
            );
            let prove_done = inner.now_ms();
            wall_event(
                WallEventKind::ProveEnd,
                r.id,
                u64::from(r.tenant),
                idx as u64,
                prove_done,
                0.0,
            );
            wall_event(
                WallEventKind::VerifyBegin,
                r.id,
                u64::from(r.tenant),
                idx as u64,
                prove_done,
                0.0,
            );
            let ok = verify(&a.vk, &proof, &mut Transcript::new(DOMAIN)).is_ok();
            wall_event(
                WallEventKind::VerifyEnd,
                r.id,
                u64::from(r.tenant),
                idx as u64,
                inner.now_ms(),
                0.0,
            );
            if !ok {
                verified = false;
                let _ = ctrl.send(Ctrl::ProofRejected {
                    worker: idx,
                    id: r.id,
                });
                break;
            }
        }
        if !verified {
            continue;
        }
        let finish = inner.now_ms();
        let records = reqs
            .iter()
            .map(|r| RequestRecord {
                id: r.id,
                tenant: r.tenant,
                class: r.class,
                arrival_ms: r.arrival_ms,
                deadline_ms: r.deadline_ms,
                start_ms: start,
                finish_ms: finish,
                chip: idx,
                batch_size: size,
                attempts: r.attempts,
            })
            .collect();
        if ctrl
            .send(Ctrl::Done {
                worker: idx,
                records,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Dispatcher state while draining the control channel.
struct Dispatcher<'a> {
    inner: &'a Inner,
    policy: Box<dyn BatchPolicy + Send>,
    workers: Vec<WorkerHandle>,
    /// Requests sitting out a retry backoff: id → (request, wake ms).
    parked: BTreeMap<u64, (Request, f64)>,
    retry_rng: SplitMix64,
    out: DispatcherOut,
    draining: bool,
    last_tick_ms: f64,
    /// Last sampled queue depth / busy-worker count, so the timeline's
    /// series only record changes, not every loop heartbeat.
    last_depth: usize,
    last_in_flight: usize,
}

/// The dispatcher thread: owns the batching queue and the worker pool's
/// dispatch state; every decision the DES engine takes per event, this
/// loop takes per control message or timer expiry.
fn dispatcher_loop(
    inner: &Inner,
    rx: &Receiver<Ctrl>,
    worker_txs: Vec<Sender<Work>>,
) -> DispatcherOut {
    let n_workers = worker_txs.len();
    let mut d = Dispatcher {
        inner,
        policy: inner.cfg.policy.build_with(&inner.cfg.tenant_weights),
        workers: worker_txs
            .into_iter()
            .map(|tx| WorkerHandle {
                tx,
                status: WorkerStatus::Idle,
                busy_ms: 0.0,
            })
            .collect(),
        parked: BTreeMap::new(),
        retry_rng: SplitMix64::new(inner.cfg.seed ^ RETRY_STREAM),
        out: DispatcherOut {
            records: Vec::new(),
            busy_ms: vec![0.0; n_workers],
            depth_time_integral: 0.0,
            max_queue_depth: 0,
            batches: 0,
            retries: 0,
            lost: 0,
            lost_by_tenant: BTreeMap::new(),
            shed: 0,
            shed_by_tenant: BTreeMap::new(),
            chip_failures: 0,
            chip_repairs: 0,
            makespan_ms: 0.0,
            invariant: None,
            dispatch_wakeup_us: Histogram::default(),
        },
        draining: false,
        last_tick_ms: 0.0,
        last_depth: 0,
        last_in_flight: 0,
    };
    loop {
        // A pending timer bounds the wait; with none, block until the
        // next submit or completion wakes us through the channel. The
        // old unconditional 50 ms heartbeat poll meant a submit landing
        // between beats could sit in the channel for most of a period —
        // the recv_timeout wakeup tail in `dispatch_wakeup_us`.
        let first = match d.next_timeout() {
            Some(timeout) => match rx.recv_timeout(timeout) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                // Every submitter and worker hung up without a
                // shutdown: nothing can arrive anymore, drain what
                // remains.
                Err(RecvTimeoutError::Disconnected) => {
                    d.draining = true;
                    None
                }
            },
            None => match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => {
                    d.draining = true;
                    None
                }
            },
        };
        let now = inner.now_ms();
        d.tick(now);
        // Drain the whole queued burst before the post-processing
        // below: one round of repair/dispatch/sampling then serves
        // every message, where re-running it per message put its full
        // cost into the wakeup of each later message in the burst.
        let mut effectful = false;
        let mut pending = first;
        while let Some(msg) = pending.take() {
            let handled = match msg {
                Ctrl::Job(req) => {
                    // Submission → this wakeup is pure dispatcher
                    // latency the DES does not model (it dispatches at
                    // the event's exact timestamp) — one of the two
                    // named contributors to the sim-vs-wall p99 gap.
                    let t = inner.now_ms();
                    d.out
                        .dispatch_wakeup_us
                        .record(((t - req.arrival_ms).max(0.0) * 1e3) as u64);
                    d.policy.push(req);
                    d.out.max_queue_depth = d.out.max_queue_depth.max(d.policy.depth());
                    true
                }
                Ctrl::Done { worker, records } => d.on_done(worker, records),
                Ctrl::Failed { worker, batch } => d.on_failed(worker, batch, now),
                Ctrl::ProofRejected { worker, id } => {
                    d.note_invariant(format!(
                        "worker {worker}: proof for request {id} failed verification"
                    ));
                    if let Some(w) = d.workers.get_mut(worker) {
                        w.status = WorkerStatus::Idle;
                    }
                    true
                }
                Ctrl::Shutdown => {
                    d.draining = true;
                    false
                }
            };
            effectful |= handled;
            pending = rx.try_recv().ok();
        }
        if effectful {
            d.out.makespan_ms = d.out.makespan_ms.max(now);
        }
        d.repair_workers(now);
        d.wake_parked(now);
        d.shed_if_browned_out(now);
        d.try_dispatch(now);
        d.sample_series();
        if d.draining && d.drained() {
            break;
        }
    }
    for w in &d.workers {
        let _ = w.tx.send(Work::Stop);
    }
    for (i, w) in d.workers.iter().enumerate() {
        d.out.busy_ms[i] = w.busy_ms;
    }
    d.out
}

impl Dispatcher<'_> {
    /// Sleep until the earliest pending timer (a parked retry's wake or
    /// a failed worker's repair); `None` means no timer is pending and
    /// the dispatcher can block on the channel outright — submits and
    /// completions wake it through the send, so no polling heartbeat
    /// is needed.
    fn next_timeout(&self) -> Option<Duration> {
        let now = self.inner.now_ms();
        let mut next: Option<f64> = None;
        for (_, wake) in self.parked.values() {
            next = Some(next.map_or(*wake, |n: f64| n.min(*wake)));
        }
        for w in &self.workers {
            if let WorkerStatus::Repairing { until_ms } = w.status {
                next = Some(next.map_or(until_ms, |n: f64| n.min(until_ms)));
            }
        }
        // Cap at 60 s: a worker that hung up mid-batch parks a repair
        // at f64::MAX, which must degrade to a periodic re-check, not
        // a `Duration::from_secs_f64(inf)` panic.
        next.map(|at| Duration::from_secs_f64((((at - now).max(0.0) / 1e3) + 1e-4).min(60.0)))
    }

    fn tick(&mut self, now: f64) {
        self.out.depth_time_integral += self.policy.depth() as f64 * (now - self.last_tick_ms);
        self.last_tick_ms = now;
    }

    fn note_invariant(&mut self, why: String) {
        if self.out.invariant.is_none() {
            self.out.invariant = Some(why);
        }
    }

    fn on_done(&mut self, worker: usize, records: Vec<RequestRecord>) -> bool {
        let Some(w) = self.workers.get_mut(worker) else {
            self.note_invariant(format!("completion from unknown worker {worker}"));
            return false;
        };
        w.status = WorkerStatus::Idle;
        if let (Some(first), Some(last)) = (records.first(), records.last()) {
            // The WorkerBusy event carries the exact operands of this
            // += so the timeline's replay is bitwise-identical to the
            // accumulator the summary's utilization divides.
            wall_event(
                WallEventKind::WorkerBusy,
                0,
                0,
                worker as u64,
                first.start_ms,
                last.finish_ms,
            );
            w.busy_ms += last.finish_ms - first.start_ms;
            self.out.makespan_ms = self.out.makespan_ms.max(last.finish_ms);
        }
        for r in &records {
            wall_event(
                WallEventKind::Completed,
                r.id,
                u64::from(r.tenant),
                worker as u64,
                r.finish_ms,
                r.latency_ms(),
            );
            self.inner.stream_outcome(OutcomeRecord {
                id: r.id,
                tenant: r.tenant,
                class: r.class,
                outcome: Outcome::Completed,
                t_ms: r.finish_ms,
                latency_ms: r.latency_ms(),
                attempts: r.attempts,
            });
        }
        self.out.records.extend(records);
        true
    }

    fn on_failed(&mut self, worker: usize, batch: Vec<Request>, now: f64) -> bool {
        let Some(w) = self.workers.get_mut(worker) else {
            self.note_invariant(format!("failure from unknown worker {worker}"));
            return false;
        };
        w.status = WorkerStatus::Repairing {
            until_ms: now + self.inner.cfg.repair_ms,
        };
        self.out.chip_failures += 1;
        wall_event(
            WallEventKind::WorkerRepairBegin,
            0,
            0,
            worker as u64,
            now,
            now + self.inner.cfg.repair_ms,
        );
        for r in batch {
            self.route_retry_or_lost(r, now);
        }
        true
    }

    fn repair_workers(&mut self, now: f64) {
        for (i, w) in self.workers.iter_mut().enumerate() {
            if let WorkerStatus::Repairing { until_ms } = w.status {
                if until_ms <= now {
                    w.status = WorkerStatus::Idle;
                    self.out.chip_repairs += 1;
                    wall_event(WallEventKind::WorkerRepairEnd, 0, 0, i as u64, now, 0.0);
                }
            }
        }
    }

    /// Same routing rule as the DES engine: another backoff while the
    /// budget lasts, lost for good after.
    fn route_retry_or_lost(&mut self, mut req: Request, now: f64) {
        match self.inner.cfg.retry {
            Some(p) if req.attempts < p.max_retries => {
                req.attempts += 1;
                self.out.retries += 1;
                let backoff = p.backoff_ms(req.attempts, &mut self.retry_rng);
                wall_event(
                    WallEventKind::RetryParked,
                    req.id,
                    u64::from(req.tenant),
                    u64::from(req.attempts),
                    now + backoff,
                    0.0,
                );
                self.parked.insert(req.id, (req, now + backoff));
            }
            _ => {
                self.out.lost += 1;
                *self.out.lost_by_tenant.entry(req.tenant).or_insert(0) += 1;
                wall_event(
                    WallEventKind::Lost,
                    req.id,
                    u64::from(req.tenant),
                    u64::from(req.attempts),
                    now,
                    0.0,
                );
                self.inner.stream_outcome(OutcomeRecord {
                    id: req.id,
                    tenant: req.tenant,
                    class: req.class,
                    outcome: Outcome::Lost,
                    t_ms: now,
                    latency_ms: 0.0,
                    attempts: req.attempts,
                });
            }
        }
    }

    /// Re-admits parked requests whose backoff expired — via the same
    /// cap checks as fresh submissions (re-rejection parks again or
    /// loses; it is not terminal, mirroring the sim's retry path).
    fn wake_parked(&mut self, now: f64) {
        let due: Vec<u64> = self
            .parked
            .iter()
            .filter(|(_, (_, wake))| *wake <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let Some((mut req, _)) = self.parked.remove(&id) else {
                continue;
            };
            let admitted = {
                let Ok(mut adm) = self.inner.admission.lock() else {
                    self.note_invariant("admission lock poisoned".into());
                    return;
                };
                let tenant_full = self.inner.cfg.tenant_cap(req.tenant).is_some_and(|cap| {
                    adm.queued_by_tenant.get(&req.tenant).copied().unwrap_or(0) >= cap
                });
                let queue_full = self
                    .inner
                    .cfg
                    .opts
                    .queue_capacity
                    .is_some_and(|cap| adm.queued_total >= cap);
                if tenant_full || queue_full {
                    false
                } else {
                    adm.queued_total += 1;
                    *adm.queued_by_tenant.entry(req.tenant).or_insert(0) += 1;
                    true
                }
            };
            if admitted {
                wall_event(
                    WallEventKind::RetryAdmitted,
                    req.id,
                    u64::from(req.tenant),
                    u64::from(req.attempts),
                    now,
                    0.0,
                );
                let base = self
                    .inner
                    .expected_ms
                    .get(&req.class)
                    .copied()
                    .unwrap_or(0.0);
                req.deadline_ms =
                    now + self.inner.cfg.deadline_slack_ms + self.inner.cfg.deadline_factor * base;
                self.policy.push(req);
                self.out.max_queue_depth = self.out.max_queue_depth.max(self.policy.depth());
            } else {
                wall_event(
                    WallEventKind::RetryRejected,
                    req.id,
                    u64::from(req.tenant),
                    u64::from(req.attempts),
                    now,
                    0.0,
                );
                self.route_retry_or_lost(req, now);
            }
        }
    }

    /// Decrements the admission-side queue accounting for a request
    /// leaving the dispatcher's queue (dispatched or shed).
    fn note_dequeued(&mut self, req: &Request) {
        let Ok(mut adm) = self.inner.admission.lock() else {
            self.note_invariant("admission lock poisoned".into());
            return;
        };
        adm.queued_total = adm.queued_total.saturating_sub(1);
        match adm.queued_by_tenant.get_mut(&req.tenant) {
            Some(n) if *n > 0 => *n -= 1,
            _ => {
                drop(adm);
                self.note_invariant("dequeued tenant was never queued".into());
            }
        }
    }

    /// Same shedding rule as the DES: when surviving capacity drops
    /// below the threshold fraction of the pool, trim the queue to what
    /// the survivors can hold by sacrificing latest-deadline work.
    fn shed_if_browned_out(&mut self, now: f64) {
        let Some(b) = self.inner.cfg.brown_out else {
            return;
        };
        let healthy = self
            .workers
            .iter()
            .filter(|w| !matches!(w.status, WorkerStatus::Repairing { .. }))
            .count();
        if (healthy as f64) >= b.capacity_threshold * self.workers.len() as f64 {
            return;
        }
        let target = b.max_queue_per_chip * healthy;
        let depth = self.policy.depth();
        if depth <= target {
            return;
        }
        let victims = self.policy.drain_latest_deadline(depth - target);
        for v in victims {
            self.note_dequeued(&v);
            self.out.shed += 1;
            *self.out.shed_by_tenant.entry(v.tenant).or_insert(0) += 1;
            self.out.makespan_ms = self.out.makespan_ms.max(now);
            wall_event(
                WallEventKind::Shed,
                v.id,
                u64::from(v.tenant),
                u64::from(v.attempts),
                now,
                0.0,
            );
            self.inner.stream_outcome(OutcomeRecord {
                id: v.id,
                tenant: v.tenant,
                class: v.class,
                outcome: Outcome::Shed,
                t_ms: now,
                latency_ms: 0.0,
                attempts: v.attempts,
            });
        }
    }

    fn try_dispatch(&mut self, now: f64) {
        loop {
            if self.policy.depth() == 0 {
                return;
            }
            let Some(idx) = self
                .workers
                .iter()
                .position(|w| w.status == WorkerStatus::Idle)
            else {
                return;
            };
            let Some(batch) = self.policy.pop_batch(self.inner.cfg.opts.max_batch) else {
                self.note_invariant("depth > 0 implies a batch".into());
                return;
            };
            for r in &batch {
                self.note_dequeued(r);
            }
            // Deadline-expired work is recycled at dispatch when a
            // retry policy exists — chip time is too expensive to burn
            // on work already late (same rule as the DES).
            let (live, expired): (Vec<Request>, Vec<Request>) = if self.inner.cfg.retry.is_some() {
                batch.into_iter().partition(|r| r.deadline_ms > now)
            } else {
                (batch, Vec::new())
            };
            for r in expired {
                self.route_retry_or_lost(r, now);
            }
            if live.is_empty() {
                continue;
            }
            let inject_failure = self.inner.cfg.fail_batches.contains(&self.out.batches);
            self.out.batches += 1;
            let Some(w) = self.workers.get_mut(idx) else {
                return;
            };
            w.status = WorkerStatus::Busy;
            for r in &live {
                wall_event(
                    WallEventKind::Dispatched,
                    r.id,
                    u64::from(r.tenant),
                    idx as u64,
                    now,
                    0.0,
                );
            }
            if w.tx
                .send(Work::Batch {
                    reqs: live,
                    inject_failure,
                })
                .is_err()
            {
                w.status = WorkerStatus::Repairing { until_ms: f64::MAX };
                self.note_invariant(format!("worker {idx} hung up"));
                return;
            }
        }
    }

    /// Samples the queue-depth and in-flight series into the wall
    /// timeline — on change only, so a quiet heartbeat loop records
    /// nothing.
    fn sample_series(&mut self) {
        let depth = self.policy.depth();
        if depth != self.last_depth {
            self.last_depth = depth;
            wall_event(WallEventKind::QueueDepth, 0, 0, depth as u64, 0.0, 0.0);
        }
        let in_flight = self
            .workers
            .iter()
            .filter(|w| w.status == WorkerStatus::Busy)
            .count();
        if in_flight != self.last_in_flight {
            self.last_in_flight = in_flight;
            wall_event(WallEventKind::InFlight, 0, 0, in_flight as u64, 0.0, 0.0);
        }
    }

    /// Whether every admitted request reached a terminal outcome: the
    /// queue is empty, nothing waits in backoff, no worker is proving.
    fn drained(&self) -> bool {
        self.policy.depth() == 0
            && self.parked.is_empty()
            && !self.workers.iter().any(|w| w.status == WorkerStatus::Busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_core::protocol::Gate;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig::new(vec![RequestClass::new(Gate::Vanilla, 4)])
            .with_seed(7)
            .with_opts(ServeOpts::default().with_workers(1).with_prover_threads(1))
    }

    #[test]
    fn single_request_round_trips_through_a_real_prover() {
        let class = RequestClass::new(Gate::Vanilla, 4);
        let service = ProvingService::start(tiny_cfg()).expect("startup");
        let id = service.submit(class, 0).expect("admitted");
        let report = service.shutdown().expect("clean drain");
        assert_eq!(report.summary.completed, 1);
        assert_eq!(report.summary.arrivals, 1);
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].id, id);
        assert!(report.records[0].finish_ms >= report.records[0].start_ms);
        assert!(report.calibration[0].1 > 0.0, "calibration measured time");
    }

    #[test]
    fn unknown_class_is_refused_without_counting_an_arrival() {
        let service = ProvingService::start(tiny_cfg()).expect("startup");
        let err = service
            .submit(RequestClass::new(Gate::Jellyfish, 10), 0)
            .expect_err("no assets baked for this class");
        assert!(matches!(err, ServeError::UnknownClass(_)));
        let report = service.shutdown().expect("clean drain");
        assert_eq!(report.summary.arrivals, 0);
    }

    #[test]
    fn zero_queue_capacity_rejects_every_waiting_submission() {
        let class = RequestClass::new(Gate::Vanilla, 4);
        let cfg = tiny_cfg().with_opts(
            ServeOpts::default()
                .with_workers(1)
                .with_prover_threads(1)
                .with_queue_capacity(0),
        );
        let service = ProvingService::start(cfg).expect("startup");
        let err = service.submit(class, 3).expect_err("queue holds nothing");
        assert_eq!(err, ServeError::QueueFull { capacity: 0 });
        assert!(err.is_rejection());
        let report = service.shutdown().expect("clean drain");
        assert_eq!(report.summary.arrivals, 1);
        assert_eq!(report.summary.rejected, 1);
        assert_eq!(report.summary.completed, 0);
        let t3 = report
            .summary
            .per_tenant
            .iter()
            .find(|t| t.tenant == 3)
            .expect("tenant 3 appears in the summary");
        assert_eq!(t3.rejected, 1);
    }

    #[test]
    fn per_tenant_cap_is_exact_under_burst_submission() {
        let class = RequestClass::new(Gate::Vanilla, 4);
        let cfg = tiny_cfg().with_tenant_caps(vec![(1, 2)]);
        let service = ProvingService::start(cfg).expect("startup");
        let mut admitted = 0u64;
        let mut capped = 0u64;
        for _ in 0..6 {
            match service.submit(class, 1) {
                Ok(_) => admitted += 1,
                Err(ServeError::TenantCapExceeded { tenant: 1, cap: 2 }) => capped += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // The single worker may drain the queue between submissions, so
        // admission count is timing-dependent — but cap + conservation
        // must hold exactly.
        assert!(admitted >= 2);
        assert_eq!(admitted + capped, 6);
        let report = service.shutdown().expect("clean drain");
        assert_eq!(report.summary.arrivals, 6);
        assert_eq!(report.summary.completed, admitted);
        assert_eq!(report.summary.rejected, capped);
    }
}
