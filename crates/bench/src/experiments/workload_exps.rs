//! Workload-level experiments: Fig. 13 (protocol optimizations), Fig. 14
//! (high-degree protocol sweep) and Tables VI–IX.

use zkphire_core::profile::PolyProfile;
use zkphire_core::protocol::{simulate_protocol, simulate_protocol_with_gate, Gate};
use zkphire_core::system::ZkphireConfig;
use zkphire_core::tech::PrimeMode;
use zkphire_core::workloads::all_workloads;
use zkphire_poly::high_degree_gate;

use crate::{fmt_table, geomean};

/// The Table VI configuration: zkSpeed-comparable arbitrary-prime
/// multipliers and no ZeroCheck masking (§VI-B6).
fn table6_config() -> ZkphireConfig {
    let mut cfg = ZkphireConfig::exemplar();
    cfg.prime = PrimeMode::Arbitrary;
    cfg
}

/// Fig. 13: speedups from Jellyfish gates and Masked ZeroCheck, per
/// workload, relative to Vanilla gates.
pub fn fig13() -> String {
    let cfg = ZkphireConfig::exemplar();
    // (name, vanilla log2, jellyfish log2) — scaled workloads per §VI-B4:
    // ZCash/Zexe scaled up to 2^24/2^25 keeping their reduction factors
    // (4x and 32x); zkEVM assumes the paper's hypothetical 8x.
    let entries = [
        ("ZCash", 17usize, 15usize),
        ("Rescue Hash", 21, 20),
        ("Zexe", 22, 17),
        ("ZCash Scaled", 24, 22),
        ("Zexe Scaled", 25, 20),
        ("Rollup 1600", 30, 25),
        ("zkEVM", 30, 27),
    ];
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|&(name, v, j)| {
            let vanilla = simulate_protocol(&cfg, Gate::Vanilla, v, false).total_ms;
            let jf = simulate_protocol(&cfg, Gate::Jellyfish, j, false).total_ms;
            let jf_masked = simulate_protocol(&cfg, Gate::Jellyfish, j, true).total_ms;
            vec![
                name.to_string(),
                "1.00".to_string(),
                format!("{:.2}", vanilla / jf),
                format!("{:.2}", vanilla / jf_masked),
            ]
        })
        .collect();
    let mut out = fmt_table(
        "Fig. 13 — workload speedups relative to Vanilla gates (exemplar design)",
        &["Workload", "Vanilla", "Jellyfish", "Jellyfish+MskZC"],
        &rows,
    );
    out.push_str(
        "\nPaper: ZCash 1.70/1.84, Rescue 1.53/1.91, Zexe 15.89/18.42, ZCash-scaled \
         3.09/3.91, Zexe-scaled 23.35/29.18, Rollup1600 25.10/31.93, zkEVM 6.28/8.00; \
         masking adds ~25-27%.\n",
    );
    out
}

/// Fig. 14: protocol-level high-degree sweep on the exemplar design.
pub fn fig14() -> String {
    let cfg = ZkphireConfig::exemplar();
    let mu = 24;
    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for d in (2..=30usize).step_by(2) {
        let profile = PolyProfile::from_gate(&high_degree_gate(d));
        let r = simulate_protocol_with_gate(&cfg, &profile, 2, mu, false);
        let msm_share = r.msm_ms() / r.total_ms;
        let sc_share = r.sumcheck_ms() / r.total_ms;
        if crossover.is_none() && sc_share > msm_share {
            crossover = Some(d);
        }
        rows.push(vec![
            d.to_string(),
            format!("{:.1}", r.total_ms),
            format!("{:.1}", 100.0 * msm_share),
            format!("{:.1}", 100.0 * sc_share),
            format!("{:.1}", 100.0 * r.other_ms() / r.total_ms),
        ]);
    }
    let mut out = fmt_table(
        &format!("Fig. 14 — protocol runtime vs gate degree (2^{mu} gates, exemplar design)"),
        &["deg", "total (ms)", "MSM %", "SumCheck %", "Rest %"],
        &rows,
    );
    out.push_str(&match crossover {
        Some(d) => format!(
            "\nSumCheck share overtakes MSM share at degree {d} \
             (paper: crossover at d = 18, 45%).\n"
        ),
        None => "\nNo SumCheck/MSM crossover within d <= 30 in this model \
                 (paper: d = 18 at 45%); the monotone SumCheck-share growth \
                 is reproduced.\n"
            .to_string(),
    });
    out
}

/// Table VI: Vanilla-gate runtimes vs CPU and zkSpeed+.
pub fn table6() -> String {
    let cfg = table6_config();
    let rows: Vec<Vec<String>> = all_workloads()
        .iter()
        .filter_map(|w| {
            let mu = w.vanilla_log2?;
            let ours = simulate_protocol(&cfg, Gate::Vanilla, mu, false).total_ms;
            Some(vec![
                w.name.to_string(),
                format!("2^{mu}"),
                w.cpu_vanilla_ms.map_or("-".into(), |c| format!("{c:.0}")),
                w.zkspeed_plus_ms.map_or("-".into(), |z| format!("{z:.3}")),
                format!("{ours:.3}"),
                w.cpu_vanilla_ms
                    .map_or("-".into(), |c| format!("{:.0}x", c / ours)),
            ])
        })
        .collect();
    let mut out = fmt_table(
        "Table VI — Vanilla-gate runtimes (ms); CPU and zkSpeed+ columns are paper anchors",
        &["Workload", "Gates", "CPU", "zkSpeed+", "zkPHIRE", "Speedup"],
        &rows,
    );
    out.push_str(
        "\nPaper zkPHIRE speedups: 710x-1006x across these workloads \
         (~10% slower than zkSpeed+ at iso-function).\n",
    );
    out
}

/// Table VII: Jellyfish-gate runtimes vs CPU up to 2^30 nominal gates.
pub fn table7() -> String {
    let cfg = ZkphireConfig::exemplar();
    let mut speedups = Vec::new();
    let rows: Vec<Vec<String>> = all_workloads()
        .iter()
        .filter_map(|w| {
            let mu = w.jellyfish_log2?;
            let cpu = w.cpu_jellyfish_ms?;
            let ours = simulate_protocol(&cfg, Gate::Jellyfish, mu, true).total_ms;
            speedups.push(cpu / ours);
            Some(vec![
                w.name.to_string(),
                w.vanilla_log2.map_or("-".into(), |v| format!("2^{v}")),
                format!("2^{mu}"),
                format!("{cpu:.0}"),
                format!("{ours:.3}"),
                format!("{:.0}x", cpu / ours),
            ])
        })
        .collect();
    let mut out = fmt_table(
        "Table VII — Jellyfish-gate runtimes (ms) with Masked ZeroCheck; CPU column is the paper anchor",
        &["Workload", "Vanilla", "Jellyfish", "CPU", "zkPHIRE", "Speedup"],
        &rows,
    );
    out.push_str(&format!(
        "\nGeomean speedup over CPU: {:.0}x (paper: 1486x; per-row 934x-1809x).\n",
        geomean(&speedups)
    ));
    out
}

/// Table VIII: iso-application zkSpeed+ (Vanilla) vs zkPHIRE (Jellyfish).
pub fn table8() -> String {
    let cfg = ZkphireConfig::exemplar();
    let mut speedups = Vec::new();
    let rows: Vec<Vec<String>> = all_workloads()
        .iter()
        .filter_map(|w| {
            let v = w.vanilla_log2?;
            let j = w.jellyfish_log2?;
            let zk = w.zkspeed_plus_ms?;
            let ours = simulate_protocol(&cfg, Gate::Jellyfish, j, true).total_ms;
            speedups.push(zk / ours);
            Some(vec![
                w.name.to_string(),
                format!("2^{v}"),
                format!("2^{j}"),
                format!("{zk:.3}"),
                format!("{ours:.3}"),
                format!("{:.2}x", zk / ours),
            ])
        })
        .collect();
    let mut out = fmt_table(
        "Table VIII — iso-application: zkSpeed+ (Vanilla, paper anchor) vs zkPHIRE (Jellyfish)",
        &[
            "Workload",
            "Vanilla",
            "Jellyfish",
            "zkSpeed+",
            "zkPHIRE",
            "Speedup",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nGeomean speedup over zkSpeed+: {:.2}x (paper: 11.87x geomean, 2.43x-39.23x).\n",
        geomean(&speedups)
    ));
    out
}

/// Analytic HyperPlonk proof-size estimate (bytes) for this repository's
/// proof layout: 48 B compressed G1 points and 32 B scalars.
fn proof_size_bytes(gate: Gate, mu: usize) -> usize {
    let (s, w, zc_deg, pc_deg) = match gate {
        Gate::Vanilla => (5usize, 3usize, 4usize, 5usize),
        Gate::Jellyfish => (13, 5, 7, 7),
    };
    let commits = w + 4 + mu; // witness + perm commitments + opening quotients
    let zc = mu * (zc_deg + 1) + 1 + (s + w + 1);
    let pc = mu * (pc_deg + 1) + 1 + (4 + 2 * w + 1);
    let oc = mu * 3 + 1 + (s + 2 * w + 4 + 3);
    let extra = 2 * w + 1;
    commits * 48 + (zc + pc + oc + extra) * 32
}

/// Table IX: cross-accelerator comparison (published competitor numbers;
/// zkPHIRE column from this repository's models).
pub fn table9() -> String {
    let cfg = ZkphireConfig::exemplar();
    let area = cfg.area();
    let power = cfg.power();
    let ours_ms = simulate_protocol(&cfg, Gate::Jellyfish, 19, true).total_ms;
    let proof_kb = proof_size_bytes(Gate::Jellyfish, 19) as f64 / 1024.0;
    // Modular multipliers in the exemplar: MSM PADDs + forest + updates +
    // PermQuotGen pipelines + combine.
    let modmuls = cfg.msm.pes * 16
        + cfg.forest.total_muls()
        + cfg.sumcheck.pes * 2
        + cfg.permquot.pes * 6
        + 2
        + cfg.combine.muls;

    let rows = vec![
        vec![
            "Workload".into(),
            "Scaled AES".into(),
            "Rollup 25".into(),
            "Rollup 25".into(),
            "Rollup 25".into(),
        ],
        vec![
            "Protocol".into(),
            "Spartan+Orion".into(),
            "Groth16".into(),
            "HyperPlonk".into(),
            "HyperPlonk".into(),
        ],
        vec![
            "Gates".into(),
            "2^24".into(),
            "2^24".into(),
            "2^24".into(),
            "2^19".into(),
        ],
        vec![
            "Encoding".into(),
            "R1CS".into(),
            "R1CS".into(),
            "Plonk (Vanilla)".into(),
            "Plonk (Jellyfish)".into(),
        ],
        vec![
            "Proof size".into(),
            "8.1 MB".into(),
            "0.18 KB".into(),
            "5.09 KB".into(),
            format!("{proof_kb:.2} KB (paper 4.41)"),
        ],
        vec![
            "Setup".into(),
            "none".into(),
            "circuit-specific".into(),
            "universal".into(),
            "universal".into(),
        ],
        vec![
            "Prime".into(),
            "fixed".into(),
            "arbitrary".into(),
            "arbitrary".into(),
            "fixed".into(),
        ],
        vec![
            "SW prover (s)".into(),
            "94.2".into(),
            "51.18".into(),
            "145.5".into(),
            "6.161".into(),
        ],
        vec![
            "HW prover (ms)".into(),
            "151.3".into(),
            "28.43".into(),
            "151.973".into(),
            format!("{ours_ms:.3} (paper 3.874)"),
        ],
        vec![
            "Chip area (mm^2)".into(),
            "38.73".into(),
            "353.2".into(),
            "366.46".into(),
            format!("{:.2} (paper 294.32)", area.total()),
        ],
        vec![
            "# Modmuls".into(),
            "2432".into(),
            "1720".into(),
            "1206".into(),
            format!("{modmuls} (paper 2267)"),
        ],
        vec![
            "Power (W)".into(),
            "62".into(),
            ">220".into(),
            "171".into(),
            format!("{:.0} (paper 202)", power.total()),
        ],
    ];
    let mut out = fmt_table(
        "Table IX — comparison with prior ZKP accelerators (competitor columns are published values)",
        &["Metric", "NoCap", "SZKP+", "zkSpeed+", "zkPHIRE (this repo)"],
        &rows,
    );
    out.push_str(
        "\nPaper: zkPHIRE's proving time is 39x/7x/39x faster than NoCap/SZKP+/zkSpeed+. \
         Our proof-size accounting is larger than the paper's because this repository \
         commits p1/p2 separately and ships untruncated round polynomials (DESIGN.md S5).\n",
    );
    out
}

/// Diagnostic: absolute per-step times for the exemplar design (not a
/// paper artifact; used to sanity-check the protocol composition).
pub fn breakdown() -> String {
    let cfg = ZkphireConfig::exemplar();
    let mut out = String::new();
    for (mu, masked) in [(24usize, false), (19, true)] {
        let r = simulate_protocol(&cfg, Gate::Jellyfish, mu, masked);
        out.push_str(&format!(
            "mu={mu} masked={masked}: total={:.3} ms | witMSM {:.3} wireMSM {:.3} openMSM {:.3} \
             | ZC {:.3} PC {:.3} OC {:.3} | permquot {:.3} batch {:.3} combine {:.3}\n",
            r.total_ms,
            r.witness_msm_ms,
            r.wiring_msm_ms,
            r.polyopen_msm_ms,
            r.zerocheck_ms,
            r.permcheck_ms,
            r.opencheck_ms,
            r.permquot_ms,
            r.batch_eval_ms,
            r.combine_ms
        ));
    }
    out
}
