//! The `net` experiment: prove the hardened TCP front-end survives
//! everything the chaos client throws at it, with zero lost accounting.
//!
//! Three phases over one seeded trace:
//!
//! 1. **in-process baseline** — replay the trace straight into a
//!    [`zkphire_serve::ProvingService`] via [`zkphire_serve::replay`],
//!    the path `repro serve` characterizes;
//! 2. **framed TCP over loopback** — same trace through a
//!    [`zkphire_serve::NetServer`] with a [`zkphire_serve::NetClient`]
//!    on the other end of a real socket, wall-timeline recording on:
//!    every arrival must come back as a streamed outcome frame, the
//!    drain report must conserve all accounting, and
//!    [`zkphire_serve::reconcile_wall`] must hold with the network in
//!    the loop (connection lifecycle events included);
//! 3. **chaos** — a fresh, deliberately small server (two connection
//!    slots, 150 ms read deadline) takes every
//!    [`zkphire_serve::ChaosMode`] in sequence. Each mode must end in a
//!    typed error frame or a clean close — never a panic, never a
//!    wedged slot — and a well-behaved probe afterwards must still get
//!    a proof. The post-chaos drain must report `lost == 0`.
//!
//! Stdout is byte-deterministic (mode verdicts and integer counters
//! only) so the golden harness can pin it; the wall-clock latency
//! comparison (TCP p99 vs in-process p99) is machine-dependent and
//! lands only in `BENCH_net.json`, written only when `--out <path>` is
//! passed. `--smoke` shrinks the trace for CI.

use std::fmt::Write as _;
use std::time::Duration;

use zkphire_core::protocol::Gate;
use zkphire_fleet::{RequestClass, SplitMix64, TraceSource};
use zkphire_serve::{
    chaos, reconcile_wall, replay, replay_net, ChaosMode, NetClient, NetServer, NetStats,
    ProvingService, ServeConfig, ServeOpts, ServeReport, SubmitResult,
};
use zkphire_telemetry as tele;
use zkphire_telemetry::{WallEventKind, WallTimeline};

use super::obs_exps::tele_guard;
use crate::fmt_table;

const SEED: u64 = 0x4e27;
const TENANTS: u32 = 2;
/// Generous bound on one submit round-trip / one drain; loopback
/// traffic resolves in microseconds, proofs in milliseconds.
const SUBMIT_DEADLINE: Duration = Duration::from_millis(10_000);
const DRAIN_DEADLINE: Duration = Duration::from_millis(60_000);

/// `repro net` with default flags.
pub fn net() -> String {
    net_with_args(&[])
}

/// `repro net [--smoke] [--out <path>]`.
pub fn net_with_args(args: &[String]) -> String {
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let class = RequestClass::new(Gate::Vanilla, 4);
    let n_requests: usize = if smoke { 16 } else { 60 };
    let mean_gap_ms: f64 = if smoke { 6.0 } else { 12.0 };
    let workers: usize = if smoke { 1 } else { 2 };
    let replay_opts = ServeOpts::default()
        .with_workers(workers)
        .with_prover_threads(1)
        .with_max_batch(4);
    // The chaos server is deliberately tiny so every defense is
    // exercised: two slots (the flood hits the cap on its third
    // connection) and a short read deadline (the stall reaps fast).
    let chaos_opts = replay_opts
        .with_max_conns(2)
        .with_read_timeout_ms(150)
        .with_idle_timeout_ms(2000);

    // One shared trace: seeded exponential gaps, tenants drawn
    // uniformly. Timestamps only shape wall latency (JSON-only), so a
    // fixed mean gap keeps stdout independent of this machine.
    let mut rng = SplitMix64::new(SEED);
    let mut t = 0.0;
    let mut trace = Vec::with_capacity(n_requests);
    for _ in 0..n_requests {
        t += -mean_gap_ms * (1.0 - rng.next_f64()).ln();
        let tenant = (rng.next_u64() % u64::from(TENANTS)) as u32;
        trace.push((t, class, tenant));
    }
    let horizon_ms = t + 1.0;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "net: hardened TCP front-end — framed replay over loopback vs the \
         in-process path, then chaos (smoke={smoke})\n"
    );

    // Hold the telemetry session guard for the whole experiment: every
    // phase runs a real service whose wall events would pollute a
    // concurrently recording experiment (the golden harness is
    // threaded), even though only phase 2 records here.
    let guard = tele_guard();

    // Phase 1: in-process baseline.
    let cfg = ServeConfig::new(vec![class])
        .with_seed(SEED)
        .with_opts(replay_opts);
    let service = match ProvingService::start(cfg) {
        Ok(s) => s,
        Err(e) => return format!("net: baseline service failed to start: {e}\n"),
    };
    let base_gen = match replay(
        &service,
        &mut TraceSource::with_tenants(trace.clone()),
        horizon_ms,
        1.0,
    ) {
        Ok(g) => g,
        Err(e) => return format!("net: baseline replay failed: {e}\n"),
    };
    let base_report = match service.shutdown() {
        Ok(r) => r,
        Err(e) => return format!("net: baseline shutdown failed: {e}\n"),
    };
    assert_eq!(base_gen.submitted, n_requests as u64);
    assert_eq!(base_gen.rejected, 0, "no admission caps in this scenario");
    assert_eq!(base_report.summary.completed, n_requests as u64);
    assert_eq!(base_report.summary.lost, 0);
    let _ = writeln!(
        out,
        "phase 1 — in-process baseline: {n} arrivals, {n} completed, 0 rejected, 0 lost",
        n = n_requests
    );

    // Phase 2: the same trace over a real loopback socket, with the
    // wall-timeline recorder on.
    tele::reset();
    tele::set_enabled(true);
    let cfg = ServeConfig::new(vec![class])
        .with_seed(SEED)
        .with_opts(replay_opts);
    let mut server = match NetServer::start(cfg) {
        Ok(s) => s,
        Err(e) => return format!("net: TCP server failed to start: {e}\n"),
    };
    let mut client = match NetClient::connect(server.local_addr()) {
        Ok(c) => c,
        Err(e) => return format!("net: client failed to connect: {e}\n"),
    };
    let tcp_gen = match replay_net(
        &mut client,
        &mut TraceSource::with_tenants(trace),
        horizon_ms,
        1.0,
        SUBMIT_DEADLINE,
    ) {
        Ok(g) => g,
        Err(e) => return format!("net: TCP replay failed: {e}\n"),
    };
    let outcomes = match client.finish(DRAIN_DEADLINE) {
        Ok(o) => o,
        Err(e) => return format!("net: client drain failed: {e}\n"),
    };
    let tcp_report = match server.shutdown() {
        Ok(r) => r,
        Err(e) => return format!("net: TCP drain failed: {e}\n"),
    };
    tele::set_enabled(false);
    let profile = tele::drain();
    let wall_tl = WallTimeline::from_events(&profile.wall_events);

    // Conservation is a hard gate on both sides of the socket.
    assert_eq!(tcp_gen.submitted, n_requests as u64);
    assert_eq!(tcp_gen.rejected, 0);
    assert_eq!(
        outcomes.len(),
        n_requests,
        "one streamed outcome per submit"
    );
    assert_eq!(tcp_report.serve.summary.completed, n_requests as u64);
    assert_eq!(tcp_report.serve.summary.lost, 0);
    assert_eq!(tcp_report.stats.conns_accepted, 1);
    assert_eq!(tcp_report.stats.submits, n_requests as u64);
    assert_eq!(tcp_report.stats.outcomes_streamed, n_requests as u64);
    assert_eq!(tcp_report.stats.outcomes_dropped, 0);
    // The timeline rebuilt from recorded events must reconcile with the
    // drain summary exactly — with connection lifecycle events in it.
    assert!(!wall_tl.is_empty(), "recording was on");
    assert!(
        wall_tl
            .events()
            .iter()
            .any(|e| matches!(e.kind, WallEventKind::ConnOpen)),
        "connection lifecycle recorded on the wall timeline"
    );
    if let Err(e) = reconcile_wall(&wall_tl, &tcp_report.serve.summary) {
        return format!("net: wall timeline failed reconciliation: {e}\n");
    }
    let s = &tcp_report.stats;
    let _ = writeln!(
        out,
        "phase 2 — framed TCP over loopback: {n} arrivals, {n} completed, 0 lost",
        n = n_requests
    );
    let _ = writeln!(
        out,
        "  wire: {} connection, {} submits, {} accepted, {} outcomes streamed, {} dropped",
        s.conns_accepted, s.submits, s.accepted_submits, s.outcomes_streamed, s.outcomes_dropped
    );
    let _ = writeln!(
        out,
        "  wall timeline: connection lifecycle recorded; outcome counts and \
         worker busy integrals reconcile with the drain report (bitwise)\n"
    );

    // Phase 3: chaos against a fresh, capped server.
    let cfg = ServeConfig::new(vec![class])
        .with_seed(SEED + 1)
        .with_opts(chaos_opts);
    let mut server = match NetServer::start(cfg) {
        Ok(s) => s,
        Err(e) => return format!("net: chaos server failed to start: {e}\n"),
    };
    let addr = server.local_addr();
    let mut verdicts = Vec::new();
    for (i, mode) in ChaosMode::ALL.into_iter().enumerate() {
        let verdict = match chaos(addr, mode, SEED + 0x100 + i as u64, class, &chaos_opts) {
            Ok(v) => v,
            Err(e) => return format!("net: chaos transport failed ({}): {e}\n", mode.as_str()),
        };
        assert!(
            !verdict.contains("NO-CLOSE") && !verdict.contains("UNEXPECTED"),
            "{} did not end typed + closed: {verdict}",
            mode.as_str()
        );
        verdicts.push((mode, verdict));
        // Let abused slots re-register before the next mode; the flood
        // needs the whole pool idle to measure the cap.
        std::thread::sleep(Duration::from_millis(100));
    }

    // No wedge: a well-behaved probe still gets a slot and a proof.
    let mut probe = match NetClient::connect(addr) {
        Ok(c) => c,
        Err(e) => return format!("net: post-chaos probe refused: {e}\n"),
    };
    match probe.submit(class, 0, SUBMIT_DEADLINE) {
        Ok(SubmitResult::Accepted { .. }) => {}
        Ok(SubmitResult::Rejected { reason, .. }) => {
            return format!("net: post-chaos probe rejected: {}\n", reason.as_str())
        }
        Err(e) => return format!("net: post-chaos submit failed: {e}\n"),
    }
    let probe_outcomes = match probe.finish(DRAIN_DEADLINE) {
        Ok(o) => o,
        Err(e) => return format!("net: post-chaos drain failed: {e}\n"),
    };
    assert_eq!(probe_outcomes.len(), 1, "post-chaos probe proved");
    let chaos_report = match server.shutdown() {
        Ok(r) => r,
        Err(e) => return format!("net: chaos drain failed: {e}\n"),
    };
    drop(guard);
    let cs = &chaos_report.stats;
    assert!(cs.protocol_errors >= 2, "garbage + oversized: {cs:?}");
    assert_eq!(cs.stalled_closes, 1, "{cs:?}");
    assert_eq!(cs.truncated_closes, 1, "{cs:?}");
    assert_eq!(cs.disconnects, 1, "{cs:?}");
    assert!(cs.conns_refused >= 1, "flood past the cap: {cs:?}");
    assert_eq!(cs.outcomes_dropped, 1, "mid-proof disconnect: {cs:?}");
    let sum = &chaos_report.serve.summary;
    assert_eq!(sum.lost, 0, "chaos lost accounting: {sum:?}");
    assert_eq!(
        sum.arrivals,
        sum.completed + sum.rejected + sum.shed + sum.lost,
        "conservation with chaos in the loop"
    );

    let _ = writeln!(
        out,
        "phase 3 — chaos client against a capped server (max_conns={}, read deadline {} ms):\n",
        chaos_opts.max_conns, chaos_opts.read_timeout_ms
    );
    out.push_str(&fmt_table(
        "per-failure-mode outcome on the wire",
        &["failure mode", "verdict"],
        &verdicts
            .iter()
            .map(|(m, v)| vec![m.as_str().to_string(), v.clone()])
            .collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&fmt_table(
        "chaos-phase wire counters",
        &["counter", "value"],
        &[
            vec!["conns_accepted".into(), cs.conns_accepted.to_string()],
            vec!["conns_refused".into(), cs.conns_refused.to_string()],
            vec!["clean_closes".into(), cs.clean_closes.to_string()],
            vec!["protocol_errors".into(), cs.protocol_errors.to_string()],
            vec!["stalled_closes".into(), cs.stalled_closes.to_string()],
            vec!["truncated_closes".into(), cs.truncated_closes.to_string()],
            vec!["disconnects".into(), cs.disconnects.to_string()],
            vec!["outcomes_dropped".into(), cs.outcomes_dropped.to_string()],
        ],
    ));
    let _ = writeln!(
        out,
        "\nsurvival: every mode ended in a typed error or clean close, the \
         post-chaos probe proved, and the drain conserved all accounting (lost=0)"
    );

    if let Some(path) = out_path {
        match std::fs::write(
            &path,
            render_json(
                smoke,
                n_requests,
                &base_report,
                &tcp_report.serve,
                &tcp_report.stats,
                &verdicts,
                cs,
            ),
        ) {
            Ok(()) => {
                let _ = writeln!(out, "wrote {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "FAILED to write {path}: {e}");
            }
        }
    } else {
        let _ = writeln!(
            out,
            "(wall latency quantiles are machine-dependent; pass --out <path> \
             to write BENCH_net.json)"
        );
    }
    out
}

fn render_json(
    smoke: bool,
    n_requests: usize,
    base: &ServeReport,
    tcp: &ServeReport,
    tcp_stats: &NetStats,
    verdicts: &[(ChaosMode, String)],
    chaos_stats: &NetStats,
) -> String {
    fn side_json(s: &mut String, key: &str, r: &ServeReport) {
        let _ = writeln!(
            s,
            "  \"{key}\": {{\"completed\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"p99_ms\": {:.4}, \"makespan_ms\": {:.4}}},",
            r.summary.completed,
            r.summary.p50_latency_ms,
            r.summary.p95_latency_ms,
            r.summary.p99_latency_ms,
            r.summary.makespan_ms
        );
    }
    fn stats_json(s: &NetStats) -> String {
        format!(
            "{{\"conns_accepted\": {}, \"conns_refused\": {}, \"clean_closes\": {}, \
             \"protocol_errors\": {}, \"stalled_closes\": {}, \"idle_closes\": {}, \
             \"truncated_closes\": {}, \"disconnects\": {}, \"submits\": {}, \
             \"accepted_submits\": {}, \"rejected_submits\": {}, \
             \"outcomes_streamed\": {}, \"outcomes_dropped\": {}}}",
            s.conns_accepted,
            s.conns_refused,
            s.clean_closes,
            s.protocol_errors,
            s.stalled_closes,
            s.idle_closes,
            s.truncated_closes,
            s.disconnects,
            s.submits,
            s.accepted_submits,
            s.rejected_submits,
            s.outcomes_streamed,
            s.outcomes_dropped
        )
    }

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"zkphire-bench-net/v1\",\n");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"n_requests\": {n_requests},");
    side_json(&mut s, "inproc", base);
    side_json(&mut s, "tcp", tcp);
    let _ = writeln!(
        s,
        "  \"tcp_over_inproc_p99_ratio\": {:.4},",
        tcp.summary.p99_latency_ms / base.summary.p99_latency_ms.max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(s, "  \"tcp_wire\": {},", stats_json(tcp_stats));
    s.push_str("  \"chaos\": [\n");
    for (i, (mode, verdict)) in verdicts.iter().enumerate() {
        let comma = if i + 1 == verdicts.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"mode\": \"{}\", \"verdict\": \"{verdict}\"}}{comma}",
            mode.as_str()
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"chaos_wire\": {},", stats_json(chaos_stats));
    s.push_str("  \"unit\": \"ms\"\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_survives_chaos_and_writes_v1_json() {
        let dir = std::env::temp_dir().join("zkphire_net_exp_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("BENCH_net.json");
        let report = net_with_args(&[
            "--smoke".to_string(),
            "--out".to_string(),
            out.display().to_string(),
        ]);
        assert!(report.contains("phase 1 — in-process baseline"), "{report}");
        assert!(report.contains("phase 2 — framed TCP"), "{report}");
        assert!(
            report.contains("per-failure-mode outcome on the wire"),
            "{report}"
        );
        assert!(report.contains("survival: every mode"), "{report}");
        assert!(report.contains("wrote "), "{report}");
        let json = std::fs::read_to_string(&out).expect("json exists");
        assert!(json.contains("\"schema\": \"zkphire-bench-net/v1\""));
        assert!(json.contains("\"inproc\""));
        assert!(json.contains("\"tcp\""));
        assert!(json.contains("\"tcp_over_inproc_p99_ratio\""));
        assert!(json.contains("\"chaos\""));
        for mode in ChaosMode::ALL {
            assert!(json.contains(mode.as_str()), "{} tabled", mode.as_str());
        }
    }
}
