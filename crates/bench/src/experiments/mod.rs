//! Experiment registry: one generator per paper table/figure.

mod ablations;
mod autoscale_exps;
mod faults_exps;
mod fleet_exps;
mod net_exps;
mod obs_exps;
mod perf_exps;
mod serve_exps;
mod sumcheck_exps;
mod system_exps;
mod workload_exps;

pub use ablations::ablations;
pub use autoscale_exps::autoscale;
pub use faults_exps::faults;
pub use fleet_exps::fleet;
pub use net_exps::{net, net_with_args};
pub use obs_exps::{obs, obs_with_args};
pub use perf_exps::{perf, perf_with_args};
pub use serve_exps::{serve, serve_with_args};
pub use sumcheck_exps::{fig6, fig7, fig8, fig9, fig9_design, table1, table2, table3};
pub use system_exps::{fig10, fig11, fig12, run_pareto_sweep, table5};
pub use workload_exps::{breakdown, fig13, fig14, table6, table7, table8, table9};

/// All experiment names in paper order, then the post-paper extensions.
pub const ALL: [&str; 25] = [
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table2",
    "table3",
    "fig10",
    "fig11",
    "fig12",
    "table5",
    "fig13",
    "fig14",
    "table6",
    "table7",
    "table8",
    "table9",
    "ablations",
    "fleet",
    "autoscale",
    "faults",
    "perf",
    "obs",
    "serve",
    "net",
];

/// Runs one experiment by name.
pub fn run(name: &str) -> Option<String> {
    run_with_args(name, &[])
}

/// Runs one experiment by name with extra command-line flags (`perf`
/// consumes `--smoke` and `--out <path>`; `obs` consumes
/// `--out-dir <dir>`; `serve` consumes `--smoke`, `--out <path>`, and
/// `--out-dir <dir>` for its wall/sim trace artifacts; `net` consumes
/// `--smoke` and `--out <path>`).
pub fn run_with_args(name: &str, args: &[String]) -> Option<String> {
    Some(match name {
        "table1" => table1(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "table2" => table2(),
        "table3" => table3(),
        "fig10" | "table4" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "table5" => table5(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "table6" => table6(),
        "table7" => table7(),
        "table8" => table8(),
        "table9" => table9(),
        "breakdown" => breakdown(),
        "ablations" => ablations(),
        "fleet" => fleet(),
        "autoscale" => autoscale(),
        "faults" => faults(),
        "perf" => perf_with_args(args),
        "serve" => serve_with_args(args),
        "net" => net_with_args(args),
        "obs" => obs_with_args(args),
        _ => return None,
    })
}
