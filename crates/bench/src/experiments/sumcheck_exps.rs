//! Standalone programmable-SumCheck experiments: Table I, Figs. 6–9,
//! Tables II–III.

use zkphire_baselines::{cpu_sumcheck_ms, gpu_sumcheck_ms, zkspeed_sumcheck_ms, ZkSpeedVariant};
use zkphire_core::memory::MemoryConfig;
use zkphire_core::profile::PolyProfile;
use zkphire_core::sched::node_count;
use zkphire_core::sumcheck_unit::{simulate_sumcheck, SumcheckUnitConfig};
use zkphire_core::tech::PrimeMode;
use zkphire_dse::{select_design, sumcheck_dse};
use zkphire_poly::expr::var;
use zkphire_poly::{high_degree_gate, table1_gates, training_set, MleKind};

use crate::{fmt_table, geomean};

/// Problem size used throughout the SumCheck studies (Table II: N = 24).
const MU: usize = 24;
/// 4-thread CPU area budget used as the Fig. 6 area cap (37 mm² at 7nm).
const CPU_4T_AREA_MM2: f64 = 37.0;

/// Table I: the polynomial-constraint library.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = table1_gates()
        .iter()
        .map(|g| {
            vec![
                g.id.to_string(),
                g.name.to_string(),
                g.poly.num_terms().to_string(),
                g.poly.degree().to_string(),
                g.poly.num_mles().to_string(),
                g.poly.max_unique_factors_per_term().to_string(),
                g.scalar_names.join(","),
            ]
        })
        .collect();
    fmt_table(
        "Table I — polynomial constraint library (expanded sum-of-products form)",
        &[
            "ID",
            "Name",
            "Terms",
            "Degree",
            "MLEs",
            "MaxUniq/term",
            "Scalars",
        ],
        &rows,
    )
}

/// Fig. 6: speedups over the 4-thread CPU for polys 0–19 across
/// bandwidth tiers at iso-CPU area, with the λ = 0.8 objective.
pub fn fig6() -> String {
    let training: Vec<PolyProfile> = training_set().iter().map(PolyProfile::from_gate).collect();
    let mut out = String::new();
    let mut rows = Vec::new();
    for bw in MemoryConfig::sweep_tiers() {
        let result =
            sumcheck_dse(&training, MU, bw, CPU_4T_AREA_MM2).expect("37 mm^2 admits designs");
        let best = &result.best;
        let speedups: Vec<f64> = training
            .iter()
            .zip(&best.runtimes_ms)
            .map(|(p, hw)| cpu_sumcheck_ms(p, MU, 4) / hw)
            .collect();
        rows.push(vec![
            format!("{bw:.0}"),
            format!(
                "{}PE/{}EE/{}PL/{}w",
                best.config.pes, best.config.ees, best.config.pls, best.config.bank_words
            ),
            format!("{:.1}", best.area_mm2),
            format!("{:.0}", geomean(&speedups)),
            format!("{:.0}", speedups.iter().copied().fold(f64::MIN, f64::max)),
            format!("{:.3}", best.mean_utilization),
        ]);
    }
    out.push_str(&fmt_table(
        "Fig. 6 — programmable SumCheck vs 4T CPU, polys 0-19, iso-area 37 mm^2 (lambda = 0.8)",
        &[
            "BW (GB/s)",
            "Design",
            "Area",
            "Gmean speedup",
            "Max speedup",
            "Mean util",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper gmean speedups: 61/123/244/485/955/1328/2209 at 64...4096 GB/s; \
         mean utilization 0.39-0.48.\n",
    );
    out
}

/// Fig. 7: fixed high-performance configuration swept over gate degree
/// and bandwidth for `f = q1 w1 + q2 w2 + q3 w1^(d-2) w2 + q_C`.
pub fn fig7() -> String {
    // Pick the performance-leaning design (lambda = 0) at 1 TB/s over the
    // degree family, under the same 37 mm^2 cap.
    let family: Vec<PolyProfile> = [4usize, 8, 16, 24, 30]
        .iter()
        .map(|&d| PolyProfile::from_gate(&high_degree_gate(d)))
        .collect();
    let design = select_design(
        &family,
        MU,
        1024.0,
        CPU_4T_AREA_MM2,
        0.0,
        PrimeMode::Arbitrary,
    )
    .expect("cap admits designs")
    .best
    .config;

    let degrees: Vec<usize> = (2..=30).step_by(4).collect();
    let mut lat_rows = Vec::new();
    let mut spd_rows = Vec::new();
    for &d in &degrees {
        let p = PolyProfile::from_gate(&high_degree_gate(d));
        let cpu = cpu_sumcheck_ms(&p, MU, 4);
        let mut lat = vec![d.to_string()];
        let mut spd = vec![d.to_string()];
        for bw in MemoryConfig::sweep_tiers() {
            let r = simulate_sumcheck(&p, MU, &design, &MemoryConfig::new(bw));
            lat.push(format!("{:.1}", r.ms()));
            spd.push(format!("{:.0}", cpu / r.ms()));
        }
        lat_rows.push(lat);
        spd_rows.push(spd);
    }
    let headers = ["deg", "64", "128", "256", "512", "1024", "2048", "4096"];
    let mut out = fmt_table(
        &format!(
            "Fig. 7 (top) — latency (ms) of fixed design {}PE/{}EE/{}PL vs degree and BW (GB/s)",
            design.pes, design.ees, design.pls
        ),
        &headers,
        &lat_rows,
    );
    out.push('\n');
    out.push_str(&fmt_table(
        "Fig. 7 (bottom) — speedup over 4T CPU",
        &headers,
        &spd_rows,
    ));
    out.push_str(
        "\nPaper shape: low degrees need HBM-scale BW for ~1000x; d >= ~10 reaches \
         1000x at DDR5-scale (256 GB/s); speedup spread across BW shrinks as degree grows.\n",
    );
    out
}

/// Fig. 8: scheduler-induced latency jumps vs degree for 2–7 EEs at
/// fixed bandwidth and lane count.
pub fn fig8() -> String {
    let mem = MemoryConfig::new(2048.0);
    let mut out = String::new();
    for ees in 2..=7usize {
        let cfg = SumcheckUnitConfig {
            pes: 16,
            ees,
            pls: 8,
            bank_words: 1 << 13,
            sparse_io: false,
        };
        let mut rows = Vec::new();
        for d in 2..=30usize {
            let p = PolyProfile::from_gate(&high_degree_gate(d));
            let r = simulate_sumcheck(&p, MU, &cfg, &mem);
            rows.push(vec![
                d.to_string(),
                format!("{:.2}", r.ms()),
                node_count(d, ees).to_string(),
            ]);
        }
        out.push_str(&fmt_table(
            &format!("Fig. 8 — {ees} EEs (16 PEs, 8 PLs, 2 TB/s, mu = {MU})"),
            &["deg", "latency (ms)", "sched nodes"],
            &rows,
        ));
        out.push('\n');
    }
    out.push_str(
        "Paper shape: discrete jumps where the node count increments \
         (e.g. 6 EEs: degrees 1-6 -> 1 node, 7-11 -> 2), gradual growth within clusters.\n",
    );
    out
}

/// Selects the iso-zkSpeed-area zkPHIRE SumCheck design of §VI-A3
/// (35.24 mm², arbitrary primes, 2 TB/s, λ = 0.8 on the training set).
pub fn fig9_design() -> SumcheckUnitConfig {
    let training: Vec<PolyProfile> = training_set().iter().map(PolyProfile::from_gate).collect();
    select_design(&training, MU, 2048.0, 35.24, 0.8, PrimeMode::Arbitrary)
        .expect("cap admits designs")
        .best
        .config
}

/// Fig. 9: ZeroCheck / PermCheck / OpenCheck vs zkSpeed and zkSpeed+,
/// Vanilla and Jellyfish with 2×/4×/8× gate-count reduction.
pub fn fig9() -> String {
    let mem = MemoryConfig::new(2048.0);
    let design = fig9_design();
    let vanilla = [20usize, 21, 24];
    let jellyfish = [22usize, 23, 24];
    let phase_names = ["ZeroCheck", "PermCheck", "OpenCheck"];

    let gates = table1_gates();
    let zk = |gate: usize, mu: usize, variant: ZkSpeedVariant| {
        zkspeed_sumcheck_ms(&PolyProfile::from_gate(&gates[gate]), mu, variant, &mem)
    };
    let ours = |gate: usize, mu: usize| {
        simulate_sumcheck(&PolyProfile::from_gate(&gates[gate]), mu, &design, &mem).ms()
    };

    let mut rows = Vec::new();
    let mut totals = [0.0f64; 6];
    for (phase, (&vg, &jg)) in phase_names.iter().zip(vanilla.iter().zip(jellyfish.iter())) {
        let zs = zk(vg, MU, ZkSpeedVariant::Baseline);
        let zsp = zk(vg, MU, ZkSpeedVariant::Plus);
        let phire_v = ours(vg, MU);
        let j2 = ours(jg, MU - 1);
        let j4 = ours(jg, MU - 2);
        let j8 = ours(jg, MU - 3);
        for (i, v) in [zs, zsp, phire_v, j2, j4, j8].iter().enumerate() {
            totals[i] += v;
        }
        rows.push(vec![
            phase.to_string(),
            format!("{zs:.2}"),
            format!("{zsp:.2}"),
            format!("{phire_v:.2} ({:.2}x/{:.2}x)", zs / phire_v, zsp / phire_v),
            format!("{j2:.2} ({:.2}x/{:.2}x)", zs / j2, zsp / j2),
            format!("{j4:.2} ({:.2}x/{:.2}x)", zs / j4, zsp / j4),
            format!("{j8:.2} ({:.2}x/{:.2}x)", zs / j8, zsp / j8),
        ]);
    }
    rows.push(vec![
        "Total".to_string(),
        format!("{:.2}", totals[0]),
        format!("{:.2}", totals[1]),
        format!(
            "{:.2} ({:.2}x/{:.2}x)",
            totals[2],
            totals[0] / totals[2],
            totals[1] / totals[2]
        ),
        format!(
            "{:.2} ({:.2}x/{:.2}x)",
            totals[3],
            totals[0] / totals[3],
            totals[1] / totals[3]
        ),
        format!(
            "{:.2} ({:.2}x/{:.2}x)",
            totals[4],
            totals[0] / totals[4],
            totals[1] / totals[4]
        ),
        format!(
            "{:.2} ({:.2}x/{:.2}x)",
            totals[5],
            totals[0] / totals[5],
            totals[1] / totals[5]
        ),
    ]);
    let mut out = fmt_table(
        &format!(
            "Fig. 9 — runtimes (ms) at 2^{MU} gates, 2 TB/s, iso-zkSpeed area \
             (zkPHIRE design {}PE/{}EE/{}PL; speedups vs zkSpeed/zkSpeed+)",
            design.pes, design.ees, design.pls
        ),
        &[
            "SumCheck",
            "zkSpeed",
            "zkSpeed+",
            "zkPHIRE Van",
            "JF 2x",
            "JF 4x",
            "JF 8x",
        ],
        &rows,
    );
    out.push_str(
        "\nPaper: zkPHIRE Vanilla ~30% slower than zkSpeed+ at iso-area; Jellyfish 2x \
         insufficient for ZeroCheck but wins PermCheck; total crosses over at 4x reduction \
         (paper totals 1.01x/0.58x Vanilla, 2.01x/1.17x at 4x, 4.03x/2.33x at 8x).\n",
    );
    out
}

/// Builds the Table II extra polynomials: `A·B·C` (dense) and the Vanilla
/// gate without `f_r`.
fn abc_profile() -> PolyProfile {
    let poly = (var(0) * var(1) * var(2)).expand();
    PolyProfile::from_composite(&poly, &[MleKind::Dense; 3], "A*B*C")
}

fn vanilla_no_fr_profile() -> PolyProfile {
    // (qL w1 + qR w2 - qO w3 + qM w1 w2 + qC), selectors/witnesses as in
    // the Vanilla gate but without the f_r factor (ICICLE cannot build it).
    let ql = var(0);
    let qr = var(1);
    let qm = var(2);
    let qo = var(3);
    let qc = var(4);
    let w1 = var(5);
    let w2 = var(6);
    let w3 = var(7);
    let poly = (ql * w1.clone() + qr * w2.clone() - qo * w3 + qm * w1 * w2 + qc).expand();
    let kinds = [
        MleKind::Selector,
        MleKind::Selector,
        MleKind::Selector,
        MleKind::Selector,
        MleKind::Witness,
        MleKind::Witness,
        MleKind::Witness,
        MleKind::Witness,
    ];
    PolyProfile::from_composite(&poly, &kinds, "HP Poly 20 (no f_r)")
}

/// Table II: SumCheck runtimes on CPU, GPU and zkPHIRE at N = 24.
pub fn table2() -> String {
    let design = fig9_design();
    let mem = MemoryConfig::new(1024.0); // ~A100 bandwidth (§VI-A4)
    let gates = table1_gates();

    struct Row {
        name: &'static str,
        profile: PolyProfile,
        count: usize,
        mu: usize,
    }
    // Problem sizes follow Table II's column for N = 24: "2N" = 2^25,
    // "2N+1" = 2^26, "2N-1" = 2^24.
    let rows_spec = vec![
        Row {
            name: "(A*B-C)*f_tau",
            profile: PolyProfile::from_gate(&gates[1]),
            count: 1,
            mu: 25,
        },
        Row {
            name: "(Sum_ABC)*Z",
            profile: PolyProfile::from_gate(&gates[2]),
            count: 1,
            mu: 26,
        },
        Row {
            name: "A*B*C x12",
            profile: abc_profile(),
            count: 12,
            mu: 25,
        },
        Row {
            name: "A*B*C x6",
            profile: abc_profile(),
            count: 6,
            mu: 24,
        },
        Row {
            name: "A*B*C x4",
            profile: abc_profile(),
            count: 4,
            mu: 26,
        },
        Row {
            name: "HP Poly 20 (no f_r)",
            profile: vanilla_no_fr_profile(),
            count: 1,
            mu: 25,
        },
        Row {
            name: "HP Poly 21",
            profile: PolyProfile::from_gate(&gates[21]),
            count: 1,
            mu: 25,
        },
        Row {
            name: "HP Poly 22",
            profile: PolyProfile::from_gate(&gates[22]),
            count: 1,
            mu: 25,
        },
        Row {
            name: "HP Poly 23",
            profile: PolyProfile::from_gate(&gates[23]),
            count: 1,
            mu: 25,
        },
        Row {
            name: "HP Poly 24",
            profile: PolyProfile::from_gate(&gates[24]),
            count: 1,
            mu: 25,
        },
    ];

    let rows: Vec<Vec<String>> = rows_spec
        .iter()
        .map(|r| {
            let count = r.count as f64;
            let cpu = count * cpu_sumcheck_ms(&r.profile, r.mu, 4);
            let gpu = gpu_sumcheck_ms(&r.profile, r.mu).map(|g| count * g);
            let hw = count * simulate_sumcheck(&r.profile, r.mu, &design, &mem).ms();
            vec![
                r.name.to_string(),
                r.count.to_string(),
                format!("2^{}", r.mu),
                format!("{cpu:.0}"),
                gpu.map_or("-".to_string(), |g| format!("{g:.0}")),
                match gpu {
                    Some(g) => format!("{hw:.1} ({:.0}x/{:.0}x)", cpu / hw, g / hw),
                    None => format!("{hw:.1} ({:.0}x)", cpu / hw),
                },
            ]
        })
        .collect();
    let mut out = fmt_table(
        "Table II — SumCheck runtimes (ms), CPU (4T) / GPU (A100 ICICLE) / zkPHIRE (1 TB/s)",
        &[
            "Polynomial",
            "#SC",
            "Size",
            "CPU",
            "GPU",
            "zkPHIRE (speedups)",
        ],
        &rows,
    );
    out.push_str(
        "\nPaper: zkPHIRE ~600-800x over CPU and ~70x over GPU on Spartan/A*B*C rows; \
         800-1100x over CPU on HP rows; GPU cannot run polys 21-24 (>8 unique MLEs).\n",
    );
    out
}

/// Table III: the design-space knobs.
pub fn table3() -> String {
    let space = zkphire_dse::DseSpace::default();
    let fmt_list = |v: &[usize]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let rows = vec![
        vec!["SumCheck PEs".into(), fmt_list(&space.sumcheck_pes)],
        vec!["SumCheck Extension Engines".into(), fmt_list(&space.ees)],
        vec!["SumCheck Product Lanes".into(), fmt_list(&space.pls)],
        vec![
            "SumCheck SRAM bank size (words)".into(),
            "2^10 .. 2^15".into(),
        ],
        vec!["MSM PEs".into(), fmt_list(&space.msm_pes)],
        vec!["MSM window size".into(), fmt_list(&space.windows)],
        vec!["MSM points/PE".into(), "1K, 2K, 4K, 8K, 16K".into()],
        vec!["FracMLE PEs".into(), fmt_list(&space.frac_pes)],
        vec![
            "Bandwidth (GB/s)".into(),
            "64, 128, 256, 512, 1024, 2048, 4096".into(),
        ],
    ];
    let mut out = fmt_table(
        &format!(
            "Table III — zkPHIRE design-space knobs ({} total configurations)",
            space.size()
        ),
        &["Design knob", "Values"],
        &rows,
    );
    out.push('\n');
    out
}
