//! Ablation studies for the design choices DESIGN.md calls out: each one
//! switches a single zkPHIRE mechanism off (or back to the zkSpeed
//! design) and quantifies the paper's claimed benefit.

use zkphire_core::memory::MemoryConfig;
use zkphire_core::permquot::PermQuotConfig;
use zkphire_core::profile::PolyProfile;
use zkphire_core::protocol::{simulate_protocol, Gate};
use zkphire_core::sumcheck_unit::simulate_sumcheck;
use zkphire_core::system::ZkphireConfig;
use zkphire_core::tech::{PrimeMode, MULS_PER_TREE};
use zkphire_poly::table1_gate;

use crate::fmt_table;

/// Ablation 1 — Masked ZeroCheck (§IV-A): per-size gains from hiding the
/// Gate Identity under the Wire Identity MSMs. Paper: ~25–27% for large
/// workloads (Fig. 13).
fn masking() -> String {
    let cfg = ZkphireConfig::exemplar();
    let rows: Vec<Vec<String>> = [16usize, 20, 24, 27]
        .iter()
        .map(|&mu| {
            let plain = simulate_protocol(&cfg, Gate::Jellyfish, mu, false).total_ms;
            let masked = simulate_protocol(&cfg, Gate::Jellyfish, mu, true).total_ms;
            vec![
                format!("2^{mu}"),
                format!("{plain:.3}"),
                format!("{masked:.3}"),
                format!("{:.1}%", 100.0 * (plain - masked) / plain),
            ]
        })
        .collect();
    fmt_table(
        "Ablation 1 — Masked ZeroCheck (paper: ~25-27% gains, Fig. 13)",
        &["Jellyfish gates", "Unmasked (ms)", "Masked (ms)", "Saved"],
        &rows,
    )
}

/// Ablation 2 — sparsity-aware streaming (§IV-B1): offset-buffer
/// compression of selector/witness tables vs dense 32 B streaming.
fn sparse_io() -> String {
    let base = ZkphireConfig::exemplar();
    let mut dense = base;
    dense.sumcheck.sparse_io = false;
    let rows: Vec<Vec<String>> = [(64.0, "DDR-class"), (512.0, "mid"), (2048.0, "HBM3")]
        .iter()
        .map(|&(bw, tier)| {
            let mem = MemoryConfig::new(bw);
            let profile = PolyProfile::from_gate(&table1_gate(22));
            let with = simulate_sumcheck(&profile, 22, &base.sumcheck, &mem);
            let without = simulate_sumcheck(&profile, 22, &dense.sumcheck, &mem);
            vec![
                format!("{bw:.0} ({tier})"),
                format!("{:.2}", without.ms()),
                format!("{:.2}", with.ms()),
                format!("{:.2}x", without.total_cycles / with.total_cycles),
                format!("{:.1}%", 100.0 * (1.0 - with.mem_bytes / without.mem_bytes)),
            ]
        })
        .collect();
    fmt_table(
        "Ablation 2 — sparsity-aware streaming on the Jellyfish ZeroCheck (2^22 gates)",
        &[
            "BW (GB/s)",
            "Dense (ms)",
            "Compressed (ms)",
            "Speedup",
            "Bytes saved",
        ],
        &rows,
    )
}

/// Ablation 3 — the ModInv redesign (§IV-B5): batch-2 round-robin inverse
/// pool vs zkSpeed's batch-64 with dedicated multipliers. Paper: 4.2×
/// area reduction at equal throughput.
fn modinv() -> String {
    let ours = PermQuotConfig {
        pes: 5,
        inverse_units: PermQuotConfig::PAPER_INVERSE_UNITS,
    };
    let rows = vec![
        vec![
            "zkSpeed (batch 64, dedicated muls)".to_string(),
            format!(
                "{:.2}",
                PermQuotConfig::zkspeed_modinv_area_mm2(PrimeMode::Arbitrary)
            ),
            "0.5/cycle".to_string(),
        ],
        vec![
            "zkPHIRE (batch 2, 266-unit pool)".to_string(),
            format!("{:.2}", ours.modinv_area_mm2(PrimeMode::Arbitrary)),
            format!("{:.1}/cycle", ours.inversion_throughput()),
        ],
        vec![
            "area reduction".to_string(),
            format!(
                "{:.1}x (paper: 4.2x)",
                PermQuotConfig::zkspeed_modinv_area_mm2(PrimeMode::Arbitrary)
                    / ours.modinv_area_mm2(PrimeMode::Arbitrary)
            ),
            "-".to_string(),
        ],
    ];
    fmt_table(
        "Ablation 3 — ModInv subsystem design (§IV-B5)",
        &["Design", "Area (mm^2, 7nm)", "Throughput"],
        &rows,
    )
}

/// Ablation 4 — Multifunction Forest sharing (§IV-B2): product-lane
/// multipliers served by the forest vs dedicated per-PE multipliers plus
/// a standalone tree unit. Paper: same latency with 15% fewer multipliers.
fn forest_sharing() -> String {
    let cfg = ZkphireConfig::exemplar();
    let lanes = cfg.sumcheck.shared_lane_muls();
    let updates = cfg.sumcheck.pes * 2;
    let tree_muls = cfg.forest.total_muls();
    // Shared: the forest covers both lane products and tree kernels.
    let shared = tree_muls + updates;
    // Dedicated (zkSpeed-style): lane multipliers in the SumCheck unit
    // plus a tree unit sized for the same tree throughput.
    let dedicated = lanes + updates + tree_muls;
    let saved = 100.0 * (dedicated - shared) as f64 / dedicated as f64;
    let rows = vec![
        vec!["dedicated lanes + tree unit".into(), dedicated.to_string()],
        vec!["shared Multifunction Forest".into(), shared.to_string()],
        vec![
            "multipliers saved".into(),
            format!("{saved:.1}% (paper: 15.2% area / 15% multipliers)"),
        ],
        vec![
            "forest covers lanes?".into(),
            format!(
                "{} ({} forest muls >= {} lane demand)",
                cfg.forest_covers_lanes(),
                tree_muls,
                lanes
            ),
        ],
    ];
    let _ = MULS_PER_TREE;
    fmt_table(
        "Ablation 4 — Forest/product-lane multiplier sharing (§IV-B2)",
        &["Organization", "255-bit multipliers"],
        &rows,
    )
}

/// Ablation 5 — the on-chip memory trade-off (§VI-B3): growing the
/// SumCheck scratchpad helps runtime but loses to spending the same area
/// on compute.
fn scratchpad() -> String {
    let base = ZkphireConfig::exemplar();
    let mut rows = Vec::new();
    for shift in [10usize, 12, 14, 16] {
        let mut cfg = base;
        cfg.sumcheck.bank_words = 1 << shift;
        let r = simulate_protocol(&cfg, Gate::Jellyfish, 22, true);
        rows.push(vec![
            format!("2^{shift} words/bank"),
            format!("{:.3}", r.total_ms),
            format!("{:.2}", cfg.area().total()),
            format!("{:.3}", r.total_ms * cfg.area().total() / 1e3),
        ]);
    }
    // The compute alternative: +1 product lane at the smallest scratchpad.
    let mut lanes = base;
    lanes.sumcheck.bank_words = 1 << 12;
    lanes.sumcheck.pls += 1;
    lanes.forest.trees = (lanes.sumcheck.shared_lane_muls().div_ceil(8)).max(16) + 8;
    let r = simulate_protocol(&lanes, Gate::Jellyfish, 22, true);
    rows.push(vec![
        "2^12 words + 1 extra PL".into(),
        format!("{:.3}", r.total_ms),
        format!("{:.2}", lanes.area().total()),
        format!("{:.3}", r.total_ms * lanes.area().total() / 1e3),
    ]);
    let mut out = fmt_table(
        "Ablation 5 — scratchpad size vs compute (§VI-B3), 2^22 Jellyfish gates",
        &[
            "SumCheck SRAM",
            "Runtime (ms)",
            "Area (mm^2)",
            "ms*mm^2 / 1000",
        ],
        &rows,
    );
    out.push_str(
        "\nPaper's finding: larger scratchpads improve runtime but Pareto-optimal \
         designs consistently prefer compute (more PEs/EEs/PLs) over SRAM.\n",
    );
    out
}

/// All ablations, concatenated.
pub fn ablations() -> String {
    let mut out = String::new();
    for section in [
        masking(),
        sparse_io(),
        modinv(),
        forest_sharing(),
        scratchpad(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}
