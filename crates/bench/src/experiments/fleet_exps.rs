//! Fleet-level experiments: the proving-*service* view the paper stops
//! short of — throughput and tail latency of multi-chip zkPHIRE
//! deployments under open-loop traffic, and SLO-driven fleet sizing.

use zkphire_core::costdb::CostModel;
use zkphire_core::system::ZkphireConfig;
use zkphire_dse::{size_fleet, FleetSlo};
use zkphire_fleet::{simulate, FleetConfig, PoissonSource, PolicyKind, WorkloadMix};

use crate::fmt_table;

/// Shared experiment traffic: Tables VI/VII Jellyfish mix capped at
/// `2^21` gates, 8 s horizon, fixed seed — deterministic across runs.
const HORIZON_MS: f64 = 8_000.0;
const SEED: u64 = 0x5eed_f1ee7;
const MU_CAP: usize = 21;

/// The `fleet` experiment: a throughput / p99-latency table over chip
/// counts × arrival rates, plus a policy comparison and an SLO sizing.
pub fn fleet() -> String {
    let chip_counts = [1usize, 2, 4, 8];
    let rates = [50.0f64, 150.0, 400.0, 1000.0];
    let mix = WorkloadMix::table_vii_jellyfish(MU_CAP);
    // One memoized cost model across every sweep point: all points run
    // the same chip config, so the protocol model is evaluated once per
    // (gate, mu) class for the whole experiment.
    let mut cost = CostModel::exemplar();

    // Sweep: size-class batching on the exemplar chip.
    let mut rows = Vec::new();
    for &chips in &chip_counts {
        for &rate in &rates {
            let mut source = PoissonSource::new(rate, HORIZON_MS, mix.clone(), SEED);
            let cfg = FleetConfig::new(chips);
            let r = simulate(&cfg, &mut source, &mut cost).expect("valid config");
            let s = &r.summary;
            rows.push(vec![
                chips.to_string(),
                format!("{rate:.0}"),
                format!("{:.1}", s.throughput_rps),
                format!("{:.2}", s.mean_utilization),
                format!("{:.1}", s.mean_queue_depth),
                format!("{:.2}", s.p50_latency_ms),
                format!("{:.2}", s.p95_latency_ms),
                format!("{:.2}", s.p99_latency_ms),
                format!("{:.2}", s.mean_batch_size),
                format!("{:016x}", r.trace_hash),
            ]);
        }
    }
    let mut out = fmt_table(
        "Fleet — exemplar chips, Tables VI/VII Jellyfish mix (<= 2^21), size-class batching",
        &[
            "Chips",
            "Rate/s",
            "Thru/s",
            "Util",
            "Queue",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "Batch",
            "TraceHash",
        ],
        &rows,
    );

    // Policy face-off at one operating point.
    let policy_rows: Vec<Vec<String>> = [
        PolicyKind::Fifo,
        PolicyKind::SizeClass,
        PolicyKind::EarliestDeadline,
    ]
    .iter()
    .map(|&policy| {
        let mut source = PoissonSource::new(900.0, HORIZON_MS, mix.clone(), SEED);
        let cfg = FleetConfig::new(2).with_policy(policy);
        let s = simulate(&cfg, &mut source, &mut cost)
            .expect("valid config")
            .summary;
        vec![
            policy.name().to_string(),
            format!("{:.1}", s.throughput_rps),
            format!("{:.2}", s.mean_utilization),
            format!("{:.2}", s.p50_latency_ms),
            format!("{:.2}", s.p99_latency_ms),
            format!("{:.3}", s.deadline_miss_rate),
        ]
    })
    .collect();
    out.push('\n');
    out.push_str(&fmt_table(
        "Policy comparison — 2 chips @ 900 req/s (contended)",
        &["Policy", "Thru/s", "Util", "p50 ms", "p99 ms", "MissRate"],
        &policy_rows,
    ));

    // SLO sizing: chips needed to hold p99 <= 50 ms as load grows.
    let cfg = ZkphireConfig::exemplar();
    let mut sizing_rows = Vec::new();
    for &rate in &[100.0f64, 300.0, 600.0] {
        let slo = FleetSlo {
            arrival_rps: rate,
            p99_ms: 50.0,
            queue_capacity: None,
            max_reject_fraction: 0.0,
            horizon_ms: HORIZON_MS,
            seed: SEED,
        };
        match size_fleet(&cfg, &mix, PolicyKind::SizeClass, &slo, 64) {
            Some(sizing) => sizing_rows.push(vec![
                format!("{rate:.0}"),
                sizing.chips.to_string(),
                format!("{:.2}", sizing.summary.p99_latency_ms),
                format!("{:.0}", sizing.cost.total_area_mm2),
                format!("{:.0}", sizing.cost.total_power_w),
            ]),
            None => sizing_rows.push(vec![
                format!("{rate:.0}"),
                ">64".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
    }
    out.push('\n');
    out.push_str(&fmt_table(
        "SLO sizing — smallest fleet with p99 <= 50 ms (exemplar chip)",
        &["Rate/s", "Chips", "p99 ms", "Area mm2", "Power W"],
        &sizing_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_experiment_is_deterministic_and_complete() {
        let a = fleet();
        let b = fleet();
        assert_eq!(a, b, "fleet experiment must be reproducible");
        // ≥ 3 chip counts × ≥ 3 arrival rates in the sweep table.
        for needle in ["Chips", "p99 ms", "TraceHash", "fifo", "size-class", "edf"] {
            assert!(a.contains(needle), "missing {needle}");
        }
        let sweep_rows = a.lines().take_while(|l| !l.is_empty()).skip(3).count();
        assert!(sweep_rows >= 9, "sweep rows {sweep_rows}");
    }
}
