//! The `autoscale` experiment: reactive pool sizing versus the static
//! optimum on bursty multi-tenant traffic — the deployment question the
//! paper's fixed single-chip sizing cannot answer. Everything below is
//! a deterministic function of the fixed seed, so CI diffs two runs for
//! byte-identical output and a golden test locks the numbers.

use zkphire_core::costdb::CostModel;
use zkphire_core::system::ZkphireConfig;
use zkphire_dse::{compare_provisioning, BurstScenario, ProvisioningComparison};
use zkphire_fleet::{
    simulate, AutoscaleConfig, FleetConfig, OnOffSource, PolicyKind, ScaleKind, SimReport,
    TenantMix, TenantProfile, WorkloadMix,
};

const SEED: u64 = 0xa07_05ca1e;
/// ON phases offer ~5 chips of load; the duty cycle leaves the fleet
/// idle three quarters of the time — the shape where static peak
/// sizing wastes the most silicon.
const SCENARIO: BurstScenario = BurstScenario {
    on_rate_rps: 2_000.0,
    mean_on_ms: 500.0,
    mean_off_ms: 1_500.0,
    horizon_ms: 12_000.0,
    seed: SEED,
};
const P99_SLO_MS: f64 = 120.0;
const SPIN_UP_MS: f64 = 40.0;

/// Two tenants: a wallet fleet offering 3× the traffic in small proofs
/// with a 2× service entitlement, and a rollup submitting fewer,
/// larger ones — so the rollup holds half the wallet's total
/// entitlement but 1.5× its entitlement per unit of traffic.
fn tenants() -> TenantMix {
    TenantMix::new(vec![
        TenantProfile::new(1, 3.0, WorkloadMix::table_vii_jellyfish(18)).with_service_weight(2.0),
        TenantProfile::new(2, 1.0, WorkloadMix::table_vii_jellyfish(21)).with_service_weight(1.0),
    ])
}

fn reactive_kinds() -> [ScaleKind; 2] {
    [
        ScaleKind::QueueDepth {
            up_depth: 4,
            down_depth: 0,
        },
        ScaleKind::UtilizationTarget {
            low: 0.3,
            high: 0.9,
        },
    ]
}

/// The static-vs-reactive comparison the table prints; exposed so the
/// test can assert a reactive policy actually wins.
fn provisioning() -> ProvisioningComparison {
    compare_provisioning(
        &ZkphireConfig::exemplar(),
        &tenants(),
        PolicyKind::WeightedFair,
        &SCENARIO,
        P99_SLO_MS,
        32,
        &reactive_kinds(),
        SPIN_UP_MS,
    )
    .expect("static sizing feasible within 32 chips")
}

/// One fully-detailed autoscaled multi-tenant run for the per-tenant
/// fairness table.
fn detailed_run(static_chips: usize) -> SimReport {
    let mix = tenants();
    let mut cost = CostModel::exemplar();
    let mut source = OnOffSource::new(
        SCENARIO.on_rate_rps,
        SCENARIO.mean_on_ms,
        SCENARIO.mean_off_ms,
        SCENARIO.horizon_ms,
        mix.clone(),
        SCENARIO.seed,
    );
    let cfg = FleetConfig::new(1)
        .with_policy(PolicyKind::WeightedFair)
        .with_tenant_weights(mix.service_weights())
        .with_autoscale(
            AutoscaleConfig::new(
                ScaleKind::QueueDepth {
                    up_depth: 4,
                    down_depth: 0,
                },
                1,
                static_chips,
            )
            .with_spin_up_ms(SPIN_UP_MS)
            .with_cooldown_ms(2.0 * SPIN_UP_MS)
            .with_interval_ms(SPIN_UP_MS / 2.0),
        );
    simulate(&cfg, &mut source, &mut cost).expect("valid config")
}

/// The `autoscale` experiment: provisioning-cost table, per-tenant
/// fairness table, and a noisy-neighbor policy face-off.
pub fn autoscale() -> String {
    use crate::fmt_table;

    let cmp = provisioning();
    let mut rows = Vec::new();
    for r in &cmp.rows {
        let s = &r.summary;
        rows.push(vec![
            r.label.clone(),
            format!("{:.2}", s.mean_chips),
            s.peak_chips.to_string(),
            format!("{:.1}", r.chip_seconds),
            format!("{:.1}", r.energy_kj),
            format!("{:.2}", s.p99_latency_ms),
            if r.meets_slo { "yes" } else { "NO" }.to_string(),
            s.scale_ups.to_string(),
            s.scale_downs.to_string(),
        ]);
    }
    let mut out = format!(
        "Scenario: ON/OFF bursts {:.0} rps x {:.0} ms ON / {:.0} ms OFF \
         (duty {:.0}%, avg {:.0} rps), horizon {:.0} ms, p99 SLO {:.0} ms, \
         spin-up {:.0} ms, 2 tenants, weighted-fair batching\n\n",
        SCENARIO.on_rate_rps,
        SCENARIO.mean_on_ms,
        SCENARIO.mean_off_ms,
        100.0 * SCENARIO.duty_cycle(),
        SCENARIO.mean_rate_rps(),
        SCENARIO.horizon_ms,
        P99_SLO_MS,
        SPIN_UP_MS,
    );
    out.push_str(&fmt_table(
        &format!(
            "Provisioning — static optimum ({} chips) vs reactive [1, {}]",
            cmp.static_chips, cmp.static_chips
        ),
        &[
            "Policy", "MeanCh", "Peak", "Chip-s", "kJ", "p99 ms", "SLO", "Ups", "Downs",
        ],
        &rows,
    ));

    // Per-tenant fairness under the queue-depth autoscaler.
    let detail = detailed_run(cmp.static_chips);
    let tenant_rows: Vec<Vec<String>> = detail
        .summary
        .per_tenant
        .iter()
        .map(|t| {
            vec![
                t.tenant.to_string(),
                format!("{:.0}", t.weight),
                t.completed.to_string(),
                t.rejected.to_string(),
                format!("{:.2}", t.p50_latency_ms),
                format!("{:.2}", t.p95_latency_ms),
                format!("{:.2}", t.p99_latency_ms),
                format!("{:.3}", t.deadline_miss_rate),
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&fmt_table(
        "Per-tenant SLO — queue-depth autoscaler, weighted-fair batching",
        &[
            "Tenant", "Weight", "Done", "Rej", "p50 ms", "p95 ms", "p99 ms", "Miss",
        ],
        &tenant_rows,
    ));
    out.push_str(&format!(
        "Jain fairness (weight-normalized completions): {:.4}\n",
        detail.summary.jain_fairness
    ));
    out.push_str(&format!("Trace hash: {:016x}\n", detail.trace_hash));

    // Noisy-neighbor face-off: what fairness buys the light tenant.
    let mut cost = CostModel::exemplar();
    let flood = TenantMix::new(vec![
        TenantProfile::new(1, 9.0, WorkloadMix::table_vii_jellyfish(18)).with_service_weight(1.0),
        TenantProfile::new(2, 1.0, WorkloadMix::table_vii_jellyfish(18)),
    ]);
    let face_off: Vec<Vec<String>> = [PolicyKind::Fifo, PolicyKind::WeightedFair]
        .iter()
        .map(|&policy| {
            let mut source = OnOffSource::new(1_500.0, 800.0, 800.0, 8_000.0, flood.clone(), SEED);
            let cfg = FleetConfig::new(2)
                .with_policy(policy)
                .with_tenant_weights(flood.service_weights());
            let s = simulate(&cfg, &mut source, &mut cost)
                .expect("valid config")
                .summary;
            let light = s
                .per_tenant
                .iter()
                .find(|t| t.tenant == 2)
                .expect("light tenant served");
            vec![
                policy.name().to_string(),
                format!("{:.2}", s.p99_latency_ms),
                format!("{:.2}", light.p50_latency_ms),
                format!("{:.2}", light.p99_latency_ms),
                format!("{:.4}", s.jain_fairness),
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&fmt_table(
        "Noisy neighbor — tenant 1 floods 9:1; tenant 2's latency, 2 chips",
        &["Policy", "All p99", "T2 p50", "T2 p99", "Jain"],
        &face_off,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_wins_in_the_published_table() {
        // The acceptance criterion: at least one reactive policy meets
        // the p99 SLO on fewer chip-seconds than the static optimum.
        let cmp = provisioning();
        let static_row = &cmp.rows[0];
        assert!(static_row.meets_slo, "static baseline misses its own SLO");
        assert!(
            cmp.rows[1..]
                .iter()
                .any(|r| r.meets_slo && r.chip_seconds < static_row.chip_seconds),
            "no reactive policy beat static: {:?}",
            cmp.rows
                .iter()
                .map(|r| (r.label.clone(), r.meets_slo, r.chip_seconds))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn autoscale_experiment_is_deterministic_and_multi_tenant() {
        let a = autoscale();
        let b = autoscale();
        assert_eq!(a, b, "autoscale experiment must be reproducible");
        for needle in [
            "static",
            "queue-depth",
            "util-target",
            "Jain",
            "Trace hash",
            "weighted-fair",
        ] {
            assert!(a.contains(needle), "missing {needle}");
        }
        // Two tenants appear in the per-tenant table.
        let detail = detailed_run(provisioning().static_chips);
        assert_eq!(detail.summary.per_tenant.len(), 2);
        assert!(detail.summary.scale_ups > 0);
    }
}
