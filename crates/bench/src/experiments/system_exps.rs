//! Full-system experiments: the Pareto sweep (Fig. 10 / Table IV),
//! breakdowns (Fig. 11, Fig. 12) and the exemplar design (Table V).

use zkphire_core::protocol::{simulate_protocol, Gate};
use zkphire_core::system::ZkphireConfig;
use zkphire_core::tech::PrimeMode;
use zkphire_dse::{full_system_dse, DseSpace, FullSystemPoint};

use crate::fmt_table;

/// Paper's CPU (32-thread) anchor for the 2^24-Jellyfish-gate workload
/// (§VI-B1: "the CPU runtime is roughly 182.896 seconds").
const CPU_2POW24_JELLYFISH_MS: f64 = 182_896.0;

/// Runs the Fig. 10 sweep once (it is shared by fig10 and fig11).
pub fn run_pareto_sweep() -> zkphire_dse::space::FullSystemDse {
    full_system_dse(
        &DseSpace::default(),
        Gate::Jellyfish,
        24,
        true,
        PrimeMode::Fixed,
    )
}

/// Picks the Table IV representative designs from the sweep: A–D are the
/// fastest points at 4096/2048/1024/512 GB/s; E/F sit lower on the
/// 512 GB/s frontier; G is the fastest small design at 128 GB/s.
pub fn select_table4_designs(
    dse: &zkphire_dse::space::FullSystemDse,
) -> Vec<(&'static str, FullSystemPoint)> {
    let tier = |bw: f64| -> &Vec<FullSystemPoint> {
        let idx = MemTiers::index_of(bw);
        &dse.tier_fronts[idx]
    };
    let fastest = |bw: f64| {
        *tier(bw)
            .first()
            .unwrap_or_else(|| panic!("empty frontier at {bw}"))
    };
    let near_area = |bw: f64, target: f64| {
        *tier(bw)
            .iter()
            .min_by(|a, b| {
                (a.area_mm2 - target)
                    .abs()
                    .partial_cmp(&(b.area_mm2 - target).abs())
                    .expect("finite")
            })
            .expect("non-empty frontier")
    };
    vec![
        ("A", fastest(4096.0)),
        ("B", fastest(2048.0)),
        ("C", fastest(1024.0)),
        ("D", fastest(512.0)),
        ("E", near_area(512.0, 75.0)),
        ("F", near_area(512.0, 50.0)),
        ("G", near_area(128.0, 25.0)),
    ]
}

struct MemTiers;

impl MemTiers {
    fn index_of(bw: f64) -> usize {
        zkphire_core::memory::MemoryConfig::sweep_tiers()
            .iter()
            .position(|&t| (t - bw).abs() < 1.0)
            .expect("known tier")
    }
}

/// Fig. 10 + Table IV: Pareto frontiers for 2^24 Jellyfish gates.
pub fn fig10() -> String {
    let dse = run_pareto_sweep();
    let mut out = String::new();

    let mut tier_rows = Vec::new();
    for (bw, front) in zkphire_core::memory::MemoryConfig::sweep_tiers()
        .iter()
        .zip(&dse.tier_fronts)
    {
        let best = front.first().expect("non-empty front");
        tier_rows.push(vec![
            format!("{bw:.0}"),
            front.len().to_string(),
            format!("{:.1}", best.runtime_ms),
            format!("{:.1}", best.area_mm2),
        ]);
    }
    out.push_str(&fmt_table(
        &format!(
            "Fig. 10 — per-bandwidth Pareto frontiers, 2^24 Jellyfish gates \
             ({} configs evaluated)",
            dse.evaluated
        ),
        &["BW (GB/s)", "Front size", "Fastest (ms)", "Its area (mm^2)"],
        &tier_rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = select_table4_designs(&dse)
        .iter()
        .map(|(label, p)| {
            vec![
                label.to_string(),
                format!("{:.3}", p.runtime_ms),
                format!("{:.2}", p.area_mm2),
                format!("{:.0}", p.config.mem.bandwidth_gbps),
                format!("{:.0}x", CPU_2POW24_JELLYFISH_MS / p.runtime_ms),
                format!(
                    "{}msm/{}sc({}E{}P)/{}tr",
                    p.config.msm.pes,
                    p.config.sumcheck.pes,
                    p.config.sumcheck.ees,
                    p.config.sumcheck.pls,
                    p.config.forest.trees
                ),
            ]
        })
        .collect();
    out.push_str(&fmt_table(
        "Table IV — globally Pareto-optimal zkPHIRE designs",
        &[
            "Design",
            "Runtime (ms)",
            "Area (mm^2)",
            "BW (GB/s)",
            "CPU speedup",
            "Config",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper Table IV: A 71.4 ms/599 mm^2/4096 (2560x), B 92.9/455/2048 (1969x), \
         C 171.3/229.7/1024 (1067x), D 328.5/117.6/512 (557x), E 477/75 (383x), \
         F 786/50 (233x), G 1717/25 @128 (107x).\n",
    );
    out
}

/// Fig. 11: area and runtime percentage breakdowns for designs A–D.
pub fn fig11() -> String {
    let dse = run_pareto_sweep();
    let designs = select_table4_designs(&dse);
    let mut area_rows = Vec::new();
    let mut runtime_rows = Vec::new();
    for (label, p) in designs.iter().take(4) {
        let a = p.config.area();
        let pct = |x: f64| format!("{:.1}", 100.0 * x / a.total());
        area_rows.push(vec![
            label.to_string(),
            pct(a.sumcheck),
            pct(a.forest),
            pct(a.msm),
            pct(a.sram),
            pct(a.phy),
            pct(a.interconnect),
            pct(a.other),
        ]);
        // Runtime shares before masking (as the paper plots them).
        let r = simulate_protocol(&p.config, Gate::Jellyfish, 24, false);
        let rp = |x: f64| format!("{:.1}", 100.0 * x / r.total_ms);
        runtime_rows.push(vec![
            label.to_string(),
            rp(r.witness_msm_ms),
            rp(r.wiring_msm_ms),
            rp(r.polyopen_msm_ms),
            rp(r.zerocheck_ms),
            rp(r.permcheck_ms),
            rp(r.opencheck_ms),
            rp(r.other_ms()),
        ]);
    }
    let mut out = fmt_table(
        "Fig. 11 (left) — area % breakdown for Pareto designs A-D",
        &[
            "Design",
            "SumCheck",
            "Forest",
            "MSM",
            "SRAM",
            "HBM PHY",
            "Interconn",
            "Misc",
        ],
        &area_rows,
    );
    out.push('\n');
    out.push_str(&fmt_table(
        "Fig. 11 (right) — runtime % breakdown (pre-masking)",
        &[
            "Design", "WitMSM", "WireMSM", "OpenMSM", "ZeroChk", "PermChk", "OpenChk", "Other",
        ],
        &runtime_rows,
    ));
    out.push_str(
        "\nPaper shape: MSM dominates area everywhere; from C to D the SumCheck/Forest \
         share grows while absolute MSM area stays flat; SumCheck runtime share shrinks \
         with more bandwidth.\n",
    );
    out
}

/// Fig. 12: CPU vs zkPHIRE runtime shares for 2^24 Jellyfish gates.
pub fn fig12() -> String {
    let cfg = ZkphireConfig::exemplar();
    let r = simulate_protocol(&cfg, Gate::Jellyfish, 24, false);
    let total = r.total_ms;
    let rows = vec![
        vec![
            "Witness MSMs".to_string(),
            "13.0 (Sparse MSMs)".to_string(),
            format!("{:.1}", 100.0 * r.witness_msm_ms / total),
        ],
        vec![
            "Gate Identity".to_string(),
            "12.9".to_string(),
            format!("{:.1}", 100.0 * r.zerocheck_ms / total),
        ],
        vec![
            "Wire Identity".to_string(),
            "30.3 (gen 9.9 + dense MSM 10.9 + check 9.5)".to_string(),
            format!(
                "{:.1}",
                100.0 * (r.permquot_ms + r.wiring_msm_ms + r.permcheck_ms) / total
            ),
        ],
        vec![
            "Batch Evals & Poly Open".to_string(),
            "43.8 (evals 10.1 + combine 5.7 + check 6.8 + MSM 21.2)".to_string(),
            format!(
                "{:.1}",
                100.0 * (r.batch_eval_ms + r.combine_ms + r.opencheck_ms + r.polyopen_msm_ms)
                    / total
            ),
        ],
    ];
    let mut out = fmt_table(
        &format!(
            "Fig. 12 — runtime shares (%), 2^24 Jellyfish gates; zkPHIRE total {total:.1} ms \
             at 2 TB/s (paper CPU column from Fig. 12a)"
        ),
        &["Step", "Paper CPU %", "zkPHIRE model %"],
        &rows,
    );
    out.push_str(
        "\nPaper zkPHIRE shares: Witness 7.8, Gate Identity 21.4, Wire Identity 37.9, \
         Batch+Open 33.0.\n",
    );
    out
}

/// Table V: the exemplar 294 mm² design's area and power.
pub fn table5() -> String {
    let cfg = ZkphireConfig::exemplar();
    let a = cfg.area();
    let p = cfg.power();
    let rows = vec![
        vec![
            "MSM (32 PEs)".into(),
            f2(a.msm),
            "105.69".into(),
            f2(p.msm),
            "58.99".into(),
        ],
        vec![
            "Multifunc Forest (80 trees)".into(),
            f2(a.forest),
            "48.18".into(),
            f2(p.forest),
            "40.69".into(),
        ],
        vec![
            "SumCheck (16 PEs)".into(),
            f2(a.sumcheck),
            "16.65".into(),
            f2(p.sumcheck),
            "14.43".into(),
        ],
        vec![
            "Other".into(),
            f2(a.other),
            "10.64".into(),
            f2(p.other),
            "6.17".into(),
        ],
        vec![
            "Total compute".into(),
            f2(a.compute()),
            "181.15".into(),
            f2(p.msm + p.forest + p.sumcheck + p.other),
            "120.29".into(),
        ],
        vec![
            "SRAM".into(),
            f2(a.sram),
            "27.55".into(),
            f2(p.sram),
            "3.56".into(),
        ],
        vec![
            "Interconnect".into(),
            f2(a.interconnect),
            "26.42".into(),
            f2(p.interconnect),
            "14.83".into(),
        ],
        vec![
            "HBM3 (2 PHYs)".into(),
            f2(a.phy),
            "59.20".into(),
            f2(p.hbm),
            "63.60".into(),
        ],
        vec![
            "Total".into(),
            f2(a.total()),
            "294.32".into(),
            f2(p.total()),
            "202.28".into(),
        ],
    ];
    fmt_table(
        "Table V — exemplar zkPHIRE design: area (mm^2) and average power (W), model vs paper",
        &["Module", "Area", "Paper", "Power", "Paper "],
        &rows,
    )
}

fn f2(x: f64) -> String {
    format!("{x:.2}")
}
