//! The `obs` experiment: exercises the zkphire-telemetry recorders
//! end to end and pins their deterministic surface in the golden file.
//!
//! Two sections, two time domains:
//!
//! 1. **Prover profile** — a full HyperPlonk prove with the wall-clock
//!    profiler armed. Durations are machine-dependent and never
//!    printed; what *is* printed (span counts per name, counter
//!    values, histogram shape) is a pure function of the circuit seed,
//!    so the golden test locks it. Two reconciliations are hard
//!    assertions: the depth-1 phase spans must sum to within 1% of the
//!    enclosing `prove` span, and the `prove` span must agree with an
//!    external wall timer to within 1%.
//! 2. **Fleet timeline** — the `faults` resilient scenario re-run with
//!    [`FleetConfig::with_telemetry`]. Every timestamp is simulated
//!    time, so the whole timeline (and its JSONL/Chrome exports) is
//!    byte-identical per seed; the experiment prints line counts and
//!    FNV-1a hashes of both exports. The timeline's busy/provisioned
//!    integrals are asserted *bitwise* equal to the simulator's own
//!    `SimReport` accounting (the same check the engine itself runs at
//!    drain).
//!
//! `--out-dir <dir>` additionally writes the four trace artifacts
//! (`OBS_prover_trace.json`, `OBS_prover.jsonl`, `OBS_fleet_trace.json`,
//! `OBS_fleet.jsonl`); the two `*_trace.json` files load directly in
//! Perfetto / `chrome://tracing`.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_curve::{batch_normalize, msm_with_ops_threads, G1Affine, G1Projective};
use zkphire_field::Fr;
use zkphire_fleet::{
    simulate, BrownOutConfig, ChipOutage, ChipPhase, FaultConfig, FleetConfig, PoissonSource,
    RequestClass, RetryPolicy, SimReport, WorkloadMix,
};
use zkphire_hyperplonk::{prove_with_config, setup, verify, Circuit, GateSystem, ProverConfig};
use zkphire_telemetry as tele;
use zkphire_transcript::Transcript;

use crate::fmt_table;

/// Same scenario constants as the `faults` face-off: 4 chips, chip 0
/// down 2-5 s of a 10 s horizon, 85% offered load of J^18.
const SEED: u64 = 0xfa17;
const CHIPS: usize = 4;
const HORIZON_MS: f64 = 10_000.0;
const OUTAGE_AT_MS: f64 = 2_000.0;
const OUTAGE_FOR_MS: f64 = 3_000.0;

/// Prover-profile circuit: Jellyfish at 2^10 rows, sequential so every
/// span lands on the orchestrating thread.
const PROVE_MU: usize = 10;
const PROVE_SEED: u64 = 0x0b5eed;

/// Phase coverage and timer agreement tolerance (fraction).
const RECONCILE_TOL: f64 = 0.01;

/// The profiler is process-global; hold this while resetting/draining
/// so concurrently running tests (the golden harness runs experiments
/// from several test threads) cannot interleave their sessions.
pub(crate) fn tele_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a 64-bit, the same hash the golden harness uses.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `obs` experiment with no flags.
pub fn obs() -> String {
    obs_with_args(&[])
}

/// The `obs` experiment; recognizes `--out-dir <dir>` to export the
/// Chrome/JSONL trace artifacts.
pub fn obs_with_args(args: &[String]) -> String {
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut out = String::new();
    let (prover_chrome, prover_jsonl) = prover_section(&mut out);
    let (fleet_chrome, fleet_jsonl) = fleet_section(&mut out);

    if let Some(dir) = out_dir {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            let _ = writeln!(out, "FAILED to create {}: {e}", dir.display());
        }
        let files = [
            ("OBS_prover_trace.json", prover_chrome),
            ("OBS_prover.jsonl", prover_jsonl),
            ("OBS_fleet_trace.json", fleet_chrome),
            ("OBS_fleet.jsonl", fleet_jsonl),
        ];
        for (name, body) in files {
            match std::fs::write(dir.join(name), body) {
                Ok(()) => {
                    let _ = writeln!(out, "wrote {}", dir.join(name).display());
                }
                Err(e) => {
                    let _ = writeln!(out, "FAILED to write {}: {e}", dir.join(name).display());
                }
            }
        }
    }
    out
}

// --------------------------------------------------------------- prover --

/// Runs the instrumented prove and prints its machine-independent
/// profile facts. Returns the (wall-clock, non-golden) trace exports.
fn prover_section(out: &mut String) -> (String, String) {
    let mut rng = StdRng::seed_from_u64(PROVE_SEED);
    let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, PROVE_MU, 0.5, &mut rng);
    let (pk, vk) = setup(circuit, &mut rng);

    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(true);
    let start = Instant::now();
    let proof = prove_with_config(
        &pk,
        &witness,
        &mut Transcript::new(b"obs/prover"),
        ProverConfig { threads: 1 },
    );
    let wall_ns = start.elapsed().as_nanos() as u64;
    tele::set_enabled(false);
    let profile = tele::drain();
    drop(guard);
    verify(&vk, &proof, &mut Transcript::new(b"obs/prover")).expect("obs proof must verify");

    profile
        .check_well_formed()
        .expect("prover span forest must be well-formed");

    // Span counts per name: machine-independent (durations are not).
    let mut names: Vec<&'static str> = Vec::new();
    for s in &profile.spans {
        if !names.contains(&s.name) {
            names.push(s.name);
        }
    }
    names.sort_unstable();
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|n| vec![(*n).to_string(), profile.span_count(n).to_string()])
        .collect();
    out.push_str(&fmt_table(
        &format!("Obs — prover span counts (Jellyfish, 2^{PROVE_MU} rows, threads=1)"),
        &["span", "count"],
        &rows,
    ));

    let counter_rows: Vec<Vec<String>> = profile
        .counters
        .iter()
        .map(|(name, v)| vec![(*name).to_string(), v.to_string()])
        .collect();
    out.push('\n');
    out.push_str(&fmt_table(
        "Obs — prover counters",
        &["counter", "value"],
        &counter_rows,
    ));

    let hist_rows: Vec<Vec<String>> = profile
        .hists
        .iter()
        .map(|(name, h)| {
            vec![
                (*name).to_string(),
                h.count.to_string(),
                h.sum.to_string(),
                h.min.to_string(),
                h.max.to_string(),
                format!("{:.3}", h.mean()),
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&fmt_table(
        "Obs — prover histograms",
        &["histogram", "count", "sum", "min", "max", "mean"],
        &hist_rows,
    ));

    // Reconciliation 1: the depth-1 phase spans tile the prove span.
    let prove_ns = profile.total_ns("prove");
    let phase_ns: u64 = profile
        .spans
        .iter()
        .filter(|s| s.depth == 1)
        .map(|s| s.dur_ns)
        .sum();
    assert!(prove_ns > 0, "no `prove` span recorded");
    let coverage = phase_ns as f64 / prove_ns as f64;
    assert!(
        (coverage - 1.0).abs() <= RECONCILE_TOL,
        "phase spans cover {coverage:.4} of `prove` — outside the \
         {RECONCILE_TOL} tolerance (phases {phase_ns} ns, prove {prove_ns} ns)"
    );
    // Reconciliation 2: the prove span agrees with an external timer.
    let timer_ratio = prove_ns as f64 / wall_ns as f64;
    assert!(
        (timer_ratio - 1.0).abs() <= RECONCILE_TOL,
        "`prove` span is {timer_ratio:.4} of the external timer — outside \
         the {RECONCILE_TOL} tolerance (span {prove_ns} ns, timer {wall_ns} ns)"
    );
    let _ = writeln!(
        out,
        "\nphase coverage: OK (depth-1 spans sum to within {:.0}% of `prove`)",
        RECONCILE_TOL * 100.0
    );
    let _ = writeln!(
        out,
        "timer reconciliation: OK (`prove` span within {:.0}% of the external e2e timer)\n",
        RECONCILE_TOL * 100.0
    );

    msm_probe(out);

    (
        tele::profile_to_chrome(&profile),
        tele::profile_to_jsonl(&profile),
    )
}

/// One deterministic 2^12-point MSM, recorded in its own profiler
/// session. The prove above commits 2^10-point columns, which stay on
/// the narrow-window projective path; 2^12 points cross the
/// batched-affine threshold, so the batch-inverse pass counter and the
/// wide-window occupancy shape land in the golden output too.
fn msm_probe(out: &mut String) {
    let n = 1usize << 12;
    let g = G1Affine::generator();
    let mut acc = G1Projective::from(g);
    let mut projective = Vec::with_capacity(n);
    for _ in 0..n {
        projective.push(acc);
        acc = acc.add_mixed(&g);
    }
    let points = batch_normalize(&projective);
    let mut rng = StdRng::seed_from_u64(PROVE_SEED ^ 0x5ca1a2);
    let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();

    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(true);
    let (point, _ops) = msm_with_ops_threads(&points, &scalars, 1);
    tele::set_enabled(false);
    let profile = tele::drain();
    drop(guard);
    std::hint::black_box(&point);

    let counter_rows: Vec<Vec<String>> = profile
        .counters
        .iter()
        .map(|(name, v)| vec![(*name).to_string(), v.to_string()])
        .collect();
    out.push_str(&fmt_table(
        "Obs — MSM internals probe (2^12 points, batched-affine path)",
        &["counter", "value"],
        &counter_rows,
    ));
    let hist_rows: Vec<Vec<String>> = profile
        .hists
        .iter()
        .map(|(name, h)| {
            vec![
                (*name).to_string(),
                h.count.to_string(),
                h.sum.to_string(),
                h.min.to_string(),
                h.max.to_string(),
                format!("{:.3}", h.mean()),
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&fmt_table(
        "Obs — MSM probe histograms",
        &["histogram", "count", "sum", "min", "max", "mean"],
        &hist_rows,
    ));
    out.push('\n');
}

// ---------------------------------------------------------------- fleet --

/// The `faults` resilient variant with the sim-time timeline recorder
/// switched on.
fn fleet_run() -> SimReport {
    let mut cost = CostModel::exemplar();
    let per = cost.proof_ms(Gate::Jellyfish, 18);
    let rate = 0.85 * CHIPS as f64 * 1000.0 / per;
    let workload = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
    let cfg = FleetConfig::new(CHIPS)
        .with_faults(FaultConfig::scripted(vec![ChipOutage::new(
            0,
            OUTAGE_AT_MS,
            OUTAGE_FOR_MS,
        )]))
        .with_retry(RetryPolicy::new(4))
        .with_brown_out(BrownOutConfig::new(1.0, 6))
        .with_telemetry();
    let mut source = PoissonSource::new(rate, HORIZON_MS, workload, SEED);
    simulate(&cfg, &mut source, &mut cost).expect("valid config")
}

/// Runs the telemetered fleet scenario, prints its (fully
/// deterministic) timeline facts, and returns the trace exports.
fn fleet_section(out: &mut String) -> (String, String) {
    let report = fleet_run();
    let timeline = report
        .timeline
        .as_ref()
        .expect("with_telemetry() must attach a timeline");
    let summary = &report.summary;

    // Bitwise reconciliation with the simulator's own accounting. The
    // engine asserts the same thing at drain; repeating it here makes
    // `repro obs` a self-checking artifact.
    assert_eq!(
        (timeline.provisioned_integral_ms() / 1000.0).to_bits(),
        summary.chip_seconds.to_bits(),
        "timeline provisioned integral diverged from SimReport chip-seconds"
    );
    for (chip, &util) in summary.per_chip_utilization.iter().enumerate() {
        let tl_util = timeline.busy_ms(chip) / timeline.makespan_ms();
        assert_eq!(
            tl_util.to_bits(),
            util.to_bits(),
            "timeline busy integral diverged from SimReport utilization on chip {chip}"
        );
    }

    let rows: Vec<Vec<String>> = (0..timeline.num_chips())
        .map(|chip| {
            let spans = timeline
                .chip_spans()
                .iter()
                .filter(|s| s.chip as usize == chip)
                .count();
            // `+ 0.0` normalizes the empty sum (`Sum<f64>` folds from
            // -0.0, the additive identity) so idle chips print "0.0".
            let failed_ms: f64 = timeline
                .chip_spans()
                .iter()
                .filter(|s| s.chip as usize == chip && s.phase == ChipPhase::Failed)
                .map(|s| s.end_ms - s.start_ms)
                .sum::<f64>()
                + 0.0;
            vec![
                chip.to_string(),
                format!("{:.3}", timeline.busy_ms(chip)),
                format!("{:.4}", summary.per_chip_utilization[chip]),
                format!("{:.1}", failed_ms),
                spans.to_string(),
            ]
        })
        .collect();
    out.push_str(&fmt_table(
        &format!(
            "Obs — fleet timeline ({CHIPS} chips, chip 0 down \
             {OUTAGE_AT_MS:.0}-{:.0} ms, sim time)",
            OUTAGE_AT_MS + OUTAGE_FOR_MS
        ),
        &["chip", "busy ms", "util", "failed ms", "spans"],
        &rows,
    ));

    let outcome_count = |o: tele::AdmissionOutcome| {
        timeline
            .admissions()
            .iter()
            .filter(|a| a.outcome == o)
            .count()
    };
    let _ = writeln!(
        out,
        "\nseries points: queue_depth={} retry_depth={} provisioned={}",
        timeline.queue_depth_series().len(),
        timeline.retry_depth_series().len(),
        timeline.provisioned_series().len(),
    );
    let _ = writeln!(
        out,
        "admissions: admitted={} rejected={} retry_admitted={} retry_rejected={}",
        outcome_count(tele::AdmissionOutcome::Admitted),
        outcome_count(tele::AdmissionOutcome::Rejected),
        outcome_count(tele::AdmissionOutcome::RetryAdmitted),
        outcome_count(tele::AdmissionOutcome::RetryRejected),
    );
    let _ = writeln!(
        out,
        "reconciliation: chip-seconds exact (bitwise), per-chip utilization exact (bitwise)"
    );

    // The exports are sim-time only, so their hashes are golden-safe.
    let jsonl = timeline.to_jsonl();
    let chrome = timeline.to_chrome_trace();
    let _ = writeln!(
        out,
        "fleet jsonl: lines={} fnv1a={:016x}",
        jsonl.lines().count(),
        fnv1a(&jsonl)
    );
    let _ = writeln!(
        out,
        "fleet chrome trace: lines={} fnv1a={:016x}",
        chrome.lines().count(),
        fnv1a(&chrome)
    );
    let _ = writeln!(out, "Trace hash: {:016x}", report.trace_hash);
    (chrome, jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_experiment_is_deterministic_and_reconciled() {
        // Two full runs must agree byte for byte: the prover section
        // prints no wall-clock quantity and the fleet section is pure
        // sim time. The reconciliation asserts inside obs() are the
        // real payload of this test.
        let a = obs();
        let b = obs();
        assert_eq!(a, b, "`repro obs` diverged between two runs");
        for needle in [
            "prover span counts",
            "prove/witness_commit",
            "sumcheck/round",
            "msm/calls",
            "msm/bucket_occupancy",
            "msm/batch_inverse_passes",
            "MSM internals probe",
            "phase coverage: OK",
            "timer reconciliation: OK",
            "fleet timeline",
            "reconciliation: chip-seconds exact",
            "fleet jsonl:",
            "Trace hash:",
        ] {
            assert!(a.contains(needle), "missing `{needle}` in obs output");
        }
    }

    #[test]
    fn out_dir_exports_are_loadable_trace_files() {
        let dir = std::env::temp_dir().join("zkphire_obs_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let args = vec!["--out-dir".to_string(), dir.display().to_string()];
        let out = obs_with_args(&args);
        assert!(out.contains("wrote "), "no export confirmation:\n{out}");
        for name in [
            "OBS_prover_trace.json",
            "OBS_prover.jsonl",
            "OBS_fleet_trace.json",
            "OBS_fleet.jsonl",
        ] {
            let body = std::fs::read_to_string(dir.join(name)).expect(name);
            assert!(!body.is_empty(), "{name} is empty");
            if name.ends_with("_trace.json") {
                assert!(
                    body.starts_with("{\"traceEvents\":["),
                    "{name} is not a Chrome trace"
                );
            }
        }
    }
}
