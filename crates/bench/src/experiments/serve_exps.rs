//! The `serve` experiment: validate the fleet DES against the live
//! proving service on one trace, and attribute the gap between them.
//!
//! The discrete-event simulator claims to predict fleet behavior from
//! per-class proof latency alone. This experiment tests that claim
//! end-to-end on the machine it runs on:
//!
//! 1. start a [`zkphire_serve::ProvingService`] over the scenario's
//!    request classes — startup calibration measures each class's real
//!    single-proof latency;
//! 2. pin those measurements into a
//!    [`zkphire_core::costdb::CostModel`] via `pin_proof_ms`, so the
//!    DES prices work in this machine's milliseconds instead of the
//!    accelerator's;
//! 3. generate one multi-tenant Poisson trace at a fixed utilization
//!    target and run it through **both** sides: `simulate` (sim time)
//!    and [`zkphire_serve::replay`] (wall time), with identical policy,
//!    pool size, batch cap, and deadline knobs — the live side with the
//!    wall-timeline recorder on and terminal outcomes streaming;
//! 4. rebuild the [`WallTimeline`] from the drained telemetry profile
//!    and **assert reconciliation** ([`reconcile_wall`]): outcome
//!    counts equal, worker busy-span integrals bitwise equal to the
//!    summary's utilization numerators;
//! 5. report per-tenant p50/p95/p99 side by side, decompose the
//!    sim-vs-wall p99 gap into its measured contributors (dispatch
//!    wakeup latency, loadgen arrival error), and write
//!    `BENCH_serve.json` (schema v2).
//!
//! Outcome conservation (every traced arrival completes on both sides)
//! is a hard assertion — a run that drops work is a bug, not a data
//! point. The latency *ratios* are informational: sim time is an M/G/k
//! idealization (zero dispatch overhead, perfectly parallel workers),
//! so wall quantiles run a modest factor above it; what should hold is
//! the *shape* — tenants ordered the same, tails inflating together —
//! and the gap histograms name where the remaining wall-only time goes.
//! `--smoke` shrinks the trace so CI can gate the harness, the JSON
//! schema, and the trace exports in seconds. `--out-dir <dir>` writes
//! the four trace artifacts (wall Chrome trace + JSONL, streamed
//! outcomes JSONL, sim Chrome trace) for side-by-side Perfetto loading.

use std::fmt::Write as _;

use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_fleet::{
    simulate, FleetConfig, PolicyKind, RequestClass, SplitMix64, TenantSummary, TraceSource,
};
use zkphire_serve::{reconcile_wall, replay, ProvingService, ServeConfig, ServeOpts};
use zkphire_telemetry as tele;
use zkphire_telemetry::{Histogram, WallTimeline};

use super::obs_exps::tele_guard;
use crate::fmt_table;

/// Scenario constants: two equal-weight tenants, weighted-fair
/// batching, arrivals at ~70% of the pool's calibrated capacity.
const TENANT_WEIGHTS: [(u32, f64); 2] = [(0, 1.0), (1, 1.0)];
const TARGET_UTILIZATION: f64 = 0.7;
const SEED: u64 = 0x5e27e;

/// Per-tenant quantiles from one side of the comparison.
struct Side {
    completed: u64,
    p50: f64,
    p95: f64,
    p99: f64,
}

fn side(t: &TenantSummary) -> Side {
    Side {
        completed: t.completed,
        p50: t.p50_latency_ms,
        p95: t.p95_latency_ms,
        p99: t.p99_latency_ms,
    }
}

/// `repro serve` with default flags.
pub fn serve() -> String {
    serve_with_args(&[])
}

/// `repro serve [--smoke] [--out <path>] [--out-dir <dir>]`.
pub fn serve_with_args(args: &[String]) -> String {
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_serve.json", String::as_str);
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let classes: Vec<RequestClass> = if smoke {
        vec![RequestClass::new(Gate::Vanilla, 4)]
    } else {
        vec![
            RequestClass::new(Gate::Vanilla, 6),
            RequestClass::new(Gate::Jellyfish, 6),
        ]
    };
    let n_requests: usize = if smoke { 24 } else { 240 };
    // Workers track available_parallelism (via the ServeOpts default)
    // on both paths: the DES models truly parallel chips, so deploying
    // more workers than cores would make the live side look uniformly
    // worse than the prediction for reasons that are about the host,
    // not the service.
    let opts = if smoke {
        ServeOpts::default()
            .with_prover_threads(1)
            .with_max_batch(4)
    } else {
        match ServeOpts::from_env() {
            Ok(o) => o,
            Err(e) => return format!("serve: {e}\n"),
        }
    };
    let workers = opts.workers;
    let max_batch = opts.max_batch;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: live service vs DES on one trace \
         (workers={workers} prover_threads={} max_batch={max_batch} smoke={smoke})\n",
        opts.prover_threads
    );

    // The wall timeline records through the process-global profiler;
    // hold the session guard so concurrently running experiments (the
    // golden harness is threaded) cannot interleave.
    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(true);

    // Terminal outcomes stream out as they resolve; the collector
    // thread turns them into JSONL lines live, the way a tailing
    // operator would consume them.
    let (outcome_tx, outcome_rx) = std::sync::mpsc::channel();
    let collector = std::thread::spawn(move || {
        let mut lines = String::new();
        for rec in outcome_rx {
            let r: zkphire_fleet::OutcomeRecord = rec;
            lines.push_str(&r.to_jsonl_line());
            lines.push('\n');
        }
        lines
    });

    // 1. Start the live service; its startup calibration measures each
    // class's real single-proof latency on this machine.
    let serve_cfg = ServeConfig::new(classes.clone())
        .with_policy(PolicyKind::WeightedFair)
        .with_tenant_weights(TENANT_WEIGHTS.to_vec())
        .with_seed(SEED)
        .with_opts(opts)
        .with_outcome_stream(outcome_tx);
    let service = match ProvingService::start(serve_cfg) {
        Ok(s) => s,
        Err(e) => return format!("serve: service failed to start: {e}\n"),
    };
    let calibration = service.calibration();
    let mean_ms: f64 = calibration.iter().map(|(_, ms)| ms).sum::<f64>() / calibration.len() as f64;

    // 2. Pin the measurements into the cost model: the DES now prices a
    // proof at what this machine's prover just clocked.
    let mut cost = CostModel::exemplar();
    for &(class, ms) in &calibration {
        cost.pin_proof_ms(class.gate, class.mu, ms);
    }

    // 3. One shared trace: Poisson arrivals at TARGET_UTILIZATION of
    // the pool's calibrated capacity, classes and tenants drawn
    // uniformly from a seeded stream.
    let mean_gap_ms = mean_ms / (workers as f64 * TARGET_UTILIZATION);
    let mut rng = SplitMix64::new(SEED);
    let mut t = 0.0;
    let mut trace = Vec::with_capacity(n_requests);
    for _ in 0..n_requests {
        t += -mean_gap_ms * (1.0 - rng.next_f64()).ln();
        let class = classes[(rng.next_u64() % classes.len() as u64) as usize];
        let tenant = (rng.next_u64() % TENANT_WEIGHTS.len() as u64) as u32;
        trace.push((t, class, tenant));
    }
    let horizon_ms = t + 1.0;

    // DES side, in sim time, with its own timeline recorder on so the
    // two traces can sit next to each other in Perfetto.
    let fleet_cfg = FleetConfig::new(workers)
        .with_policy(PolicyKind::WeightedFair)
        .with_max_batch(max_batch)
        .with_tenant_weights(TENANT_WEIGHTS.to_vec())
        .with_telemetry();
    let mut fleet_cfg = fleet_cfg;
    fleet_cfg.batch_overhead_ms = 0.0; // the live pool has no program swap
    let sim_report = match simulate(
        &fleet_cfg,
        &mut TraceSource::with_tenants(trace.clone()),
        &mut cost,
    ) {
        Ok(r) => r,
        Err(e) => return format!("serve: DES side failed: {e}\n"),
    };

    // Live side, in wall time, same trace.
    let gen = match replay(
        &service,
        &mut TraceSource::with_tenants(trace),
        horizon_ms,
        1.0,
    ) {
        Ok(g) => g,
        Err(e) => return format!("serve: replay failed: {e}\n"),
    };
    let wall_report = match service.shutdown() {
        Ok(r) => r,
        Err(e) => return format!("serve: shutdown failed: {e}\n"),
    };
    // Shutdown dropped the last outcome sender (it lived in the service
    // config), so the collector's channel closed and it can be joined.
    let outcomes_jsonl = collector
        .join()
        .unwrap_or_else(|_| "outcome collector panicked\n".to_string());

    tele::set_enabled(false);
    let profile = tele::drain();
    drop(guard);
    let wall_tl = WallTimeline::from_events(&profile.wall_events);

    // 4. Conservation is a hard gate: with no caps configured, every
    // traced arrival must complete on both sides.
    assert_eq!(
        gen.submitted, n_requests as u64,
        "loadgen replayed the trace"
    );
    assert_eq!(gen.rejected, 0, "no admission caps in this scenario");
    assert_eq!(
        sim_report.summary.completed, n_requests as u64,
        "DES completes the whole trace"
    );
    assert_eq!(
        wall_report.summary.completed, n_requests as u64,
        "live service completes the whole trace"
    );
    // And so is wall-timeline reconciliation: the timeline rebuilt from
    // recorded events and the summary reduced from drain records are
    // independent paths over the same run — they must agree exactly.
    assert!(
        !wall_tl.is_empty(),
        "recording was on; the timeline cannot be empty"
    );
    if let Err(e) = reconcile_wall(&wall_tl, &wall_report.summary) {
        return format!("serve: wall timeline failed reconciliation: {e}\n");
    }
    let streamed = outcomes_jsonl.lines().count() as u64;
    let terminal = wall_report.summary.completed
        + wall_report.summary.rejected
        + wall_report.summary.shed
        + wall_report.summary.lost;
    assert_eq!(
        streamed, terminal,
        "one streamed outcome record per terminal outcome"
    );

    let _ = writeln!(out, "calibration (real prover, single proof):");
    for &(class, ms) in &calibration {
        let modeled = CostModel::exemplar().proof_ms(class.gate, class.mu);
        let _ = writeln!(
            out,
            "  class {class}: measured {ms:.3} ms (accelerator model: {modeled:.3} ms)"
        );
    }
    let _ = writeln!(
        out,
        "trace: {n_requests} requests over {horizon_ms:.0} ms (target utilization {TARGET_UTILIZATION})\n"
    );

    let mut rows = Vec::new();
    for sim_t in &sim_report.summary.per_tenant {
        let Some(wall_t) = wall_report
            .summary
            .per_tenant
            .iter()
            .find(|w| w.tenant == sim_t.tenant)
        else {
            continue;
        };
        let (s, w) = (side(sim_t), side(wall_t));
        rows.push(vec![
            sim_t.tenant.to_string(),
            s.completed.to_string(),
            format!("{:.2}", s.p50),
            format!("{:.2}", w.p50),
            format!("{:.2}", s.p95),
            format!("{:.2}", w.p95),
            format!("{:.2}", s.p99),
            format!("{:.2}", w.p99),
            format!("{:.2}x", w.p99 / s.p99.max(f64::MIN_POSITIVE)),
        ]);
    }
    out.push_str(&fmt_table(
        "per-tenant latency, DES prediction vs live service (ms)",
        &[
            "tenant",
            "completed",
            "sim p50",
            "wall p50",
            "sim p95",
            "wall p95",
            "sim p99",
            "wall p99",
            "p99 ratio",
        ],
        &rows,
    ));
    let sim_p99 = sim_report.summary.p99_latency_ms;
    let wall_p99 = wall_report.summary.p99_latency_ms;
    let _ = writeln!(
        out,
        "\noverall: sim p99 {:.2} ms, wall p99 {:.2} ms; sim makespan {:.0} ms, wall makespan {:.0} ms",
        sim_p99,
        wall_p99,
        sim_report.summary.makespan_ms,
        wall_report.summary.makespan_ms,
    );

    // 5. Gap attribution: the two wall-only delays the DES does not
    // model, measured instead of hand-waved.
    let hist_row = |name: &str, h: &Histogram| {
        vec![
            name.to_string(),
            h.count.to_string(),
            (if h.count == 0 { 0 } else { h.min }).to_string(),
            format!("{:.1}", h.mean()),
            h.max.to_string(),
        ]
    };
    out.push('\n');
    out.push_str(&fmt_table(
        &format!(
            "sim-vs-wall gap attribution (overall p99 ratio {:.2}x)",
            wall_p99 / sim_p99.max(f64::MIN_POSITIVE)
        ),
        &["contributor (µs)", "count", "min", "mean", "max"],
        &[
            hist_row("dispatch wakeup", &wall_report.dispatch_wakeup_us),
            hist_row("loadgen arrival error", &gen.arrival_error_us),
        ],
    ));
    let _ = writeln!(
        out,
        "\nwall timeline: {} events; outcome counts and worker busy integrals \
         reconcile with ServeSummary (bitwise); {streamed} outcome records streamed",
        wall_tl.events().len()
    );

    if let Some(dir) = out_dir {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            let _ = writeln!(out, "FAILED to create {}: {e}", dir.display());
        }
        let sim_chrome = sim_report
            .timeline
            .as_ref()
            .map(|tl| tl.to_chrome_trace())
            .unwrap_or_default();
        let files = [
            ("SERVE_wall_trace.json", wall_tl.to_chrome_trace()),
            ("SERVE_wall.jsonl", wall_tl.to_jsonl()),
            ("SERVE_outcomes.jsonl", outcomes_jsonl),
            ("SERVE_sim_trace.json", sim_chrome),
        ];
        for (name, body) in files {
            match std::fs::write(dir.join(name), body) {
                Ok(()) => {
                    let _ = writeln!(out, "wrote {}", dir.join(name).display());
                }
                Err(e) => {
                    let _ = writeln!(out, "FAILED to write {}: {e}", dir.join(name).display());
                }
            }
        }
    }

    match std::fs::write(
        out_path,
        render_json(
            smoke,
            workers,
            &calibration,
            &sim_report.summary.per_tenant,
            &wall_report.summary.per_tenant,
            &GapFacts {
                sim_p99_ms: sim_p99,
                wall_p99_ms: wall_p99,
                dispatch_wakeup_us: &wall_report.dispatch_wakeup_us,
                arrival_error_us: &gen.arrival_error_us,
                wall_events: wall_tl.events().len() as u64,
                wall_epoch_ns: wall_tl.epoch_ns(),
            },
        ),
    ) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {out_path}");
        }
        Err(e) => {
            let _ = writeln!(out, "FAILED to write {out_path}: {e}");
        }
    }
    out
}

/// The measured gap decomposition that lands in `BENCH_serve.json` v2.
struct GapFacts<'a> {
    sim_p99_ms: f64,
    wall_p99_ms: f64,
    dispatch_wakeup_us: &'a Histogram,
    arrival_error_us: &'a Histogram,
    wall_events: u64,
    wall_epoch_ns: u64,
}

fn render_json(
    smoke: bool,
    workers: usize,
    calibration: &[(RequestClass, f64)],
    sim: &[TenantSummary],
    wall: &[TenantSummary],
    gap: &GapFacts<'_>,
) -> String {
    fn tenants_json(s: &mut String, key: &str, tenants: &[TenantSummary]) {
        let _ = writeln!(s, "  \"{key}\": [");
        for (i, t) in tenants.iter().enumerate() {
            let comma = if i + 1 == tenants.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"tenant\": {}, \"completed\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}{comma}",
                t.tenant, t.completed, t.p50_latency_ms, t.p95_latency_ms, t.p99_latency_ms
            );
        }
        let _ = writeln!(s, "  ],");
    }

    fn hist_json(h: &Histogram) -> String {
        format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.4}}}",
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            h.mean()
        )
    }

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"zkphire-bench-serve/v2\",\n");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    let _ = writeln!(
        s,
        "  \"meta\": {{\"wall_events\": {}, \"wall_epoch_ns\": {}}},",
        gap.wall_events, gap.wall_epoch_ns
    );
    s.push_str("  \"calibration\": [\n");
    for (i, (class, ms)) in calibration.iter().enumerate() {
        let comma = if i + 1 == calibration.len() { "" } else { "," };
        let gate = match class.gate {
            Gate::Vanilla => "vanilla",
            Gate::Jellyfish => "jellyfish",
        };
        let _ = writeln!(
            s,
            "    {{\"gate\": \"{gate}\", \"mu\": {}, \"measured_ms\": {ms:.4}}}{comma}",
            class.mu
        );
    }
    s.push_str("  ],\n");
    tenants_json(&mut s, "sim", sim);
    tenants_json(&mut s, "wall", wall);
    let _ = writeln!(s, "  \"gap\": {{");
    let _ = writeln!(s, "    \"sim_p99_ms\": {:.4},", gap.sim_p99_ms);
    let _ = writeln!(s, "    \"wall_p99_ms\": {:.4},", gap.wall_p99_ms);
    let _ = writeln!(
        s,
        "    \"p99_ratio\": {:.4},",
        gap.wall_p99_ms / gap.sim_p99_ms.max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(
        s,
        "    \"dispatch_wakeup_us\": {},",
        hist_json(gap.dispatch_wakeup_us)
    );
    let _ = writeln!(
        s,
        "    \"arrival_error_us\": {}",
        hist_json(gap.arrival_error_us)
    );
    s.push_str("  },\n");
    s.push_str("  \"unit\": \"ms\"\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reconciles_and_writes_v2_json_with_artifacts() {
        let dir = std::env::temp_dir().join("zkphire_serve_exp_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("BENCH_serve.json");
        let report = serve_with_args(&[
            "--smoke".to_string(),
            "--out".to_string(),
            out.display().to_string(),
            "--out-dir".to_string(),
            dir.display().to_string(),
        ]);
        assert!(
            report.contains("per-tenant latency"),
            "table rendered:\n{report}"
        );
        assert!(
            report.contains("gap attribution"),
            "gap table rendered:\n{report}"
        );
        assert!(
            report.contains("reconcile with ServeSummary"),
            "reconciliation asserted at drain:\n{report}"
        );
        assert!(report.contains("wrote "), "json written:\n{report}");
        let json = std::fs::read_to_string(&out).expect("json exists");
        assert!(json.contains("\"schema\": \"zkphire-bench-serve/v2\""));
        assert!(json.contains("\"sim\""));
        assert!(json.contains("\"wall\""));
        assert!(json.contains("\"gap\""));
        assert!(json.contains("\"p99_ratio\""));
        assert!(json.contains("\"dispatch_wakeup_us\""));
        assert!(json.contains("\"arrival_error_us\""));
        let wall_trace =
            std::fs::read_to_string(dir.join("SERVE_wall_trace.json")).expect("wall trace");
        assert!(wall_trace.starts_with("{\"traceEvents\":["));
        assert!(wall_trace.contains("\"ph\":\"b\""), "async lifecycle lanes");
        let outcomes = std::fs::read_to_string(dir.join("SERVE_outcomes.jsonl")).expect("outcomes");
        assert_eq!(
            outcomes.lines().count(),
            24,
            "one line per terminal outcome"
        );
        assert!(outcomes.contains("\"outcome\":\"completed\""));
        let wall_jsonl = std::fs::read_to_string(dir.join("SERVE_wall.jsonl")).expect("jsonl");
        assert!(wall_jsonl.starts_with("{\"kind\":\"meta\""));
    }
}
