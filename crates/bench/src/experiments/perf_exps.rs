//! The `perf` experiment: wall-clock benchmarks of the software prover's
//! hot paths, emitted both as a human-readable table and as the
//! machine-readable `BENCH_perf.json` trajectory future PRs regress
//! against.
//!
//! Four sections:
//!
//! 1. **field** — Montgomery mul / square / single inversion /
//!    batch inversion throughput;
//! 2. **msm** — the signed-digit batched-affine MSM against the retained
//!    unsigned-window baseline ([`zkphire_curve::msm_unsigned`]) at
//!    2^12–2^18 points;
//! 3. **sumcheck** — parallel-vs-sequential full proves at 2^18 evals and
//!    a degree sweep (3–32) over single-term product composites;
//! 4. **e2e** — a complete HyperPlonk prove (+ verification).
//!
//! `--smoke` shrinks every size so CI can validate the harness and the
//! JSON schema in seconds. Timings are inherently machine-dependent and
//! are *not* covered by the golden determinism tests; the equality
//! checks inside this experiment (signed MSM ≡ unsigned MSM, parallel
//! transcript ≡ sequential transcript, op counts thread-invariant) are
//! hard assertions, so a `repro perf` run doubles as a correctness gate.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_curve::{
    batch_normalize, msm_unsigned_with_ops, msm_with_ops, msm_with_ops_threads, G1Affine,
    G1Projective,
};
use zkphire_field::{batch_inverse, Fr};
use zkphire_hyperplonk::{prove_with_config, setup, verify, Circuit, GateSystem, ProverConfig};
use zkphire_poly::{CompositePoly, Mle, MleId, Term};
use zkphire_sumcheck::{count_ops, prove_with_threads};
use zkphire_telemetry as tele;
use zkphire_transcript::Transcript;

use super::obs_exps::tele_guard;
use crate::fmt_table;

/// One benchmark measurement, serialized verbatim into `BENCH_perf.json`.
struct PerfRecord {
    /// Hierarchical benchmark name, e.g. `msm/signed`.
    name: String,
    /// Problem size (elements, points, or hypercube evals).
    n: u64,
    /// Wall-clock nanoseconds for the measured call.
    wall_ns: u64,
    /// Abstract operation count (field muls or PADDs; 0 when the kernel
    /// has no single dominant op).
    ops: u64,
    /// Worker threads the measured call was allowed to use.
    threads: u64,
}

fn time_ns<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run metadata embedded in `BENCH_perf.json` so the checked-in 1-core
/// trajectory is distinguishable from multi-core regenerations.
struct RunMeta {
    /// `available_parallelism` of the measuring host.
    host_cores: u64,
    /// Worker threads the threaded benches were allowed to use.
    threads: u64,
    /// Short git revision of the measured tree (`unknown` outside a
    /// git checkout).
    git_rev: String,
}

impl RunMeta {
    fn capture() -> Self {
        Self {
            host_cores: available_threads() as u64,
            threads: available_threads() as u64,
            git_rev: git_rev(),
        }
    }
}

/// Short git revision, sanitized to hex so the hand-rolled JSON needs
/// no escaping; `unknown` when git is unavailable.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| "unknown".into())
}

/// The `perf` experiment with default (full) sizes.
pub fn perf() -> String {
    perf_with_args(&[])
}

/// The `perf` experiment; recognizes `--smoke` for CI-sized inputs and
/// `--out <path>` to redirect the JSON artifact.
pub fn perf_with_args(args: &[String]) -> String {
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_perf.json", String::as_str);

    let mut records: Vec<PerfRecord> = Vec::new();
    let mut out = String::new();
    let meta = RunMeta::capture();
    let _ = writeln!(
        out,
        "run meta: host_cores={} threads={} git_rev={}\n",
        meta.host_cores, meta.threads, meta.git_rev
    );

    field_section(smoke, &mut records, &mut out);
    msm_section(smoke, &mut records, &mut out);
    sumcheck_section(smoke, &mut records, &mut out);
    e2e_section(smoke, &mut records, &mut out);

    match std::fs::write(out_path, render_json(&records, smoke, &meta)) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {} records to {out_path}", records.len());
        }
        Err(e) => {
            let _ = writeln!(out, "FAILED to write {out_path}: {e}");
        }
    }
    out
}

// ---------------------------------------------------------------- field --

fn field_section(smoke: bool, records: &mut Vec<PerfRecord>, out: &mut String) {
    let n: u64 = if smoke { 1 << 14 } else { 1 << 20 };
    let inv_n: u64 = if smoke { 1 << 6 } else { 1 << 9 };
    let batch_n: usize = if smoke { 1 << 12 } else { 1 << 16 };
    let mut rng = StdRng::seed_from_u64(0xf1e1d);

    // Throughput-style: independent elements in a buffer, the shape of
    // the real hot paths (extension lanes, point arithmetic), where
    // out-of-order execution overlaps the Montgomery kernels.
    let buf_len = 1usize << 10;
    let rounds = (n as usize) / buf_len;
    let mut buf: Vec<Fr> = (0..buf_len).map(|_| Fr::random(&mut rng)).collect();
    let y = Fr::random(&mut rng);
    let (_, mul_ns) = time_ns(|| {
        for _ in 0..rounds {
            for v in buf.iter_mut() {
                *v *= y;
            }
        }
        std::hint::black_box(buf.first().copied())
    });
    records.push(PerfRecord {
        name: "field/mul".into(),
        n,
        wall_ns: mul_ns,
        ops: n,
        threads: 1,
    });

    let mut buf: Vec<Fr> = (0..buf_len).map(|_| Fr::random(&mut rng)).collect();
    let (_, sqr_ns) = time_ns(|| {
        for _ in 0..rounds {
            for v in buf.iter_mut() {
                *v = v.square();
            }
        }
        std::hint::black_box(buf.first().copied())
    });
    records.push(PerfRecord {
        name: "field/square".into(),
        n,
        wall_ns: sqr_ns,
        ops: n,
        threads: 1,
    });

    let mut v = Fr::random(&mut rng);
    let (_, inv_ns) = time_ns(|| {
        for _ in 0..inv_n {
            v = v.inverse().expect("non-zero chain");
        }
        std::hint::black_box(v)
    });
    records.push(PerfRecord {
        name: "field/inverse".into(),
        n: inv_n,
        wall_ns: inv_ns,
        ops: inv_n,
        threads: 1,
    });

    let mut batch: Vec<Fr> = (0..batch_n).map(|_| Fr::random(&mut rng)).collect();
    let (_, batch_ns) = time_ns(|| {
        batch_inverse(&mut batch);
        std::hint::black_box(batch.last().copied())
    });
    records.push(PerfRecord {
        name: "field/batch_inverse".into(),
        n: batch_n as u64,
        wall_ns: batch_ns,
        ops: batch_n as u64,
        threads: 1,
    });

    let rows = vec![
        vec![
            "mul".into(),
            n.to_string(),
            format!("{:.1}", mul_ns as f64 / n as f64),
        ],
        vec![
            "square".into(),
            n.to_string(),
            format!("{:.1}", sqr_ns as f64 / n as f64),
        ],
        vec![
            "inverse".into(),
            inv_n.to_string(),
            format!("{:.1}", inv_ns as f64 / inv_n as f64),
        ],
        vec![
            "batch_inverse".into(),
            batch_n.to_string(),
            format!("{:.1}", batch_ns as f64 / batch_n as f64),
        ],
    ];
    out.push_str(&fmt_table(
        "Perf — Fr arithmetic (Montgomery form)",
        &["op", "count", "ns/op"],
        &rows,
    ));
    let _ = writeln!(
        out,
        "square/mul ratio: {:.2}\n",
        sqr_ns as f64 / mul_ns as f64
    );
}

// ------------------------------------------------------------------ msm --

/// Materializes `n` distinct affine points (`G, 2G, 3G, ...`) with one
/// batched normalization — cheap enough for 2^18-point benches.
fn chain_points(n: usize) -> Vec<G1Affine> {
    let g = G1Affine::generator();
    let mut acc = G1Projective::from(g);
    let mut projective = Vec::with_capacity(n);
    for _ in 0..n {
        projective.push(acc);
        acc = acc.add_mixed(&g);
    }
    batch_normalize(&projective)
}

fn msm_section(smoke: bool, records: &mut Vec<PerfRecord>, out: &mut String) {
    let log_sizes: &[u32] = if smoke { &[8, 10] } else { &[12, 14, 16, 18] };
    let threads = available_threads() as u64;
    let max_n = 1usize << log_sizes.last().copied().unwrap_or(8);
    let points = chain_points(max_n);
    let mut rng = StdRng::seed_from_u64(0x5ca1a2);
    let scalars: Vec<Fr> = (0..max_n).map(|_| Fr::random(&mut rng)).collect();

    let mut rows = Vec::new();
    for (i, &log_n) in log_sizes.iter().enumerate() {
        let n = 1usize << log_n;
        let ((signed, signed_ops), signed_ns) =
            time_ns(|| msm_with_ops(&points[..n], &scalars[..n]));
        let ((unsigned, unsigned_ops), unsigned_ns) =
            time_ns(|| msm_unsigned_with_ops(&points[..n], &scalars[..n]));
        assert_eq!(
            signed, unsigned,
            "signed-digit MSM diverged from the unsigned baseline at n=2^{log_n}"
        );
        if i == 0 {
            // Determinism gate (smallest size keeps the extra run cheap):
            // a single-threaded signed run must reproduce both the point
            // and the MsmOps counts bit-for-bit.
            let (seq, seq_ops) = msm_with_ops_threads(&points[..n], &scalars[..n], 1);
            assert_eq!(seq, signed, "thread count changed the MSM result");
            assert_eq!(seq_ops, signed_ops, "thread count changed MsmOps");
        }
        records.push(PerfRecord {
            name: "msm/signed".into(),
            n: n as u64,
            wall_ns: signed_ns,
            ops: signed_ops.total_padds(),
            threads,
        });
        records.push(PerfRecord {
            name: "msm/unsigned".into(),
            n: n as u64,
            wall_ns: unsigned_ns,
            ops: unsigned_ops.total_padds(),
            threads,
        });
        rows.push(vec![
            format!("2^{log_n}"),
            format!("{:.2}", signed_ns as f64 / 1e6),
            format!("{:.2}", unsigned_ns as f64 / 1e6),
            format!("{:.2}x", unsigned_ns as f64 / signed_ns as f64),
            signed_ops.total_padds().to_string(),
            unsigned_ops.total_padds().to_string(),
        ]);
    }
    out.push_str(&fmt_table(
        "Perf — MSM: signed-digit batched-affine vs unsigned-window baseline",
        &[
            "points",
            "signed ms",
            "unsigned ms",
            "speedup",
            "signed padds",
            "unsigned padds",
        ],
        &rows,
    ));
    out.push('\n');
}

// ------------------------------------------------------------- sumcheck --

/// A degree-3 composite with a shared factor: `a*b*c + c*d`.
fn headline_poly() -> CompositePoly {
    CompositePoly::new(vec![
        Term {
            coeff: Fr::ONE,
            scalars: vec![],
            factors: vec![MleId(0), MleId(1), MleId(2)],
        },
        Term {
            coeff: Fr::ONE,
            scalars: vec![],
            factors: vec![MleId(2), MleId(3)],
        },
    ])
}

/// A single product term over `degree` distinct MLEs — the high-degree
/// custom-gate shape of the paper's Table I rows.
fn product_poly(degree: usize) -> CompositePoly {
    CompositePoly::new(vec![Term {
        coeff: Fr::ONE,
        scalars: vec![],
        factors: (0..degree).map(MleId).collect(),
    }])
}

fn random_mles(count: usize, num_vars: usize, seed: u64) -> Vec<Mle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Mle::from_fn(num_vars, |_| Fr::random(&mut rng)))
        .collect()
}

fn sumcheck_section(smoke: bool, records: &mut Vec<PerfRecord>, out: &mut String) {
    // Headline: parallel vs sequential full prove on a degree-3 composite.
    // Smoke still uses 2^11 evals: 1024 pairs is the round-eval parallel
    // threshold, so the chunked path (and its transcript-equality assert)
    // really executes in CI rather than falling back to sequential.
    let num_vars = if smoke { 11 } else { 18 };
    let n = 1u64 << num_vars;
    let poly = headline_poly();
    let total_muls = count_ops(&poly, num_vars).total_muls();
    let mles = random_mles(4, num_vars, 0x5c);

    let thread_counts: Vec<usize> = {
        let avail = available_threads();
        let mut t = vec![1usize, 4];
        if avail > 4 {
            t.push(avail);
        }
        t
    };
    let mut reference: Option<zkphire_sumcheck::ProverOutput> = None;
    let mut seq_ns = 0u64;
    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let mles = mles.clone();
        let (prover_out, ns) = time_ns(|| {
            let mut t = Transcript::new(b"perf/sumcheck");
            prove_with_threads(&poly, mles, &mut t, threads)
        });
        match &reference {
            None => {
                seq_ns = ns;
                reference = Some(prover_out);
            }
            Some(r) => {
                assert_eq!(
                    prover_out.proof, r.proof,
                    "parallel sumcheck transcript diverged at threads={threads}"
                );
                assert_eq!(prover_out.challenges, r.challenges);
            }
        }
        records.push(PerfRecord {
            name: format!("sumcheck/threads{threads}"),
            n,
            wall_ns: ns,
            ops: total_muls,
            threads: threads as u64,
        });
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", ns as f64 / 1e6),
            format!("{:.2}x", seq_ns as f64 / ns as f64),
        ]);
    }
    out.push_str(&fmt_table(
        &format!("Perf — SumCheck prove, degree 3, 2^{num_vars} evals"),
        &["threads", "ms", "speedup"],
        &rows,
    ));
    out.push('\n');

    // Degree sweep: single-term products, the paper's high-degree regime.
    let sweep_vars = if smoke { 8 } else { 13 };
    let threads = available_threads();
    let mut rows = Vec::new();
    for degree in [3usize, 8, 16, 32] {
        let poly = product_poly(degree);
        let muls = count_ops(&poly, sweep_vars).total_muls();
        let mles = random_mles(degree, sweep_vars, degree as u64);
        let (_, ns) = time_ns(|| {
            let mut t = Transcript::new(b"perf/degree");
            prove_with_threads(&poly, mles, &mut t, threads)
        });
        records.push(PerfRecord {
            name: format!("sumcheck/degree{degree}"),
            n: 1u64 << sweep_vars,
            wall_ns: ns,
            ops: muls,
            threads: threads as u64,
        });
        rows.push(vec![
            degree.to_string(),
            format!("{:.2}", ns as f64 / 1e6),
            muls.to_string(),
        ]);
    }
    out.push_str(&fmt_table(
        &format!("Perf — SumCheck degree sweep, 2^{sweep_vars} evals"),
        &["degree", "ms", "field muls"],
        &rows,
    ));
    out.push('\n');
}

// ------------------------------------------------------------------ e2e --

fn e2e_section(smoke: bool, records: &mut Vec<PerfRecord>, out: &mut String) {
    let mu = if smoke { 6 } else { 12 };
    let threads = available_threads();
    let mut rng = StdRng::seed_from_u64(0xe2e);
    let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, mu, 0.5, &mut rng);
    let (pk, vk) = setup(circuit, &mut rng);
    let prove_once = || {
        prove_with_config(
            &pk,
            &witness,
            &mut Transcript::new(b"perf/e2e"),
            ProverConfig { threads },
        )
    };

    // Telemetry overhead: best-of-N with recording runtime-off vs -on.
    // The hooks are compiled in (the bench crate enables `record`), so
    // "off" measures the runtime gate — one relaxed load per hook —
    // and "on" the full recording path. Best-of-N filters scheduler
    // noise, which at smoke sizes dwarfs the overhead being measured.
    let reps = 3;
    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(false);
    let mut off_ns = u64::MAX;
    for _ in 0..reps {
        let (p, ns) = time_ns(prove_once);
        std::hint::black_box(&p);
        off_ns = off_ns.min(ns);
    }
    tele::set_enabled(true);
    let mut on_ns = u64::MAX;
    for _ in 0..reps {
        let (p, ns) = time_ns(prove_once);
        std::hint::black_box(&p);
        on_ns = on_ns.min(ns);
    }
    tele::set_enabled(false);
    tele::drain(); // discard the overhead reps' spans

    // One clean instrumented run supplies the recorded e2e wall time,
    // the per-phase breakdown, and the allocation counters.
    tele::reset();
    tele::reset_alloc_counts();
    tele::set_enabled(true);
    let (proof, prove_ns) = time_ns(prove_once);
    tele::set_enabled(false);
    let (alloc_calls, alloc_bytes) = tele::alloc_counts();
    let profile = tele::drain();
    drop(guard);
    verify(&vk, &proof, &mut Transcript::new(b"perf/e2e")).expect("benchmark proof must verify");

    records.push(PerfRecord {
        name: "hyperplonk/prove".into(),
        n: 1u64 << mu,
        wall_ns: prove_ns,
        ops: 0,
        threads: threads as u64,
    });
    for (name, ns) in [
        ("hyperplonk/prove_telemetry_off", off_ns),
        ("hyperplonk/prove_telemetry_on", on_ns),
    ] {
        records.push(PerfRecord {
            name: name.into(),
            n: 1u64 << mu,
            wall_ns: ns,
            ops: 0,
            threads: threads as u64,
        });
    }

    // Per-phase breakdown: the depth-1 spans tile the `prove` span
    // (`repro obs` asserts the tiling is within 1%).
    let prove_span_ns = profile.total_ns("prove").max(1);
    let mut phase_rows = Vec::new();
    for name in profile.names_at_depth(1) {
        let ns = profile.total_ns(name);
        records.push(PerfRecord {
            name: format!("hyperplonk/{name}"),
            n: 1u64 << mu,
            wall_ns: ns,
            ops: 0,
            threads: threads as u64,
        });
        phase_rows.push(vec![
            name.to_string(),
            format!("{:.2}", ns as f64 / 1e6),
            format!("{:.1}%", 100.0 * ns as f64 / prove_span_ns as f64),
        ]);
    }
    out.push_str(&fmt_table(
        &format!("Perf — HyperPlonk e2e phase breakdown (Jellyfish, 2^{mu} rows)"),
        &["phase", "ms", "share"],
        &phase_rows,
    ));
    let _ = writeln!(
        out,
        "prove {:.1} ms, proof {} bytes, verified",
        prove_ns as f64 / 1e6,
        proof.size_bytes(),
    );
    let _ = writeln!(
        out,
        "telemetry overhead (best of {reps}): on {:.2} ms vs off {:.2} ms ({:+.2}%)",
        on_ns as f64 / 1e6,
        off_ns as f64 / 1e6,
        100.0 * (on_ns as f64 / off_ns as f64 - 1.0),
    );
    if alloc_calls == 0 {
        let _ = writeln!(
            out,
            "allocation counter: inactive (CountingAlloc not installed in this binary)\n"
        );
    } else {
        let _ = writeln!(
            out,
            "allocations during instrumented prove: {alloc_calls} calls, {alloc_bytes} bytes\n"
        );
    }
}

// ----------------------------------------------------------------- json --

/// Hand-rolled JSON (no serde in the offline workspace): every name this
/// module generates is `[a-z0-9/_]`, so no string escaping is needed.
fn render_json(records: &[PerfRecord], smoke: bool, meta: &RunMeta) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"zkphire-bench-perf/v2\",\n");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(
        s,
        "  \"meta\": {{\"host_cores\": {}, \"threads\": {}, \"git_rev\": \"{}\"}},",
        meta.host_cores, meta.threads, meta.git_rev
    );
    s.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"n\": {}, \"wall_ns\": {}, \"ops\": {}, \"threads\": {}}}{comma}",
            r.name, r.n, r.wall_ns, r.ops, r.threads
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed() {
        let records = vec![
            PerfRecord {
                name: "field/mul".into(),
                n: 8,
                wall_ns: 123,
                ops: 8,
                threads: 1,
            },
            PerfRecord {
                name: "msm/signed".into(),
                n: 256,
                wall_ns: 456,
                ops: 99,
                threads: 4,
            },
        ];
        let meta = RunMeta {
            host_cores: 1,
            threads: 1,
            git_rev: "abc123".into(),
        };
        let json = render_json(&records, true, &meta);
        // Structural spot-checks (no JSON parser in the offline workspace).
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert!(json.contains("\"schema\": \"zkphire-bench-perf/v2\""));
        assert!(json.contains("\"smoke\": true"));
        assert!(
            json.contains("\"meta\": {\"host_cores\": 1, \"threads\": 1, \"git_rev\": \"abc123\"}")
        );
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn git_rev_is_json_safe() {
        let rev = git_rev();
        assert!(
            rev == "unknown" || rev.chars().all(|c| c.is_ascii_hexdigit()),
            "git_rev `{rev}` would need JSON escaping"
        );
    }

    #[test]
    fn chain_points_are_distinct_curve_points() {
        let pts = chain_points(8);
        assert_eq!(pts.len(), 8);
        for p in &pts {
            assert!(p.is_on_curve());
        }
        assert_eq!(pts[0], G1Affine::generator());
        assert_ne!(pts[1], pts[2]);
    }
}
