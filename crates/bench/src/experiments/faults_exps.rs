//! The `faults` experiment: what chip failures cost a proving service,
//! and what the resilience layer buys back. Four deterministic studies:
//!
//! 1. a scripted 1-of-4-chip outage face-off — no-failure baseline vs a
//!    fault-blind fleet vs retry-only vs retry + brown-out,
//! 2. a random MTBF sweep of goodput degradation,
//! 3. per-tenant admission caps against a 9:1 noisy-neighbor flood,
//! 4. failure-aware N-1/N-2 fleet sizing via `zkphire-dse`.
//!
//! Everything is a pure function of the fixed seeds; CI diffs two runs
//! byte for byte and the golden test locks the numbers.

use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_core::system::ZkphireConfig;
use zkphire_dse::{size_fleet, size_fleet_n_minus_k, FleetSlo};
use zkphire_fleet::{
    simulate, BrownOutConfig, ChipOutage, FaultConfig, FleetConfig, PoissonSource, PolicyKind,
    RequestClass, RetryPolicy, SimReport, TenantMix, TenantProfile, WorkloadMix,
};

const SEED: u64 = 0xfa17;
const FAULT_SEED: u64 = 0xdead_c41b;
/// The service-level objective every variant is held to (p99, ms).
const P99_SLO_MS: f64 = 120.0;
/// Face-off fleet size and outage window: chip 0 dies at 2 s for 3 s of
/// the 10 s horizon — long enough that the degraded fleet must carry
/// steady-state load on 3 survivors, not just ride out a blip.
const CHIPS: usize = 4;
const HORIZON_MS: f64 = 10_000.0;
const OUTAGE_AT_MS: f64 = 2_000.0;
const OUTAGE_FOR_MS: f64 = 3_000.0;

fn workload() -> WorkloadMix {
    WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18))
}

/// Offered load: 85% of the 4-chip fleet's no-overhead service
/// capacity — comfortable with all chips up, 113% of the surviving
/// capacity during the outage.
fn offered_rps(cost: &mut CostModel) -> f64 {
    let per = cost.proof_ms(Gate::Jellyfish, 18);
    0.85 * CHIPS as f64 * 1000.0 / per
}

fn one_chip_outage() -> FaultConfig {
    FaultConfig::scripted(vec![ChipOutage::new(0, OUTAGE_AT_MS, OUTAGE_FOR_MS)])
}

fn face_off_run(cfg: FleetConfig) -> SimReport {
    let mut cost = CostModel::exemplar();
    let rate = offered_rps(&mut cost);
    let mut source = PoissonSource::new(rate, HORIZON_MS, workload(), SEED);
    simulate(&cfg, &mut source, &mut cost).expect("valid config")
}

/// The four face-off variants, in print order.
fn face_off() -> Vec<(&'static str, SimReport)> {
    vec![
        ("baseline", face_off_run(FleetConfig::new(CHIPS))),
        (
            "naive",
            face_off_run(FleetConfig::new(CHIPS).with_faults(one_chip_outage())),
        ),
        (
            "retry-only",
            face_off_run(
                FleetConfig::new(CHIPS)
                    .with_faults(one_chip_outage())
                    .with_retry(RetryPolicy::new(4)),
            ),
        ),
        (
            "resilient",
            face_off_run(
                FleetConfig::new(CHIPS)
                    .with_faults(one_chip_outage())
                    .with_retry(RetryPolicy::new(4))
                    .with_brown_out(BrownOutConfig::new(1.0, 6)),
            ),
        ),
    ]
}

/// Noisy-neighbor admission study: tenant 1 floods 9:1 into one
/// overloaded chip behind a shared queue bound; with and without a
/// per-tenant cap on the flood.
fn flood_runs() -> Vec<(&'static str, SimReport)> {
    let mut cost = CostModel::exemplar();
    let per = cost.proof_ms(Gate::Jellyfish, 18);
    let rate = 1.6 * 1000.0 / per; // 1.6× one chip's capacity
    let tm = TenantMix::new(vec![
        TenantProfile::new(1, 9.0, workload()),
        TenantProfile::new(2, 1.0, workload()),
    ]);
    let mut run = |cfg: FleetConfig| {
        let mut source = PoissonSource::new(rate, 6_000.0, tm.clone(), SEED);
        simulate(&cfg, &mut source, &mut cost).expect("valid config")
    };
    vec![
        (
            "blind",
            run(FleetConfig::new(1)
                .with_policy(PolicyKind::Fifo)
                .with_queue_capacity(24)),
        ),
        (
            "capped",
            run(FleetConfig::new(1)
                .with_policy(PolicyKind::Fifo)
                .with_queue_capacity(24)
                .with_tenant_caps(vec![(1, 12)])),
        ),
    ]
}

/// The `faults` experiment.
pub fn faults() -> String {
    use crate::fmt_table;

    let mut cost = CostModel::exemplar();
    let rate = offered_rps(&mut cost);
    let mut out = format!(
        "Scenario: {CHIPS} chips, Poisson {rate:.0} rps of J^18 (85% of fleet \
         capacity), horizon {HORIZON_MS:.0} ms; chip 0 down \
         {OUTAGE_AT_MS:.0}-{:.0} ms; p99 SLO {P99_SLO_MS:.0} ms\n\n",
        OUTAGE_AT_MS + OUTAGE_FOR_MS,
    );

    // 1. Outage face-off.
    let runs = face_off();
    let baseline_goodput = runs[0].1.summary.goodput_rps;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(label, r)| {
            let s = &r.summary;
            vec![
                (*label).to_string(),
                format!("{:.1}", s.goodput_rps),
                format!("{:.2}", s.goodput_rps / baseline_goodput),
                format!("{:.1}", s.throughput_rps),
                format!("{:.2}", s.p99_latency_ms),
                s.retries.to_string(),
                s.lost.to_string(),
                s.shed.to_string(),
                if s.p99_latency_ms <= P99_SLO_MS {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
                format!("{:016x}", r.trace_hash),
            ]
        })
        .collect();
    out.push_str(&fmt_table(
        "Outage face-off — 1 of 4 chips down 3 s under 85% load",
        &[
            "Config",
            "Goodput",
            "vs base",
            "Thruput",
            "p99 ms",
            "Retry",
            "Lost",
            "Shed",
            "SLO",
            "Trace hash",
        ],
        &rows,
    ));
    let resilient = &runs[3].1;
    out.push_str(&format!("Trace hash: {:016x}\n", resilient.trace_hash));

    // 2. Random-failure MTBF sweep: goodput retention, naive vs
    //    resilient, as chips get flakier.
    let mut sweep_rows = Vec::new();
    for mtbf_ms in [10_000.0, 5_000.0, 2_500.0] {
        for (label, resilient) in [("naive", false), ("resilient", true)] {
            let mut cfg = FleetConfig::new(CHIPS)
                .with_faults(FaultConfig::random(mtbf_ms, 400.0, FAULT_SEED));
            if resilient {
                cfg = cfg
                    .with_retry(RetryPolicy::new(4))
                    .with_brown_out(BrownOutConfig::new(1.0, 6));
            }
            let r = face_off_run(cfg);
            let s = &r.summary;
            sweep_rows.push(vec![
                format!("{:.0}", mtbf_ms),
                label.to_string(),
                s.chip_failures.to_string(),
                format!("{:.1}", s.goodput_rps),
                format!("{:.2}", s.goodput_rps / baseline_goodput),
                format!("{:.2}", s.p99_latency_ms),
                s.retries.to_string(),
                s.lost.to_string(),
                s.shed.to_string(),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&fmt_table(
        "MTBF sweep — per-chip exponential failures, 400 ms MTTR",
        &[
            "MTBF ms", "Config", "Fails", "Goodput", "vs base", "p99 ms", "Retry", "Lost", "Shed",
        ],
        &sweep_rows,
    ));

    // 3. Per-tenant admission: the flood absorbs the rejections.
    let flood = flood_runs();
    let mut tenant_rows = Vec::new();
    for (label, r) in &flood {
        for t in &r.summary.per_tenant {
            tenant_rows.push(vec![
                (*label).to_string(),
                t.tenant.to_string(),
                t.completed.to_string(),
                t.rejected.to_string(),
                format!("{:.3}", t.slo_violation_rate),
                format!("{:.2}", t.p99_latency_ms),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&fmt_table(
        "Per-tenant admission — tenant 1 floods 9:1 into 1 chip, queue 24",
        &["Config", "Tenant", "Done", "Rej", "SLOviol", "p99 ms"],
        &tenant_rows,
    ));

    // 4. Failure-aware sizing: the redundancy an outage domain costs.
    let chip = ZkphireConfig::exemplar();
    let mut cost = CostModel::exemplar();
    let per = cost.proof_ms(Gate::Jellyfish, 18);
    let slo = FleetSlo {
        arrival_rps: 3.0 * 1000.0 / per,
        p99_ms: 20.0 * per,
        queue_capacity: None,
        max_reject_fraction: 0.0,
        horizon_ms: 4_000.0,
        seed: SEED,
    };
    let mut sizing_rows = Vec::new();
    let plain = size_fleet(&chip, &workload(), PolicyKind::SizeClass, &slo, 32)
        .expect("plain sizing feasible");
    sizing_rows.push(("N", plain));
    for k in [1usize, 2] {
        let sized = size_fleet_n_minus_k(
            &chip,
            &workload(),
            PolicyKind::SizeClass,
            &slo,
            32,
            k,
            RetryPolicy::new(5),
            None,
        )
        .expect("N-k sizing feasible");
        sizing_rows.push(if k == 1 {
            ("N-1", sized)
        } else {
            ("N-2", sized)
        });
    }
    let sizing_table: Vec<Vec<String>> = sizing_rows
        .iter()
        .map(|(label, s)| {
            vec![
                (*label).to_string(),
                s.chips.to_string(),
                format!("{:.0}", s.cost.total_area_mm2),
                format!("{:.0}", s.cost.total_power_w),
                format!("{:.2}", s.summary.p99_latency_ms),
                s.summary.chip_failures.to_string(),
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&fmt_table(
        &format!(
            "Failure-aware sizing — {:.0} rps, p99 <= {:.1} ms, sustained k-chip outage",
            slo.arrival_rps, slo.p99_ms
        ),
        &["Domain", "Chips", "mm2", "W", "p99 ms", "Fails"],
        &sizing_table,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_meets_the_acceptance_bar() {
        let runs = face_off();
        let baseline = &runs[0].1.summary;
        let naive = &runs[1].1.summary;
        let resilient = &runs[3].1.summary;
        // The fault-blind fleet violates the 120 ms p99 SLO.
        assert!(
            naive.p99_latency_ms > P99_SLO_MS,
            "naive p99 {} under the SLO — outage too mild",
            naive.p99_latency_ms
        );
        // Retries + brown-out keep goodput within 10% of no-failure.
        assert!(
            resilient.goodput_rps >= 0.9 * baseline.goodput_rps,
            "resilient goodput {} vs baseline {}",
            resilient.goodput_rps,
            baseline.goodput_rps
        );
        // And the resilient fleet holds the SLO the naive one lost.
        assert!(
            resilient.p99_latency_ms <= P99_SLO_MS,
            "resilient p99 {}",
            resilient.p99_latency_ms
        );
        // Every variant conserves arrivals.
        for (label, r) in &runs {
            let s = &r.summary;
            assert_eq!(
                s.arrivals,
                s.completed + s.rejected + s.shed + s.lost,
                "{label} leaks requests"
            );
        }
    }

    #[test]
    fn tenant_caps_protect_the_light_tenant() {
        let runs = flood_runs();
        let tenant = |r: &SimReport, id: u32| {
            r.summary
                .per_tenant
                .iter()
                .find(|t| t.tenant == id)
                .cloned()
                .expect("tenant present")
        };
        let blind_light = tenant(&runs[0].1, 2);
        let capped_light = tenant(&runs[1].1, 2);
        let capped_flood = tenant(&runs[1].1, 1);
        // Blind shared queue: the flood crowds the light tenant out.
        assert!(blind_light.rejected > 0, "flood never crowded the queue");
        // Per-tenant caps: light tenant rejections near zero while the
        // flood absorbs the admission pressure.
        let light_offered = capped_light.offered().max(1);
        assert!(
            (capped_light.rejected as f64) / (light_offered as f64) < 0.01,
            "light tenant still rejected {} of {}",
            capped_light.rejected,
            light_offered
        );
        assert!(capped_flood.rejected > 0, "cap never bound the flood");
    }

    #[test]
    fn faults_experiment_is_deterministic() {
        let a = faults();
        let b = faults();
        assert_eq!(a, b, "faults experiment must be reproducible");
        for needle in [
            "baseline",
            "naive",
            "retry-only",
            "resilient",
            "Trace hash",
            "MTBF",
            "N-1",
            "N-2",
        ] {
            assert!(a.contains(needle), "missing {needle}");
        }
    }
}
