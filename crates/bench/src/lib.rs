//! The zkPHIRE reproduction harness.
//!
//! One generator per table and figure of the paper's evaluation (§VI);
//! each returns the formatted rows/series the paper reports, regenerated
//! from this repository's models and baselines. Run them via
//!
//! ```text
//! cargo run --release -p zkphire-bench --bin repro -- <experiment|all>
//! ```
//!
//! Paper-vs-measured numbers are archived in `EXPERIMENTS.md`.

pub mod experiments;

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Renders an aligned text table.
pub fn fmt_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().max(1) - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_calc() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_alignment() {
        let t = fmt_table(
            "T",
            &["a", "bbbb"],
            &[vec!["xx".into(), "y".into()], vec!["1".into(), "22".into()]],
        );
        assert!(t.contains("a   bbbb"));
        assert_eq!(t.lines().count(), 5);
    }
}
