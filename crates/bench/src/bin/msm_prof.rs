//! Ad-hoc MSM profiler: times one signed-digit MSM at an arbitrary size.
//!
//! `repro perf` benches the fixed 2^12–2^18 ladder; this binary takes
//! `log2(n)` on the command line (default 16) for quick one-off probes
//! of other sizes, e.g. `cargo run --release --bin msm_prof -- 18`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use zkphire_curve::*;
use zkphire_field::Fr;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let n = 1usize << log_n;
    let g = G1Affine::generator();
    let mut acc = G1Projective::from(g);
    let mut proj = Vec::with_capacity(n);
    for _ in 0..n {
        proj.push(acc);
        acc = acc.add_mixed(&g);
    }
    let points = batch_normalize(&proj);
    let mut rng = StdRng::seed_from_u64(1);
    let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
    let t = Instant::now();
    let (r, ops) = msm_with_ops_threads(&points, &scalars, 1);
    eprintln!(
        "signed   n=2^{log_n}: {:?} padds={}",
        t.elapsed(),
        ops.total_padds()
    );
    std::hint::black_box(r);
}
