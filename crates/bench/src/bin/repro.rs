//! Regenerates the paper's tables and figures from this repository's
//! models. Usage: `repro <experiment|all> [flags...]`; see `repro list`.
//! (`repro perf` accepts `--smoke` and `--out <path>`; `repro obs`
//! accepts `--out-dir <dir>`.)

use std::process::ExitCode;

use zkphire_bench::experiments;

// Feeds the `repro perf` allocation counter; a zero-cost passthrough to
// the system allocator whenever recording is off.
#[global_allocator]
static ALLOC: zkphire_telemetry::CountingAlloc = zkphire_telemetry::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((which, rest)) = args.split_first() else {
        eprintln!("usage: repro <experiment|all|list> [flags...]");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        return ExitCode::FAILURE;
    };
    match which.as_str() {
        "list" => {
            println!("{}", experiments::ALL.join("\n"));
            ExitCode::SUCCESS
        }
        "all" => {
            for name in experiments::ALL {
                println!("=== {name} ===");
                println!(
                    "{}",
                    experiments::run_with_args(name, rest).expect("registered")
                );
            }
            ExitCode::SUCCESS
        }
        name => match experiments::run_with_args(name, rest) {
            Some(output) => {
                println!("{output}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{name}'; try `repro list`");
                ExitCode::FAILURE
            }
        },
    }
}
