//! Criterion benchmark for the end-to-end HyperPlonk prover — the
//! repository's real software baseline (miniature scale; the analytical
//! model extrapolates the paper's sizes).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_hyperplonk::{prove, setup, Circuit, GateSystem};
use zkphire_transcript::Transcript;

fn bench_prover(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperplonk_prove");
    group.sample_size(10);
    for (name, system) in [
        ("vanilla", GateSystem::Vanilla),
        ("jellyfish", GateSystem::Jellyfish),
    ] {
        let mu = 7;
        let mut rng = StdRng::seed_from_u64(11);
        let (circuit, witness) = Circuit::random(system, mu, 0.5, &mut rng);
        let (pk, _) = setup(circuit, &mut rng);
        group.throughput(Throughput::Elements(1 << mu));
        group.bench_function(BenchmarkId::new(name, 1 << mu), |bench| {
            bench.iter(|| prove(&pk, &witness, &mut Transcript::new(b"bench")))
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_prover
}
criterion_main!(benches);
