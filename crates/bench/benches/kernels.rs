//! Criterion benchmarks for the functional kernels: field arithmetic,
//! Keccak, MLE operations, MSM and SumCheck rounds.
//!
//! These measure *this machine's* CPU — the absolute numbers feed the
//! shape-level validation of the CPU baseline model (DESIGN.md S2), not
//! the paper's EPYC figures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_curve::{msm, G1Affine};
use zkphire_field::{batch_inverse, Fr};
use zkphire_poly::{sparsity, table1_gate, Mle};
use zkphire_sumcheck::prove;
use zkphire_transcript::{sha3_256, Transcript};

fn bench_field(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fr::random(&mut rng);
    let b = Fr::random(&mut rng);
    let mut group = c.benchmark_group("field");
    group.bench_function("fr_mul", |bench| bench.iter(|| std::hint::black_box(a) * b));
    group.bench_function("fr_add", |bench| bench.iter(|| std::hint::black_box(a) + b));
    group.bench_function("fr_inverse", |bench| {
        bench.iter(|| std::hint::black_box(a).inverse())
    });
    let values: Vec<Fr> = (0..1024).map(|_| Fr::random(&mut rng)).collect();
    group.throughput(Throughput::Elements(1024));
    group.bench_function("batch_inverse_1024", |bench| {
        bench.iter(|| {
            let mut v = values.clone();
            batch_inverse(&mut v);
            v
        })
    });
    group.finish();
}

fn bench_keccak(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    let mut group = c.benchmark_group("keccak");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("sha3_256_4k", |bench| bench.iter(|| sha3_256(&data)));
    group.finish();
}

fn bench_mle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mu = 14;
    let f = Mle::from_fn(mu, |_| Fr::random(&mut rng));
    let r = Fr::random(&mut rng);
    let point: Vec<Fr> = (0..mu).map(|_| Fr::random(&mut rng)).collect();
    let mut group = c.benchmark_group("mle");
    group.throughput(Throughput::Elements(1 << mu));
    group.bench_function("fix_first_variable_2^14", |bench| {
        bench.iter(|| f.fix_first_variable(r))
    });
    group.bench_function("eq_table_2^14", |bench| {
        bench.iter(|| Mle::eq_table(&point))
    });
    group.finish();
}

fn bench_msm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("msm");
    group.sample_size(10);
    for log_n in [8usize, 10] {
        let n = 1 << log_n;
        let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pippenger", n), &n, |bench, _| {
            bench.iter(|| msm(&points, &scalars))
        });
    }
    group.finish();
}

fn bench_sumcheck(c: &mut Criterion) {
    let mut group = c.benchmark_group("sumcheck");
    group.sample_size(10);
    // The Vanilla and Jellyfish ZeroCheck composites — the kernels the
    // accelerator targets (Table II's CPU column at miniature scale).
    for (name, gate_id) in [("vanilla_zc", 20usize), ("jellyfish_zc", 22)] {
        let gate = table1_gate(gate_id);
        let mu = 12;
        let mut rng = StdRng::seed_from_u64(gate_id as u64);
        let mles = sparsity::random_binding(&mut rng, &gate.mle_kinds, mu);
        group.throughput(Throughput::Elements(1 << mu));
        group.bench_function(BenchmarkId::new(name, 1 << mu), |bench| {
            bench.iter(|| {
                let mut t = Transcript::new(b"bench");
                prove(&gate.poly, mles.clone(), &mut t)
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_field, bench_keccak, bench_mle, bench_msm, bench_sumcheck
}
criterion_main!(benches);
