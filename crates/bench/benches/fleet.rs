//! Criterion benchmark for the fleet simulator's hot path: the
//! event-queue engine and the full DES loop at ~1M events, giving later
//! scheduler-policy PRs a perf baseline.
//!
//! Event accounting: each served request contributes one Arrival pop,
//! one Dispatched and one Completed trace entry plus the BatchDone pop,
//! so `REQUESTS` requests ≈ `4 × REQUESTS` engine transitions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_fleet::{
    simulate, uniform_trace, Event, EventQueue, FleetConfig, PolicyKind, RequestClass, SplitMix64,
};

/// 1M-event raw engine churn: push/pop through a deep heap.
fn bench_event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_engine");
    group.sample_size(10);
    let events: u64 = 1_000_000;
    group.throughput(Throughput::Elements(events));
    group.bench_function(BenchmarkId::new("heap_churn", events), |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SplitMix64::new(7);
            let mut t = 0.0f64;
            // Keep ~1k events in flight; every pop schedules a successor.
            for i in 0..1_000u64 {
                q.push(rng.next_f64() * 10.0, Event::Arrival(i));
            }
            let mut popped = 0u64;
            while popped < events {
                let (now, _) = q.pop().expect("non-empty");
                t = now;
                popped += 1;
                q.push(now + rng.next_f64() * 10.0, Event::Arrival(popped));
            }
            t
        })
    });
    group.finish();
}

/// Full DES loop: 250k single-class requests ≈ 1M engine transitions,
/// cost model fully memoized after the first request.
fn bench_full_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_sim");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let requests = 250_000usize;
    group.throughput(Throughput::Elements(4 * requests as u64));
    for policy in [PolicyKind::Fifo, PolicyKind::SizeClass] {
        group.bench_function(BenchmarkId::new(policy.name(), requests), |b| {
            let class = RequestClass::new(Gate::Jellyfish, 18);
            let mut cost = CostModel::exemplar();
            let per_proof = cost.proof_ms(Gate::Jellyfish, 18);
            // Offered at ~0.9 of an 8-chip fleet's capacity.
            let gap = per_proof / (8.0 * 0.9);
            b.iter(|| {
                let mut source = uniform_trace(class, requests, gap);
                let cfg = FleetConfig::new(8).with_policy(policy);
                simulate(&cfg, &mut source, &mut cost)
                    .expect("valid config")
                    .summary
                    .completed
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_event_engine, bench_full_sim
}
criterion_main!(benches);
