//! The SumCheck prover over composite polynomials.
//!
//! Implements the round structure of paper §II-C3 and Fig. 1 for an
//! arbitrary sum of products of multilinear polynomials: per pair of table
//! entries, every constituent MLE is *extended* from its evaluations at
//! `X_i = 0, 1` to `X_i = 2..d` (adds only — the hardware Extension
//! Engines contain no multipliers), the extensions are multiplied per term
//! (the Product Lanes), accumulated into `d + 1` round evaluations, hashed
//! into the transcript to derive the challenge, and finally every MLE is
//! halved by the *MLE Update* kernel.
//!
//! [`prove`] is the multithreaded production path (the repo's real CPU
//! baseline); [`prove_instrumented`] is the single-threaded reference that
//! counts every field operation and validates
//! [`count_ops`](crate::count_ops).

use zkphire_field::Fr;
use zkphire_poly::{CompositePoly, Mle};
use zkphire_telemetry as tele;
use zkphire_transcript::Transcript;

use crate::ops::{coeff_needs_mul, SumcheckOps};

/// A complete SumCheck proof: the claim, every round polynomial (as
/// evaluations at `0..=d`), and the constituent-MLE evaluations at the
/// final challenge point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumCheckProof {
    /// The claimed hypercube sum `Σ_x f(x)`.
    pub claimed_sum: Fr,
    /// Round polynomials, one per variable; entry `i` holds `s_i(0..=d)`.
    pub round_evals: Vec<Vec<Fr>>,
    /// Evaluation of each constituent MLE at the final challenge point.
    pub final_mle_evals: Vec<Fr>,
}

impl SumCheckProof {
    /// Number of SumCheck rounds (µ).
    pub fn num_rounds(&self) -> usize {
        self.round_evals.len()
    }

    /// Serialized proof size in bytes (32-byte field elements), the metric
    /// of the paper's Table IX.
    pub fn size_bytes(&self) -> usize {
        let elems =
            1 + self.round_evals.iter().map(Vec::len).sum::<usize>() + self.final_mle_evals.len();
        elems * 32
    }
}

/// Prover output: the proof plus the verifier challenges it was bound to.
#[derive(Clone, Debug)]
pub struct ProverOutput {
    /// The proof to ship.
    pub proof: SumCheckProof,
    /// The Fiat–Shamir challenges `r_1..r_µ` (the final evaluation point).
    pub challenges: Vec<Fr>,
}

/// Runs the multithreaded SumCheck prover with one worker per available
/// core. See [`prove_with_threads`] for an explicit thread count.
///
/// `mles` must bind every slot of `poly` (see
/// [`CompositePoly::validate_binding`]); the tables are consumed (they are
/// halved each round, exactly like the streamed tables in hardware).
///
/// # Panics
///
/// Panics if the binding is invalid or the tables are zero-variable.
pub fn prove(poly: &CompositePoly, mles: Vec<Mle>, transcript: &mut Transcript) -> ProverOutput {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    prove_with_threads(poly, mles, transcript, threads)
}

/// [`prove`] with an explicit worker-thread count.
///
/// Both the round evaluations and the MLE folds chunk the hypercube over
/// disjoint ranges with a deterministic reduction order, so proofs and
/// transcripts are bit-identical for every `threads` value (including 1).
pub fn prove_with_threads(
    poly: &CompositePoly,
    mles: Vec<Mle>,
    transcript: &mut Transcript,
    threads: usize,
) -> ProverOutput {
    prove_inner(poly, mles, transcript, None, threads.max(1))
}

/// Single-threaded reference prover that additionally counts every field
/// operation it performs. Produces bit-identical proofs to [`prove`].
pub fn prove_instrumented(
    poly: &CompositePoly,
    mles: Vec<Mle>,
    transcript: &mut Transcript,
) -> (ProverOutput, SumcheckOps) {
    let mut ops = SumcheckOps::default();
    let out = prove_inner(poly, mles, transcript, Some(&mut ops), 1);
    (out, ops)
}

fn prove_inner(
    poly: &CompositePoly,
    mut mles: Vec<Mle>,
    transcript: &mut Transcript,
    mut counter: Option<&mut SumcheckOps>,
    threads: usize,
) -> ProverOutput {
    poly.validate_binding(&mles);
    let num_vars = mles.first().expect("at least one MLE").num_vars();
    assert!(num_vars >= 1, "SumCheck needs at least one variable");
    let degree = poly.degree();
    // At least two evaluation points: the verifier always checks
    // s(0) + s(1), even for a degree-0 composite.
    let k = degree.max(1) + 1;

    transcript.append_u64(b"sumcheck/num_vars", num_vars as u64);
    transcript.append_u64(b"sumcheck/degree", degree as u64);

    let mut round_evals = Vec::with_capacity(num_vars);
    let mut challenges = Vec::with_capacity(num_vars);
    let mut claimed_sum = Fr::ZERO;

    for round in 0..num_vars {
        // Spans live on the orchestrating thread only; the scoped round
        // workers stay span-free so recording never perturbs them.
        let _round_span = tele::span("sumcheck/round");
        let evals = match counter.as_deref_mut() {
            Some(ops) => round_evals_counted(poly, &mles, k, ops),
            None => round_evals_parallel(poly, &mles, k, threads),
        };
        if round == 0 {
            claimed_sum = evals[0] + evals[1];
            transcript.append_fr(b"sumcheck/claim", &claimed_sum);
        }
        transcript.append_frs(b"sumcheck/round", &evals);
        let r = transcript.challenge_fr(b"sumcheck/challenge");
        round_evals.push(evals);
        challenges.push(r);

        if let Some(ops) = counter.as_deref_mut() {
            for m in &mles {
                ops.update_muls += (m.len() / 2) as u64;
                ops.adds += m.len() as u64; // diff + add per surviving entry
            }
        }
        let _fold_span = tele::span("sumcheck/fold");
        fold_mles(&mut mles, r, threads);
    }

    let final_mle_evals = mles.iter().map(|m| m.evals()[0]).collect();
    ProverOutput {
        proof: SumCheckProof {
            claimed_sum,
            round_evals,
            final_mle_evals,
        },
        challenges,
    }
}

/// Evaluates one pair (entries `2j`, `2j+1`) of every unique MLE,
/// extending to `k` points and accumulating term products into `sums`.
#[inline]
#[allow(clippy::too_many_arguments)] // hot path: mirrors the PE datapath signals
fn accumulate_pair(
    poly: &CompositePoly,
    mles: &[Mle],
    unique: &[usize],
    j: usize,
    k: usize,
    ext: &mut [Vec<Fr>],
    sums: &mut [Fr],
    mut counter: Option<&mut SumcheckOps>,
) {
    for &u in unique {
        let evals = mles[u].evals();
        let f0 = evals[2 * j];
        let f1 = evals[2 * j + 1];
        let diff = f1 - f0;
        let e = &mut ext[u];
        e[0] = f0;
        if k > 1 {
            e[1] = f1;
            for t in 2..k {
                e[t] = e[t - 1] + diff;
            }
        }
        if let Some(ops) = counter.as_deref_mut() {
            ops.adds += 1 + (k as u64).saturating_sub(2);
        }
    }
    for term in poly.terms() {
        let needs_coeff_mul = coeff_needs_mul(&term.coeff);
        let negate = !needs_coeff_mul && !term.coeff.is_one();
        if term.factors.is_empty() {
            // A constant term contributes its coefficient at every point.
            for sum in sums.iter_mut() {
                *sum += term.coeff;
            }
            if let Some(ops) = counter.as_deref_mut() {
                ops.adds += k as u64;
            }
            continue;
        }
        for (t, sum) in sums.iter_mut().enumerate() {
            let mut prod = ext[term.factors[0].0][t];
            for f in &term.factors[1..] {
                prod *= ext[f.0][t];
            }
            if needs_coeff_mul {
                prod *= term.coeff;
            } else if negate {
                prod = -prod;
            }
            *sum += prod;
        }
        if let Some(ops) = counter.as_deref_mut() {
            let factor_muls = term.degree() as u64 - 1;
            ops.product_muls += (k as u64) * (factor_muls + u64::from(needs_coeff_mul));
            ops.adds += k as u64;
        }
    }
}

/// The paper's *MLE Update* kernel over the whole binding: every table is
/// halved at the round challenge, parallelized across (and, when the slot
/// count is small, within) the MLEs.
fn fold_mles(mles: &mut [Mle], r: Fr, threads: usize) {
    // Below ~2^13 total entries the folds cost less than spawning.
    let total: usize = mles.iter().map(Mle::len).sum();
    if threads <= 1 || total < (1 << 13) {
        for m in mles.iter_mut() {
            *m = m.fix_first_variable(r);
        }
    } else if mles.len() >= threads {
        // Enough slots to keep every worker busy on whole tables.
        let chunk = mles.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for group in mles.chunks_mut(chunk) {
                scope.spawn(move || {
                    for m in group {
                        *m = m.fix_first_variable(r);
                    }
                });
            }
        });
    } else {
        // Few large tables: split each fold across the workers instead.
        for m in mles.iter_mut() {
            *m = m.fix_first_variable_par(r, threads);
        }
    }
}

fn round_evals_counted(
    poly: &CompositePoly,
    mles: &[Mle],
    k: usize,
    ops: &mut SumcheckOps,
) -> Vec<Fr> {
    let half = mles[0].len() / 2;
    let unique: Vec<usize> = poly.unique_mles().iter().map(|id| id.0).collect();
    let mut ext = vec![vec![Fr::ZERO; k]; poly.num_mles()];
    let mut sums = vec![Fr::ZERO; k];
    for j in 0..half {
        accumulate_pair(poly, mles, &unique, j, k, &mut ext, &mut sums, Some(ops));
    }
    sums
}

fn round_evals_parallel(poly: &CompositePoly, mles: &[Mle], k: usize, threads: usize) -> Vec<Fr> {
    let half = mles[0].len() / 2;
    let threads = threads.min(half.max(1));
    if threads <= 1 || half < 1024 {
        let unique: Vec<usize> = poly.unique_mles().iter().map(|id| id.0).collect();
        let mut ext = vec![vec![Fr::ZERO; k]; poly.num_mles()];
        let mut sums = vec![Fr::ZERO; k];
        for j in 0..half {
            accumulate_pair(poly, mles, &unique, j, k, &mut ext, &mut sums, None);
        }
        return sums;
    }

    let chunk = half.div_ceil(threads);
    let unique: Vec<usize> = poly.unique_mles().iter().map(|id| id.0).collect();
    let partials: Vec<Vec<Fr>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let unique = &unique;
                scope.spawn(move || {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(half);
                    let mut ext = vec![vec![Fr::ZERO; k]; poly.num_mles()];
                    let mut sums = vec![Fr::ZERO; k];
                    for j in start..end {
                        accumulate_pair(poly, mles, unique, j, k, &mut ext, &mut sums, None);
                    }
                    sums
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("round-eval worker"))
            .collect()
    });

    let mut sums = vec![Fr::ZERO; k];
    for partial in partials {
        for (s, p) in sums.iter_mut().zip(partial) {
            *s += p;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_poly::{MleId, Term};

    fn random_mles(n: usize, num_vars: usize, seed: u64) -> Vec<Mle> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Mle::from_fn(num_vars, |_| Fr::random(&mut rng)))
            .collect()
    }

    fn test_poly() -> CompositePoly {
        // f = a*b*e - 2*c*e + e*g  (shared factor e, mixed degrees)
        CompositePoly::new(vec![
            Term {
                coeff: Fr::ONE,
                scalars: vec![],
                factors: vec![MleId(0), MleId(1), MleId(2)],
            },
            Term {
                coeff: -Fr::from_u64(2),
                scalars: vec![],
                factors: vec![MleId(3), MleId(2)],
            },
            Term {
                coeff: Fr::ONE,
                scalars: vec![],
                factors: vec![MleId(2), MleId(4)],
            },
        ])
    }

    #[test]
    fn claimed_sum_matches_reference() {
        let poly = test_poly();
        let mles = random_mles(5, 6, 1);
        let expected = poly.sum_over_hypercube(&mles);
        let mut t = Transcript::new(b"test");
        let out = prove(&poly, mles, &mut t);
        assert_eq!(out.proof.claimed_sum, expected);
    }

    #[test]
    fn parallel_and_instrumented_agree() {
        let poly = test_poly();
        let mles = random_mles(5, 7, 2);
        let mut t1 = Transcript::new(b"test");
        let out1 = prove(&poly, mles.clone(), &mut t1);
        let mut t2 = Transcript::new(b"test");
        let (out2, _) = prove_instrumented(&poly, mles, &mut t2);
        assert_eq!(out1.proof, out2.proof);
        assert_eq!(out1.challenges, out2.challenges);
    }

    #[test]
    fn every_thread_count_is_transcript_identical() {
        // 2^11 evals crosses the parallel round-eval threshold (1024
        // pairs), so the chunked path really runs.
        let poly = test_poly();
        let mles = random_mles(5, 11, 9);
        let mut t1 = Transcript::new(b"test");
        let reference = prove_with_threads(&poly, mles.clone(), &mut t1, 1);
        for threads in [2usize, 3, 4, 7] {
            let mut t = Transcript::new(b"test");
            let out = prove_with_threads(&poly, mles.clone(), &mut t, threads);
            assert_eq!(out.proof, reference.proof, "threads={threads}");
            assert_eq!(out.challenges, reference.challenges, "threads={threads}");
        }
    }

    #[test]
    fn instrumented_counts_match_analytical_formula() {
        let poly = test_poly();
        for num_vars in [3usize, 5, 8] {
            let mles = random_mles(5, num_vars, num_vars as u64);
            let mut t = Transcript::new(b"test");
            let (_, measured) = prove_instrumented(&poly, mles, &mut t);
            let predicted = count_ops(&poly, num_vars);
            assert_eq!(measured, predicted, "num_vars={num_vars}");
        }
    }

    #[test]
    fn table1_gate_counts_match_formula() {
        // The op-count oracle must hold for the real gate library too.
        for id in [0usize, 1, 9, 20, 22, 24] {
            let gate = zkphire_poly::table1_gate(id);
            let poly = gate.poly.specialize(&[Fr::from_u64(7); 4]);
            let mut rng = StdRng::seed_from_u64(id as u64);
            let mles = zkphire_poly::sparsity::random_binding(&mut rng, &gate.mle_kinds, 4);
            let mut t = Transcript::new(b"test");
            let (_, measured) = prove_instrumented(&poly, mles, &mut t);
            assert_eq!(measured, count_ops(&poly, 4), "gate {id}");
        }
    }

    #[test]
    fn final_evals_match_tables() {
        let poly = test_poly();
        let mles = random_mles(5, 5, 3);
        let originals = mles.clone();
        let mut t = Transcript::new(b"test");
        let out = prove(&poly, mles, &mut t);
        for (m, e) in originals.iter().zip(&out.proof.final_mle_evals) {
            assert_eq!(m.evaluate(&out.challenges), *e);
        }
    }

    #[test]
    fn proof_size_accounting() {
        let poly = test_poly();
        let mles = random_mles(5, 4, 4);
        let mut t = Transcript::new(b"test");
        let out = prove(&poly, mles, &mut t);
        // 4 rounds * 4 evals + 5 final evals + 1 claim = 22 elements.
        assert_eq!(out.proof.size_bytes(), 22 * 32);
    }
}
