//! The SumCheck verifier.
//!
//! Checks the round-consistency conditions of §II-C (`s_i(0) + s_i(1)`
//! equals the previous claim) and the final evaluation of the composite
//! polynomial at the random point. The constituent-MLE evaluations inside
//! the proof are *claims*: [`verify`] returns them for the caller to
//! discharge against polynomial commitments (HyperPlonk's Batch
//! Evaluation / Opening steps), while [`verify_with_oracle`] discharges
//! them directly against in-memory tables (for tests and standalone use).

use core::fmt;

use zkphire_field::Fr;
use zkphire_poly::{CompositePoly, Mle};
use zkphire_transcript::Transcript;

use crate::interp::BarycentricWeights;
use crate::prover::SumCheckProof;

/// Why a SumCheck proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SumCheckError {
    /// The proof has the wrong number of rounds for the table size.
    RoundCountMismatch {
        /// Rounds present in the proof.
        got: usize,
        /// Rounds implied by the claimed number of variables.
        expected: usize,
    },
    /// A round polynomial has the wrong number of evaluations.
    EvaluationCountMismatch {
        /// Offending round (0-based).
        round: usize,
    },
    /// `s_i(0) + s_i(1)` disagreed with the running claim.
    RoundSumMismatch {
        /// Offending round (0-based).
        round: usize,
    },
    /// The composite evaluated at the final point disagreed with the last
    /// round's claim.
    FinalEvaluationMismatch,
    /// An MLE evaluation claim disagreed with the oracle table.
    OracleMismatch {
        /// Offending MLE slot.
        slot: usize,
    },
}

impl fmt::Display for SumCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RoundCountMismatch { got, expected } => {
                write!(f, "proof has {got} rounds, expected {expected}")
            }
            Self::EvaluationCountMismatch { round } => {
                write!(f, "round {round} has the wrong number of evaluations")
            }
            Self::RoundSumMismatch { round } => {
                write!(f, "round {round} evaluations do not sum to the claim")
            }
            Self::FinalEvaluationMismatch => {
                write!(
                    f,
                    "final composite evaluation does not match the last claim"
                )
            }
            Self::OracleMismatch { slot } => {
                write!(
                    f,
                    "MLE evaluation claim for slot {slot} does not match the oracle"
                )
            }
        }
    }
}

impl std::error::Error for SumCheckError {}

/// Successful verification: the challenge point plus the MLE-evaluation
/// claims that still need to be discharged against commitments.
#[derive(Clone, Debug)]
pub struct VerifiedSumCheck {
    /// The challenge point `r_1..r_µ`.
    pub challenges: Vec<Fr>,
    /// The claimed evaluation of each constituent MLE at `challenges`.
    pub mle_evals: Vec<Fr>,
}

/// Verifies a SumCheck proof against a composite polynomial.
///
/// # Errors
///
/// Returns a [`SumCheckError`] describing the first failed check.
pub fn verify(
    poly: &CompositePoly,
    num_vars: usize,
    proof: &SumCheckProof,
    transcript: &mut Transcript,
) -> Result<VerifiedSumCheck, SumCheckError> {
    let degree = poly.degree();
    let k = degree.max(1) + 1; // mirrors the prover's two-point minimum
    if proof.round_evals.len() != num_vars {
        return Err(SumCheckError::RoundCountMismatch {
            got: proof.round_evals.len(),
            expected: num_vars,
        });
    }

    transcript.append_u64(b"sumcheck/num_vars", num_vars as u64);
    transcript.append_u64(b"sumcheck/degree", degree as u64);

    // Every round interpolates on the same node set 0..=k-1: precompute
    // the barycentric weights once (one batch inversion for the whole
    // proof) so the per-round evaluation is inversion-free.
    let weights = BarycentricWeights::new(k - 1);
    let mut challenges = Vec::with_capacity(num_vars);
    let mut claim = proof.claimed_sum;
    for (round, evals) in proof.round_evals.iter().enumerate() {
        if evals.len() != k {
            return Err(SumCheckError::EvaluationCountMismatch { round });
        }
        if evals[0] + evals[1] != claim {
            return Err(SumCheckError::RoundSumMismatch { round });
        }
        if round == 0 {
            transcript.append_fr(b"sumcheck/claim", &proof.claimed_sum);
        }
        transcript.append_frs(b"sumcheck/round", evals);
        let r = transcript.challenge_fr(b"sumcheck/challenge");
        claim = weights.interpolate(evals, r);
        challenges.push(r);
    }

    let final_value = poly.evaluate_with_mle_values(&proof.final_mle_evals);
    if final_value != claim {
        return Err(SumCheckError::FinalEvaluationMismatch);
    }

    Ok(VerifiedSumCheck {
        challenges,
        mle_evals: proof.final_mle_evals.clone(),
    })
}

/// Verifies a proof and discharges every MLE-evaluation claim against the
/// original tables.
///
/// # Errors
///
/// Returns a [`SumCheckError`] describing the first failed check.
pub fn verify_with_oracle(
    poly: &CompositePoly,
    mles: &[Mle],
    proof: &SumCheckProof,
    transcript: &mut Transcript,
) -> Result<VerifiedSumCheck, SumCheckError> {
    let num_vars = mles.first().map_or(0, Mle::num_vars);
    let verified = verify(poly, num_vars, proof, transcript)?;
    for (slot, (m, claimed)) in mles.iter().zip(&verified.mle_evals).enumerate() {
        if m.evaluate(&verified.challenges) != *claimed {
            return Err(SumCheckError::OracleMismatch { slot });
        }
    }
    Ok(verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::prove;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_poly::{MleId, Term};

    fn setup(num_vars: usize, seed: u64) -> (CompositePoly, Vec<Mle>) {
        let poly = CompositePoly::new(vec![
            Term {
                coeff: Fr::ONE,
                scalars: vec![],
                factors: vec![MleId(0), MleId(1)],
            },
            Term {
                coeff: Fr::from_u64(5),
                scalars: vec![],
                factors: vec![MleId(2), MleId(2), MleId(0)],
            },
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mles = (0..3)
            .map(|_| Mle::from_fn(num_vars, |_| Fr::random(&mut rng)))
            .collect();
        (poly, mles)
    }

    #[test]
    fn roundtrip_accepts() {
        let (poly, mles) = setup(6, 1);
        let mut tp = Transcript::new(b"rt");
        let out = prove(&poly, mles.clone(), &mut tp);
        let mut tv = Transcript::new(b"rt");
        let verified = verify_with_oracle(&poly, &mles, &out.proof, &mut tv).unwrap();
        assert_eq!(verified.challenges, out.challenges);
    }

    #[test]
    fn tampered_claim_rejected() {
        let (poly, mles) = setup(5, 2);
        let mut tp = Transcript::new(b"rt");
        let mut out = prove(&poly, mles, &mut tp);
        out.proof.claimed_sum += Fr::ONE;
        let mut tv = Transcript::new(b"rt");
        assert_eq!(
            verify(&poly, 5, &out.proof, &mut tv).unwrap_err(),
            SumCheckError::RoundSumMismatch { round: 0 }
        );
    }

    #[test]
    fn tampered_round_rejected() {
        let (poly, mles) = setup(5, 3);
        let mut tp = Transcript::new(b"rt");
        let mut out = prove(&poly, mles, &mut tp);
        out.proof.round_evals[2][1] += Fr::ONE;
        let mut tv = Transcript::new(b"rt");
        assert!(verify(&poly, 5, &out.proof, &mut tv).is_err());
    }

    #[test]
    fn tampered_final_eval_rejected() {
        let (poly, mles) = setup(4, 4);
        let mut tp = Transcript::new(b"rt");
        let mut out = prove(&poly, mles.clone(), &mut tp);
        out.proof.final_mle_evals[0] += Fr::ONE;
        let mut tv = Transcript::new(b"rt");
        assert_eq!(
            verify(&poly, 4, &out.proof, &mut tv).unwrap_err(),
            SumCheckError::FinalEvaluationMismatch
        );
    }

    #[test]
    fn oracle_mismatch_detected() {
        let (poly, mles) = setup(4, 5);
        let mut tp = Transcript::new(b"rt");
        let out = prove(&poly, mles.clone(), &mut tp);
        // Consistent proof but wrong oracle tables.
        let (_, other_mles) = setup(4, 99);
        let mut tv = Transcript::new(b"rt");
        let result = verify_with_oracle(&poly, &other_mles, &out.proof, &mut tv);
        assert!(matches!(result, Err(SumCheckError::OracleMismatch { .. })));
    }

    #[test]
    fn wrong_round_count_rejected() {
        let (poly, mles) = setup(4, 6);
        let mut tp = Transcript::new(b"rt");
        let out = prove(&poly, mles, &mut tp);
        let mut tv = Transcript::new(b"rt");
        assert_eq!(
            verify(&poly, 5, &out.proof, &mut tv).unwrap_err(),
            SumCheckError::RoundCountMismatch {
                got: 4,
                expected: 5
            }
        );
    }

    #[test]
    fn transcript_domain_binding() {
        // A proof made under one domain must not verify under another.
        let (poly, mles) = setup(4, 7);
        let mut tp = Transcript::new(b"domain-a");
        let out = prove(&poly, mles, &mut tp);
        let mut tv = Transcript::new(b"domain-b");
        assert!(verify(&poly, 4, &out.proof, &mut tv).is_err());
    }
}
