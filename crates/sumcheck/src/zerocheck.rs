//! ZeroCheck: proving that a composite polynomial vanishes on the whole
//! hypercube.
//!
//! `Σ_x f(x) = 0` alone is not enough — non-zero gate errors could cancel.
//! ZeroCheck multiplies `f` by the random multilinear `eq(x, r)` (written
//! `f_r` in the paper) so any violation is caught with overwhelming
//! probability (§III-F). In hardware this auxiliary polynomial is fused
//! into the first SumCheck round by the Build-MLE lane; here it is built
//! explicitly with [`Mle::eq_table`].

use zkphire_field::Fr;
use zkphire_poly::{CompositePoly, Mle, MleId};
use zkphire_transcript::Transcript;

use crate::prover::{prove_with_threads, ProverOutput};
use crate::verifier::{verify, SumCheckError, VerifiedSumCheck};

/// Evaluates `eq(x, r) = Π_j (x_j r_j + (1 - x_j)(1 - r_j))` at field
/// points — the closed form the verifier uses instead of trusting an
/// oracle for `f_r`.
///
/// # Panics
///
/// Panics if the two points have different arity.
pub fn eq_eval(x: &[Fr], r: &[Fr]) -> Fr {
    assert_eq!(x.len(), r.len(), "eq_eval arity mismatch");
    let mut acc = Fr::ONE;
    for (&xj, &rj) in x.iter().zip(r) {
        acc *= xj * rj + (Fr::ONE - xj) * (Fr::ONE - rj);
    }
    acc
}

/// Proves that `gate` (a composite whose slot `eq_slot` is reserved for
/// `f_r`) vanishes everywhere on the hypercube.
///
/// `mles` must bind *every* slot including `eq_slot`; whatever is bound
/// there is overwritten with the transcript-derived `eq(x, r)` table,
/// mirroring the paper's on-the-fly construction.
///
/// Returns the prover output plus the ZeroCheck randomness `r`.
pub fn prove_zero_check(
    gate: &CompositePoly,
    eq_slot: MleId,
    mles: Vec<Mle>,
    transcript: &mut Transcript,
) -> (ProverOutput, Vec<Fr>) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    prove_zero_check_with_threads(gate, eq_slot, mles, transcript, threads)
}

/// [`prove_zero_check`] with an explicit worker-thread count (see
/// [`prove_with_threads`]); transcripts are identical for every count.
pub fn prove_zero_check_with_threads(
    gate: &CompositePoly,
    eq_slot: MleId,
    mut mles: Vec<Mle>,
    transcript: &mut Transcript,
    threads: usize,
) -> (ProverOutput, Vec<Fr>) {
    let num_vars = mles.first().expect("at least one MLE").num_vars();
    let r = transcript.challenge_frs(b"zerocheck/r", num_vars);
    mles[eq_slot.0] = Mle::eq_table(&r);
    let out = prove_with_threads(gate, mles, transcript, threads);
    (out, r)
}

/// Verifies a ZeroCheck proof.
///
/// Checks the SumCheck, that the claim is zero, and that the `f_r`
/// evaluation claim matches the closed-form [`eq_eval`]. The remaining
/// evaluation claims (everything except `eq_slot`) are returned for the
/// caller to discharge.
///
/// # Errors
///
/// Returns a [`SumCheckError`] on any failed check; a non-zero claim or a
/// bad `f_r` evaluation surfaces as [`SumCheckError::FinalEvaluationMismatch`]
/// or [`SumCheckError::OracleMismatch`] on the eq slot.
pub fn verify_zero_check(
    gate: &CompositePoly,
    eq_slot: MleId,
    num_vars: usize,
    proof: &crate::prover::SumCheckProof,
    transcript: &mut Transcript,
) -> Result<VerifiedSumCheck, SumCheckError> {
    let r = transcript.challenge_frs(b"zerocheck/r", num_vars);
    if !proof.claimed_sum.is_zero() {
        return Err(SumCheckError::RoundSumMismatch { round: 0 });
    }
    let verified = verify(gate, num_vars, proof, transcript)?;
    let expected_eq = eq_eval(&verified.challenges, &r);
    if verified.mle_evals[eq_slot.0] != expected_eq {
        return Err(SumCheckError::OracleMismatch { slot: eq_slot.0 });
    }
    Ok(verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkphire_field::Fr;
    use zkphire_poly::table1_gate;

    /// Builds a satisfied Vanilla-gate binding: w3 = w1 * w2 with q_M = q_O = 1.
    fn satisfied_vanilla(num_vars: usize, seed: u64) -> (CompositePoly, MleId, Vec<Mle>) {
        let gate = table1_gate(20);
        let mut rng = StdRng::seed_from_u64(seed);
        let w1 = Mle::from_fn(num_vars, |_| Fr::random(&mut rng));
        let w2 = Mle::from_fn(num_vars, |_| Fr::random(&mut rng));
        let w3 = Mle::from_fn(num_vars, |i| w1.evals()[i] * w2.evals()[i]);
        // Slot order: q_L q_R q_M q_O q_C w1 w2 w3 f_r
        let mles = vec![
            Mle::zero(num_vars),
            Mle::zero(num_vars),
            Mle::constant(Fr::ONE, num_vars),
            Mle::constant(Fr::ONE, num_vars),
            Mle::zero(num_vars),
            w1,
            w2,
            w3,
            Mle::zero(num_vars), // placeholder for f_r
        ];
        (gate.poly, MleId(8), mles)
    }

    #[test]
    fn eq_eval_matches_table() {
        let mut rng = StdRng::seed_from_u64(1);
        let r: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let x: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let table = Mle::eq_table(&r);
        assert_eq!(table.evaluate(&x), eq_eval(&x, &r));
    }

    #[test]
    fn satisfied_circuit_verifies() {
        let (gate, eq_slot, mles) = satisfied_vanilla(5, 2);
        let mut tp = Transcript::new(b"zc");
        let (out, _) = prove_zero_check(&gate, eq_slot, mles, &mut tp);
        assert!(out.proof.claimed_sum.is_zero());
        let mut tv = Transcript::new(b"zc");
        verify_zero_check(&gate, eq_slot, 5, &out.proof, &mut tv).unwrap();
    }

    #[test]
    fn violated_gate_rejected() {
        let (gate, eq_slot, mut mles) = satisfied_vanilla(5, 3);
        // Corrupt one wire value: the circuit no longer satisfies the gate.
        let bad = mles[7].evals()[3] + Fr::ONE;
        mles[7].evals_mut()[3] = bad;
        let mut tp = Transcript::new(b"zc");
        let (out, _) = prove_zero_check(&gate, eq_slot, mles, &mut tp);
        // An honest prover produces a non-zero claim; verification fails.
        let mut tv = Transcript::new(b"zc");
        assert!(verify_zero_check(&gate, eq_slot, 5, &out.proof, &mut tv).is_err());
    }

    #[test]
    fn cancellation_attack_caught() {
        // Gate errors +1 and -1 cancel in the plain sum but not under f_r.
        let (gate, eq_slot, mut mles) = satisfied_vanilla(4, 4);
        let e0 = mles[7].evals()[0] + Fr::ONE;
        let e1 = mles[7].evals()[1] - Fr::ONE;
        mles[7].evals_mut()[0] = e0;
        mles[7].evals_mut()[1] = e1;
        // Plain hypercube sum of the raw gate (without f_r) would be zero;
        // with f_r bound to eq the ZeroCheck claim is non-zero.
        let mut tp = Transcript::new(b"zc");
        let (out, _) = prove_zero_check(&gate, eq_slot, mles, &mut tp);
        assert!(!out.proof.claimed_sum.is_zero());
        let mut tv = Transcript::new(b"zc");
        assert!(verify_zero_check(&gate, eq_slot, 4, &out.proof, &mut tv).is_err());
    }

    #[test]
    fn forged_eq_eval_rejected() {
        let (gate, eq_slot, mles) = satisfied_vanilla(4, 5);
        let mut tp = Transcript::new(b"zc");
        let (mut out, _) = prove_zero_check(&gate, eq_slot, mles, &mut tp);
        // Tamper with the claimed f_r evaluation (and nothing else): the
        // final-evaluation check or the eq closed form must catch it.
        out.proof.final_mle_evals[eq_slot.0] += Fr::ONE;
        let mut tv = Transcript::new(b"zc");
        assert!(verify_zero_check(&gate, eq_slot, 4, &out.proof, &mut tv).is_err());
    }
}
