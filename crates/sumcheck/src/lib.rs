//! The SumCheck protocol over composite multilinear polynomials.
//!
//! This crate is the functional core of the paper (§II-C): a prover and
//! verifier for `Σ_x f(x) = C` where `f` is any sum of products of
//! multilinear polynomials — the exact generality the programmable
//! accelerator targets. It provides:
//!
//! * [`prove`] — multithreaded prover (the repository's real CPU baseline);
//! * [`prove_instrumented`] — single-threaded reference that counts every
//!   field operation, validating the analytical [`count_ops`] oracle
//!   shared with the hardware model;
//! * [`verify`] / [`verify_with_oracle`] — round and final-evaluation
//!   checks;
//! * [`zerocheck`] — the randomized `f * eq(x, r)` transformation (§III-F).
//!
//! # Examples
//!
//! ```
//! use zkphire_field::Fr;
//! use zkphire_poly::{expr::var, Mle};
//! use zkphire_sumcheck::{prove, verify_with_oracle};
//! use zkphire_transcript::Transcript;
//!
//! let f = (var(0) * var(1)).expand();
//! let a = Mle::new((0..8).map(Fr::from_u64).collect());
//! let b = Mle::new((8..16).map(Fr::from_u64).collect());
//! let mles = vec![a, b];
//!
//! let mut tp = Transcript::new(b"doc");
//! let out = prove(&f, mles.clone(), &mut tp);
//!
//! let mut tv = Transcript::new(b"doc");
//! verify_with_oracle(&f, &mles, &out.proof, &mut tv).expect("verifies");
//! ```

mod interp;
mod ops;
mod prover;
mod verifier;
pub mod zerocheck;

pub use interp::{interpolate_at, BarycentricWeights};
pub use ops::{coeff_needs_mul, count_ops, SumcheckOps};
pub use prover::{prove, prove_instrumented, prove_with_threads, ProverOutput, SumCheckProof};
pub use verifier::{verify, verify_with_oracle, SumCheckError, VerifiedSumCheck};
pub use zerocheck::{eq_eval, prove_zero_check, prove_zero_check_with_threads, verify_zero_check};
