//! Univariate Lagrange interpolation on the integer nodes `0..=d`.
//!
//! A SumCheck round transmits the round polynomial `s_i` as its evaluations
//! at `0, 1, ..., d` (paper §II-C3: "d+1 evaluations"); the verifier needs
//! `s_i(r)` at the random challenge to form the next round's claim.

use zkphire_field::{batch_inverse, Fr};

/// Evaluates the degree-`d` polynomial through `(j, values[j])` for
/// `j = 0..=d` at the point `r`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn interpolate_at(values: &[Fr], r: Fr) -> Fr {
    assert!(!values.is_empty(), "need at least one evaluation");
    let d = values.len() - 1;
    if d == 0 {
        return values[0];
    }

    // If r is itself one of the nodes, return the tabulated value (the
    // barycentric weights below would divide by zero).
    for (j, &v) in values.iter().enumerate() {
        if r == Fr::from_u64(j as u64) {
            return v;
        }
    }

    // L_j(r) = prod_{k != j} (r - k) / (j - k)
    // Numerators via prefix/suffix products; denominators are factorials.
    let nodes: Vec<Fr> = (0..=d as u64).map(Fr::from_u64).collect();
    let mut prefix = vec![Fr::ONE; d + 2];
    for j in 0..=d {
        prefix[j + 1] = prefix[j] * (r - nodes[j]);
    }
    let mut suffix = vec![Fr::ONE; d + 2];
    for j in (0..=d).rev() {
        suffix[j] = suffix[j + 1] * (r - nodes[j]);
    }

    // denom_j = j! * (d-j)! * (-1)^(d-j)
    let mut denoms: Vec<Fr> = Vec::with_capacity(d + 1);
    let mut factorials = vec![Fr::ONE; d + 1];
    for j in 1..=d {
        factorials[j] = factorials[j - 1] * Fr::from_u64(j as u64);
    }
    for j in 0..=d {
        let mut denom = factorials[j] * factorials[d - j];
        if (d - j) % 2 == 1 {
            denom = -denom;
        }
        denoms.push(denom);
    }
    batch_inverse(&mut denoms);

    let mut acc = Fr::ZERO;
    for j in 0..=d {
        acc += values[j] * prefix[j] * suffix[j + 1] * denoms[j];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Evaluates `coeffs` (monomial basis, low-to-high) at `x`.
    fn horner(coeffs: &[Fr], x: Fr) -> Fr {
        coeffs.iter().rev().fold(Fr::ZERO, |acc, &c| acc * x + c)
    }

    #[test]
    fn reconstructs_polynomial() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in 1..=12 {
            let coeffs: Vec<Fr> = (0..=d).map(|_| Fr::random(&mut rng)).collect();
            let values: Vec<Fr> = (0..=d as u64)
                .map(|j| horner(&coeffs, Fr::from_u64(j)))
                .collect();
            let r = Fr::random(&mut rng);
            assert_eq!(interpolate_at(&values, r), horner(&coeffs, r), "degree {d}");
        }
    }

    #[test]
    fn exact_node_evaluation() {
        let values: Vec<Fr> = [3u64, 1, 4, 1, 5]
            .iter()
            .map(|&v| Fr::from_u64(v))
            .collect();
        for (j, &v) in values.iter().enumerate() {
            assert_eq!(interpolate_at(&values, Fr::from_u64(j as u64)), v);
        }
    }

    #[test]
    fn constant_polynomial() {
        let v = Fr::from_u64(7);
        assert_eq!(interpolate_at(&[v], Fr::from_u64(123)), v);
    }

    #[test]
    fn linear_polynomial() {
        // p(x) = 2x + 5 through (0,5), (1,7)
        let values = [Fr::from_u64(5), Fr::from_u64(7)];
        assert_eq!(interpolate_at(&values, Fr::from_u64(10)), Fr::from_u64(25));
    }
}
