//! Univariate Lagrange interpolation on the integer nodes `0..=d`.
//!
//! A SumCheck round transmits the round polynomial `s_i` as its evaluations
//! at `0, 1, ..., d` (paper §II-C3: "d+1 evaluations"); the verifier needs
//! `s_i(r)` at the random challenge to form the next round's claim.
//!
//! The node set is the same in every round, so the barycentric weights
//! `w_j = 1 / (j! (d-j)! (-1)^(d-j))` are precomputed once per proof with
//! a single [`batch_inverse`] ([`BarycentricWeights`]) and each round's
//! evaluation then costs only multiplications and additions — zero field
//! inversions, the exact trade the paper's ModInv unit makes (§IV-B5).

use zkphire_field::{batch_inverse, Fr};

/// Precomputed barycentric weights for the nodes `0..=d`.
///
/// Constructing this costs one batch inversion; every subsequent
/// [`interpolate`](Self::interpolate) call is inversion-free.
#[derive(Clone, Debug)]
pub struct BarycentricWeights {
    /// `weights[j] = 1 / (j! (d-j)! (-1)^(d-j))`.
    weights: Vec<Fr>,
    /// The nodes `0..=d` as field elements, cached for the numerators.
    nodes: Vec<Fr>,
}

impl BarycentricWeights {
    /// Precomputes the weights for the degree-`d` node set `0..=d`.
    pub fn new(degree: usize) -> Self {
        let d = degree;
        let nodes: Vec<Fr> = (0..=d as u64).map(Fr::from_u64).collect();
        // denom_j = j! * (d-j)! * (-1)^(d-j), inverted in one batch.
        let mut factorials = vec![Fr::ONE; d + 1];
        for j in 1..=d {
            factorials[j] = factorials[j - 1] * Fr::from_u64(j as u64);
        }
        let mut weights: Vec<Fr> = (0..=d)
            .map(|j| {
                let denom = factorials[j] * factorials[d - j];
                if (d - j) % 2 == 1 {
                    -denom
                } else {
                    denom
                }
            })
            .collect();
        batch_inverse(&mut weights);
        Self { weights, nodes }
    }

    /// The degree `d` this weight set interpolates.
    pub fn degree(&self) -> usize {
        self.weights.len() - 1
    }

    /// Evaluates the degree-`d` polynomial through `(j, values[j])` at `r`
    /// without performing any field inversion.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != degree + 1`.
    pub fn interpolate(&self, values: &[Fr], r: Fr) -> Fr {
        assert_eq!(
            values.len(),
            self.weights.len(),
            "evaluation count must match the weight set"
        );
        let d = self.degree();
        if d == 0 {
            return values[0];
        }

        // If r is itself one of the nodes, return the tabulated value (the
        // barycentric numerators below would all vanish).
        for (j, &v) in values.iter().enumerate() {
            if r == self.nodes[j] {
                return v;
            }
        }

        // L_j(r) = w_j * prod_{k != j} (r - k), numerators via
        // prefix/suffix products.
        let mut prefix = vec![Fr::ONE; d + 2];
        for j in 0..=d {
            prefix[j + 1] = prefix[j] * (r - self.nodes[j]);
        }
        let mut suffix = vec![Fr::ONE; d + 2];
        for j in (0..=d).rev() {
            suffix[j] = suffix[j + 1] * (r - self.nodes[j]);
        }

        let mut acc = Fr::ZERO;
        for j in 0..=d {
            acc += values[j] * prefix[j] * suffix[j + 1] * self.weights[j];
        }
        acc
    }
}

/// Evaluates the degree-`d` polynomial through `(j, values[j])` for
/// `j = 0..=d` at the point `r`.
///
/// One-shot convenience over [`BarycentricWeights`]; callers evaluating
/// many rounds of the same degree should construct the weights once.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn interpolate_at(values: &[Fr], r: Fr) -> Fr {
    assert!(!values.is_empty(), "need at least one evaluation");
    BarycentricWeights::new(values.len() - 1).interpolate(values, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Evaluates `coeffs` (monomial basis, low-to-high) at `x`.
    fn horner(coeffs: &[Fr], x: Fr) -> Fr {
        coeffs.iter().rev().fold(Fr::ZERO, |acc, &c| acc * x + c)
    }

    #[test]
    fn reconstructs_polynomial() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in 1..=12 {
            let coeffs: Vec<Fr> = (0..=d).map(|_| Fr::random(&mut rng)).collect();
            let values: Vec<Fr> = (0..=d as u64)
                .map(|j| horner(&coeffs, Fr::from_u64(j)))
                .collect();
            let r = Fr::random(&mut rng);
            assert_eq!(interpolate_at(&values, r), horner(&coeffs, r), "degree {d}");
        }
    }

    #[test]
    fn cached_weights_match_one_shot() {
        let mut rng = StdRng::seed_from_u64(2);
        for d in [1usize, 3, 7, 31] {
            let weights = BarycentricWeights::new(d);
            assert_eq!(weights.degree(), d);
            for _ in 0..4 {
                let values: Vec<Fr> = (0..=d).map(|_| Fr::random(&mut rng)).collect();
                let r = Fr::random(&mut rng);
                assert_eq!(
                    weights.interpolate(&values, r),
                    interpolate_at(&values, r),
                    "degree {d}"
                );
            }
        }
    }

    #[test]
    fn exact_node_evaluation() {
        let values: Vec<Fr> = [3u64, 1, 4, 1, 5]
            .iter()
            .map(|&v| Fr::from_u64(v))
            .collect();
        for (j, &v) in values.iter().enumerate() {
            assert_eq!(interpolate_at(&values, Fr::from_u64(j as u64)), v);
        }
    }

    #[test]
    fn constant_polynomial() {
        let v = Fr::from_u64(7);
        assert_eq!(interpolate_at(&[v], Fr::from_u64(123)), v);
    }

    #[test]
    fn linear_polynomial() {
        // p(x) = 2x + 5 through (0,5), (1,7)
        let values = [Fr::from_u64(5), Fr::from_u64(7)];
        assert_eq!(interpolate_at(&values, Fr::from_u64(10)), Fr::from_u64(25));
    }
}
