//! Analytical operation counts for a SumCheck execution.
//!
//! The paper's performance model and its CPU/GPU baselines are all driven
//! by how many 255-bit modular multiplications a SumCheck performs
//! (§V, §VI). [`count_ops`] derives those counts from the composite
//! polynomial's structure; the instrumented reference prover
//! ([`prove_instrumented`](crate::prove_instrumented)) validates the
//! formulas operation-for-operation.

use zkphire_field::Fr;
use zkphire_poly::CompositePoly;

/// Field-multiplication counts for one complete SumCheck, split by the
/// hardware structure that would execute them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SumcheckOps {
    /// Multiplications inside product lanes (term products and coefficient
    /// scaling), summed over all rounds and extension points.
    pub product_muls: u64,
    /// Multiplications inside MLE Update units (one per updated entry).
    pub update_muls: u64,
    /// Field additions (extensions are add-only — the Extension Engines
    /// contain no multipliers).
    pub adds: u64,
}

impl SumcheckOps {
    /// Total multiplications (the paper's primary cost metric).
    pub fn total_muls(&self) -> u64 {
        self.product_muls + self.update_muls
    }
}

/// Returns `true` when multiplying by this coefficient costs a real
/// multiplication (±1 is free: it is an add/subtract in the accumulator).
pub fn coeff_needs_mul(coeff: &Fr) -> bool {
    !(coeff.is_one() || (-*coeff).is_one())
}

/// Counts the field operations of a SumCheck over `poly` on `num_vars`
/// variables, matching the reference prover exactly.
///
/// Model per round `i` (table size `2^(µ-i+1)`, `half = 2^(µ-i)` pairs,
/// `K = degree + 1` extension points):
///
/// * extensions: add-only (per unique MLE: 1 diff + K-2 increments);
/// * products: per pair and per extension point, each term multiplies its
///   factors (`deg_t - 1` muls) plus one more when the coefficient is not
///   ±1;
/// * update: after the round, each MLE slot is fixed at the challenge —
///   one mul per surviving entry.
pub fn count_ops(poly: &CompositePoly, num_vars: usize) -> SumcheckOps {
    let k = poly.degree().max(1) as u64 + 1;
    let unique = poly.unique_mles().len() as u64;
    let num_mles = poly.num_mles() as u64;

    // Per-pair product muls (independent of the round).
    let mut product_muls_per_pair = 0u64;
    for term in poly.terms() {
        if term.degree() == 0 {
            continue; // constant terms add, never multiply
        }
        let factor_muls = term.degree() as u64 - 1;
        let coeff_mul = u64::from(coeff_needs_mul(&term.coeff));
        product_muls_per_pair += k * (factor_muls + coeff_mul);
    }
    // Per-pair adds: per unique MLE one diff + (K-2) extension increments
    // (the first two points are read directly); per term per point one
    // accumulate add.
    let ext_adds_per_pair = unique * (1 + k.saturating_sub(2));
    let acc_adds_per_pair = k * poly.num_terms() as u64;

    let mut ops = SumcheckOps::default();
    for round in 1..=num_vars {
        let half = 1u64 << (num_vars - round);
        ops.product_muls += half * product_muls_per_pair;
        ops.adds += half * (ext_adds_per_pair + acc_adds_per_pair);
        // MLE Update: every slot halves after the challenge (1 mul + 2 adds
        // per surviving entry: f0 + r*(f1-f0)).
        ops.update_muls += num_mles * half;
        ops.adds += num_mles * half * 2;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::{MleId, Term};

    fn two_term_poly() -> CompositePoly {
        // f = a*b*e + 3*c*e  (degrees 3 and 2, one non-unit coefficient)
        CompositePoly::new(vec![
            Term {
                coeff: Fr::ONE,
                scalars: vec![],
                factors: vec![MleId(0), MleId(1), MleId(2)],
            },
            Term {
                coeff: Fr::from_u64(3),
                scalars: vec![],
                factors: vec![MleId(3), MleId(2)],
            },
        ])
    }

    #[test]
    fn counts_scale_linearly_with_table_size() {
        let poly = two_term_poly();
        let small = count_ops(&poly, 4);
        let large = count_ops(&poly, 5);
        // One extra round of double the size: totals roughly double
        // (pairs per sumcheck are 2^µ - 1, so the ratio is slightly > 2).
        assert!(large.total_muls() > 2 * small.total_muls() - small.total_muls() / 2);
        assert!(large.total_muls() < 2 * small.total_muls() + small.total_muls() / 4);
    }

    #[test]
    fn manual_count_small_case() {
        let poly = two_term_poly();
        // K = 4; term 1: 2 factor muls, unit coeff -> 4*2 = 8 per pair;
        // term 2: 1 factor mul + 1 coeff mul -> 4*2 = 8 per pair.
        // Rounds over µ=3: halves 4, 2, 1 -> 7 pairs total.
        let ops = count_ops(&poly, 3);
        assert_eq!(ops.product_muls, 7 * 16);
        // 4 MLE slots, updates at halves 4+2+1 = 7 each.
        assert_eq!(ops.update_muls, 4 * 7);
    }

    #[test]
    fn minus_one_coefficient_is_free() {
        assert!(!coeff_needs_mul(&Fr::ONE));
        assert!(!coeff_needs_mul(&(-Fr::ONE)));
        assert!(coeff_needs_mul(&Fr::from_u64(2)));
        assert!(coeff_needs_mul(&(-Fr::from_u64(5))));
    }
}
