//! # zkphire-telemetry
//!
//! Deterministic tracing, profiling hooks, and timeline export for the
//! zkPHIRE prover and fleet. Three recorders, two time domains:
//!
//! 1. **Wall-clock profiler** ([`span`] / [`counter_add`] /
//!    [`hist_record`]): ambient instrumentation for the prover hot
//!    path. Feature-gated (`record`) static dispatch — disabled builds
//!    compile every hook to nothing; enabled builds still gate on a
//!    runtime atomic ([`set_enabled`]) and record into thread-local
//!    buffers with no allocation on the hot path. Drain a [`Profile`]
//!    and export it with [`profile_to_chrome`] / [`profile_to_jsonl`].
//! 2. **Sim-time timeline** ([`SimTimeline`]): explicit, always-compiled
//!    data the fleet DES opts into at runtime. Every timestamp is
//!    deterministic simulated time, so traces are byte-identical per
//!    seed and reconcile *bitwise* with the simulator's own metrics
//!    (see the module docs in [`timeline`]).
//! 3. **Wall-clock timeline** ([`WallTimeline`]): the live proving
//!    service's counterpart to the sim timeline. Lifecycle hooks
//!    ([`wall_event`]) ride the same feature-gated thread-local buffers
//!    as the profiler; the drained events rebuild into per-request
//!    lifecycle phases, per-worker busy spans, and queue-depth series
//!    that reconcile with the service's own drain summary (see the
//!    module docs in [`wall`]).
//!
//! Plus [`CountingAlloc`], a counting global allocator for the prover's
//! allocation counter (active only while recording).
//!
//! See `docs/OBSERVABILITY.md` for the design rationale, overhead
//! budget, trace schemas, and a Perfetto how-to.

pub mod alloc;
pub mod profile;
pub mod timeline;
pub mod trace;
pub mod wall;

pub use alloc::{alloc_counts, reset_alloc_counts, CountingAlloc};
pub use profile::{
    counter_add, drain, hist_merge, hist_record, is_enabled, reset, set_enabled, span, wall_event,
    Histogram, Profile, Span, SpanRecord,
};
pub use timeline::{
    AdmissionEvent, AdmissionOutcome, ChipPhase, ChipSpan, SeriesPoint, SimTimeline,
};
pub use trace::{escape_json, json_num, profile_to_chrome, profile_to_jsonl, ChromeTrace};
pub use wall::{Outcome, WallEvent, WallEventKind, WallTimeline};
