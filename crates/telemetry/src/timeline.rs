//! Sim-time timelines for the fleet DES.
//!
//! Unlike the wall-clock profiler (feature-gated, ambient), the
//! timeline is plain data the simulator opts into at runtime: every
//! timestamp is deterministic simulated milliseconds, so a recorded
//! timeline is byte-identical for a given seed at any thread count and
//! can be golden-pinned.
//!
//! # Reconciliation by construction
//!
//! The timeline never re-derives the metrics it explains — it *replays
//! the engine's own floating-point operations in the engine's order*:
//!
//! * [`SimTimeline::tick`] accumulates `provisioned × Δt` with the same
//!   `+=`/`*` sequence the engine uses for its chip-time integral, so
//!   [`SimTimeline::provisioned_integral_ms`] is **bitwise equal** to
//!   the engine's `chip_time_integral_ms` (hence to reported
//!   chip-seconds), not merely close.
//! * [`SimTimeline::begin_busy`] adds the planned service time and
//!   [`SimTimeline::interrupt_busy`] subtracts the unrendered remainder
//!   — the same two ops, in the same order, on the same values as the
//!   engine's per-chip `busy_ms` — so [`SimTimeline::busy_ms`] is
//!   bitwise equal to the per-chip busy the summary's utilization is
//!   computed from.
//!
//! f64 addition is not associative, so "integrate the exported spans"
//! would drift in the last ulp; replaying the op sequence cannot.

use crate::trace::{escape_json, json_num, ChromeTrace};

/// What a chip-track span represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChipPhase {
    /// Serving a batch (dispatch → completion or interruption).
    Busy,
    /// Failed (failure → repair). Idle is the gap between spans.
    Failed,
}

impl ChipPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            ChipPhase::Busy => "busy",
            ChipPhase::Failed => "failed",
        }
    }
}

/// One closed interval on a chip's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipSpan {
    pub chip: u32,
    pub phase: ChipPhase,
    pub start_ms: f64,
    pub end_ms: f64,
    /// Requests in the batch (0 for failure spans).
    pub batch_size: u32,
}

/// One sample of a step time series (value holds until the next point).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    pub t_ms: f64,
    pub value: f64,
}

/// An admission decision, per tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Fresh arrival admitted to the queue.
    Admitted,
    /// Fresh arrival refused (terminal).
    Rejected,
    /// Parked retry re-admitted to the queue.
    RetryAdmitted,
    /// Parked retry refused again (re-parked or lost).
    RetryRejected,
}

impl AdmissionOutcome {
    pub fn as_str(self) -> &'static str {
        match self {
            AdmissionOutcome::Admitted => "admitted",
            AdmissionOutcome::Rejected => "rejected",
            AdmissionOutcome::RetryAdmitted => "retry_admitted",
            AdmissionOutcome::RetryRejected => "retry_rejected",
        }
    }
}

/// A recorded admission decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionEvent {
    pub t_ms: f64,
    pub id: u64,
    pub tenant: u64,
    pub outcome: AdmissionOutcome,
}

#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    phase: ChipPhase,
    start_ms: f64,
    batch_size: u32,
}

/// The fleet simulator's deterministic observability record: per-chip
/// busy/failed spans, queue/retry/provisioned step series, and
/// per-tenant admission decisions, all in sim time.
#[derive(Clone, Debug)]
pub struct SimTimeline {
    num_chips: usize,
    spans: Vec<ChipSpan>,
    open: Vec<Option<OpenSpan>>,
    busy_ms: Vec<f64>,
    last_tick_ms: f64,
    provisioned_integral_ms: f64,
    provisioned: Vec<SeriesPoint>,
    queue_depth: Vec<SeriesPoint>,
    retry_depth: Vec<SeriesPoint>,
    admissions: Vec<AdmissionEvent>,
    makespan_ms: f64,
}

impl SimTimeline {
    pub fn new(num_chips: usize) -> Self {
        Self {
            num_chips,
            spans: Vec::new(),
            open: vec![None; num_chips],
            busy_ms: vec![0.0; num_chips],
            last_tick_ms: 0.0,
            provisioned_integral_ms: 0.0,
            provisioned: Vec::new(),
            queue_depth: Vec::new(),
            retry_depth: Vec::new(),
            admissions: Vec::new(),
            makespan_ms: 0.0,
        }
    }

    /// Advances sim time to `now_ms` with `provisioned` chips counted
    /// over the elapsed interval. Call exactly where (and with exactly
    /// the values) the engine updates its own chip-time integral: the
    /// accumulation here is the same op sequence, so the results match
    /// bitwise.
    pub fn tick(&mut self, now_ms: f64, provisioned: usize) {
        self.provisioned_integral_ms += provisioned as f64 * (now_ms - self.last_tick_ms);
        self.last_tick_ms = now_ms;
        push_step(&mut self.provisioned, now_ms, provisioned as f64);
    }

    /// A batch dispatched: opens a busy span and counts the planned
    /// service time (the engine's `busy_ms += service_ms`).
    pub fn begin_busy(&mut self, chip: usize, now_ms: f64, batch_size: usize, service_ms: f64) {
        self.busy_ms[chip] += service_ms;
        self.open_span(chip, now_ms, ChipPhase::Busy, batch_size as u32);
    }

    /// The in-flight batch completed: closes the busy span.
    pub fn complete_busy(&mut self, chip: usize, now_ms: f64) {
        self.close_span(chip, now_ms, ChipPhase::Busy);
    }

    /// The in-flight batch was lost to a failure: closes the busy span
    /// at the interruption and uncounts the service time the chip never
    /// rendered (the engine's `busy_ms -= remaining`).
    pub fn interrupt_busy(&mut self, chip: usize, now_ms: f64, unrendered_ms: f64) {
        self.busy_ms[chip] -= unrendered_ms;
        self.close_span(chip, now_ms, ChipPhase::Busy);
    }

    /// The chip failed: opens a failure span.
    pub fn begin_failed(&mut self, chip: usize, now_ms: f64) {
        self.open_span(chip, now_ms, ChipPhase::Failed, 0);
    }

    /// The chip repaired: closes its failure span.
    pub fn end_failed(&mut self, chip: usize, now_ms: f64) {
        self.close_span(chip, now_ms, ChipPhase::Failed);
    }

    /// Samples the shared queue depth (deduplicated step series).
    pub fn sample_queue_depth(&mut self, now_ms: f64, depth: usize) {
        push_step(&mut self.queue_depth, now_ms, depth as f64);
    }

    /// Samples the retry-parking depth (deduplicated step series).
    pub fn sample_retry_depth(&mut self, now_ms: f64, depth: usize) {
        push_step(&mut self.retry_depth, now_ms, depth as f64);
    }

    /// Records an admission decision.
    pub fn admission(&mut self, t_ms: f64, id: u64, tenant: u64, outcome: AdmissionOutcome) {
        self.admissions.push(AdmissionEvent {
            t_ms,
            id,
            tenant,
            outcome,
        });
    }

    /// Ends recording: closes any span still open (a chip down at drain
    /// time) at `makespan_ms` and stamps the horizon used for export.
    pub fn finalize(&mut self, makespan_ms: f64) {
        self.makespan_ms = makespan_ms;
        for chip in 0..self.num_chips {
            if let Some(open) = self.open[chip].take() {
                self.spans.push(ChipSpan {
                    chip: chip as u32,
                    phase: open.phase,
                    start_ms: open.start_ms,
                    end_ms: makespan_ms.max(open.start_ms),
                    batch_size: open.batch_size,
                });
            }
        }
    }

    fn open_span(&mut self, chip: usize, now_ms: f64, phase: ChipPhase, batch_size: u32) {
        debug_assert!(
            self.open[chip].is_none(),
            "chip {chip} opened a {} span over an open one",
            phase.as_str()
        );
        self.open[chip] = Some(OpenSpan {
            phase,
            start_ms: now_ms,
            batch_size,
        });
    }

    fn close_span(&mut self, chip: usize, now_ms: f64, phase: ChipPhase) {
        let Some(open) = self.open[chip].take() else {
            debug_assert!(false, "chip {chip} closed a span it never opened");
            return;
        };
        debug_assert_eq!(open.phase, phase, "chip {chip} span phase mismatch");
        self.spans.push(ChipSpan {
            chip: chip as u32,
            phase: open.phase,
            start_ms: open.start_ms,
            end_ms: now_ms,
            batch_size: open.batch_size,
        });
    }

    // -- accessors ------------------------------------------------------

    pub fn num_chips(&self) -> usize {
        self.num_chips
    }

    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Closed chip spans, in close order.
    pub fn chip_spans(&self) -> &[ChipSpan] {
        &self.spans
    }

    /// Busy milliseconds accumulated for one chip — bitwise equal to
    /// the engine's per-chip `busy_ms` accumulator (same ops, same
    /// order, same values).
    pub fn busy_ms(&self, chip: usize) -> f64 {
        self.busy_ms[chip]
    }

    /// ∫ provisioned(t) dt over the run — bitwise equal to the engine's
    /// `chip_time_integral_ms`.
    pub fn provisioned_integral_ms(&self) -> f64 {
        self.provisioned_integral_ms
    }

    pub fn queue_depth_series(&self) -> &[SeriesPoint] {
        &self.queue_depth
    }

    pub fn retry_depth_series(&self) -> &[SeriesPoint] {
        &self.retry_depth
    }

    pub fn provisioned_series(&self) -> &[SeriesPoint] {
        &self.provisioned
    }

    pub fn admissions(&self) -> &[AdmissionEvent] {
        &self.admissions
    }

    /// Busy time for one chip summed from the exported spans (f64 sum
    /// over close order). Within float tolerance of [`Self::busy_ms`]
    /// when no batch was interrupted; used by tests to cross-check the
    /// span record against the accumulator it visualizes.
    pub fn span_busy_ms(&self, chip: usize) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.chip == chip as u32 && s.phase == ChipPhase::Busy)
            .map(|s| s.end_ms - s.start_ms)
            .sum()
    }

    // -- export ---------------------------------------------------------

    /// Chrome trace-event JSON: one track per chip (busy/failed spans),
    /// counter tracks for the step series, admission decisions as
    /// instants on a dedicated track. Timestamps are sim-time µs.
    pub fn to_chrome_trace(&self) -> String {
        let mut t = ChromeTrace::new();
        for chip in 0..self.num_chips {
            t.thread_name(chip as u32, &format!("chip {chip}"));
        }
        let admission_tid = self.num_chips as u32;
        t.thread_name(admission_tid, "admission");
        for s in &self.spans {
            t.complete(
                s.phase.as_str(),
                "fleet",
                s.start_ms * 1000.0,
                (s.end_ms - s.start_ms) * 1000.0,
                s.chip,
                &[("batch", s.batch_size.to_string())],
            );
        }
        for (name, series) in [
            ("queue_depth", &self.queue_depth),
            ("retry_depth", &self.retry_depth),
            ("provisioned_chips", &self.provisioned),
        ] {
            for p in series.iter() {
                t.counter(name, p.t_ms * 1000.0, p.value);
            }
        }
        for a in &self.admissions {
            t.instant(
                a.outcome.as_str(),
                a.t_ms * 1000.0,
                admission_tid,
                &[("id", a.id.to_string()), ("tenant", a.tenant.to_string())],
            );
        }
        t.finish()
    }

    /// Compact JSONL: a meta line, then chip spans, series points, and
    /// admissions — all sim-time, deterministic per seed.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"kind\":\"meta\",\"chips\":{},\"makespan_ms\":{},\"provisioned_integral_ms\":{}}}\n",
            self.num_chips,
            json_num(self.makespan_ms),
            json_num(self.provisioned_integral_ms),
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"kind\":\"chip_span\",\"chip\":{},\"phase\":\"{}\",\"start_ms\":{},\"end_ms\":{},\"batch\":{}}}\n",
                s.chip,
                s.phase.as_str(),
                json_num(s.start_ms),
                json_num(s.end_ms),
                s.batch_size,
            ));
        }
        for (name, series) in [
            ("queue_depth", &self.queue_depth),
            ("retry_depth", &self.retry_depth),
            ("provisioned_chips", &self.provisioned),
        ] {
            for p in series.iter() {
                out.push_str(&format!(
                    "{{\"kind\":\"series\",\"name\":\"{}\",\"t_ms\":{},\"value\":{}}}\n",
                    escape_json(name),
                    json_num(p.t_ms),
                    json_num(p.value),
                ));
            }
        }
        for a in &self.admissions {
            out.push_str(&format!(
                "{{\"kind\":\"admission\",\"t_ms\":{},\"id\":{},\"tenant\":{},\"outcome\":\"{}\"}}\n",
                json_num(a.t_ms),
                a.id,
                a.tenant,
                a.outcome.as_str(),
            ));
        }
        out
    }
}

/// Appends a step-series point, skipping consecutive duplicates of the
/// same value (the series semantics are "holds until the next point").
fn push_step(series: &mut Vec<SeriesPoint>, t_ms: f64, value: f64) {
    if let Some(last) = series.last_mut() {
        if last.value == value {
            return;
        }
        if last.t_ms == t_ms {
            // Same instant, newer value wins.
            last.value = value;
            return;
        }
    }
    series.push(SeriesPoint { t_ms, value });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_replays_integral() {
        let mut tl = SimTimeline::new(2);
        // Mirror an engine accumulating by hand.
        let mut engine_integral = 0.0f64;
        let mut last = 0.0f64;
        for (now, prov) in [(1.5, 2usize), (3.25, 2), (7.125, 1), (9.0, 2)] {
            engine_integral += prov as f64 * (now - last);
            last = now;
            tl.tick(now, prov);
        }
        assert_eq!(
            tl.provisioned_integral_ms().to_bits(),
            engine_integral.to_bits(),
            "integral must replay bitwise"
        );
        // Dedup: 4 ticks, 3 distinct values -> 3 points.
        assert_eq!(tl.provisioned_series().len(), 3);
    }

    #[test]
    fn busy_accumulator_mirrors_engine_ops() {
        let mut tl = SimTimeline::new(1);
        let service = 10.7f64;
        tl.begin_busy(0, 5.0, 4, service);
        // Fail at t=9: engine does busy_ms -= batch_done - now.
        let unrendered = (5.0 + service) - 9.0;
        tl.interrupt_busy(0, 9.0, unrendered);
        tl.begin_failed(0, 9.0);
        tl.end_failed(0, 20.0);
        tl.begin_busy(0, 21.0, 2, 3.5);
        tl.complete_busy(0, 24.5);
        tl.finalize(24.5);

        let mut engine_busy = 0.0f64;
        engine_busy += service;
        engine_busy -= unrendered;
        engine_busy += 3.5;
        assert_eq!(tl.busy_ms(0).to_bits(), engine_busy.to_bits());

        let spans = tl.chip_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].phase, ChipPhase::Busy);
        assert_eq!((spans[0].start_ms, spans[0].end_ms), (5.0, 9.0));
        assert_eq!(spans[1].phase, ChipPhase::Failed);
        assert_eq!((spans[1].start_ms, spans[1].end_ms), (9.0, 20.0));
        // Span-integral cross-check: interrupted busy counts wall 4.0,
        // accumulator counts 10.7 - 6.7 = 4.0 — equal here by design.
        assert!((tl.span_busy_ms(0) - tl.busy_ms(0)).abs() < 1e-12);
    }

    #[test]
    fn finalize_closes_open_failure() {
        let mut tl = SimTimeline::new(1);
        tl.begin_failed(0, 3.0);
        tl.finalize(8.0);
        let spans = tl.chip_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, ChipPhase::Failed);
        assert_eq!(spans[0].end_ms, 8.0);
    }

    #[test]
    fn exports_are_deterministic_and_parseable_shape() {
        let mut tl = SimTimeline::new(2);
        tl.tick(1.0, 2);
        tl.begin_busy(0, 1.0, 3, 4.0);
        tl.sample_queue_depth(1.0, 5);
        tl.admission(1.0, 42, 7, AdmissionOutcome::Admitted);
        tl.complete_busy(0, 5.0);
        tl.tick(5.0, 2);
        tl.finalize(5.0);
        let a = tl.to_jsonl();
        let b = tl.clone().to_jsonl();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"kind\":\"meta\""));
        assert!(a.contains("\"kind\":\"chip_span\""));
        assert!(a.contains("\"outcome\":\"admitted\""));
        let chrome = tl.to_chrome_trace();
        assert!(chrome.contains("\"name\":\"chip 0\""));
        assert!(chrome.contains("\"name\":\"busy\""));
        assert!(chrome.contains("\"name\":\"queue_depth\""));
        assert!(chrome.contains("\"name\":\"admission\""));
    }

    #[test]
    fn step_series_dedups() {
        let mut s = Vec::new();
        push_step(&mut s, 0.0, 1.0);
        push_step(&mut s, 1.0, 1.0);
        push_step(&mut s, 2.0, 3.0);
        push_step(&mut s, 2.0, 4.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].value, 4.0);
    }
}
