//! Trace export: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a compact JSONL stream.
//!
//! Everything is hand-rolled string building, matching the rest of the
//! workspace (no serde). Numbers are formatted with Rust's `Display`,
//! which emits the shortest round-trip decimal — deterministic across
//! platforms, so sim-time traces can be golden-pinned byte-for-byte.

use crate::profile::Profile;

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`Display` shortest form; non-finite
/// values are clamped to 0 — they have no JSON representation).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Incrementally builds a Chrome trace-event JSON document.
///
/// The produced document is `{"traceEvents":[...],"displayTimeUnit":"ms"}`
/// with events in insertion order. Timestamps (`ts`, `dur`) are in
/// microseconds per the trace-event spec.
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a complete (`ph:"X"`) event: a named interval on a track.
    /// `args` are extra `key:value` pairs, values pre-rendered as JSON.
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        tid: u32,
        args: &[(&str, String)],
    ) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}{}}}",
            escape_json(name),
            escape_json(cat),
            json_num(ts_us),
            json_num(dur_us),
            tid,
            render_args(args),
        ));
    }

    /// Adds a counter (`ph:"C"`) sample; Perfetto renders these as a
    /// stacked time series per counter name.
    pub fn counter(&mut self, name: &str, ts_us: f64, value: f64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":{}}}}}",
            escape_json(name),
            json_num(ts_us),
            json_num(value),
        ));
    }

    /// Adds an instant (`ph:"i"`) event with thread scope.
    pub fn instant(&mut self, name: &str, ts_us: f64, tid: u32, args: &[(&str, String)]) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}{}}}",
            escape_json(name),
            json_num(ts_us),
            tid,
            render_args(args),
        ));
    }

    /// Opens an async (`ph:"b"`) interval. Async events pair by
    /// `(cat, id)` across tracks, so Perfetto renders one lane per id —
    /// the natural shape for a request lifecycle that hops threads.
    pub fn async_begin(
        &mut self,
        name: &str,
        cat: &str,
        id: u64,
        ts_us: f64,
        args: &[(&str, String)],
    ) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"b\",\"id\":{},\"ts\":{},\"pid\":1,\"tid\":0{}}}",
            escape_json(name),
            escape_json(cat),
            id,
            json_num(ts_us),
            render_args(args),
        ));
    }

    /// Closes the async (`ph:"e"`) interval opened by [`Self::async_begin`]
    /// with the same `(name, cat, id)`.
    pub fn async_end(&mut self, name: &str, cat: &str, id: u64, ts_us: f64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"e\",\"id\":{},\"ts\":{},\"pid\":1,\"tid\":0}}",
            escape_json(name),
            escape_json(cat),
            id,
            json_num(ts_us),
        ));
    }

    /// Names a track (`ph:"M"` thread_name metadata).
    pub fn thread_name(&mut self, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            escape_json(name),
        ));
    }

    /// Serializes the document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

fn render_args(args: &[(&str, String)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
        .collect();
    format!(",\"args\":{{{}}}", body.join(","))
}

/// Renders a wall-clock [`Profile`] as a Chrome trace document: one
/// track per recorder tid, spans as complete events, counters and
/// histogram summaries as trailing counter samples.
pub fn profile_to_chrome(profile: &Profile) -> String {
    let mut trace = ChromeTrace::new();
    let mut tids: Vec<u32> = profile.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for &tid in &tids {
        let label = if tid == 0 {
            "prover main".to_string()
        } else {
            format!("worker {tid}")
        };
        trace.thread_name(tid, &label);
    }
    for s in &profile.spans {
        trace.complete(
            s.name,
            "prover",
            s.start_ns as f64 / 1000.0,
            s.dur_ns as f64 / 1000.0,
            s.tid,
            &[("depth", s.depth.to_string())],
        );
    }
    let end_us = profile.spans.iter().map(|s| s.end_ns()).max().unwrap_or(0) as f64 / 1000.0;
    for (name, v) in &profile.counters {
        trace.counter(name, end_us, *v as f64);
    }
    for (name, h) in &profile.hists {
        trace.counter(&format!("{name}/count"), end_us, h.count as f64);
        trace.counter(&format!("{name}/mean"), end_us, h.mean());
    }
    trace.finish()
}

/// Renders a wall-clock [`Profile`] as compact JSONL: one object per
/// span, then one per counter, then one per histogram.
pub fn profile_to_jsonl(profile: &Profile) -> String {
    let mut out = String::new();
    for s in &profile.spans {
        out.push_str(&format!(
            "{{\"kind\":\"span\",\"name\":\"{}\",\"tid\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}\n",
            escape_json(s.name),
            s.tid,
            s.depth,
            s.start_ns,
            s.dur_ns,
        ));
    }
    for (name, v) in &profile.counters {
        out.push_str(&format!(
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
            escape_json(name),
            v,
        ));
    }
    for (name, h) in &profile.hists {
        out.push_str(&format!(
            "{{\"kind\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}\n",
            escape_json(name),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            json_num(h.mean()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Histogram, SpanRecord};

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_doc_shape() {
        let mut t = ChromeTrace::new();
        t.thread_name(0, "chip 0");
        t.complete("busy", "fleet", 0.0, 1500.0, 0, &[("batch", "4".into())]);
        t.counter("queue_depth", 10.0, 3.0);
        t.instant("admit", 5.0, 1, &[]);
        t.async_begin("req 3", "request", 3, 2.0, &[("tenant", "0".into())]);
        t.async_end("req 3", "request", 3, 9.0);
        let doc = t.finish();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"ph\":\"b\""));
        assert!(doc.contains("\"ph\":\"e\""));
        assert!(doc.contains("\"id\":3"));
        assert!(doc.contains("\"args\":{\"batch\":4}"));
    }

    #[test]
    fn profile_exports() {
        let mut p = Profile::default();
        p.spans.push(SpanRecord {
            name: "prove",
            start_ns: 1000,
            dur_ns: 5000,
            tid: 0,
            depth: 0,
        });
        p.counters.insert("msm/windows", 7);
        let mut h = Histogram::default();
        h.record(3);
        p.hists.insert("msm/bucket_occupancy", h);
        let chrome = profile_to_chrome(&p);
        assert!(chrome.contains("\"name\":\"prove\""));
        assert!(chrome.contains("\"name\":\"msm/windows\""));
        let jsonl = profile_to_jsonl(&p);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"kind\":\"span\""));
        assert!(jsonl.contains("\"kind\":\"hist\""));
    }

    #[test]
    fn json_num_clamps_nonfinite() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
    }
}
