//! The wall-clock profiler: span records, counters, log2 histograms,
//! and (behind the `record` feature) the thread-local recorder that
//! produces them.
//!
//! # Design
//!
//! * **Static dispatch, zero cost when disabled.** Every hook
//!   ([`span`], [`counter_add`], [`hist_record`]) is an `#[inline]`
//!   function; without the `record` feature the bodies are empty and
//!   vanish at compile time, so the instrumented prover carries no
//!   telemetry code at all.
//! * **No allocation on the hot path.** Spans are fixed-size records
//!   pushed into a pre-reserved thread-local buffer; counter and
//!   histogram names are `&'static str`, matched by linear scan over a
//!   handful of entries; histograms are fixed 64-bucket arrays.
//! * **Thread-local span stacks.** Each thread tracks its own nesting
//!   depth; records carry `(tid, depth)` so the drained profile can
//!   prove every exit matched an enter ([`Profile::check_well_formed`]).
//!   Worker threads flush their buffers into the global sink from their
//!   TLS destructor, so scoped-thread parallelism (the MSM and SumCheck
//!   workers) needs no per-event synchronization — one mutex lock per
//!   thread lifetime, not per event. Because `std::thread::scope`
//!   unblocks when a worker's closure returns (possibly before its TLS
//!   destructor runs), [`drain`] waits for outstanding thread-locals to
//!   deregister before collecting.
//! * **Runtime gate on top.** [`set_enabled`] flips one atomic; when
//!   off (the default), an armed build still records nothing and each
//!   hook costs one relaxed load and a branch.

use std::collections::BTreeMap;

use crate::wall::{WallEvent, WallEventKind};

/// One finished span: a named wall-clock interval on one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `prove/witness_commit`.
    pub name: &'static str,
    /// Start offset from the process clock base (ns).
    pub start_ns: u64,
    /// Duration (ns).
    pub dur_ns: u64,
    /// Recorder-assigned thread index (0 = first thread to record
    /// after the last [`reset`]).
    pub tid: u32,
    /// Nesting depth at entry (0 = top-level).
    pub depth: u32,
}

impl SpanRecord {
    /// End offset (ns).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A power-of-two-bucketed histogram of `u64` samples. Bucket `0` holds
/// zeros; bucket `b ≥ 1` holds values with `floor(log2 v) == b - 1`
/// (i.e. `v ∈ [2^(b-1), 2^b)`), saturating at bucket 63.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Sample count per log2 bucket.
    pub buckets: [u64; 64],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (((63 - value.leading_zeros()) as usize) + 1).min(63)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one (bucket-wise addition —
    /// commutative, so merge order never changes the result).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything one recording session produced, returned by [`drain`].
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Finished spans, in flush order (per-thread exit order).
    pub spans: Vec<SpanRecord>,
    /// Named monotone counters, merged across threads.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named histograms, merged across threads.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Wall events from [`wall_event`] hooks (the live service's
    /// request-lifecycle stream), sorted by `(t_ns, tid, seq)` at drain
    /// — a deterministic order that preserves each thread's record
    /// sequence. Feed them to
    /// [`crate::wall::WallTimeline::from_events`].
    pub wall_events: Vec<WallEvent>,
}

impl Profile {
    /// Total duration of every span with this exact name.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Number of spans with this exact name.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).count() as u64
    }

    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Span names observed at `depth`, deduplicated, in first-exit order.
    pub fn names_at_depth(&self, depth: u32) -> Vec<&'static str> {
        let mut names = Vec::new();
        for s in self.spans.iter().filter(|s| s.depth == depth) {
            if !names.contains(&s.name) {
                names.push(s.name);
            }
        }
        names
    }

    /// Verifies the span forest is well-formed: on every thread, spans
    /// are properly nested (any two intervals are disjoint or one
    /// contains the other) and each span's recorded depth equals its
    /// number of open ancestors. A guard dropped out of order, a
    /// missed exit, or a depth-counter bug all surface here.
    pub fn check_well_formed(&self) -> Result<(), String> {
        let mut tids: Vec<u32> = self.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let mut spans: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.tid == tid).collect();
            // Parent-first at equal starts: the longer interval opens
            // the scope the shorter one nests in.
            spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.dur_ns.cmp(&a.dur_ns)));
            let mut open: Vec<u64> = Vec::new(); // ancestor end times
            for s in spans {
                while open.last().is_some_and(|&end| end <= s.start_ns) {
                    open.pop();
                }
                if let Some(&end) = open.last() {
                    if s.end_ns() > end {
                        return Err(format!(
                            "span `{}` on tid {tid} overlaps its ancestor \
                             (ends {} after the enclosing span's {end})",
                            s.name,
                            s.end_ns(),
                        ));
                    }
                }
                if s.depth as usize != open.len() {
                    return Err(format!(
                        "span `{}` on tid {tid} recorded depth {} but has \
                         {} open ancestors — an exit did not match its enter",
                        s.name,
                        s.depth,
                        open.len()
                    ));
                }
                open.push(s.end_ns());
            }
        }
        Ok(())
    }
}

// ------------------------------------------------------------------------
// The live recorder (only with the `record` feature).
// ------------------------------------------------------------------------

#[cfg(feature = "record")]
mod recorder {
    use super::{Histogram, Profile, SpanRecord, WallEvent, WallEventKind};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// Flush a thread's span buffer into the sink at this many records.
    const FLUSH_AT: usize = 4096;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Bumped by [`reset`]; thread-locals adopt the new epoch lazily and
    /// discard anything recorded under an old one.
    static EPOCH: AtomicU64 = AtomicU64::new(0);

    struct Sink {
        spans: Vec<SpanRecord>,
        counters: Vec<(&'static str, u64)>,
        hists: Vec<(&'static str, Histogram)>,
        walls: Vec<WallEvent>,
        next_tid: u32,
        /// Thread-locals registered under the current epoch whose final
        /// (destructor) flush has not landed yet. `drain` waits for this
        /// to fall to 1 (itself): `std::thread::scope` unblocks when a
        /// worker's *closure* returns, which can be before the worker's
        /// TLS destructor has flushed, so without the wait a drain racing
        /// a just-joined scope could miss worker data.
        live_locals: u32,
    }

    fn sink() -> &'static Mutex<Sink> {
        static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
        SINK.get_or_init(|| {
            Mutex::new(Sink {
                spans: Vec::new(),
                counters: Vec::new(),
                hists: Vec::new(),
                walls: Vec::new(),
                next_tid: 0,
                live_locals: 0,
            })
        })
    }

    /// The sink mutex guards plain data with no invariants that a
    /// panicking holder could break mid-update, so a poisoned lock is
    /// recovered rather than propagated — the telemetry layer must
    /// never take the instrumented program down.
    fn sink_lock() -> MutexGuard<'static, Sink> {
        sink().lock().unwrap_or_else(|e| e.into_inner())
    }

    fn clock() -> &'static Instant {
        static CLOCK: OnceLock<Instant> = OnceLock::new();
        CLOCK.get_or_init(Instant::now)
    }

    pub fn now_ns() -> u64 {
        clock().elapsed().as_nanos() as u64
    }

    struct Local {
        epoch: u64,
        tid: u32,
        depth: u32,
        /// Per-thread wall-event sequence number (record order within
        /// this thread, preserved by the drain sort's tie-break).
        seq: u64,
        spans: Vec<SpanRecord>,
        counters: Vec<(&'static str, u64)>,
        hists: Vec<(&'static str, Histogram)>,
        walls: Vec<WallEvent>,
    }

    impl Local {
        fn flush(&mut self) {
            if self.spans.is_empty()
                && self.counters.is_empty()
                && self.hists.is_empty()
                && self.walls.is_empty()
            {
                return;
            }
            // One lock per flush (≥ FLUSH_AT events or thread exit),
            // never per event.
            let mut sink = sink_lock();
            sink.spans.append(&mut self.spans);
            sink.walls.append(&mut self.walls);
            for (name, v) in self.counters.drain(..) {
                match sink.counters.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, total)) => *total += v,
                    None => sink.counters.push((name, v)),
                }
            }
            for (name, h) in self.hists.drain(..) {
                match sink.hists.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, total)) => total.merge(&h),
                    None => sink.hists.push((name, h)),
                }
            }
        }
    }

    impl Drop for Local {
        fn drop(&mut self) {
            // Thread exit: hand everything to the sink. Stale-epoch data
            // is filtered below (epoch mismatch discards, not flushes).
            if self.epoch == EPOCH.load(Ordering::Relaxed) {
                self.flush();
            }
            // Deregister, re-checking the epoch under the sink lock: if a
            // reset slipped in after the flush above, the new epoch's
            // count does not include this local and must not be touched.
            let mut sink = sink_lock();
            if self.epoch == EPOCH.load(Ordering::Relaxed) {
                sink.live_locals = sink.live_locals.saturating_sub(1);
            }
        }
    }

    thread_local! {
        static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
    }

    /// Runs `f` on this thread's recorder state, (re)initializing it on
    /// first use or after a [`reset`].
    fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> R {
        LOCAL.with(|cell| {
            let mut slot = cell.borrow_mut();
            let epoch = EPOCH.load(Ordering::Relaxed);
            if slot.as_ref().is_some_and(|l| l.epoch != epoch) {
                // Stale epoch: discard the old local (its Drop sees the
                // mismatch and flushes nothing) and re-register below.
                *slot = None;
            }
            let local = slot.get_or_insert_with(|| {
                // Epoch is re-read under the sink lock (reset bumps it
                // under the same lock), so the live_locals increment is
                // always attributed to the epoch it was counted under.
                let (tid, epoch) = {
                    let mut sink = sink_lock();
                    let epoch = EPOCH.load(Ordering::Relaxed);
                    let tid = sink.next_tid;
                    sink.next_tid += 1;
                    sink.live_locals += 1;
                    (tid, epoch)
                };
                Local {
                    epoch,
                    tid,
                    depth: 0,
                    seq: 0,
                    spans: Vec::with_capacity(FLUSH_AT),
                    counters: Vec::new(),
                    hists: Vec::new(),
                    walls: Vec::new(),
                }
            });
            f(local)
        })
    }

    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    pub fn span_enter() -> u64 {
        with_local(|l| l.depth += 1);
        now_ns()
    }

    pub fn span_exit(name: &'static str, start_ns: u64) {
        let end = now_ns();
        with_local(|l| {
            l.depth = l.depth.saturating_sub(1);
            let depth = l.depth;
            l.spans.push(SpanRecord {
                name,
                start_ns,
                dur_ns: end.saturating_sub(start_ns),
                tid: l.tid,
                depth,
            });
            if l.spans.len() >= FLUSH_AT {
                l.flush();
            }
        });
    }

    pub fn counter_add(name: &'static str, delta: u64) {
        with_local(|l| match l.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => l.counters.push((name, delta)),
        });
    }

    pub fn hist_record(name: &'static str, value: u64) {
        with_local(|l| match l.hists.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                l.hists.push((name, h));
            }
        });
    }

    pub fn hist_merge(name: &'static str, hist: &Histogram) {
        with_local(|l| match l.hists.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.merge(hist),
            None => {
                let mut h = Histogram::default();
                h.merge(hist);
                l.hists.push((name, h));
            }
        });
    }

    pub fn wall_event(kind: WallEventKind, id: u64, tenant: u64, arg: u64, a: f64, b: f64) {
        let t_ns = now_ns();
        with_local(|l| {
            // The buffer is reserved on a thread's first wall event, not
            // at registration: prover threads that only record spans
            // never pay for it.
            if l.walls.capacity() == 0 {
                l.walls.reserve(FLUSH_AT);
            }
            let seq = l.seq;
            l.seq += 1;
            l.walls.push(WallEvent {
                t_ns,
                seq,
                tid: l.tid,
                kind,
                id,
                tenant,
                arg,
                a,
                b,
            });
            if l.walls.len() >= FLUSH_AT {
                l.flush();
            }
        });
    }

    /// Discards everything recorded so far and starts a fresh epoch.
    /// Must not be called while spans are open.
    pub fn reset() {
        let mut sink = sink_lock();
        // Bumped under the sink lock so registration (which re-reads the
        // epoch under the same lock) cannot count a live local against
        // the wrong epoch.
        EPOCH.fetch_add(1, Ordering::Relaxed);
        sink.spans.clear();
        sink.counters.clear();
        sink.hists.clear();
        sink.walls.clear();
        sink.next_tid = 0;
        sink.live_locals = 0;
        drop(sink);
        // Re-register this thread immediately so the calling thread
        // (the one driving the run) deterministically gets tid 0.
        with_local(|_| {});
    }

    /// Flushes the calling thread and collects the sink into a
    /// [`Profile`].
    ///
    /// Worker threads flush from their TLS destructors, but
    /// `std::thread::scope` unblocks as soon as a worker's closure
    /// returns — the destructor may still be pending. So this waits
    /// (bounded) for every registered local except the caller's own to
    /// deregister before collecting. The wait is a no-op in the common
    /// case and gives up after ~1 s so a long-lived registered thread
    /// (a pool thread holding its buffer) degrades to a partial drain
    /// rather than a deadlock.
    pub fn drain() -> Profile {
        with_local(Local::flush);
        let deadline = Instant::now() + std::time::Duration::from_secs(1);
        loop {
            let outstanding = {
                let sink = sink_lock();
                sink.live_locals
            };
            if outstanding <= 1 || Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
        let mut sink = sink_lock();
        let mut profile = Profile {
            spans: std::mem::take(&mut sink.spans),
            counters: sink.counters.drain(..).collect(),
            hists: sink.hists.drain(..).collect(),
            wall_events: std::mem::take(&mut sink.walls),
        };
        // Flush order depends on thread scheduling; name-major sort
        // restores a deterministic order within each (tid, start) line.
        profile
            .spans
            .sort_by(|a, b| (a.tid, a.start_ns, b.dur_ns).cmp(&(b.tid, b.start_ns, a.dur_ns)));
        // Wall events carry a per-thread sequence number, so the sort
        // is total: concurrent same-nanosecond stamps settle by (tid,
        // seq) and a rebuilt timeline is deterministic per run.
        profile.wall_events.sort_by_key(|e| (e.t_ns, e.tid, e.seq));
        profile
    }
}

// ------------------------------------------------------------------------
// Public facade: real in `record` builds, inlined no-ops otherwise.
// ------------------------------------------------------------------------

/// RAII span guard: records a [`SpanRecord`] when dropped. Obtain via
/// [`span`]; hold it for the duration of the phase it names.
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    #[cfg(feature = "record")]
    name: &'static str,
    #[cfg(feature = "record")]
    start_ns: u64,
    #[cfg(feature = "record")]
    armed: bool,
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "record")]
        if self.armed {
            recorder::span_exit(self.name, self.start_ns);
        }
    }
}

/// Opens a named span on the current thread. When recording is off
/// (feature or runtime), this is free and the guard does nothing.
#[inline]
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "record")]
    {
        let _ = name;
        if recorder::is_enabled() {
            return Span {
                name,
                start_ns: recorder::span_enter(),
                armed: true,
            };
        }
        Span {
            name,
            start_ns: 0,
            armed: false,
        }
    }
    #[cfg(not(feature = "record"))]
    {
        let _ = name;
        Span {}
    }
}

/// Adds `delta` to the named counter (no-op when recording is off).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    #[cfg(feature = "record")]
    if recorder::is_enabled() {
        recorder::counter_add(name, delta);
    }
    #[cfg(not(feature = "record"))]
    {
        let _ = (name, delta);
    }
}

/// Records `value` into the named histogram (no-op when recording is off).
#[inline]
pub fn hist_record(name: &'static str, value: u64) {
    #[cfg(feature = "record")]
    if recorder::is_enabled() {
        recorder::hist_record(name, value);
    }
    #[cfg(not(feature = "record"))]
    {
        let _ = (name, value);
    }
}

/// Merges a locally accumulated [`Histogram`] into the named histogram
/// in one recorder access (no-op when recording is off, or when `hist`
/// is empty). Hot loops with many samples per iteration should build a
/// stack-local `Histogram` and merge it once, instead of paying the
/// thread-local lookup of [`hist_record`] per sample; merging is
/// bucket-wise addition, so the drained result is identical.
#[inline]
pub fn hist_merge(name: &'static str, hist: &Histogram) {
    #[cfg(feature = "record")]
    if recorder::is_enabled() && hist.count > 0 {
        recorder::hist_merge(name, hist);
    }
    #[cfg(not(feature = "record"))]
    {
        let _ = (name, hist);
    }
}

/// Records a wall-clock lifecycle event (no-op when recording is off).
/// Stamped from the shared monotonic epoch on the calling thread's
/// lock-free buffer; the drained [`Profile`] carries the events sorted
/// by `(t_ns, tid, seq)` so a rebuilt
/// [`WallTimeline`](crate::WallTimeline) is deterministic per run.
#[inline]
pub fn wall_event(kind: WallEventKind, id: u64, tenant: u64, arg: u64, a: f64, b: f64) {
    #[cfg(feature = "record")]
    if recorder::is_enabled() {
        recorder::wall_event(kind, id, tenant, arg, a, b);
    }
    #[cfg(not(feature = "record"))]
    {
        let _ = (kind, id, tenant, arg, a, b);
    }
}

/// Turns runtime recording on or off. Without the `record` feature this
/// does nothing and [`is_enabled`] stays `false`.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "record")]
    recorder::set_enabled(on);
    #[cfg(not(feature = "record"))]
    let _ = on;
}

/// Whether hooks currently record. Always `false` without the `record`
/// feature — callers can hoist loops behind this check and have the
/// whole block vanish in disabled builds.
#[inline]
pub fn is_enabled() -> bool {
    #[cfg(feature = "record")]
    {
        recorder::is_enabled()
    }
    #[cfg(not(feature = "record"))]
    {
        false
    }
}

/// Discards all recorded data and starts a fresh session. The calling
/// thread is re-registered first, so it deterministically records as
/// tid 0. Must not be called while spans are open.
pub fn reset() {
    #[cfg(feature = "record")]
    recorder::reset();
}

/// Collects everything recorded since the last [`reset`] into a
/// [`Profile`]. Returns an empty profile without the `record` feature.
pub fn drain() -> Profile {
    #[cfg(feature = "record")]
    {
        recorder::drain()
    }
    #[cfg(not(feature = "record"))]
    {
        Profile::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        let mut h = Histogram::default();
        h.record(0);
        h.record(5);
        h.record(5);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 10);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 5);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 2);
        let mut m = Histogram::default();
        m.merge(&h);
        assert_eq!(m, h);
    }

    #[cfg(not(feature = "record"))]
    #[test]
    fn disabled_build_records_nothing() {
        set_enabled(true);
        assert!(!is_enabled(), "record feature off ⇒ never enabled");
        let _s = span("noop");
        counter_add("noop", 1);
        hist_record("noop", 1);
        wall_event(WallEventKind::Admitted, 0, 0, 0, 0.0, 0.0);
        drop(_s);
        let p = drain();
        assert!(p.spans.is_empty());
        assert!(p.counters.is_empty());
        assert!(p.hists.is_empty());
        assert!(p.wall_events.is_empty());
    }

    /// The recorder is process-global and the harness runs tests on
    /// several threads; sessions must not interleave.
    #[cfg(feature = "record")]
    fn session_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[cfg(feature = "record")]
    #[test]
    fn spans_nest_and_drain() {
        let _guard = session_guard();
        reset();
        set_enabled(true);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
            counter_add("c", 2);
            counter_add("c", 3);
            hist_record("h", 7);
        }
        set_enabled(false);
        let p = drain();
        assert_eq!(p.span_count("outer"), 1);
        assert_eq!(p.span_count("inner"), 2);
        assert_eq!(p.counter("c"), 5);
        assert_eq!(p.hists["h"].count, 1);
        let outer = p.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner_total = p.total_ns("inner");
        assert!(outer.depth == 0);
        assert!(p
            .spans
            .iter()
            .filter(|s| s.name == "inner")
            .all(|s| s.depth == 1));
        assert!(inner_total <= outer.dur_ns, "children exceed parent");
        p.check_well_formed().expect("well-formed");
    }

    #[cfg(feature = "record")]
    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = session_guard();
        reset();
        set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = span("worker");
                    counter_add("work", 1);
                    hist_record("vals", 16);
                });
            }
        });
        set_enabled(false);
        let p = drain();
        assert_eq!(p.span_count("worker"), 3);
        assert_eq!(p.counter("work"), 3);
        assert_eq!(p.hists["vals"].count, 3);
        p.check_well_formed().expect("well-formed");
    }

    #[cfg(feature = "record")]
    #[test]
    fn wall_events_drain_sorted_and_keep_per_thread_order() {
        let _guard = session_guard();
        reset();
        set_enabled(true);
        std::thread::scope(|scope| {
            for t in 0..3u64 {
                scope.spawn(move || {
                    for i in 0..5u64 {
                        wall_event(WallEventKind::Dispatched, t * 10 + i, t, 0, 0.0, 0.0);
                    }
                });
            }
        });
        set_enabled(false);
        let p = drain();
        assert_eq!(p.wall_events.len(), 15);
        assert!(p
            .wall_events
            .windows(2)
            .all(|w| (w[0].t_ns, w[0].tid, w[0].seq) <= (w[1].t_ns, w[1].tid, w[1].seq)));
        // Per-thread record order survives the global sort: monotonic
        // stamps within one thread are nondecreasing and seq breaks
        // same-nanosecond ties.
        let tids: std::collections::BTreeSet<u32> = p.wall_events.iter().map(|e| e.tid).collect();
        for tid in tids {
            let ids: Vec<u64> = p
                .wall_events
                .iter()
                .filter(|e| e.tid == tid)
                .map(|e| e.id)
                .collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "per-thread order preserved for tid {tid}");
        }
    }

    #[cfg(feature = "record")]
    #[test]
    fn disabled_runtime_records_nothing() {
        let _guard = session_guard();
        reset();
        set_enabled(false);
        let _s = span("ghost");
        counter_add("ghost", 1);
        drop(_s);
        let p = drain();
        assert_eq!(p.span_count("ghost"), 0);
        assert_eq!(p.counter("ghost"), 0);
    }

    #[test]
    fn well_formed_rejects_overlap() {
        let p = Profile {
            spans: vec![
                SpanRecord {
                    name: "a",
                    start_ns: 0,
                    dur_ns: 10,
                    tid: 0,
                    depth: 0,
                },
                SpanRecord {
                    name: "b",
                    start_ns: 5,
                    dur_ns: 10,
                    tid: 0,
                    depth: 1,
                },
            ],
            ..Profile::default()
        };
        assert!(p.check_well_formed().is_err());
    }
}
