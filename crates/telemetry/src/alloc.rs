//! A counting global allocator for the prover's allocation counter.
//!
//! Install in a *binary* crate (the `repro` CLI does):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: zkphire_telemetry::CountingAlloc = zkphire_telemetry::CountingAlloc;
//! ```
//!
//! Without the `record` feature — or with recording runtime-disabled —
//! every call forwards straight to the system allocator with no atomic
//! traffic, so the zero-cost story holds even for binaries that install
//! the wrapper unconditionally.

use std::alloc::{GlobalAlloc, Layout, System};

#[cfg(feature = "record")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "record")]
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "record")]
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts allocations while recording is
/// enabled (feature `record` *and* [`crate::set_enabled`]`(true)`).
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        #[cfg(feature = "record")]
        if crate::is_enabled() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        #[cfg(feature = "record")]
        if crate::is_enabled() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// `(calls, bytes)` counted since the last [`reset_alloc_counts`].
/// Always `(0, 0)` without the `record` feature or when the counting
/// allocator is not installed.
pub fn alloc_counts() -> (u64, u64) {
    #[cfg(feature = "record")]
    {
        (
            ALLOC_CALLS.load(Ordering::Relaxed),
            ALLOC_BYTES.load(Ordering::Relaxed),
        )
    }
    #[cfg(not(feature = "record"))]
    {
        (0, 0)
    }
}

/// Zeroes the allocation counters.
pub fn reset_alloc_counts() {
    #[cfg(feature = "record")]
    {
        ALLOC_CALLS.store(0, Ordering::Relaxed);
        ALLOC_BYTES.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test harness does not install CountingAlloc as the global
    // allocator, so only the passthrough/accounting API is exercised.
    #[test]
    fn counters_start_zero_and_reset() {
        reset_alloc_counts();
        assert_eq!(alloc_counts(), (0, 0));
    }
}
