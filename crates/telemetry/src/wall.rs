//! Wall-clock timelines for the live proving service.
//!
//! The third recorder: where the profiler ([`crate::profile`]) captures
//! ambient *prover* spans and [`crate::timeline::SimTimeline`] captures
//! deterministic *sim-time* fleet state, `WallTimeline` captures the
//! live service's request lifecycle in wall time — admitted → queued →
//! dispatched → proving → verify → terminal outcome — plus per-worker
//! busy spans, queue-depth series, and admission events.
//!
//! Recording rides the profiler's thread-local machinery: the service
//! calls [`crate::profile::wall_event`] (an inlined no-op without the
//! `record` feature), events land in the same per-thread buffers as
//! spans, and [`crate::profile::drain`] returns them on the
//! [`crate::Profile`] sorted by `(t_ns, tid, seq)` — so rebuilding the
//! timeline from a drained profile is deterministic for a given run.
//!
//! # Reconciliation by construction
//!
//! Like `SimTimeline`, the wall timeline never re-derives the metrics
//! it sits next to — it replays the service's own accounting ops:
//!
//! * The dispatcher emits one [`WallEventKind::WorkerBusy`] event with
//!   the exact `(start_ms, finish_ms)` f64s at the moment it does
//!   `busy_ms += finish - start`; [`WallTimeline::worker_busy_ms`]
//!   replays `+= b - a` in event order, so it is **bitwise equal** to
//!   the per-worker busy the summary's utilization divides.
//! * Terminal outcomes are counted from the same event per request the
//!   service counts, so [`WallTimeline::outcome_count`] matches the
//!   summary's `completed`/`rejected`/`shed`/`lost` exactly.
//!
//! Timestamps are nanoseconds from the recorder's monotonic clock; the
//! epoch (first event's timestamp) is recorded once in the export
//! `meta` line so two exports of the same recorded run are
//! byte-identical aside from that one field.

use crate::trace::{escape_json, json_num, ChromeTrace};

/// Terminal outcome of one request — the shared vocabulary between the
/// live service, the DES summary, and streamed outcome records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Served to completion with a verified proof.
    Completed,
    /// Refused at admission (tenant cap or queue capacity).
    Rejected,
    /// Shed by brown-out degradation.
    Shed,
    /// Lost past the retry budget (chip failure or deadline expiry).
    Lost,
}

impl Outcome {
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Rejected => "rejected",
            Outcome::Shed => "shed",
            Outcome::Lost => "lost",
        }
    }
}

/// What one wall event records. Payload fields (`id`, `tenant`, `arg`,
/// `a`, `b`) are interpreted per kind — see each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WallEventKind {
    /// Fresh arrival admitted (`id`, `tenant`).
    Admitted,
    /// Fresh arrival refused — terminal (`id`, `tenant`).
    Rejected,
    /// Parked retry re-admitted to the queue (`id`, `tenant`).
    RetryAdmitted,
    /// Parked retry refused again — re-parked or lost (`id`, `tenant`).
    RetryRejected,
    /// Request handed to a worker (`id`, `arg` = worker).
    Dispatched,
    /// Worker began proving a request (`id`, `arg` = worker).
    ProveBegin,
    /// Worker finished proving a request (`id`, `arg` = worker).
    ProveEnd,
    /// Worker began verifying a request's proof (`id`, `arg` = worker).
    VerifyBegin,
    /// Worker finished verifying (`id`, `arg` = worker).
    VerifyEnd,
    /// Terminal: completed (`id`, `tenant`, `a` = latency ms).
    Completed,
    /// Request parked for a retry backoff (`id`, `a` = wake ms).
    RetryParked,
    /// Terminal: shed by brown-out (`id`, `tenant`).
    Shed,
    /// Terminal: lost past the retry budget (`id`, `tenant`).
    Lost,
    /// The dispatcher's per-worker busy accounting op (`arg` = worker,
    /// `a` = batch start ms, `b` = batch finish ms): replayed by
    /// [`WallTimeline::worker_busy_ms`] for bitwise reconciliation.
    WorkerBusy,
    /// Worker failed and entered repair (`arg` = worker).
    WorkerRepairBegin,
    /// Worker rejoined the pool (`arg` = worker).
    WorkerRepairEnd,
    /// Queue-depth sample (`arg` = depth).
    QueueDepth,
    /// In-flight batch count sample (`arg` = count).
    InFlight,
    /// A network connection was accepted by the TCP front-end
    /// (`id` = connection id, `a` = service-clock ms).
    ConnOpen,
    /// A network connection closed (`id` = connection id, `arg` =
    /// close-reason discriminant, `a` = service-clock ms).
    ConnClose,
    /// A connection was refused at the hard connection cap — the
    /// acceptor answered busy-with-retry-after and hung up
    /// (`a` = service-clock ms, `b` = retry-after hint ms).
    ConnBusy,
}

impl WallEventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            WallEventKind::Admitted => "admitted",
            WallEventKind::Rejected => "rejected",
            WallEventKind::RetryAdmitted => "retry_admitted",
            WallEventKind::RetryRejected => "retry_rejected",
            WallEventKind::Dispatched => "dispatched",
            WallEventKind::ProveBegin => "prove_begin",
            WallEventKind::ProveEnd => "prove_end",
            WallEventKind::VerifyBegin => "verify_begin",
            WallEventKind::VerifyEnd => "verify_end",
            WallEventKind::Completed => "completed",
            WallEventKind::RetryParked => "retry_parked",
            WallEventKind::Shed => "shed",
            WallEventKind::Lost => "lost",
            WallEventKind::WorkerBusy => "worker_busy",
            WallEventKind::WorkerRepairBegin => "repair_begin",
            WallEventKind::WorkerRepairEnd => "repair_end",
            WallEventKind::QueueDepth => "queue_depth",
            WallEventKind::InFlight => "in_flight",
            WallEventKind::ConnOpen => "conn_open",
            WallEventKind::ConnClose => "conn_close",
            WallEventKind::ConnBusy => "conn_busy",
        }
    }
}

/// One recorded wall event. Fixed-size, `Copy` — pushed into the
/// recorder's pre-reserved thread-local buffer with no allocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WallEvent {
    /// Nanoseconds from the recorder's monotonic clock base.
    pub t_ns: u64,
    /// Per-thread sequence number (record order within `tid`).
    pub seq: u64,
    /// Recorder-assigned thread index.
    pub tid: u32,
    pub kind: WallEventKind,
    /// Request id (0 when the kind is not per-request).
    pub id: u64,
    /// Submitting tenant (0 when not applicable).
    pub tenant: u64,
    /// Kind-specific integer payload (worker index, depth, count).
    pub arg: u64,
    /// Kind-specific f64 payload (see [`WallEventKind`]).
    pub a: f64,
    /// Kind-specific f64 payload (see [`WallEventKind`]).
    pub b: f64,
}

/// One closed (or export-truncated) phase interval in a request's
/// lifecycle, for the async tracks of the Chrome export.
#[derive(Clone, Copy, Debug, PartialEq)]
struct LifePhase {
    id: u64,
    name: &'static str,
    start_ns: u64,
    /// `None` when still open at export (drawn to the horizon).
    end_ns: Option<u64>,
}

/// The live service's wall-clock observability record, rebuilt from the
/// [`WallEvent`]s a drained [`crate::Profile`] carries.
#[derive(Clone, Debug, Default)]
pub struct WallTimeline {
    events: Vec<WallEvent>,
    /// First event's timestamp — the epoch every export is relative to.
    epoch_ns: u64,
    /// Last event's timestamp (export horizon).
    horizon_ns: u64,
    /// Replayed per-worker busy accumulators (bitwise-faithful).
    worker_busy_ms: Vec<f64>,
    completed: u64,
    rejected: u64,
    shed: u64,
    lost: u64,
}

impl WallTimeline {
    /// Builds a timeline from drained wall events. The slice must be in
    /// drain order — `(t_ns, tid, seq)` ascending, which preserves each
    /// thread's record order — for the busy replay to be faithful.
    pub fn from_events(events: &[WallEvent]) -> Self {
        let mut tl = WallTimeline {
            events: events.to_vec(),
            epoch_ns: events.iter().map(|e| e.t_ns).min().unwrap_or(0),
            horizon_ns: events.iter().map(|e| e.t_ns).max().unwrap_or(0),
            ..WallTimeline::default()
        };
        for e in events {
            match e.kind {
                WallEventKind::WorkerBusy => {
                    let w = e.arg as usize;
                    if tl.worker_busy_ms.len() <= w {
                        tl.worker_busy_ms.resize(w + 1, 0.0);
                    }
                    // The dispatcher's own op, same values, same order.
                    tl.worker_busy_ms[w] += e.b - e.a;
                }
                WallEventKind::Completed => tl.completed += 1,
                WallEventKind::Rejected => tl.rejected += 1,
                WallEventKind::Shed => tl.shed += 1,
                WallEventKind::Lost => tl.lost += 1,
                _ => {}
            }
        }
        tl
    }

    /// All events, in drain order.
    pub fn events(&self) -> &[WallEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The monotonic-clock timestamp of the first event — the one field
    /// that differs between two runs of the same scenario.
    pub fn epoch_ns(&self) -> u64 {
        self.epoch_ns
    }

    /// Count of terminal events of this outcome — must equal the
    /// service summary's corresponding counter exactly.
    pub fn outcome_count(&self, outcome: Outcome) -> u64 {
        match outcome {
            Outcome::Completed => self.completed,
            Outcome::Rejected => self.rejected,
            Outcome::Shed => self.shed,
            Outcome::Lost => self.lost,
        }
    }

    /// Workers that recorded at least one busy span.
    pub fn num_workers(&self) -> usize {
        self.worker_busy_ms.len()
    }

    /// Busy milliseconds replayed from the dispatcher's own accounting
    /// events — bitwise equal to the service's per-worker `busy_ms`
    /// accumulator (same ops, same order, same values). Workers beyond
    /// the recorded range report 0.
    pub fn worker_busy_ms(&self, worker: usize) -> f64 {
        self.worker_busy_ms.get(worker).copied().unwrap_or(0.0)
    }

    /// Per-request lifecycle phases for the async export: queued
    /// (admission → dispatch), proving, verifying — phases still open
    /// at export are truncated to the horizon.
    fn life_phases(&self) -> Vec<LifePhase> {
        let mut phases = Vec::new();
        let mut open: Vec<(u64, &'static str, u64)> = Vec::new(); // (id, name, start)
        let begin = |open: &mut Vec<(u64, &'static str, u64)>, id, name: &'static str, t| {
            open.push((id, name, t));
        };
        let end = |open: &mut Vec<(u64, &'static str, u64)>,
                   phases: &mut Vec<LifePhase>,
                   id,
                   name: &'static str,
                   t| {
            if let Some(i) = open
                .iter()
                .position(|&(oid, on, _)| oid == id && on == name)
            {
                let (_, _, start) = open.swap_remove(i);
                phases.push(LifePhase {
                    id,
                    name,
                    start_ns: start,
                    end_ns: Some(t),
                });
            }
        };
        for e in &self.events {
            match e.kind {
                WallEventKind::Admitted | WallEventKind::RetryAdmitted => {
                    begin(&mut open, e.id, "queued", e.t_ns);
                }
                WallEventKind::Dispatched => {
                    end(&mut open, &mut phases, e.id, "queued", e.t_ns);
                }
                WallEventKind::Shed => {
                    end(&mut open, &mut phases, e.id, "queued", e.t_ns);
                }
                WallEventKind::ProveBegin => begin(&mut open, e.id, "proving", e.t_ns),
                WallEventKind::ProveEnd => {
                    end(&mut open, &mut phases, e.id, "proving", e.t_ns);
                }
                WallEventKind::VerifyBegin => begin(&mut open, e.id, "verifying", e.t_ns),
                WallEventKind::VerifyEnd => {
                    end(&mut open, &mut phases, e.id, "verifying", e.t_ns);
                }
                WallEventKind::RetryParked => {
                    // A request can park straight out of the queue
                    // (deadline expired at dispatch): close its queued
                    // phase if one is open.
                    end(&mut open, &mut phases, e.id, "queued", e.t_ns);
                    begin(&mut open, e.id, "parked", e.t_ns);
                }
                WallEventKind::Lost => {
                    end(&mut open, &mut phases, e.id, "queued", e.t_ns);
                }
                _ => {}
            }
            // A wake resolution — re-admitted, refused again (it will
            // re-park under a fresh phase), or lost — closes the parked
            // phase the request was sitting in.
            if matches!(
                e.kind,
                WallEventKind::RetryAdmitted | WallEventKind::RetryRejected | WallEventKind::Lost
            ) {
                end(&mut open, &mut phases, e.id, "parked", e.t_ns);
            }
        }
        // Phases still open at export survive as horizon-truncated
        // intervals, flagged open for the caller.
        for (id, name, start) in open {
            phases.push(LifePhase {
                id,
                name,
                start_ns: start,
                end_ns: None,
            });
        }
        phases
    }

    // -- export ---------------------------------------------------------

    /// Chrome trace-event JSON, Perfetto-loadable next to a
    /// [`crate::SimTimeline`] export of the same trace: request
    /// lifecycles as async (`ph:"b"`/`"e"`) tracks keyed by request id,
    /// worker busy/repair spans as complete events on per-worker
    /// tracks, queue-depth and in-flight counters, admissions as
    /// instants. Timestamps are µs relative to [`Self::epoch_ns`].
    pub fn to_chrome_trace(&self) -> String {
        let rel_us = |t_ns: u64| (t_ns.saturating_sub(self.epoch_ns)) as f64 / 1000.0;
        let mut t = ChromeTrace::new();
        for w in 0..self.worker_busy_ms.len() {
            t.thread_name(w as u32, &format!("worker {w}"));
        }
        let admission_tid = self.worker_busy_ms.len() as u32;
        t.thread_name(admission_tid, "admission");
        let net_tid = admission_tid + 1;
        if self
            .events
            .iter()
            .any(|e| matches!(e.kind, WallEventKind::ConnOpen | WallEventKind::ConnBusy))
        {
            t.thread_name(net_tid, "net");
        }
        // Request lifecycle phases: async events share one track per
        // request id, so a request's queued → proving → verifying chain
        // reads left to right in Perfetto.
        for p in self.life_phases() {
            t.async_begin(
                p.name,
                "request",
                p.id,
                rel_us(p.start_ns),
                &[("open_at_export", (p.end_ns.is_none()).to_string())],
            );
            t.async_end(
                p.name,
                "request",
                p.id,
                rel_us(p.end_ns.unwrap_or(self.horizon_ns)),
            );
        }
        // Worker busy spans from the accounting events (ms payloads are
        // service-clock; the span is drawn at the event's wall offset).
        for e in &self.events {
            match e.kind {
                WallEventKind::WorkerBusy => {
                    let dur_us = (e.b - e.a).max(0.0) * 1000.0;
                    let ts_us = rel_us(e.t_ns) - dur_us;
                    t.complete(
                        "busy",
                        "serve",
                        ts_us.max(0.0),
                        dur_us,
                        e.arg as u32,
                        &[("batch_end_ms", json_num(e.b))],
                    );
                }
                WallEventKind::WorkerRepairBegin => {
                    t.instant("repair_begin", rel_us(e.t_ns), e.arg as u32, &[]);
                }
                WallEventKind::WorkerRepairEnd => {
                    t.instant("repair_end", rel_us(e.t_ns), e.arg as u32, &[]);
                }
                WallEventKind::QueueDepth => {
                    t.counter("queue_depth", rel_us(e.t_ns), e.arg as f64);
                }
                WallEventKind::InFlight => {
                    t.counter("in_flight", rel_us(e.t_ns), e.arg as f64);
                }
                WallEventKind::Admitted
                | WallEventKind::Rejected
                | WallEventKind::RetryAdmitted
                | WallEventKind::RetryRejected
                | WallEventKind::Completed
                | WallEventKind::Shed
                | WallEventKind::Lost => {
                    t.instant(
                        e.kind.as_str(),
                        rel_us(e.t_ns),
                        admission_tid,
                        &[("id", e.id.to_string()), ("tenant", e.tenant.to_string())],
                    );
                }
                WallEventKind::ConnOpen | WallEventKind::ConnClose | WallEventKind::ConnBusy => {
                    t.instant(
                        e.kind.as_str(),
                        rel_us(e.t_ns),
                        net_tid,
                        &[("id", e.id.to_string()), ("arg", e.arg.to_string())],
                    );
                }
                _ => {}
            }
        }
        t.finish()
    }

    /// Compact JSONL: a meta line carrying the epoch and outcome
    /// counts, then every event with epoch-relative timestamps — a
    /// deterministic function of the recorded events, byte-stable aside
    /// from the `epoch_ns` field in `meta`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"kind\":\"meta\",\"epoch_ns\":{},\"events\":{},\"completed\":{},\"rejected\":{},\"shed\":{},\"lost\":{}}}\n",
            self.epoch_ns,
            self.events.len(),
            self.completed,
            self.rejected,
            self.shed,
            self.lost,
        ));
        for e in &self.events {
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"t_ns\":{},\"tid\":{},\"seq\":{},\"id\":{},\"tenant\":{},\"arg\":{},\"a\":{},\"b\":{}}}\n",
                escape_json(e.kind.as_str()),
                e.t_ns.saturating_sub(self.epoch_ns),
                e.tid,
                e.seq,
                e.id,
                e.tenant,
                e.arg,
                json_num(e.a),
                json_num(e.b),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        t_ns: u64,
        seq: u64,
        kind: WallEventKind,
        id: u64,
        arg: u64,
        a: f64,
        b: f64,
    ) -> WallEvent {
        WallEvent {
            t_ns,
            seq,
            tid: 0,
            kind,
            id,
            tenant: 0,
            arg,
            a,
            b,
        }
    }

    #[test]
    fn busy_replay_is_bitwise() {
        // Mirror a dispatcher accumulating `busy += finish - start` over
        // awkward f64s; the timeline must land on the same bits.
        let pairs = [(0.1, 10.7), (10.9, 17.3), (18.0001, 29.5)];
        let mut engine_busy = 0.0f64;
        let mut events = Vec::new();
        for (i, &(s, f)) in pairs.iter().enumerate() {
            engine_busy += f - s;
            events.push(ev(
                (f * 1e6) as u64,
                i as u64,
                WallEventKind::WorkerBusy,
                0,
                2,
                s,
                f,
            ));
        }
        let tl = WallTimeline::from_events(&events);
        assert_eq!(tl.worker_busy_ms(2).to_bits(), engine_busy.to_bits());
        assert_eq!(tl.worker_busy_ms(0), 0.0);
        assert_eq!(tl.num_workers(), 3);
    }

    #[test]
    fn outcome_counts_and_empty_timeline() {
        let tl = WallTimeline::from_events(&[]);
        assert!(tl.is_empty());
        assert_eq!(tl.outcome_count(Outcome::Completed), 0);
        // Exports of an empty timeline are well-formed, not panics.
        assert!(tl.to_jsonl().starts_with("{\"kind\":\"meta\""));
        assert!(tl.to_chrome_trace().contains("traceEvents"));

        let events = vec![
            ev(10, 0, WallEventKind::Admitted, 1, 0, 0.0, 0.0),
            ev(20, 1, WallEventKind::Rejected, 2, 0, 0.0, 0.0),
            ev(30, 2, WallEventKind::Dispatched, 1, 0, 0.0, 0.0),
            ev(40, 3, WallEventKind::Completed, 1, 0, 1.5, 0.0),
            ev(50, 4, WallEventKind::Shed, 3, 0, 0.0, 0.0),
            ev(60, 5, WallEventKind::Lost, 4, 0, 0.0, 0.0),
        ];
        let tl = WallTimeline::from_events(&events);
        assert_eq!(tl.outcome_count(Outcome::Completed), 1);
        assert_eq!(tl.outcome_count(Outcome::Rejected), 1);
        assert_eq!(tl.outcome_count(Outcome::Shed), 1);
        assert_eq!(tl.outcome_count(Outcome::Lost), 1);
        assert_eq!(tl.epoch_ns(), 10);
    }

    #[test]
    fn exports_are_epoch_relative_and_deterministic() {
        let events = vec![
            ev(1_000, 0, WallEventKind::Admitted, 7, 0, 0.0, 0.0),
            ev(2_000, 1, WallEventKind::Dispatched, 7, 0, 0.0, 0.0),
            ev(2_500, 2, WallEventKind::ProveBegin, 7, 0, 0.0, 0.0),
            ev(5_000, 3, WallEventKind::ProveEnd, 7, 0, 0.0, 0.0),
            ev(5_100, 4, WallEventKind::VerifyBegin, 7, 0, 0.0, 0.0),
            ev(6_000, 5, WallEventKind::VerifyEnd, 7, 0, 0.0, 0.0),
            ev(6_000, 6, WallEventKind::WorkerBusy, 0, 0, 0.0025, 0.006),
            ev(6_000, 7, WallEventKind::Completed, 7, 0, 0.005, 0.0),
        ];
        let tl = WallTimeline::from_events(&events);
        let a = tl.to_jsonl();
        let b = tl.clone().to_jsonl();
        assert_eq!(a, b);
        // Timestamps in the body are epoch-relative: the first event
        // prints t_ns 0, and the epoch appears only in meta.
        assert!(a.contains("\"epoch_ns\":1000"));
        assert!(a.contains("\"kind\":\"admitted\",\"t_ns\":0"));
        let chrome = tl.to_chrome_trace();
        assert!(chrome.contains("\"ph\":\"b\""), "async begin present");
        assert!(chrome.contains("\"ph\":\"e\""), "async end present");
        assert!(chrome.contains("\"name\":\"queued\""));
        assert!(chrome.contains("\"name\":\"proving\""));
        assert!(chrome.contains("\"name\":\"verifying\""));
        assert!(chrome.contains("\"name\":\"busy\""));
    }

    #[test]
    fn open_phase_at_export_truncates_to_horizon() {
        // A request still proving when the profile drained: the export
        // must close its phase at the horizon and flag it open.
        let events = vec![
            ev(100, 0, WallEventKind::Admitted, 3, 0, 0.0, 0.0),
            ev(200, 1, WallEventKind::Dispatched, 3, 0, 0.0, 0.0),
            ev(300, 2, WallEventKind::ProveBegin, 3, 0, 0.0, 0.0),
            ev(900, 3, WallEventKind::QueueDepth, 0, 4, 0.0, 0.0),
        ];
        let tl = WallTimeline::from_events(&events);
        let chrome = tl.to_chrome_trace();
        assert!(chrome.contains("\"open_at_export\":true"));
        assert!(chrome.contains("\"name\":\"proving\""));
        assert!(chrome.contains("\"name\":\"queue_depth\""));
    }

    #[test]
    fn parked_phase_closes_on_readmission_or_loss() {
        let events = vec![
            ev(10, 0, WallEventKind::RetryParked, 5, 0, 1.0, 0.0),
            // Re-admission closes the parked phase and re-opens queued,
            // which the dispatch then closes.
            ev(20, 1, WallEventKind::RetryAdmitted, 5, 0, 0.0, 0.0),
            ev(25, 2, WallEventKind::Dispatched, 5, 0, 0.0, 0.0),
            ev(30, 3, WallEventKind::RetryParked, 6, 0, 2.0, 0.0),
            ev(40, 4, WallEventKind::Lost, 6, 0, 0.0, 0.0),
        ];
        let tl = WallTimeline::from_events(&events);
        let chrome = tl.to_chrome_trace();
        assert!(chrome.contains("\"name\":\"parked\""));
        assert!(!chrome.contains("\"open_at_export\":true"));
        assert_eq!(tl.outcome_count(Outcome::Lost), 1);
    }
}
