//! Baseline cost models: the 4/32-thread EPYC-7502 CPU, the A100/ICICLE
//! GPU, and the zkSpeed / zkSpeed+ ASICs the paper compares against.
//!
//! Per DESIGN.md substitution S2, these are analytical models driven by
//! the same operation counts as the functional prover, with per-operation
//! constants anchored to the paper's published absolute runtimes
//! (Table II row 1 for CPU and GPU; zkSpeed's §VI-A3 configuration for
//! the ASIC). Published end-to-end protocol baselines (Tables VI/VII) are
//! carried verbatim in [`zkphire_core::workloads`].

pub mod cpu;
pub mod gpu;
pub mod zkspeed;

pub use cpu::{cpu_sumcheck_ms, CPU_NS_PER_MUL_SINGLE_THREAD};
pub use gpu::{gpu_sumcheck_ms, GPU_NS_PER_MUL, ICICLE_MAX_UNIQUE_MLES};
pub use zkspeed::{zkspeed_sumcheck_ms, ZkSpeedVariant, ZKSPEED_EFFECTIVE_MULS};
