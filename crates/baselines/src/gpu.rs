//! GPU SumCheck cost model (NVIDIA A100 running ICICLE, §VI-A4).
//!
//! Anchored to Table II: `(A·B−C)·f_τ` at `2^24` takes 571 ms on the
//! A100 — ≈ 2 ns per field multiplication across the device (memory
//! bandwidth folded in, as the A100's 1.6 TB/s is the real limiter).
//! ICICLE cannot express composites with more than eight unique
//! constituent polynomials, which is why the paper's Table II has no GPU
//! entries for rows 21–24.

use zkphire_core::profile::PolyProfile;

/// Calibrated device-wide wall time per field multiplication (ns).
pub const GPU_NS_PER_MUL: f64 = 1.0;

/// ICICLE's composite-polynomial limit (§VI-A4).
pub const ICICLE_MAX_UNIQUE_MLES: usize = 8;

/// Modeled A100 runtime (ms) of one SumCheck, or `None` when ICICLE
/// cannot run the polynomial (more than
/// [`ICICLE_MAX_UNIQUE_MLES`] unique constituents).
pub fn gpu_sumcheck_ms(profile: &PolyProfile, mu: usize) -> Option<f64> {
    if profile.unique_slots().len() > ICICLE_MAX_UNIQUE_MLES {
        return None;
    }
    Some(profile.total_muls(mu) * GPU_NS_PER_MUL / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::table1_gate;

    #[test]
    fn calibration_reproduces_table2_row1() {
        // 571 ms on the A100 for (A·B−C)·f_τ at problem size 2N = 2^25.
        let profile = PolyProfile::from_gate(&table1_gate(1));
        let ms = gpu_sumcheck_ms(&profile, 25).unwrap();
        let ratio = ms / 571.0;
        assert!(ratio > 0.7 && ratio < 1.4, "modeled {ms} ms");
    }

    #[test]
    fn icicle_rejects_wide_composites() {
        // Rows 21–24 have more than 8 unique constituents ("—" in Table II).
        for gate in [21usize, 22, 23, 24] {
            let profile = PolyProfile::from_gate(&table1_gate(gate));
            assert!(gpu_sumcheck_ms(&profile, 24).is_none(), "gate {gate}");
        }
    }

    #[test]
    fn gpu_beats_cpu_but_not_by_100x() {
        // Table II: GPU is ~9–12× faster than the 4-thread CPU.
        let profile = PolyProfile::from_gate(&table1_gate(1));
        let cpu = crate::cpu::cpu_sumcheck_ms(&profile, 25, 4);
        let gpu = gpu_sumcheck_ms(&profile, 25).unwrap();
        let speedup = cpu / gpu;
        assert!(speedup > 5.0 && speedup < 20.0, "speedup {speedup}");
    }
}
