//! zkSpeed / zkSpeed+ SumCheck model (§VI-A3).
//!
//! zkSpeed builds a *fixed-function* unified SumCheck core for the
//! Vanilla HyperPlonk polynomials: the datapath is wired to the exact
//! polynomial, so every multiplier is kept busy (no programmability
//! stalls) and the 300 MB global scratchpad eliminates mid-protocol
//! off-chip traffic. Its weakness — and the paper's motivation — is that
//! it cannot run any other composite.
//!
//! * **zkSpeed+** additionally pipelines MLE Updates into the extension/
//!   product datapath (the same fusion zkPHIRE uses), processing each
//!   round in a single pass.
//! * **zkSpeed** (baseline) runs the update as a separate scratchpad
//!   pass, stretching every round.

use zkphire_core::memory::MemoryConfig;
use zkphire_core::profile::PolyProfile;

/// Effective fully-utilized modular multipliers of zkSpeed's SumCheck +
/// MLE-Update area budget (30.8 mm² at 7nm, §VI-A3). Raw multiplier
/// capacity would be 30.8 / 0.133 ≈ 232, but — as in zkPHIRE's own PE
/// breakdown — roughly 55% of a SumCheck datapath is adders, extension
/// registers and control, leaving ≈ 100 fully pipelined multipliers.
pub const ZKSPEED_EFFECTIVE_MULS: f64 = 100.0;

/// Separate-update-pass stretch of baseline zkSpeed relative to zkSpeed+
/// (the update pass re-walks each round's tables through the scratchpad).
const SEPARATE_UPDATE_STRETCH: f64 = 1.5;

/// Which zkSpeed variant to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ZkSpeedVariant {
    /// As published (separate MLE-Update pass).
    Baseline,
    /// With updates pipelined into the SumCheck datapath ("zkSpeed+").
    Plus,
}

/// Modeled zkSpeed runtime (ms) of one SumCheck over `2^mu` entries.
///
/// The fixed-function datapath achieves perfect multiplier utilization;
/// the global scratchpad means only the initial (compressed) table load
/// touches off-chip memory.
pub fn zkspeed_sumcheck_ms(
    profile: &PolyProfile,
    mu: usize,
    variant: ZkSpeedVariant,
    mem: &MemoryConfig,
) -> f64 {
    // Per-pair multiplications: term products at each term's own
    // evaluation-point budget, plus one update per slot.
    let mut per_pair = 0f64;
    for t in &profile.terms {
        if t.degree() == 0 {
            continue; // constant terms add, never multiply
        }
        let k_t = (t.degree() + 1) as f64;
        per_pair += k_t * (t.degree() as f64 - 1.0 + f64::from(u8::from(t.coeff_needs_mul)));
    }
    per_pair += profile.mle_kinds.len() as f64; // updates

    // Σ pairs over rounds = 2^mu − 1.
    let total_pairs = ((1u64 << mu) - 1) as f64;
    let compute = total_pairs * per_pair / ZKSPEED_EFFECTIVE_MULS;

    // One-time fill of the global scratchpad with the compressed tables.
    let n = (1u64 << mu) as f64;
    let fill_bytes: f64 = profile
        .unique_slots()
        .iter()
        .map(|&s| n * profile.round1_bytes_per_entry(s))
        .sum();
    let fill = mem.cycles_for_bytes(fill_bytes);

    let cycles = match variant {
        ZkSpeedVariant::Plus => compute.max(fill),
        ZkSpeedVariant::Baseline => (compute * SEPARATE_UPDATE_STRETCH).max(fill),
    };
    cycles / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::table1_gate;

    #[test]
    fn plus_is_faster_than_baseline() {
        let profile = PolyProfile::from_gate(&table1_gate(20));
        let mem = MemoryConfig::new(2048.0);
        let base = zkspeed_sumcheck_ms(&profile, 24, ZkSpeedVariant::Baseline, &mem);
        let plus = zkspeed_sumcheck_ms(&profile, 24, ZkSpeedVariant::Plus, &mem);
        assert!(plus < base);
        let ratio = base / plus;
        assert!(ratio > 1.2 && ratio < 1.8, "ratio {ratio}");
    }

    #[test]
    fn vanilla_sumchecks_land_in_fig9_range() {
        // Fig. 9: the three Vanilla SumChecks total ≈ tens of ms at 2^24.
        let mem = MemoryConfig::new(2048.0);
        let total: f64 = [20usize, 21, 24]
            .iter()
            .map(|&g| {
                zkspeed_sumcheck_ms(
                    &PolyProfile::from_gate(&table1_gate(g)),
                    24,
                    ZkSpeedVariant::Plus,
                    &mem,
                )
            })
            .sum();
        assert!(total > 3.0 && total < 60.0, "total {total} ms");
    }

    #[test]
    fn scales_linearly() {
        let profile = PolyProfile::from_gate(&table1_gate(21));
        let mem = MemoryConfig::new(2048.0);
        let a = zkspeed_sumcheck_ms(&profile, 20, ZkSpeedVariant::Plus, &mem);
        let b = zkspeed_sumcheck_ms(&profile, 22, ZkSpeedVariant::Plus, &mem);
        assert!(b / a > 3.5 && b / a < 4.5);
    }
}
