//! CPU SumCheck cost model (AMD EPYC 7502, §V).
//!
//! Driven by the exact multiplication counts of
//! [`PolyProfile::total_muls`] (validated against the instrumented
//! functional prover) with a single per-multiplication constant anchored
//! to the paper's Table II: `(A·B−C)·f_τ` at problem size `2N = 2^25`
//! takes 6 770 ms on 4 threads, and the profile performs ≈ 5.7 × 10^8
//! multiplications (products + updates + Build-MLE), giving ≈ 47.5 ns
//! per multiplication per thread — a figure that folds in the field
//! additions, hashing and memory stalls surrounding each multiplication
//! on a real core. This calibration also reproduces the paper's Fig. 6
//! speedup magnitudes (61x-2209x), cross-validating the interpretation.

use zkphire_core::profile::PolyProfile;

/// Calibrated per-multiplication wall time of one EPYC-7502 thread (ns).
pub const CPU_NS_PER_MUL_SINGLE_THREAD: f64 = 47.5;

/// Thread-scaling efficiency exponent: SumCheck is bandwidth-hungry, so
/// doubling threads yields less than 2×. Calibrated so 4 → 32 threads
/// gives the ≈5–6× protocol-level scaling implied by Tables II and VI.
const THREAD_SCALING_EXPONENT: f64 = 0.85;

/// Effective parallelism of `threads` cores.
fn effective_threads(threads: usize) -> f64 {
    (threads as f64).powf(THREAD_SCALING_EXPONENT)
}

/// Modeled CPU runtime (ms) of one SumCheck over `2^mu` entries.
pub fn cpu_sumcheck_ms(profile: &PolyProfile, mu: usize, threads: usize) -> f64 {
    assert!(threads >= 1);
    profile.total_muls(mu) * CPU_NS_PER_MUL_SINGLE_THREAD / effective_threads(threads) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::table1_gate;

    #[test]
    fn calibration_reproduces_table2_row1() {
        // (A·B−C)·f_τ at problem size 2N = 2^25 on 4 threads: 6 770 ms.
        let profile = PolyProfile::from_gate(&table1_gate(1));
        let ms = cpu_sumcheck_ms(&profile, 25, 4);
        let ratio = ms / 6_770.0;
        assert!(
            ratio > 0.75 && ratio < 1.35,
            "modeled {ms} ms (ratio {ratio})"
        );
    }

    #[test]
    fn table2_rows_reproduce_within_2x() {
        // Paper Table II CPU column (4-thread, ms) for HyperPlonk rows.
        let anchors = [
            (20usize, 25usize, 13_354.0), // HP Poly 20 (f_r excluded there; we include it)
            (21, 25, 21_625.0),
            (22, 25, 74_226.0),
            (23, 25, 32_774.0),
            (24, 25, 17_591.0),
        ];
        for (gate, mu, paper_ms) in anchors {
            let profile = PolyProfile::from_gate(&table1_gate(gate));
            let ms = cpu_sumcheck_ms(&profile, mu, 4);
            let ratio = ms / paper_ms;
            // Wide composites over-predict (a real CPU amortizes memory
            // stalls across more math per byte); deltas are recorded in
            // EXPERIMENTS.md. Shape, not absolutes, is the target (S2).
            assert!(
                ratio > 0.4 && ratio < 3.0,
                "gate {gate}: modeled {ms:.0} vs paper {paper_ms:.0} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn threads_scale_sublinearly() {
        let profile = PolyProfile::from_gate(&table1_gate(20));
        let t4 = cpu_sumcheck_ms(&profile, 20, 4);
        let t32 = cpu_sumcheck_ms(&profile, 20, 32);
        let scaling = t4 / t32;
        assert!(scaling > 4.0 && scaling < 8.0, "scaling {scaling}");
    }

    #[test]
    fn runtime_linear_in_problem_size() {
        let profile = PolyProfile::from_gate(&table1_gate(22));
        let a = cpu_sumcheck_ms(&profile, 20, 4);
        let b = cpu_sumcheck_ms(&profile, 23, 4);
        assert!(b / a > 7.0 && b / a < 9.0);
    }
}
