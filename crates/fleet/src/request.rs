//! Proof requests, their size classes, and the tenants that submit them.

use zkphire_core::protocol::Gate;
use zkphire_telemetry::{escape_json, json_num, Outcome};

/// Identifies the customer a request belongs to. A single-tenant
/// deployment uses tenant `0` everywhere; multi-tenant runs assign one
/// id per customer and weight service between them (see
/// [`crate::policy::WeightedFairPolicy`]).
pub type TenantId = u32;

/// The service class of a request: which arithmetization and how many
/// gates (`2^mu`). Two requests of the same class have identical
/// per-proof service time and can share a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestClass {
    /// Gate system (Vanilla or Jellyfish).
    pub gate: Gate,
    /// log2 of the circuit's gate count.
    pub mu: usize,
}

impl RequestClass {
    /// Constructor shorthand.
    pub fn new(gate: Gate, mu: usize) -> Self {
        Self { gate, mu }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = match self.gate {
            Gate::Vanilla => "V",
            Gate::Jellyfish => "J",
        };
        write!(f, "{g}^{}", self.mu)
    }
}

/// One in-flight proof request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Unique, monotonically assigned id (also the arrival order).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Service class.
    pub class: RequestClass,
    /// Arrival timestamp (ms).
    pub arrival_ms: f64,
    /// Absolute latency deadline (ms) — used by deadline-aware policies.
    pub deadline_ms: f64,
    /// Retries consumed so far (0 = first service attempt). Bounded by
    /// [`crate::fault::RetryPolicy::max_retries`]; a request needing
    /// rescue past the budget is dropped as lost.
    pub attempts: u32,
}

/// Completion record for one served request.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// The request id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Service class.
    pub class: RequestClass,
    /// Arrival timestamp (ms).
    pub arrival_ms: f64,
    /// Absolute deadline it was admitted with (ms).
    pub deadline_ms: f64,
    /// When its batch started on a chip (ms).
    pub start_ms: f64,
    /// When its batch finished (ms).
    pub finish_ms: f64,
    /// Serving chip index.
    pub chip: usize,
    /// Number of requests in the batch it rode in.
    pub batch_size: usize,
    /// Retries this request consumed before completing (0 = served on
    /// its first attempt).
    pub attempts: u32,
}

impl RequestRecord {
    /// Sojourn time: queueing plus service (ms).
    pub fn latency_ms(&self) -> f64 {
        self.finish_ms - self.arrival_ms
    }

    /// Whether the request finished by its deadline.
    pub fn met_deadline(&self) -> bool {
        self.finish_ms <= self.deadline_ms
    }
}

/// Terminal-outcome record for one request, emitted as it resolves —
/// the streaming counterpart to the drain-time [`RequestRecord`] list.
/// Covers every terminal state ([`Outcome`]), not just completions.
#[derive(Clone, Copy, Debug)]
pub struct OutcomeRecord {
    /// The request id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Service class.
    pub class: RequestClass,
    /// How the request left the system.
    pub outcome: Outcome,
    /// When the outcome was reached (ms since service start).
    pub t_ms: f64,
    /// Sojourn time for completions (ms); 0 for requests that never
    /// finished service.
    pub latency_ms: f64,
    /// Retries consumed.
    pub attempts: u32,
}

impl OutcomeRecord {
    /// One JSONL line (no trailing newline), stable field order.
    pub fn to_jsonl_line(&self) -> String {
        format!(
            "{{\"id\":{},\"tenant\":{},\"class\":\"{}\",\"outcome\":\"{}\",\"t_ms\":{},\"latency_ms\":{},\"attempts\":{}}}",
            self.id,
            self.tenant,
            escape_json(&self.class.to_string()),
            self.outcome.as_str(),
            json_num(self.t_ms),
            json_num(self.latency_ms),
            self.attempts,
        )
    }
}
