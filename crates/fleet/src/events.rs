//! The event-queue engine: a binary heap of timestamped events with a
//! monotone sequence number breaking timestamp ties, so pop order is a
//! total order independent of heap internals — the root of the
//! simulator's bit-for-bit reproducibility.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::SimError;

/// Simulation timestamps are `f64` milliseconds. Non-finite times are
/// rejected at event construction ([`EventQueue::try_push`]), so the
/// ordering below never sees a NaN in a well-formed run; `total_cmp`
/// keeps it a total order even for one that slipped past construction,
/// so the heap can never panic mid-run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimTime(pub f64);

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// What happens at a timestamp.
///
/// Several variants carry an `epoch`: the future-event list is a heap
/// with no cancellation, so events that may be invalidated by a later
/// state change (a batch lost to a chip failure, a failure armed for a
/// chip the autoscaler since retired) are validated at pop time against
/// the chip's current epoch counter and silently dropped when stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A request arrives from the front-end (its id).
    Arrival(u64),
    /// A chip finishes its current batch.
    BatchDone {
        /// Which chip.
        chip: usize,
        /// Dispatch epoch captured at dispatch; stale (the batch was
        /// lost to a chip failure) when it no longer matches.
        epoch: u64,
    },
    /// A spinning-up chip comes online (scheduled `spin_up_ms` after
    /// the autoscaler's decision).
    ChipUp {
        /// Which chip.
        chip: usize,
    },
    /// An idle chip selected for decommission powers off.
    ChipDown {
        /// Which chip.
        chip: usize,
    },
    /// A chip fails (MTBF draw from the [`crate::fault::FaultModel`]);
    /// any in-flight batch is lost.
    ChipFail {
        /// Which chip.
        chip: usize,
        /// Availability epoch captured when the failure was armed;
        /// stale when the chip was retired/failed/recycled since.
        epoch: u64,
    },
    /// A failed chip finishes repair (MTTR) and rejoins the pool.
    ChipRepair {
        /// Which chip.
        chip: usize,
        /// Availability epoch captured at failure time.
        epoch: u64,
    },
    /// A scripted outage from [`crate::fault::FaultKind::Scripted`]
    /// begins (index into the outage list; applied only if the chip is
    /// online when it pops).
    ScriptedFail(usize),
    /// A lost or timed-out request re-enters admission after its
    /// retry backoff (the request body is parked in the simulator).
    Retry(u64),
    /// Periodic autoscaler evaluation point.
    ScaleTick,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

// BinaryHeap is a max-heap: invert so the earliest (time, seq) pops first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: f64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the timestamp of the last pop).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTime`] for a NaN or infinite `time` — a
    /// single NaN arrival must surface as a typed error at the
    /// boundary, not poison the heap ordering mid-run — and
    /// [`SimError::EventInPast`] for a `time` before the clock.
    pub fn try_push(&mut self, time: f64, event: Event) -> Result<(), SimError> {
        if !time.is_finite() {
            return Err(SimError::InvalidTime { time_ms: time });
        }
        if time < self.now {
            return Err(SimError::EventInPast {
                time_ms: time,
                now_ms: self.now,
            });
        }
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time: SimTime(time),
            seq,
            event,
        });
        Ok(())
    }

    /// [`EventQueue::try_push`] for contexts that cannot recover.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`SimError`] message on a non-finite or
    /// past `time` — the engine itself uses `try_push` and propagates.
    pub fn push(&mut self, time: f64, event: Event) {
        if let Err(e) = self.try_push(time, event) {
            panic!("{e}");
        }
    }

    /// Pops the earliest event, advancing the clock to it. Ties on time
    /// resolve in insertion order.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        let s = self.heap.pop()?;
        self.now = s.time.0;
        Some((s.time.0, s.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::Arrival(3));
        q.push(1.0, Event::Arrival(1));
        q.push(2.0, Event::Arrival(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival(id) => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        for id in 0..100 {
            q.push(5.0, Event::Arrival(id));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival(id) => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(1.5, Event::BatchDone { chip: 0, epoch: 0 });
        q.push(1.5, Event::Arrival(0));
        q.push(9.0, Event::Arrival(1));
        let mut last = 0.0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, 9.0);
    }

    #[test]
    fn rejects_past_events_as_typed_error() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::Arrival(0));
        q.pop();
        assert_eq!(
            q.try_push(1.0, Event::Arrival(1)),
            Err(SimError::EventInPast {
                time_ms: 1.0,
                now_ms: 2.0
            })
        );
    }

    #[test]
    fn rejects_non_finite_times_as_typed_error() {
        // A NaN or infinite timestamp must be a typed Err at the
        // boundary, never a panic from inside the heap's comparator.
        let mut q = EventQueue::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = q.try_push(bad, Event::Arrival(0)).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidTime { .. }),
                "{bad}: {err:?}"
            );
        }
        // The queue is unharmed and keeps working.
        assert!(q.is_empty());
        q.push(1.0, Event::Arrival(7));
        assert_eq!(q.pop(), Some((1.0, Event::Arrival(7))));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn panicking_wrapper_keeps_legacy_contract() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::Arrival(0));
        q.pop();
        q.push(1.0, Event::Arrival(1));
    }
}
