//! The fleet simulator: admission → queue → batch → chip pool, driven by
//! the event engine. The pool itself is elastic: an optional
//! [`AutoscaleConfig`] lets `ScaleTick` / `ChipUp` / `ChipDown` events
//! vary the online chip count mid-run between configured bounds.
//!
//! On top of the happy path sits an opt-in resilience layer (see
//! [`crate::fault`] and `docs/RESILIENCE.md`):
//!
//! * chip failures ([`FaultConfig`]) kill in-flight batches; the work
//!   re-enters through the [`RetryPolicy`] or is lost for good,
//! * deadline-expired requests are caught at dispatch and retried with
//!   a fresh deadline instead of burning chip time on late work
//!   (only when a retry policy is configured — legacy runs without one
//!   serve late work and count it as a deadline miss, unchanged),
//! * per-tenant queue caps bound how much of the shared queue a single
//!   noisy tenant may hold,
//! * brown-out ([`BrownOutConfig`]) sheds the latest-deadline work when
//!   surviving capacity drops below a threshold.
//!
//! All of it is deterministic: a run is a pure function of
//! `(config, seed)`, and [`SimReport::trace_hash`] certifies replay.

use std::collections::BTreeMap;

use crate::arrivals::ArrivalSource;
use crate::events::{Event, EventQueue};
use crate::fault::{BrownOutConfig, FaultConfig, FaultKind, FaultModel, RetryPolicy};
use crate::metrics::{try_summarize, FleetSummary, RunAccumulators};
use crate::policy::{BatchPolicy, PolicyKind};
use crate::request::{Request, RequestClass, RequestRecord, TenantId};
use crate::rng::SplitMix64;
use crate::scale::{
    AutoscaleConfig, AutoscalePolicy, ScaleDecision, ScaleObservation, TenantWeights,
};
use zkphire_core::costdb::CostModel;
use zkphire_telemetry::{AdmissionOutcome, SimTimeline};

/// Dedicated stream tag for retry-backoff jitter, XORed into the fault
/// seed so jitter draws never alias the failure-timing stream.
const RETRY_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

// SimError grew beyond the simulator (the event queue and metrics
// report through it too) and lives in `crate::error`; re-exported here
// so `sim::SimError` paths keep compiling.
pub use crate::error::SimError;

/// Deployment and policy knobs for one simulation.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Chips in the pool. With autoscaling enabled this is the
    /// *initial* online count (clamped to the autoscaler's bounds);
    /// without it, the fixed pool size.
    pub chips: usize,
    /// Batching policy.
    pub policy: PolicyKind,
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Admission cap on queued requests (`None` = unbounded). A cap of
    /// zero rejects every request: nothing may wait, not even with
    /// idle chips.
    pub queue_capacity: Option<usize>,
    /// Per-batch reconfiguration overhead (ms): program load + FSM
    /// setup when a chip switches to a batch (§III-E program swap).
    pub batch_overhead_ms: f64,
    /// Deadline budget as a multiple of the class's isolated proof
    /// latency (EDF and the miss-rate metric).
    pub deadline_factor: f64,
    /// Additive deadline slack (ms).
    pub deadline_slack_ms: f64,
    /// Reactive pool sizing; `None` keeps the pool fixed at `chips`.
    pub autoscale: Option<AutoscaleConfig>,
    /// Per-tenant service weights for [`PolicyKind::WeightedFair`] and
    /// the Jain fairness index; tenants absent here weigh 1.
    pub tenant_weights: TenantWeights,
    /// Chip failure injection; `None` = chips never fail (legacy).
    pub faults: Option<FaultConfig>,
    /// Rescue for lost or deadline-expired work; `None` = no retries,
    /// failed work is lost and late work is served anyway (legacy).
    pub retry: Option<RetryPolicy>,
    /// Graceful degradation under capacity loss; `None` = never shed.
    pub brown_out: Option<BrownOutConfig>,
    /// Per-tenant queued-request caps, overriding
    /// `default_tenant_cap` for the listed tenants.
    pub tenant_caps: Vec<(TenantId, usize)>,
    /// Queued-request cap applied to tenants absent from
    /// `tenant_caps`; `None` = unlimited (only the shared
    /// `queue_capacity` applies).
    pub default_tenant_cap: Option<usize>,
    /// Record a [`SimTimeline`] (per-chip busy/failed spans, queue and
    /// provisioned time series, admission decisions) into the report.
    /// Sim-time only, so the recorded timeline is byte-identical per
    /// seed; off by default (legacy behavior, zero overhead).
    pub telemetry: bool,
}

impl FleetConfig {
    /// A sensible default deployment: `chips` chips, size-class
    /// batching of up to 8, 1 ms reconfiguration, deadlines at
    /// 5× isolated latency + 50 ms, fixed pool, no faults.
    pub fn new(chips: usize) -> Self {
        Self {
            chips,
            policy: PolicyKind::SizeClass,
            max_batch: 8,
            queue_capacity: None,
            batch_overhead_ms: 1.0,
            deadline_factor: 5.0,
            deadline_slack_ms: 50.0,
            autoscale: None,
            tenant_weights: Vec::new(),
            faults: None,
            retry: None,
            brown_out: None,
            tenant_caps: Vec::new(),
            default_tenant_cap: None,
            telemetry: false,
        }
    }

    /// Enables sim-time timeline recording (builder style). The engine
    /// then replays its busy/provisioned accounting into a
    /// [`SimTimeline`] whose integrals reconcile bitwise with the
    /// summary's chip-second metrics (asserted at drain).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Sets the policy (builder style).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batch cap (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the admission cap (builder style). A capacity of zero
    /// rejects all traffic.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Enables reactive pool sizing (builder style).
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Sets per-tenant service weights (builder style).
    pub fn with_tenant_weights(mut self, weights: TenantWeights) -> Self {
        self.tenant_weights = weights;
        self
    }

    /// Enables chip failure injection (builder style).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables retry of lost and deadline-expired work (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Enables brown-out shedding under capacity loss (builder style).
    pub fn with_brown_out(mut self, brown_out: BrownOutConfig) -> Self {
        self.brown_out = Some(brown_out);
        self
    }

    /// Sets per-tenant queue caps (builder style).
    pub fn with_tenant_caps(mut self, caps: Vec<(TenantId, usize)>) -> Self {
        self.tenant_caps = caps;
        self
    }

    /// Caps every tenant not listed in `tenant_caps` (builder style).
    pub fn with_default_tenant_cap(mut self, cap: usize) -> Self {
        self.default_tenant_cap = Some(cap);
        self
    }

    /// The queued-request cap admission enforces for `tenant`:
    /// its `tenant_caps` entry, else the default cap, else `None`.
    pub fn tenant_cap(&self, tenant: TenantId) -> Option<usize> {
        self.tenant_caps
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, cap)| *cap)
            .or(self.default_tenant_cap)
    }
}

/// One entry of the reproducible event trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEntry {
    /// A request was admitted to the queue.
    Admitted {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
        /// Submitting tenant.
        tenant: TenantId,
    },
    /// A request was refused at admission.
    Rejected {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
        /// Submitting tenant.
        tenant: TenantId,
    },
    /// A batch started on a chip.
    Dispatched {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
        /// First request id in the batch.
        first_id: u64,
        /// Batch size.
        size: usize,
    },
    /// A batch finished on a chip.
    Completed {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
        /// Batch size.
        size: usize,
    },
    /// The autoscaler brought a chip online.
    ChipUp {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
    },
    /// The autoscaler retired a chip.
    ChipDown {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
    },
    /// A chip failed, losing any in-flight batch.
    ChipFail {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
    },
    /// A failed chip finished repair and rejoined the pool.
    ChipRepair {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
    },
    /// A request entered retry backoff.
    Retried {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
        /// The retry number this backoff precedes (1-based).
        attempt: u32,
    },
    /// A request was dropped past its retry budget.
    Lost {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
        /// Submitting tenant.
        tenant: TenantId,
    },
    /// Brown-out shed a queued request.
    Shed {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
        /// Submitting tenant.
        tenant: TenantId,
    },
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Aggregate metrics.
    pub summary: FleetSummary,
    /// Per-request completion records, in completion order.
    pub records: Vec<RequestRecord>,
    /// The full decision trace (admissions, dispatches, completions,
    /// chip power transitions, failures, retries, sheds).
    pub trace: Vec<TraceEntry>,
    /// FNV-1a hash of the trace — two runs are identical iff equal.
    pub trace_hash: u64,
    /// The sim-time observability timeline; present iff the run was
    /// configured [`FleetConfig::with_telemetry`].
    pub timeline: Option<SimTimeline>,
}

/// Lifecycle of one pool slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChipState {
    /// Powered off; invisible to dispatch.
    Off,
    /// Spin-up decided; comes online at its `ChipUp` event.
    Pending,
    /// Online and accepting batches.
    Up,
    /// Idle chip selected for decommission; its `ChipDown` event is in
    /// flight and dispatch must not grab it.
    Retiring,
    /// Failed; invisible to dispatch and to the autoscaler until its
    /// `ChipRepair` event brings it back.
    Failed,
}

struct Chip {
    state: ChipState,
    busy: bool,
    busy_ms: f64,
    batch: Vec<Request>,
    batch_start_ms: f64,
    /// When the in-flight batch would finish — lets a failure uncount
    /// the service time it interrupted.
    batch_done_ms: f64,
    /// Bumped on every state transition; `ChipFail`/`ChipRepair`
    /// events carry the epoch they were armed under and are dropped
    /// stale if the chip moved on (the heap has no cancellation).
    avail_epoch: u64,
    /// Bumped per dispatch *and* on failure; validates `BatchDone`,
    /// so a batch lost to a failure cannot also complete.
    dispatch_epoch: u64,
}

impl Chip {
    fn dispatchable(&self) -> bool {
        self.state == ChipState::Up && !self.busy
    }
}

/// Runs the discrete-event simulation to completion: all arrivals from
/// `source` flow through admission and batching onto the simulated chip
/// pool, whose service times come from `cost`, whose size the optional
/// autoscaler varies within its bounds, and whose chips fail and repair
/// per the optional fault model.
pub fn simulate<S: ArrivalSource>(
    cfg: &FleetConfig,
    source: &mut S,
    cost: &mut CostModel,
) -> Result<SimReport, SimError> {
    if cfg.chips == 0 {
        return Err(SimError::InvalidConfig("fleet of zero chips".into()));
    }
    if cfg.batch_overhead_ms < 0.0 || cfg.batch_overhead_ms.is_nan() {
        return Err(SimError::InvalidConfig(format!(
            "negative batch overhead {} ms",
            cfg.batch_overhead_ms
        )));
    }
    let (slots, initial_online) = match &cfg.autoscale {
        Some(a) => (a.max_chips, cfg.chips.clamp(a.min_chips, a.max_chips)),
        None => (cfg.chips, cfg.chips),
    };
    if let Some(FaultConfig {
        kind: FaultKind::Scripted { outages },
        ..
    }) = &cfg.faults
    {
        if let Some(bad) = outages.iter().find(|o| o.chip >= slots) {
            return Err(SimError::InvalidConfig(format!(
                "scripted outage names chip {} of a {slots}-slot pool",
                bad.chip
            )));
        }
    }
    let fault_seed = cfg.faults.as_ref().map_or(0, |f| f.seed);
    let mut engine = Engine {
        cfg,
        queue: EventQueue::new(),
        policy: cfg.policy.build_with(&cfg.tenant_weights),
        scaler: cfg.autoscale.as_ref().map(|a| a.kind.build()),
        faults: cfg.faults.clone().map(FaultModel::new),
        retry_rng: SplitMix64::new(fault_seed ^ RETRY_STREAM),
        chips: (0..slots)
            .map(|i| Chip {
                state: if i < initial_online {
                    ChipState::Up
                } else {
                    ChipState::Off
                },
                busy: false,
                busy_ms: 0.0,
                batch: Vec::new(),
                batch_start_ms: 0.0,
                batch_done_ms: 0.0,
                avail_epoch: 0,
                dispatch_epoch: 0,
            })
            .collect(),
        provisioned: initial_online,
        pending_up: 0,
        last_scale_action_ms: f64::NEG_INFINITY,
        initial_online,
        records: Vec::new(),
        trace: Vec::new(),
        acc: RunAccumulators {
            busy_ms: vec![0.0; slots],
            depth_time_integral: 0.0,
            max_queue_depth: 0,
            batches: 0,
            arrivals: 0,
            rejected: 0,
            rejected_by_tenant: BTreeMap::new(),
            shed: 0,
            shed_by_tenant: BTreeMap::new(),
            lost: 0,
            lost_by_tenant: BTreeMap::new(),
            retries: 0,
            chip_failures: 0,
            chip_repairs: 0,
            makespan_ms: 0.0,
            chip_time_integral_ms: 0.0,
            peak_chips: initial_online,
            scale_ups: 0,
            scale_downs: 0,
        },
        parked: BTreeMap::new(),
        tenant_queued: BTreeMap::new(),
        pending: None,
        next_id: 0,
        timeline: cfg.telemetry.then(|| SimTimeline::new(slots)),
    };
    engine.run(source, cost)
}

/// The simulator's mutable state plus the event-loop handlers. One
/// instance per [`simulate`] call; the arrival source and cost model
/// stay outside (they are the caller's) and thread through as method
/// arguments.
struct Engine<'a> {
    cfg: &'a FleetConfig,
    queue: EventQueue,
    policy: Box<dyn BatchPolicy>,
    scaler: Option<Box<dyn AutoscalePolicy>>,
    faults: Option<FaultModel>,
    /// Backoff-jitter stream, decoupled from failure timing.
    retry_rng: SplitMix64,
    chips: Vec<Chip>,
    provisioned: usize,
    pending_up: usize,
    last_scale_action_ms: f64,
    initial_online: usize,
    records: Vec<RequestRecord>,
    trace: Vec<TraceEntry>,
    acc: RunAccumulators,
    /// Requests sitting out a retry backoff, keyed by id.
    parked: BTreeMap<u64, Request>,
    /// Queued-request count per tenant (admission caps).
    tenant_queued: BTreeMap<TenantId, usize>,
    /// The one arrival in flight; its body parks here until its event
    /// pops.
    pending: Option<Request>,
    next_id: u64,
    /// Sim-time observability record (`FleetConfig::with_telemetry`).
    /// Mirrors the engine's own busy/provisioned accounting op-for-op,
    /// so its integrals reconcile bitwise with the summary.
    timeline: Option<SimTimeline>,
}

impl Engine<'_> {
    fn run<S: ArrivalSource>(
        &mut self,
        source: &mut S,
        cost: &mut CostModel,
    ) -> Result<SimReport, SimError> {
        self.pending = self.prime(source, cost)?;
        if self.pending.is_some() {
            if let Some(a) = &self.cfg.autoscale {
                self.queue.try_push(a.interval_ms, Event::ScaleTick)?;
            }
            for chip in 0..self.initial_online {
                self.arm_failure(chip, 0.0)?;
            }
            let outage_times: Vec<f64> = self
                .faults
                .as_ref()
                .map_or_else(Vec::new, |f| f.outages().iter().map(|o| o.at_ms).collect());
            for (i, at) in outage_times.into_iter().enumerate() {
                self.queue.try_push(at, Event::ScriptedFail(i))?;
            }
        }

        let mut last_time = 0.0;
        while let Some((now, event)) = self.queue.pop() {
            self.acc.depth_time_integral += self.policy.depth() as f64 * (now - last_time);
            self.acc.chip_time_integral_ms += self.provisioned as f64 * (now - last_time);
            last_time = now;
            if let Some(tl) = &mut self.timeline {
                // Same op, same operands, same order as the integral
                // update above — the timeline's provisioned integral is
                // bitwise equal to `chip_time_integral_ms` at drain.
                tl.tick(now, self.provisioned);
            }
            // Fault events dropped as stale (epoch mismatch) or moot
            // (no work left) must not stretch the makespan: an armed
            // failure popping long after the last completion would
            // otherwise dilute throughput and goodput.
            let effectful = match event {
                Event::Arrival(id) => {
                    self.on_arrival(id, now, source, cost)?;
                    true
                }
                Event::BatchDone { chip, epoch } => {
                    self.on_batch_done(chip, epoch, now);
                    true
                }
                Event::ChipUp { chip } => {
                    self.on_chip_up(chip, now)?;
                    true
                }
                Event::ChipDown { chip } => {
                    self.on_chip_down(chip, now);
                    true
                }
                Event::ChipFail { chip, epoch } => self.on_chip_fail(chip, epoch, now)?,
                Event::ChipRepair { chip, epoch } => self.on_chip_repair(chip, epoch, now)?,
                Event::ScriptedFail(idx) => self.on_scripted_fail(idx, now)?,
                Event::Retry(id) => {
                    self.on_retry(id, now, cost)?;
                    true
                }
                Event::ScaleTick => {
                    self.on_scale_tick(now)?;
                    true
                }
            };
            if effectful {
                self.acc.makespan_ms = now;
            }
            self.shed_if_browned_out(now)?;
            self.dispatch(cost)?;
            if let Some(tl) = &mut self.timeline {
                tl.sample_queue_depth(now, self.policy.depth());
                tl.sample_retry_depth(now, self.parked.len());
            }
        }

        // Drain-time accounting reconciliation. These were asserts; they
        // now surface as `SimError::Invariant` (messages kept verbatim)
        // so a service embedding the simulator survives a corrupted run.
        for (i, c) in self.chips.iter().enumerate() {
            if c.busy {
                return Err(SimError::Invariant(format!("chip {i} still busy at drain")));
            }
            self.acc.busy_ms[i] = c.busy_ms;
        }
        if let Some(tl) = &mut self.timeline {
            tl.finalize(self.acc.makespan_ms);
            // The timeline must never drift from the metrics it
            // explains: both sides replayed identical f64 op sequences,
            // so require bitwise equality, not closeness.
            if tl.provisioned_integral_ms().to_bits() != self.acc.chip_time_integral_ms.to_bits() {
                return Err(SimError::Invariant(
                    "timeline provisioned integral drifted from chip-time integral".into(),
                ));
            }
            for (i, &busy) in self.acc.busy_ms.iter().enumerate() {
                if tl.busy_ms(i).to_bits() != busy.to_bits() {
                    return Err(SimError::Invariant(format!(
                        "timeline busy accumulator drifted from chip {i} busy_ms"
                    )));
                }
            }
        }
        if self.policy.depth() != 0 {
            return Err(SimError::Invariant(
                "requests stranded in queue at drain".into(),
            ));
        }
        if !self.parked.is_empty() {
            return Err(SimError::Invariant(
                "requests stranded in backoff at drain".into(),
            ));
        }
        if self.acc.arrivals
            != self.records.len() as u64 + self.acc.rejected + self.acc.shed + self.acc.lost
        {
            return Err(SimError::Invariant(
                "terminal outcomes do not conserve arrivals".into(),
            ));
        }
        let trace_hash = hash_trace(&self.trace);
        Ok(SimReport {
            summary: try_summarize(&self.records, &self.acc, &self.cfg.tenant_weights)?,
            records: std::mem::take(&mut self.records),
            trace: std::mem::take(&mut self.trace),
            trace_hash,
            timeline: self.timeline.take(),
        })
    }

    /// Pulls the next arrival from the source, schedules its event, and
    /// returns its request body — deadline already filled (no policy
    /// ever observes a placeholder). A source emitting a NaN, infinite,
    /// or time-reversed arrival surfaces here as a typed error.
    fn prime<S: ArrivalSource>(
        &mut self,
        source: &mut S,
        cost: &mut CostModel,
    ) -> Result<Option<Request>, SimError> {
        let Some((t, class, tenant)) = source.next_arrival() else {
            return Ok(None);
        };
        let id = self.next_id;
        self.next_id += 1;
        self.queue.try_push(t, Event::Arrival(id))?;
        Ok(Some(Request {
            id,
            tenant,
            class,
            arrival_ms: t,
            deadline_ms: t
                + self.cfg.deadline_slack_ms
                + self.cfg.deadline_factor * cost.proof_ms(class.gate, class.mu),
            attempts: 0,
        }))
    }

    /// Whether admission must refuse more work from `tenant`: its
    /// per-tenant cap first, then the shared queue capacity.
    fn admission_full(&self, tenant: TenantId) -> bool {
        if let Some(cap) = self.cfg.tenant_cap(tenant) {
            if self.tenant_queued.get(&tenant).copied().unwrap_or(0) >= cap {
                return true;
            }
        }
        self.cfg
            .queue_capacity
            .is_some_and(|cap| self.policy.depth() >= cap)
    }

    fn enqueue(&mut self, req: Request) {
        *self.tenant_queued.entry(req.tenant).or_insert(0) += 1;
        self.policy.push(req);
        self.acc.max_queue_depth = self.acc.max_queue_depth.max(self.policy.depth());
    }

    fn note_dequeued(&mut self, req: &Request) -> Result<(), SimError> {
        let n = self
            .tenant_queued
            .get_mut(&req.tenant)
            .ok_or_else(|| SimError::Invariant("dequeued tenant was never queued".into()))?;
        *n -= 1;
        Ok(())
    }

    fn on_arrival<S: ArrivalSource>(
        &mut self,
        id: u64,
        now: f64,
        source: &mut S,
        cost: &mut CostModel,
    ) -> Result<(), SimError> {
        let req = self
            .pending
            .take()
            .ok_or(SimError::ArrivalWithoutPending { id, time_ms: now })?;
        debug_assert_eq!(req.id, id);
        // Pull the next arrival before admission so the event stream
        // ordering never depends on queue state.
        self.pending = self.prime(source, cost)?;
        self.acc.arrivals += 1;
        if self.admission_full(req.tenant) {
            self.acc.rejected += 1;
            *self.acc.rejected_by_tenant.entry(req.tenant).or_insert(0) += 1;
            self.trace.push(TraceEntry::Rejected {
                time_ms: now,
                id: req.id,
                tenant: req.tenant,
            });
            if let Some(tl) = &mut self.timeline {
                tl.admission(
                    now,
                    req.id,
                    u64::from(req.tenant),
                    AdmissionOutcome::Rejected,
                );
            }
        } else {
            self.trace.push(TraceEntry::Admitted {
                time_ms: now,
                id: req.id,
                tenant: req.tenant,
            });
            if let Some(tl) = &mut self.timeline {
                tl.admission(
                    now,
                    req.id,
                    u64::from(req.tenant),
                    AdmissionOutcome::Admitted,
                );
            }
            self.enqueue(req);
        }
        Ok(())
    }

    /// Sends rescued work back through the retry policy, or drops it as
    /// lost when the budget is spent (or no policy is configured).
    fn route_retry_or_lost(&mut self, mut req: Request, now: f64) -> Result<(), SimError> {
        match self.cfg.retry {
            Some(p) if req.attempts < p.max_retries => {
                req.attempts += 1;
                self.acc.retries += 1;
                let backoff = p.backoff_ms(req.attempts, &mut self.retry_rng);
                self.trace.push(TraceEntry::Retried {
                    time_ms: now,
                    id: req.id,
                    attempt: req.attempts,
                });
                self.queue.try_push(now + backoff, Event::Retry(req.id))?;
                self.parked.insert(req.id, req);
            }
            _ => {
                self.acc.lost += 1;
                *self.acc.lost_by_tenant.entry(req.tenant).or_insert(0) += 1;
                self.trace.push(TraceEntry::Lost {
                    time_ms: now,
                    id: req.id,
                    tenant: req.tenant,
                });
            }
        }
        Ok(())
    }

    fn on_retry(&mut self, id: u64, now: f64, cost: &mut CostModel) -> Result<(), SimError> {
        let mut req = self
            .parked
            .remove(&id)
            .ok_or(SimError::UnknownRetry { id, time_ms: now })?;
        if self.admission_full(req.tenant) {
            // Re-admission refused: park again (another attempt) or
            // lose. Rejection is terminal only for fresh arrivals.
            if let Some(tl) = &mut self.timeline {
                tl.admission(
                    now,
                    req.id,
                    u64::from(req.tenant),
                    AdmissionOutcome::RetryRejected,
                );
            }
            self.route_retry_or_lost(req, now)?;
        } else {
            // A fresh deadline — the old one is already blown or at
            // risk; latency still accrues from the original arrival.
            req.deadline_ms = now
                + self.cfg.deadline_slack_ms
                + self.cfg.deadline_factor * cost.proof_ms(req.class.gate, req.class.mu);
            if let Some(tl) = &mut self.timeline {
                tl.admission(
                    now,
                    req.id,
                    u64::from(req.tenant),
                    AdmissionOutcome::RetryAdmitted,
                );
            }
            self.enqueue(req);
        }
        Ok(())
    }

    fn on_batch_done(&mut self, chip: usize, epoch: u64, now: f64) {
        let c = &mut self.chips[chip];
        if c.dispatch_epoch != epoch {
            // The batch this event announced was lost to a failure.
            return;
        }
        let size = c.batch.len();
        let start = c.batch_start_ms;
        let batch = std::mem::take(&mut c.batch);
        c.busy = false;
        for r in batch {
            self.records.push(RequestRecord {
                id: r.id,
                tenant: r.tenant,
                class: r.class,
                arrival_ms: r.arrival_ms,
                deadline_ms: r.deadline_ms,
                start_ms: start,
                finish_ms: now,
                chip,
                batch_size: size,
                attempts: r.attempts,
            });
        }
        self.trace.push(TraceEntry::Completed {
            time_ms: now,
            chip,
            size,
        });
        if let Some(tl) = &mut self.timeline {
            tl.complete_busy(chip, now);
        }
    }

    fn on_chip_up(&mut self, chip: usize, now: f64) -> Result<(), SimError> {
        let c = &mut self.chips[chip];
        debug_assert_eq!(c.state, ChipState::Pending);
        c.state = ChipState::Up;
        c.avail_epoch += 1;
        self.pending_up -= 1;
        self.acc.scale_ups += 1;
        self.trace.push(TraceEntry::ChipUp { time_ms: now, chip });
        self.arm_failure(chip, now)
    }

    fn on_chip_down(&mut self, chip: usize, now: f64) {
        let c = &mut self.chips[chip];
        debug_assert_eq!(c.state, ChipState::Retiring);
        debug_assert!(!c.busy, "retiring a busy chip");
        c.state = ChipState::Off;
        c.avail_epoch += 1;
        self.provisioned -= 1;
        self.acc.scale_downs += 1;
        self.trace.push(TraceEntry::ChipDown { time_ms: now, chip });
    }

    /// Arms the next random failure of an online chip — only while the
    /// run still has work, so trailing fail/repair cycles cannot keep
    /// an otherwise-drained simulation alive.
    fn arm_failure(&mut self, chip: usize, now: f64) -> Result<(), SimError> {
        if !self.work_remains() {
            return Ok(());
        }
        let Some(f) = self.faults.as_mut() else {
            return Ok(());
        };
        let Some(delay) = f.next_failure_ms() else {
            return Ok(());
        };
        let epoch = self.chips[chip].avail_epoch;
        self.queue
            .try_push(now + delay, Event::ChipFail { chip, epoch })
    }

    fn on_chip_fail(&mut self, chip: usize, epoch: u64, now: f64) -> Result<bool, SimError> {
        let c = &self.chips[chip];
        if c.avail_epoch != epoch || c.state != ChipState::Up || !self.work_remains() {
            return Ok(false);
        }
        let Some(f) = self.faults.as_mut() else {
            return Err(SimError::Invariant("fail without model".into()));
        };
        let repair_at = now + f.next_repair_ms();
        self.fail_chip(chip, now, repair_at)?;
        Ok(true)
    }

    fn on_scripted_fail(&mut self, idx: usize, now: f64) -> Result<bool, SimError> {
        let Some(f) = self.faults.as_ref() else {
            return Err(SimError::Invariant("scripted fail without model".into()));
        };
        let outage = f.outages()[idx];
        if self.chips[outage.chip].state != ChipState::Up || !self.work_remains() {
            return Ok(false);
        }
        self.fail_chip(outage.chip, now, now + outage.down_for_ms)?;
        Ok(true)
    }

    /// Takes a chip down: the in-flight batch (if any) is lost and
    /// rerouted through retry, service time it never rendered is
    /// uncounted, and the repair event is scheduled.
    fn fail_chip(&mut self, chip: usize, now: f64, repair_at: f64) -> Result<(), SimError> {
        let c = &mut self.chips[chip];
        debug_assert_eq!(c.state, ChipState::Up);
        c.state = ChipState::Failed;
        c.avail_epoch += 1;
        let epoch = c.avail_epoch;
        let was_busy = c.busy;
        let unrendered_ms = c.batch_done_ms - now;
        let lost_batch = if c.busy {
            c.busy = false;
            c.busy_ms -= unrendered_ms;
            c.dispatch_epoch += 1; // invalidate the in-flight BatchDone
            std::mem::take(&mut c.batch)
        } else {
            Vec::new()
        };
        if let Some(tl) = &mut self.timeline {
            if was_busy {
                // Same subtraction the engine just applied to busy_ms.
                tl.interrupt_busy(chip, now, unrendered_ms);
            }
            tl.begin_failed(chip, now);
        }
        self.provisioned -= 1;
        self.acc.chip_failures += 1;
        self.trace.push(TraceEntry::ChipFail { time_ms: now, chip });
        self.queue
            .try_push(repair_at, Event::ChipRepair { chip, epoch })?;
        for r in lost_batch {
            self.route_retry_or_lost(r, now)?;
        }
        Ok(())
    }

    fn on_chip_repair(&mut self, chip: usize, epoch: u64, now: f64) -> Result<bool, SimError> {
        let c = &mut self.chips[chip];
        if c.avail_epoch != epoch || c.state != ChipState::Failed {
            return Ok(false);
        }
        c.state = ChipState::Up;
        c.avail_epoch += 1;
        self.provisioned += 1;
        self.acc.peak_chips = self.acc.peak_chips.max(self.provisioned);
        self.acc.chip_repairs += 1;
        self.trace
            .push(TraceEntry::ChipRepair { time_ms: now, chip });
        if let Some(tl) = &mut self.timeline {
            tl.end_failed(chip, now);
        }
        self.arm_failure(chip, now)?;
        Ok(true)
    }

    fn online_count(&self) -> usize {
        self.chips
            .iter()
            .filter(|c| c.state == ChipState::Up)
            .count()
    }

    /// Whether the run still has anything to do: future arrivals,
    /// queued or in-flight batches, chips spinning up, or requests
    /// parked in retry backoff.
    fn work_remains(&self) -> bool {
        self.pending.is_some()
            || self.policy.depth() > 0
            || self.pending_up > 0
            || !self.parked.is_empty()
            || self.chips.iter().any(|c| c.busy)
    }

    fn on_scale_tick(&mut self, now: f64) -> Result<(), SimError> {
        let Some(a) = self.cfg.autoscale.clone() else {
            return Err(SimError::TickWithoutAutoscaler { time_ms: now });
        };
        if self.scaler.is_none() {
            return Err(SimError::TickWithoutAutoscaler { time_ms: now });
        }
        let online = self.online_count();
        let busy = self
            .chips
            .iter()
            .filter(|c| c.state == ChipState::Up && c.busy)
            .count();
        let failed = self
            .chips
            .iter()
            .filter(|c| c.state == ChipState::Failed)
            .count();
        let obs = ScaleObservation {
            now_ms: now,
            queue_depth: self.policy.depth(),
            online_chips: online,
            busy_chips: busy,
            pending_up: self.pending_up,
            failed_chips: failed,
            min_chips: a.min_chips,
            max_chips: a.max_chips,
        };
        if now - self.last_scale_action_ms >= a.cooldown_ms {
            let Some(scaler) = self.scaler.as_mut() else {
                return Err(SimError::TickWithoutAutoscaler { time_ms: now });
            };
            let decision = scaler.decide(&obs);
            if self.apply_decision(decision, &a, &obs)? {
                self.last_scale_action_ms = now;
            }
        }
        // Keep ticking only while the system still has work.
        if self.work_remains() {
            self.queue.try_push(now + a.interval_ms, Event::ScaleTick)?;
        }
        Ok(())
    }

    /// Realizes one autoscaler decision, clamped to the pool bounds and
    /// to the chips actually available. Returns whether anything
    /// changed.
    fn apply_decision(
        &mut self,
        decision: ScaleDecision,
        a: &AutoscaleConfig,
        obs: &ScaleObservation,
    ) -> Result<bool, SimError> {
        let now = self.queue.now();
        match decision {
            ScaleDecision::Hold => Ok(false),
            ScaleDecision::Up(want) => {
                let headroom = a.max_chips.saturating_sub(obs.committed_chips());
                let add = want.min(headroom);
                let mut added = 0;
                for i in 0..self.chips.len() {
                    if added == add {
                        break;
                    }
                    let c = &mut self.chips[i];
                    if c.state == ChipState::Off {
                        c.state = ChipState::Pending;
                        c.avail_epoch += 1;
                        self.provisioned += 1;
                        self.pending_up += 1;
                        self.queue
                            .try_push(now + a.spin_up_ms, Event::ChipUp { chip: i })?;
                        added += 1;
                    }
                }
                self.acc.peak_chips = self.acc.peak_chips.max(self.provisioned);
                Ok(added > 0)
            }
            ScaleDecision::Down(want) => {
                // Only idle online chips retire, and never below the
                // floor. The floor counts *online* chips only (not
                // spin-ups in flight), so the serving pool itself never
                // dips under `min_chips` — an invariant the property
                // suite replays from the trace.
                let idle = obs.online_chips - obs.busy_chips;
                let above_floor = obs.online_chips.saturating_sub(a.min_chips);
                let drop = want.min(idle).min(above_floor);
                let mut dropped = 0;
                // Highest index first, keeping low slots stable/hot.
                for i in (0..self.chips.len()).rev() {
                    if dropped == drop {
                        break;
                    }
                    let c = &mut self.chips[i];
                    if c.state == ChipState::Up && !c.busy {
                        c.state = ChipState::Retiring;
                        c.avail_epoch += 1;
                        self.queue.try_push(now, Event::ChipDown { chip: i })?;
                        dropped += 1;
                    }
                }
                Ok(dropped > 0)
            }
        }
    }

    /// Brown-out: when surviving capacity is below the configured
    /// fraction of the initial pool, trim the queue to what the
    /// survivors can plausibly serve by shedding the latest-deadline
    /// work. Shedding is terminal.
    fn shed_if_browned_out(&mut self, now: f64) -> Result<(), SimError> {
        let Some(b) = self.cfg.brown_out else {
            return Ok(());
        };
        let online = self.online_count();
        if (online as f64) >= b.capacity_threshold * self.initial_online as f64 {
            return Ok(());
        }
        let target = b.max_queue_per_chip * online;
        let depth = self.policy.depth();
        if depth <= target {
            return Ok(());
        }
        let victims = self.policy.drain_latest_deadline(depth - target);
        for v in victims {
            self.note_dequeued(&v)?;
            self.acc.shed += 1;
            *self.acc.shed_by_tenant.entry(v.tenant).or_insert(0) += 1;
            self.trace.push(TraceEntry::Shed {
                time_ms: now,
                id: v.id,
                tenant: v.tenant,
            });
        }
        Ok(())
    }

    fn dispatch(&mut self, cost: &mut CostModel) -> Result<(), SimError> {
        let now = self.queue.now();
        loop {
            if self.policy.depth() == 0 {
                return Ok(());
            }
            let Some(chip_idx) = self.chips.iter().position(Chip::dispatchable) else {
                return Ok(());
            };
            let Some(batch) = self.policy.pop_batch(self.cfg.max_batch) else {
                return Err(SimError::Invariant("depth > 0 implies a batch".into()));
            };
            for r in &batch {
                self.note_dequeued(r)?;
            }
            // With a retry policy, deadline-expired work is caught here
            // and recycled instead of burning chip time; without one
            // (legacy) it is served late and counted as a miss.
            let (live, expired): (Vec<Request>, Vec<Request>) = if self.cfg.retry.is_some() {
                batch.into_iter().partition(|r| r.deadline_ms > now)
            } else {
                (batch, Vec::new())
            };
            for r in expired {
                self.route_retry_or_lost(r, now)?;
            }
            if live.is_empty() {
                continue;
            }
            let service_ms: f64 = self.cfg.batch_overhead_ms
                + live
                    .iter()
                    .map(|r| cost.proof_ms(r.class.gate, r.class.mu))
                    .sum::<f64>();
            let c = &mut self.chips[chip_idx];
            c.busy = true;
            c.busy_ms += service_ms;
            c.batch_start_ms = now;
            c.batch_done_ms = now + service_ms;
            c.dispatch_epoch += 1;
            self.trace.push(TraceEntry::Dispatched {
                time_ms: now,
                chip: chip_idx,
                first_id: live[0].id,
                size: live.len(),
            });
            if let Some(tl) = &mut self.timeline {
                // Same addition the engine just applied to busy_ms.
                tl.begin_busy(chip_idx, now, live.len(), service_ms);
            }
            c.batch = live;
            self.acc.batches += 1;
            self.queue.try_push(
                now + service_ms,
                Event::BatchDone {
                    chip: chip_idx,
                    epoch: c.dispatch_epoch,
                },
            )?;
        }
    }
}

/// FNV-1a over the trace's raw fields (f64 times by bit pattern).
fn hash_trace(trace: &[TraceEntry]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in trace {
        match *e {
            TraceEntry::Admitted {
                time_ms,
                id,
                tenant,
            } => {
                mix(1);
                mix(time_ms.to_bits());
                mix(id);
                mix(u64::from(tenant));
            }
            TraceEntry::Rejected {
                time_ms,
                id,
                tenant,
            } => {
                mix(2);
                mix(time_ms.to_bits());
                mix(id);
                mix(u64::from(tenant));
            }
            TraceEntry::Dispatched {
                time_ms,
                chip,
                first_id,
                size,
            } => {
                mix(3);
                mix(time_ms.to_bits());
                mix(chip as u64);
                mix(first_id);
                mix(size as u64);
            }
            TraceEntry::Completed {
                time_ms,
                chip,
                size,
            } => {
                mix(4);
                mix(time_ms.to_bits());
                mix(chip as u64);
                mix(size as u64);
            }
            TraceEntry::ChipUp { time_ms, chip } => {
                mix(5);
                mix(time_ms.to_bits());
                mix(chip as u64);
            }
            TraceEntry::ChipDown { time_ms, chip } => {
                mix(6);
                mix(time_ms.to_bits());
                mix(chip as u64);
            }
            TraceEntry::ChipFail { time_ms, chip } => {
                mix(7);
                mix(time_ms.to_bits());
                mix(chip as u64);
            }
            TraceEntry::ChipRepair { time_ms, chip } => {
                mix(8);
                mix(time_ms.to_bits());
                mix(chip as u64);
            }
            TraceEntry::Retried {
                time_ms,
                id,
                attempt,
            } => {
                mix(9);
                mix(time_ms.to_bits());
                mix(id);
                mix(u64::from(attempt));
            }
            TraceEntry::Lost {
                time_ms,
                id,
                tenant,
            } => {
                mix(10);
                mix(time_ms.to_bits());
                mix(id);
                mix(u64::from(tenant));
            }
            TraceEntry::Shed {
                time_ms,
                id,
                tenant,
            } => {
                mix(11);
                mix(time_ms.to_bits());
                mix(id);
                mix(u64::from(tenant));
            }
        }
    }
    h
}

/// Convenience wrapper: Poisson traffic from the Tables VI/VII mix on
/// `chips` exemplar chips — the "one obvious call" for experiments.
/// Panics on the config errors [`simulate`] reports, which this
/// wrapper's fixed configuration cannot produce.
pub fn simulate_poisson_fleet(
    chips: usize,
    rate_rps: f64,
    horizon_ms: f64,
    policy: PolicyKind,
    seed: u64,
) -> SimReport {
    use crate::arrivals::PoissonSource;
    use crate::mix::WorkloadMix;
    let mut cost = CostModel::exemplar();
    let mix = WorkloadMix::table_vii_jellyfish(21);
    let mut source = PoissonSource::new(rate_rps, horizon_ms, mix, seed);
    let cfg = FleetConfig::new(chips).with_policy(policy);
    simulate(&cfg, &mut source, &mut cost).unwrap_or_else(|e| panic!("fixed config is valid: {e}"))
}

/// A single-class trace helper used by tests and benches.
pub fn uniform_trace(
    class: RequestClass,
    count: usize,
    gap_ms: f64,
) -> crate::arrivals::TraceSource {
    crate::arrivals::TraceSource::new((0..count).map(|i| (i as f64 * gap_ms, class)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{OnOffSource, PoissonSource};
    use crate::fault::ChipOutage;
    use crate::mix::{TenantMix, TenantProfile, WorkloadMix};
    use crate::scale::ScaleKind;
    use zkphire_core::protocol::Gate;

    fn small_run(policy: PolicyKind, seed: u64) -> SimReport {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::table_vii_jellyfish(19);
        let mut source = PoissonSource::new(40.0, 2_000.0, mix, seed);
        let cfg = FleetConfig::new(3).with_policy(policy);
        simulate(&cfg, &mut source, &mut cost).expect("sim")
    }

    fn two_tenant_mix() -> TenantMix {
        TenantMix::new(vec![
            TenantProfile::new(1, 2.0, WorkloadMix::table_vii_jellyfish(18)),
            TenantProfile::new(2, 1.0, WorkloadMix::table_vii_jellyfish(20)),
        ])
    }

    fn autoscaled_run(kind: ScaleKind, seed: u64) -> SimReport {
        let mut cost = CostModel::exemplar();
        let mut source = OnOffSource::new(900.0, 400.0, 1_200.0, 6_000.0, two_tenant_mix(), seed);
        let cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::WeightedFair)
            .with_tenant_weights(vec![(1, 2.0), (2, 1.0)])
            .with_autoscale(
                AutoscaleConfig::new(kind, 1, 6)
                    .with_spin_up_ms(50.0)
                    .with_cooldown_ms(100.0)
                    .with_interval_ms(25.0),
            );
        simulate(&cfg, &mut source, &mut cost).expect("sim")
    }

    fn conserved(r: &SimReport) -> bool {
        r.summary.arrivals
            == r.summary.completed + r.summary.rejected + r.summary.shed + r.summary.lost
    }

    #[test]
    fn completes_all_admitted_requests() {
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::SizeClass,
            PolicyKind::EarliestDeadline,
            PolicyKind::WeightedFair,
        ] {
            let r = small_run(policy, 1);
            assert!(r.summary.completed > 0, "{policy:?}");
            assert_eq!(r.summary.rejected, 0);
            assert_eq!(r.records.len() as u64, r.summary.completed);
            assert!(conserved(&r), "{policy:?}");
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a = small_run(PolicyKind::SizeClass, 7);
        let b = small_run(PolicyKind::SizeClass, 7);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_hash, b.trace_hash);
        let c = small_run(PolicyKind::SizeClass, 8);
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn capacity_produces_rejections() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 21));
        let mut source = PoissonSource::new(500.0, 1_000.0, mix, 3);
        let cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::Fifo)
            .with_max_batch(1)
            .with_queue_capacity(4);
        let r = simulate(&cfg, &mut source, &mut cost).expect("sim");
        assert!(r.summary.rejected > 0);
        assert!(r.summary.max_queue_depth <= 4);
        assert!(conserved(&r));
    }

    #[test]
    fn capacity_zero_rejects_everything() {
        // Capacity 0 means "nothing may wait": every request bounces at
        // admission even while chips sit idle. Pinned by test so later
        // admission rewrites cannot silently flip the semantics.
        let mut cost = CostModel::exemplar();
        let class = RequestClass::new(Gate::Jellyfish, 16);
        let mut source = uniform_trace(class, 50, 100.0);
        let cfg = FleetConfig::new(4).with_queue_capacity(0);
        let r = simulate(&cfg, &mut source, &mut cost).expect("sim");
        assert_eq!(r.summary.completed, 0);
        assert_eq!(r.summary.rejected, 50);
        assert!(r.records.is_empty());
    }

    #[test]
    fn utilization_grows_with_load() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
        let cfg = FleetConfig::new(2);
        let mut light_src = PoissonSource::new(10.0, 5_000.0, mix.clone(), 5);
        let light = simulate(&cfg, &mut light_src, &mut cost).expect("sim");
        let mut heavy_src = PoissonSource::new(400.0, 5_000.0, mix, 5);
        let heavy = simulate(&cfg, &mut heavy_src, &mut cost).expect("sim");
        assert!(light.summary.mean_utilization > 0.0);
        assert!(heavy.summary.mean_utilization > light.summary.mean_utilization);
        assert!(heavy.summary.mean_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn batching_amortizes_overhead_under_load() {
        // One class, heavy load: size-class batching (max 16) must beat
        // strict FIFO-of-one on p99 because it pays the 1 ms
        // reconfiguration once per 16 proofs.
        let class = RequestClass::new(Gate::Jellyfish, 15);
        let mut cost = CostModel::exemplar();
        let base = cost.proof_ms(Gate::Jellyfish, 15);
        // Arrivals at ~1.5× a single chip's no-overhead service rate.
        let gap = base / 1.5;
        let count = 400;
        let batched_cfg = FleetConfig::new(1).with_max_batch(16);
        let mut src = uniform_trace(class, count, gap);
        let batched = simulate(&batched_cfg, &mut src, &mut cost).expect("sim");
        let serial_cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::Fifo)
            .with_max_batch(1);
        let mut src = uniform_trace(class, count, gap);
        let serial = simulate(&serial_cfg, &mut src, &mut cost).expect("sim");
        assert!(batched.summary.mean_batch_size > 1.5);
        assert!(
            batched.summary.p99_latency_ms < serial.summary.p99_latency_ms,
            "batched {} vs serial {}",
            batched.summary.p99_latency_ms,
            serial.summary.p99_latency_ms
        );
    }

    #[test]
    fn more_chips_cut_p99_under_load() {
        let two = simulate_poisson_fleet(2, 120.0, 4_000.0, PolicyKind::SizeClass, 11);
        let eight = simulate_poisson_fleet(8, 120.0, 4_000.0, PolicyKind::SizeClass, 11);
        assert!(eight.summary.p99_latency_ms <= two.summary.p99_latency_ms);
    }

    #[test]
    fn autoscaled_runs_are_deterministic_and_bounded() {
        for kind in [
            ScaleKind::QueueDepth {
                up_depth: 4,
                down_depth: 0,
            },
            ScaleKind::UtilizationTarget {
                low: 0.3,
                high: 0.95,
            },
        ] {
            let a = autoscaled_run(kind, 31);
            let b = autoscaled_run(kind, 31);
            assert_eq!(a.trace, b.trace, "{kind:?} trace diverged");
            assert_eq!(a.trace_hash, b.trace_hash);
            // The pool actually moved.
            assert!(a.summary.scale_ups > 0, "{kind:?} never scaled up");
            assert!(a.summary.scale_downs > 0, "{kind:?} never scaled down");
            // Bounds hold at every instant: replay the power trace.
            let mut online = 1i64; // initial = cfg.chips clamped to [1, 6]
            for e in &a.trace {
                match e {
                    TraceEntry::ChipUp { .. } => online += 1,
                    TraceEntry::ChipDown { .. } => online -= 1,
                    _ => {}
                }
                assert!((1..=6).contains(&online), "{kind:?} pool left [1,6]");
            }
            assert!(a.summary.peak_chips <= 6);
            assert!(a.summary.mean_chips >= 1.0 - 1e-9);
            assert!(a.summary.mean_chips <= 6.0 + 1e-9);
        }
    }

    #[test]
    fn static_autoscaler_matches_fixed_pool_metrics() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::table_vii_jellyfish(19);
        let mut src_a = PoissonSource::new(150.0, 3_000.0, mix.clone(), 9);
        let fixed = simulate(&FleetConfig::new(3), &mut src_a, &mut cost).expect("sim");
        let mut src_b = PoissonSource::new(150.0, 3_000.0, mix, 9);
        let scaled_cfg =
            FleetConfig::new(3).with_autoscale(AutoscaleConfig::new(ScaleKind::Static, 3, 3));
        let auto = simulate(&scaled_cfg, &mut src_b, &mut cost).expect("sim");
        // Static autoscaling must not change what requests experience.
        assert_eq!(fixed.summary.completed, auto.summary.completed);
        assert_eq!(auto.summary.scale_ups, 0);
        assert_eq!(auto.summary.scale_downs, 0);
        assert_eq!(fixed.summary.p99_latency_ms, auto.summary.p99_latency_ms);
        // The autoscaled run's makespan can run up to one tick interval
        // past the last completion, so chip-time agrees to 3 chips ×
        // 100 ms of slack.
        let slack = 3.0 * 0.1;
        assert!(
            (fixed.summary.chip_seconds - auto.summary.chip_seconds).abs() <= slack + 1e-9,
            "fixed {} vs auto {}",
            fixed.summary.chip_seconds,
            auto.summary.chip_seconds
        );
    }

    #[test]
    fn weighted_fair_protects_light_tenant_from_flood() {
        // Noisy-neighbor isolation: tenant 1 floods an overloaded chip
        // at 9× tenant 2's rate. Under tenant-blind FIFO the light
        // tenant queues behind the flood; deficit round-robin must keep
        // its p99 far lower without losing any requests.
        let mut cost = CostModel::exemplar();
        let base = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
        // 9× the traffic but the same service entitlement.
        let tm = TenantMix::new(vec![
            TenantProfile::new(1, 9.0, base.clone()).with_service_weight(1.0),
            TenantProfile::new(2, 1.0, base),
        ]);
        let per_proof = cost.proof_ms(Gate::Jellyfish, 18);
        let rate = 2.0 * 1000.0 / per_proof; // 2× one chip's capacity
        let mut run = |policy: PolicyKind| {
            let mut source = PoissonSource::new(rate, 4_000.0, tm.clone(), 77);
            let cfg = FleetConfig::new(1)
                .with_policy(policy)
                .with_max_batch(4)
                .with_tenant_weights(tm.service_weights());
            simulate(&cfg, &mut source, &mut cost).expect("sim")
        };
        let blind = run(PolicyKind::Fifo);
        let fair = run(PolicyKind::WeightedFair);
        // Same workload either way; nothing lost.
        assert_eq!(blind.summary.completed, fair.summary.completed);
        let light = |r: &SimReport| {
            r.summary
                .per_tenant
                .iter()
                .find(|t| t.tenant == 2)
                .expect("tenant 2 completed work")
                .p99_latency_ms
        };
        let blind_p99 = light(&blind);
        let fair_p99 = light(&fair);
        assert!(
            fair_p99 < 0.5 * blind_p99,
            "fair {fair_p99} vs blind {blind_p99}"
        );
        // Per-tenant completions sum to the global count.
        for r in [&blind, &fair] {
            let sum: u64 = r.summary.per_tenant.iter().map(|t| t.completed).sum();
            assert_eq!(sum, r.summary.completed);
        }
    }

    // ------------------------------------------------------------------
    // Resilience layer
    // ------------------------------------------------------------------

    /// Saturating traffic on 2 chips with a scripted mid-run outage of
    /// chip 0: enough load that the outage always interrupts a batch.
    fn outage_run(cfg: FleetConfig, seed: u64) -> SimReport {
        let mut cost = CostModel::exemplar();
        let class = RequestClass::new(Gate::Jellyfish, 18);
        let per = cost.proof_ms(Gate::Jellyfish, 18);
        let mix = WorkloadMix::single(class);
        let rate = 1.8 * 2.0 * 1000.0 / per;
        let mut source = PoissonSource::new(rate, 2_000.0, mix, seed);
        simulate(&cfg, &mut source, &mut cost).expect("sim")
    }

    fn outage_cfg() -> FleetConfig {
        FleetConfig::new(2).with_faults(FaultConfig::scripted(vec![ChipOutage::new(
            0, 300.0, 600.0,
        )]))
    }

    #[test]
    fn chip_failure_reroutes_in_flight_work_via_retry() {
        let r = outage_run(outage_cfg().with_retry(RetryPolicy::new(5)), 21);
        assert_eq!(r.summary.chip_failures, 1);
        assert_eq!(r.summary.chip_repairs, 1);
        assert!(r.summary.retries > 0, "outage interrupted no batch");
        assert!(conserved(&r), "conservation broke under failure");
        // The interrupted work completed on its later attempt.
        assert!(r.records.iter().any(|rec| rec.attempts > 0));
        // Trace carries the failure cycle.
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, TraceEntry::ChipFail { chip: 0, .. })));
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, TraceEntry::ChipRepair { chip: 0, .. })));
    }

    #[test]
    fn failure_without_retry_loses_in_flight_batch() {
        let r = outage_run(outage_cfg(), 21);
        assert_eq!(r.summary.chip_failures, 1);
        assert_eq!(r.summary.retries, 0);
        assert!(r.summary.lost > 0, "lost batch vanished without a trace");
        assert!(conserved(&r));
        assert!(r.trace.iter().any(|e| matches!(e, TraceEntry::Lost { .. })));
    }

    #[test]
    fn retries_stay_within_budget() {
        // A harsh MTBF forces many interruptions; attempts must never
        // exceed the configured budget anywhere.
        let budget = 3u32;
        let cfg = FleetConfig::new(2)
            .with_faults(FaultConfig::random(400.0, 200.0, 5))
            .with_retry(RetryPolicy::new(budget));
        let r = outage_run(cfg, 13);
        assert!(conserved(&r));
        assert!(r.records.iter().all(|rec| rec.attempts <= budget));
        for e in &r.trace {
            if let TraceEntry::Retried { attempt, .. } = e {
                assert!(*attempt <= budget, "retry {attempt} over budget");
            }
        }
        // Budget 0 with a retry policy: rescue always fails → lost.
        let cfg0 = outage_cfg().with_retry(RetryPolicy::new(0));
        let r0 = outage_run(cfg0, 21);
        assert_eq!(r0.summary.retries, 0);
        assert!(r0.summary.lost > 0);
        assert!(conserved(&r0));
    }

    #[test]
    fn random_failures_replay_bit_identical_per_seed() {
        let cfg = FleetConfig::new(2)
            .with_faults(FaultConfig::random(500.0, 150.0, 42))
            .with_retry(RetryPolicy::new(4))
            .with_brown_out(BrownOutConfig::new(1.0, 8));
        let a = outage_run(cfg.clone(), 9);
        let b = outage_run(cfg, 9);
        assert!(a.summary.chip_failures > 0, "MTBF 500 ms never fired");
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_hash, b.trace_hash);
        // A different fault seed shifts failure times → different run.
        let cfg2 = FleetConfig::new(2)
            .with_faults(FaultConfig::random(500.0, 150.0, 43))
            .with_retry(RetryPolicy::new(4))
            .with_brown_out(BrownOutConfig::new(1.0, 8));
        let c = outage_run(cfg2, 9);
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn brown_out_sheds_under_capacity_loss() {
        // Losing 1 of 2 chips under saturating load with a tight
        // brown-out trims the backlog; without brown-out nothing sheds.
        let base = outage_cfg().with_retry(RetryPolicy::new(3));
        let no_shed = outage_run(base.clone(), 33);
        assert_eq!(no_shed.summary.shed, 0);
        let r = outage_run(base.with_brown_out(BrownOutConfig::new(1.0, 2)), 33);
        assert!(r.summary.shed > 0, "brown-out never shed");
        assert!(conserved(&r));
        assert!(r.trace.iter().any(|e| matches!(e, TraceEntry::Shed { .. })));
        // Shed requests show up in the per-tenant slices.
        let shed_sum: u64 = r.summary.per_tenant.iter().map(|t| t.shed).sum();
        assert_eq!(shed_sum, r.summary.shed);
    }

    #[test]
    fn tenant_caps_protect_light_tenant() {
        // Tenant 1 floods at 9× tenant 2's rate into one overloaded
        // chip. A per-tenant cap bounds the flood's queue share; the
        // light tenant keeps being admitted.
        let mut cost = CostModel::exemplar();
        let base = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
        let tm = TenantMix::new(vec![
            TenantProfile::new(1, 9.0, base.clone()),
            TenantProfile::new(2, 1.0, base),
        ]);
        let per = cost.proof_ms(Gate::Jellyfish, 18);
        let rate = 3.0 * 1000.0 / per;
        let mut run = |cfg: FleetConfig| {
            let mut source = PoissonSource::new(rate, 4_000.0, tm.clone(), 55);
            simulate(&cfg, &mut source, &mut cost).expect("sim")
        };
        let capped = run(FleetConfig::new(1)
            .with_queue_capacity(20)
            .with_tenant_caps(vec![(1, 10)]));
        let blind = run(FleetConfig::new(1).with_queue_capacity(20));
        let rej = |r: &SimReport, t: TenantId| {
            r.summary
                .per_tenant
                .iter()
                .find(|s| s.tenant == t)
                .map_or(0, |s| s.rejected)
        };
        // The flood, not the light tenant, absorbs the rejections.
        assert!(rej(&capped, 1) > 0);
        assert!(
            rej(&capped, 2) * 10 < rej(&blind, 2).max(1) || rej(&capped, 2) == 0,
            "cap did not protect the light tenant: capped {} blind {}",
            rej(&capped, 2),
            rej(&blind, 2)
        );
        assert!(conserved(&capped) && conserved(&blind));
    }

    #[test]
    fn tenant_caps_compose_with_zero_queue_capacity() {
        // The shared zero-capacity rule dominates: even a generous
        // per-tenant cap admits nothing when nothing may wait.
        let mut cost = CostModel::exemplar();
        let class = RequestClass::new(Gate::Jellyfish, 16);
        let mut source = uniform_trace(class, 40, 50.0);
        let cfg = FleetConfig::new(4)
            .with_queue_capacity(0)
            .with_tenant_caps(vec![(0, 100)])
            .with_default_tenant_cap(100);
        let r = simulate(&cfg, &mut source, &mut cost).expect("sim");
        assert_eq!(r.summary.completed, 0);
        assert_eq!(r.summary.rejected, 40);
        // And the reverse: a zero tenant cap under an open shared queue
        // also rejects everything for that tenant.
        let mut source = uniform_trace(class, 40, 50.0);
        let cfg = FleetConfig::new(4).with_tenant_caps(vec![(0, 0)]);
        let r = simulate(&cfg, &mut source, &mut cost).expect("sim");
        assert_eq!(r.summary.completed, 0);
        assert_eq!(r.summary.rejected, 40);
    }

    #[test]
    fn legacy_configs_ignore_resilience_machinery() {
        // No faults/retry/brown-out/caps configured → no resilience
        // trace entries and zeroed resilience counters.
        let r = small_run(PolicyKind::SizeClass, 7);
        assert_eq!(r.summary.retries, 0);
        assert_eq!(r.summary.shed, 0);
        assert_eq!(r.summary.lost, 0);
        assert_eq!(r.summary.chip_failures, 0);
        assert!(r.trace.iter().all(|e| !matches!(
            e,
            TraceEntry::ChipFail { .. }
                | TraceEntry::ChipRepair { .. }
                | TraceEntry::Retried { .. }
                | TraceEntry::Lost { .. }
                | TraceEntry::Shed { .. }
        )));
    }

    #[test]
    fn config_errors_are_typed() {
        let mut cost = CostModel::exemplar();
        let class = RequestClass::new(Gate::Jellyfish, 16);
        let mut source = uniform_trace(class, 1, 1.0);
        let err = simulate(&FleetConfig::new(0), &mut source, &mut cost).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        // Scripted outage naming a chip outside the pool.
        let cfg = FleetConfig::new(2)
            .with_faults(FaultConfig::scripted(vec![ChipOutage::new(7, 1.0, 1.0)]));
        let mut source = uniform_trace(class, 1, 1.0);
        let err = simulate(&cfg, &mut source, &mut cost).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("chip 7"));
    }

    #[test]
    fn non_finite_arrival_times_yield_typed_errors() {
        // A source emitting a NaN or infinite arrival time must surface
        // as a typed Err from simulate, never a panic from inside the
        // event heap's comparator (pinned: the partial_cmp era panicked).
        let mut cost = CostModel::exemplar();
        let class = RequestClass::new(Gate::Jellyfish, 16);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut source = crate::arrivals::TraceSource::new(vec![(bad, class)]);
            let err = simulate(&FleetConfig::new(1), &mut source, &mut cost).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidTime { .. }),
                "{bad}: {err:?}"
            );
        }
        // A time-reversed source (which TraceSource's constructor would
        // refuse) is also a typed error, not a panic.
        struct Backwards(Vec<f64>);
        impl crate::arrivals::ArrivalSource for Backwards {
            fn next_arrival(&mut self) -> Option<(f64, RequestClass, TenantId)> {
                self.0
                    .pop()
                    .map(|t| (t, RequestClass::new(Gate::Jellyfish, 16), 0))
            }
        }
        let mut source = Backwards(vec![5.0, 10.0]);
        let err = simulate(&FleetConfig::new(1), &mut source, &mut cost).unwrap_err();
        assert!(matches!(err, SimError::EventInPast { .. }), "{err:?}");
    }

    #[test]
    fn expired_work_is_recycled_only_with_retry() {
        // One slow chip, deadlines too tight for the backlog: with a
        // retry policy, late work is caught at dispatch and recycled;
        // without one it is served late (legacy) as a deadline miss.
        let mut cost = CostModel::exemplar();
        let class = RequestClass::new(Gate::Jellyfish, 18);
        let per = cost.proof_ms(Gate::Jellyfish, 18);
        let mut mk = |retry: Option<RetryPolicy>| {
            let mut cfg = FleetConfig::new(1).with_max_batch(1);
            cfg.deadline_factor = 1.1;
            cfg.deadline_slack_ms = 0.0;
            if let Some(p) = retry {
                cfg = cfg.with_retry(p);
            }
            let mut source = uniform_trace(class, 30, per * 0.5);
            simulate(&cfg, &mut source, &mut cost).expect("sim")
        };
        let legacy = mk(None);
        assert!(legacy.summary.deadline_miss_rate > 0.0);
        assert_eq!(legacy.summary.completed, 30);
        let rescued = mk(Some(RetryPolicy::new(2).with_jitter(0.0)));
        assert!(rescued.summary.retries > 0, "nothing expired at dispatch");
        assert!(conserved(&rescued));
        assert!(rescued.summary.lost > 0 || rescued.summary.completed < 30);
    }
}
