//! The fleet simulator: admission → queue → batch → chip pool, driven by
//! the event engine. The pool itself is elastic: an optional
//! [`AutoscaleConfig`] lets `ScaleTick` / `ChipUp` / `ChipDown` events
//! vary the online chip count mid-run between configured bounds.

use std::collections::BTreeMap;

use crate::arrivals::ArrivalSource;
use crate::events::{Event, EventQueue};
use crate::metrics::{summarize, FleetSummary, RunAccumulators};
use crate::policy::{BatchPolicy, PolicyKind};
use crate::request::{Request, RequestClass, RequestRecord, TenantId};
use crate::scale::{AutoscaleConfig, ScaleDecision, ScaleObservation, TenantWeights};
use zkphire_core::costdb::CostModel;

/// Deployment and policy knobs for one simulation.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Chips in the pool. With autoscaling enabled this is the
    /// *initial* online count (clamped to the autoscaler's bounds);
    /// without it, the fixed pool size.
    pub chips: usize,
    /// Batching policy.
    pub policy: PolicyKind,
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Admission cap on queued requests (`None` = unbounded). A cap of
    /// zero rejects every request: nothing may wait, not even with
    /// idle chips.
    pub queue_capacity: Option<usize>,
    /// Per-batch reconfiguration overhead (ms): program load + FSM
    /// setup when a chip switches to a batch (§III-E program swap).
    pub batch_overhead_ms: f64,
    /// Deadline budget as a multiple of the class's isolated proof
    /// latency (EDF and the miss-rate metric).
    pub deadline_factor: f64,
    /// Additive deadline slack (ms).
    pub deadline_slack_ms: f64,
    /// Reactive pool sizing; `None` keeps the pool fixed at `chips`.
    pub autoscale: Option<AutoscaleConfig>,
    /// Per-tenant service weights for [`PolicyKind::WeightedFair`] and
    /// the Jain fairness index; tenants absent here weigh 1.
    pub tenant_weights: TenantWeights,
}

impl FleetConfig {
    /// A sensible default deployment: `chips` chips, size-class
    /// batching of up to 8, 1 ms reconfiguration, deadlines at
    /// 5× isolated latency + 50 ms, fixed pool.
    pub fn new(chips: usize) -> Self {
        Self {
            chips,
            policy: PolicyKind::SizeClass,
            max_batch: 8,
            queue_capacity: None,
            batch_overhead_ms: 1.0,
            deadline_factor: 5.0,
            deadline_slack_ms: 50.0,
            autoscale: None,
            tenant_weights: Vec::new(),
        }
    }

    /// Sets the policy (builder style).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batch cap (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the admission cap (builder style). A capacity of zero
    /// rejects all traffic.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Enables reactive pool sizing (builder style).
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Sets per-tenant service weights (builder style).
    pub fn with_tenant_weights(mut self, weights: TenantWeights) -> Self {
        self.tenant_weights = weights;
        self
    }
}

/// One entry of the reproducible event trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEntry {
    /// A request was admitted to the queue.
    Admitted {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
        /// Submitting tenant.
        tenant: TenantId,
    },
    /// A request was refused at admission.
    Rejected {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
        /// Submitting tenant.
        tenant: TenantId,
    },
    /// A batch started on a chip.
    Dispatched {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
        /// First request id in the batch.
        first_id: u64,
        /// Batch size.
        size: usize,
    },
    /// A batch finished on a chip.
    Completed {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
        /// Batch size.
        size: usize,
    },
    /// The autoscaler brought a chip online.
    ChipUp {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
    },
    /// The autoscaler retired a chip.
    ChipDown {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
    },
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Aggregate metrics.
    pub summary: FleetSummary,
    /// Per-request completion records, in completion order.
    pub records: Vec<RequestRecord>,
    /// The full decision trace (admissions, dispatches, completions,
    /// chip power transitions).
    pub trace: Vec<TraceEntry>,
    /// FNV-1a hash of the trace — two runs are identical iff equal.
    pub trace_hash: u64,
}

/// Lifecycle of one pool slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChipState {
    /// Powered off; invisible to dispatch.
    Off,
    /// Spin-up decided; comes online at its `ChipUp` event.
    Pending,
    /// Online and accepting batches.
    Up,
    /// Idle chip selected for decommission; its `ChipDown` event is in
    /// flight and dispatch must not grab it.
    Retiring,
}

struct Chip {
    state: ChipState,
    busy: bool,
    busy_ms: f64,
    batch: Vec<Request>,
    batch_start_ms: f64,
}

impl Chip {
    fn dispatchable(&self) -> bool {
        self.state == ChipState::Up && !self.busy
    }
}

/// Runs the discrete-event simulation to completion: all arrivals from
/// `source` flow through admission and batching onto the simulated chip
/// pool, whose service times come from `cost` and whose size the
/// optional autoscaler varies within its bounds.
pub fn simulate<S: ArrivalSource>(
    cfg: &FleetConfig,
    source: &mut S,
    cost: &mut CostModel,
) -> SimReport {
    assert!(cfg.chips > 0, "fleet of zero chips");
    assert!(cfg.batch_overhead_ms >= 0.0);
    let (slots, initial_online) = match &cfg.autoscale {
        Some(a) => (a.max_chips, cfg.chips.clamp(a.min_chips, a.max_chips)),
        None => (cfg.chips, cfg.chips),
    };
    let mut queue = EventQueue::new();
    let mut policy = cfg.policy.build_with(&cfg.tenant_weights);
    let mut scaler = cfg.autoscale.as_ref().map(|a| a.kind.build());
    let mut chips: Vec<Chip> = (0..slots)
        .map(|i| Chip {
            state: if i < initial_online {
                ChipState::Up
            } else {
                ChipState::Off
            },
            busy: false,
            busy_ms: 0.0,
            batch: Vec::new(),
            batch_start_ms: 0.0,
        })
        .collect();
    let mut provisioned = initial_online;
    let mut pending_up = 0usize;
    let mut last_scale_action_ms = f64::NEG_INFINITY;
    let mut records: Vec<RequestRecord> = Vec::new();
    let mut trace: Vec<TraceEntry> = Vec::new();
    let mut acc = RunAccumulators {
        busy_ms: vec![0.0; slots],
        depth_time_integral: 0.0,
        max_queue_depth: 0,
        batches: 0,
        rejected: 0,
        rejected_by_tenant: BTreeMap::new(),
        makespan_ms: 0.0,
        chip_time_integral_ms: 0.0,
        peak_chips: initial_online,
        scale_ups: 0,
        scale_downs: 0,
    };

    // One arrival in flight at a time; the request body is parked here
    // until its event pops.
    let mut next_id: u64 = 0;
    let prime = |source: &mut S, queue: &mut EventQueue, next_id: &mut u64| -> Option<Request> {
        source.next_arrival().map(|(t, class, tenant)| {
            let id = *next_id;
            *next_id += 1;
            queue.push(t, Event::Arrival(id));
            Request {
                id,
                tenant,
                class,
                arrival_ms: t,
                // Deadline filled at admission (needs the cost model).
                deadline_ms: f64::INFINITY,
            }
        })
    };
    let mut pending: Option<Request> = prime(source, &mut queue, &mut next_id);
    if let Some(a) = &cfg.autoscale {
        if pending.is_some() {
            queue.push(a.interval_ms, Event::ScaleTick);
        }
    }

    let mut last_time = 0.0;
    while let Some((now, event)) = queue.pop() {
        acc.depth_time_integral += policy.depth() as f64 * (now - last_time);
        acc.chip_time_integral_ms += provisioned as f64 * (now - last_time);
        last_time = now;
        acc.makespan_ms = now;
        match event {
            Event::Arrival(id) => {
                let mut req = pending.take().expect("arrival without pending request");
                debug_assert_eq!(req.id, id);
                // Pull the next arrival before admission so the event
                // stream ordering never depends on queue state.
                pending = prime(source, &mut queue, &mut next_id);
                let full = cfg.queue_capacity.is_some_and(|cap| policy.depth() >= cap);
                if full {
                    acc.rejected += 1;
                    *acc.rejected_by_tenant.entry(req.tenant).or_insert(0) += 1;
                    trace.push(TraceEntry::Rejected {
                        time_ms: now,
                        id: req.id,
                        tenant: req.tenant,
                    });
                } else {
                    req.deadline_ms = now
                        + cfg.deadline_slack_ms
                        + cfg.deadline_factor * cost.proof_ms(req.class.gate, req.class.mu);
                    trace.push(TraceEntry::Admitted {
                        time_ms: now,
                        id: req.id,
                        tenant: req.tenant,
                    });
                    policy.push(req);
                    acc.max_queue_depth = acc.max_queue_depth.max(policy.depth());
                }
            }
            Event::BatchDone { chip } => {
                let c = &mut chips[chip];
                let size = c.batch.len();
                for r in c.batch.drain(..) {
                    records.push(RequestRecord {
                        id: r.id,
                        tenant: r.tenant,
                        class: r.class,
                        arrival_ms: r.arrival_ms,
                        deadline_ms: r.deadline_ms,
                        start_ms: c.batch_start_ms,
                        finish_ms: now,
                        chip,
                        batch_size: size,
                    });
                }
                c.busy = false;
                trace.push(TraceEntry::Completed {
                    time_ms: now,
                    chip,
                    size,
                });
            }
            Event::ChipUp { chip } => {
                let c = &mut chips[chip];
                debug_assert_eq!(c.state, ChipState::Pending);
                c.state = ChipState::Up;
                pending_up -= 1;
                acc.scale_ups += 1;
                trace.push(TraceEntry::ChipUp { time_ms: now, chip });
            }
            Event::ChipDown { chip } => {
                let c = &mut chips[chip];
                debug_assert_eq!(c.state, ChipState::Retiring);
                debug_assert!(!c.busy, "retiring a busy chip");
                c.state = ChipState::Off;
                provisioned -= 1;
                acc.scale_downs += 1;
                trace.push(TraceEntry::ChipDown { time_ms: now, chip });
            }
            Event::ScaleTick => {
                let a = cfg.autoscale.as_ref().expect("tick without autoscaler");
                let scaler = scaler.as_mut().expect("tick without autoscaler");
                let online = chips.iter().filter(|c| c.state == ChipState::Up).count();
                let busy = chips
                    .iter()
                    .filter(|c| c.state == ChipState::Up && c.busy)
                    .count();
                let obs = ScaleObservation {
                    now_ms: now,
                    queue_depth: policy.depth(),
                    online_chips: online,
                    busy_chips: busy,
                    pending_up,
                    min_chips: a.min_chips,
                    max_chips: a.max_chips,
                };
                if now - last_scale_action_ms >= a.cooldown_ms {
                    let acted = apply_decision(
                        scaler.decide(&obs),
                        a,
                        &obs,
                        &mut chips,
                        &mut queue,
                        &mut provisioned,
                        &mut pending_up,
                        &mut acc,
                    );
                    if acted {
                        last_scale_action_ms = now;
                    }
                }
                // Keep ticking only while the system still has work:
                // arrivals to come, queued or running batches, or
                // chips mid-spin-up.
                let work_remains = pending.is_some()
                    || policy.depth() > 0
                    || pending_up > 0
                    || chips.iter().any(|c| c.busy);
                if work_remains {
                    queue.push(now + a.interval_ms, Event::ScaleTick);
                }
            }
        }
        dispatch(
            cfg,
            &mut queue,
            policy.as_mut(),
            &mut chips,
            cost,
            &mut acc,
            &mut trace,
        );
    }

    for (i, c) in chips.iter().enumerate() {
        assert!(!c.busy, "chip {i} still busy at drain");
        acc.busy_ms[i] = c.busy_ms;
    }
    assert_eq!(policy.depth(), 0, "requests stranded in queue at drain");
    let trace_hash = hash_trace(&trace);
    SimReport {
        summary: summarize(&records, &acc, &cfg.tenant_weights),
        records,
        trace,
        trace_hash,
    }
}

/// Realizes one autoscaler decision, clamped to the pool bounds and to
/// the chips actually available. Returns whether anything changed.
#[allow(clippy::too_many_arguments)]
fn apply_decision(
    decision: ScaleDecision,
    a: &AutoscaleConfig,
    obs: &ScaleObservation,
    chips: &mut [Chip],
    queue: &mut EventQueue,
    provisioned: &mut usize,
    pending_up: &mut usize,
    acc: &mut RunAccumulators,
) -> bool {
    let now = queue.now();
    match decision {
        ScaleDecision::Hold => false,
        ScaleDecision::Up(want) => {
            let headroom = a.max_chips.saturating_sub(obs.committed_chips());
            let add = want.min(headroom);
            let mut added = 0;
            for (i, c) in chips.iter_mut().enumerate() {
                if added == add {
                    break;
                }
                if c.state == ChipState::Off {
                    c.state = ChipState::Pending;
                    *provisioned += 1;
                    *pending_up += 1;
                    queue.push(now + a.spin_up_ms, Event::ChipUp { chip: i });
                    added += 1;
                }
            }
            acc.peak_chips = acc.peak_chips.max(*provisioned);
            added > 0
        }
        ScaleDecision::Down(want) => {
            // Only idle online chips retire, and never below the floor.
            // The floor counts *online* chips only (not spin-ups in
            // flight), so the serving pool itself never dips under
            // `min_chips` — an invariant the property suite replays
            // from the trace.
            let idle = obs.online_chips - obs.busy_chips;
            let above_floor = obs.online_chips.saturating_sub(a.min_chips);
            let drop = want.min(idle).min(above_floor);
            let mut dropped = 0;
            // Highest index first, keeping low slots stable/hot.
            for (i, c) in chips.iter_mut().enumerate().rev() {
                if dropped == drop {
                    break;
                }
                if c.state == ChipState::Up && !c.busy {
                    c.state = ChipState::Retiring;
                    queue.push(now, Event::ChipDown { chip: i });
                    dropped += 1;
                }
            }
            dropped > 0
        }
    }
}

fn dispatch(
    cfg: &FleetConfig,
    queue: &mut EventQueue,
    policy: &mut dyn BatchPolicy,
    chips: &mut [Chip],
    cost: &mut CostModel,
    acc: &mut RunAccumulators,
    trace: &mut Vec<TraceEntry>,
) {
    let now = queue.now();
    loop {
        if policy.depth() == 0 {
            return;
        }
        let Some(chip_idx) = chips.iter().position(Chip::dispatchable) else {
            return;
        };
        let batch = policy
            .pop_batch(cfg.max_batch)
            .expect("depth > 0 implies a batch");
        let service_ms: f64 = cfg.batch_overhead_ms
            + batch
                .iter()
                .map(|r| cost.proof_ms(r.class.gate, r.class.mu))
                .sum::<f64>();
        let c = &mut chips[chip_idx];
        c.busy = true;
        c.busy_ms += service_ms;
        c.batch_start_ms = now;
        trace.push(TraceEntry::Dispatched {
            time_ms: now,
            chip: chip_idx,
            first_id: batch[0].id,
            size: batch.len(),
        });
        c.batch = batch;
        acc.batches += 1;
        queue.push(now + service_ms, Event::BatchDone { chip: chip_idx });
    }
}

/// FNV-1a over the trace's raw fields (f64 times by bit pattern).
fn hash_trace(trace: &[TraceEntry]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in trace {
        match *e {
            TraceEntry::Admitted {
                time_ms,
                id,
                tenant,
            } => {
                mix(1);
                mix(time_ms.to_bits());
                mix(id);
                mix(u64::from(tenant));
            }
            TraceEntry::Rejected {
                time_ms,
                id,
                tenant,
            } => {
                mix(2);
                mix(time_ms.to_bits());
                mix(id);
                mix(u64::from(tenant));
            }
            TraceEntry::Dispatched {
                time_ms,
                chip,
                first_id,
                size,
            } => {
                mix(3);
                mix(time_ms.to_bits());
                mix(chip as u64);
                mix(first_id);
                mix(size as u64);
            }
            TraceEntry::Completed {
                time_ms,
                chip,
                size,
            } => {
                mix(4);
                mix(time_ms.to_bits());
                mix(chip as u64);
                mix(size as u64);
            }
            TraceEntry::ChipUp { time_ms, chip } => {
                mix(5);
                mix(time_ms.to_bits());
                mix(chip as u64);
            }
            TraceEntry::ChipDown { time_ms, chip } => {
                mix(6);
                mix(time_ms.to_bits());
                mix(chip as u64);
            }
        }
    }
    h
}

/// Convenience wrapper: Poisson traffic from the Tables VI/VII mix on
/// `chips` exemplar chips — the "one obvious call" for experiments.
pub fn simulate_poisson_fleet(
    chips: usize,
    rate_rps: f64,
    horizon_ms: f64,
    policy: PolicyKind,
    seed: u64,
) -> SimReport {
    use crate::arrivals::PoissonSource;
    use crate::mix::WorkloadMix;
    let mut cost = CostModel::exemplar();
    let mix = WorkloadMix::table_vii_jellyfish(21);
    let mut source = PoissonSource::new(rate_rps, horizon_ms, mix, seed);
    let cfg = FleetConfig::new(chips).with_policy(policy);
    simulate(&cfg, &mut source, &mut cost)
}

/// A single-class trace helper used by tests and benches.
pub fn uniform_trace(
    class: RequestClass,
    count: usize,
    gap_ms: f64,
) -> crate::arrivals::TraceSource {
    crate::arrivals::TraceSource::new((0..count).map(|i| (i as f64 * gap_ms, class)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{OnOffSource, PoissonSource};
    use crate::mix::{TenantMix, TenantProfile, WorkloadMix};
    use crate::scale::ScaleKind;
    use zkphire_core::protocol::Gate;

    fn small_run(policy: PolicyKind, seed: u64) -> SimReport {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::table_vii_jellyfish(19);
        let mut source = PoissonSource::new(40.0, 2_000.0, mix, seed);
        let cfg = FleetConfig::new(3).with_policy(policy);
        simulate(&cfg, &mut source, &mut cost)
    }

    fn two_tenant_mix() -> TenantMix {
        TenantMix::new(vec![
            TenantProfile::new(1, 2.0, WorkloadMix::table_vii_jellyfish(18)),
            TenantProfile::new(2, 1.0, WorkloadMix::table_vii_jellyfish(20)),
        ])
    }

    fn autoscaled_run(kind: ScaleKind, seed: u64) -> SimReport {
        let mut cost = CostModel::exemplar();
        let mut source = OnOffSource::new(900.0, 400.0, 1_200.0, 6_000.0, two_tenant_mix(), seed);
        let cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::WeightedFair)
            .with_tenant_weights(vec![(1, 2.0), (2, 1.0)])
            .with_autoscale(
                AutoscaleConfig::new(kind, 1, 6)
                    .with_spin_up_ms(50.0)
                    .with_cooldown_ms(100.0)
                    .with_interval_ms(25.0),
            );
        simulate(&cfg, &mut source, &mut cost)
    }

    #[test]
    fn completes_all_admitted_requests() {
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::SizeClass,
            PolicyKind::EarliestDeadline,
            PolicyKind::WeightedFair,
        ] {
            let r = small_run(policy, 1);
            assert!(r.summary.completed > 0, "{policy:?}");
            assert_eq!(r.summary.rejected, 0);
            assert_eq!(r.records.len() as u64, r.summary.completed);
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a = small_run(PolicyKind::SizeClass, 7);
        let b = small_run(PolicyKind::SizeClass, 7);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_hash, b.trace_hash);
        let c = small_run(PolicyKind::SizeClass, 8);
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn capacity_produces_rejections() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 21));
        let mut source = PoissonSource::new(500.0, 1_000.0, mix, 3);
        let cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::Fifo)
            .with_max_batch(1)
            .with_queue_capacity(4);
        let r = simulate(&cfg, &mut source, &mut cost);
        assert!(r.summary.rejected > 0);
        assert!(r.summary.max_queue_depth <= 4);
    }

    #[test]
    fn capacity_zero_rejects_everything() {
        // Capacity 0 means "nothing may wait": every request bounces at
        // admission even while chips sit idle. Pinned by test so later
        // admission rewrites cannot silently flip the semantics.
        let mut cost = CostModel::exemplar();
        let class = RequestClass::new(Gate::Jellyfish, 16);
        let mut source = uniform_trace(class, 50, 100.0);
        let cfg = FleetConfig::new(4).with_queue_capacity(0);
        let r = simulate(&cfg, &mut source, &mut cost);
        assert_eq!(r.summary.completed, 0);
        assert_eq!(r.summary.rejected, 50);
        assert!(r.records.is_empty());
    }

    #[test]
    fn utilization_grows_with_load() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
        let cfg = FleetConfig::new(2);
        let mut light_src = PoissonSource::new(10.0, 5_000.0, mix.clone(), 5);
        let light = simulate(&cfg, &mut light_src, &mut cost);
        let mut heavy_src = PoissonSource::new(400.0, 5_000.0, mix, 5);
        let heavy = simulate(&cfg, &mut heavy_src, &mut cost);
        assert!(light.summary.mean_utilization > 0.0);
        assert!(heavy.summary.mean_utilization > light.summary.mean_utilization);
        assert!(heavy.summary.mean_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn batching_amortizes_overhead_under_load() {
        // One class, heavy load: size-class batching (max 16) must beat
        // strict FIFO-of-one on p99 because it pays the 1 ms
        // reconfiguration once per 16 proofs.
        let class = RequestClass::new(Gate::Jellyfish, 15);
        let mut cost = CostModel::exemplar();
        let base = cost.proof_ms(Gate::Jellyfish, 15);
        // Arrivals at ~1.5× a single chip's no-overhead service rate.
        let gap = base / 1.5;
        let count = 400;
        let batched_cfg = FleetConfig::new(1).with_max_batch(16);
        let mut src = uniform_trace(class, count, gap);
        let batched = simulate(&batched_cfg, &mut src, &mut cost);
        let serial_cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::Fifo)
            .with_max_batch(1);
        let mut src = uniform_trace(class, count, gap);
        let serial = simulate(&serial_cfg, &mut src, &mut cost);
        assert!(batched.summary.mean_batch_size > 1.5);
        assert!(
            batched.summary.p99_latency_ms < serial.summary.p99_latency_ms,
            "batched {} vs serial {}",
            batched.summary.p99_latency_ms,
            serial.summary.p99_latency_ms
        );
    }

    #[test]
    fn more_chips_cut_p99_under_load() {
        let two = simulate_poisson_fleet(2, 120.0, 4_000.0, PolicyKind::SizeClass, 11);
        let eight = simulate_poisson_fleet(8, 120.0, 4_000.0, PolicyKind::SizeClass, 11);
        assert!(eight.summary.p99_latency_ms <= two.summary.p99_latency_ms);
    }

    #[test]
    fn autoscaled_runs_are_deterministic_and_bounded() {
        for kind in [
            ScaleKind::QueueDepth {
                up_depth: 4,
                down_depth: 0,
            },
            ScaleKind::UtilizationTarget {
                low: 0.3,
                high: 0.95,
            },
        ] {
            let a = autoscaled_run(kind, 31);
            let b = autoscaled_run(kind, 31);
            assert_eq!(a.trace, b.trace, "{kind:?} trace diverged");
            assert_eq!(a.trace_hash, b.trace_hash);
            // The pool actually moved.
            assert!(a.summary.scale_ups > 0, "{kind:?} never scaled up");
            assert!(a.summary.scale_downs > 0, "{kind:?} never scaled down");
            // Bounds hold at every instant: replay the power trace.
            let mut online = 1i64; // initial = cfg.chips clamped to [1, 6]
            for e in &a.trace {
                match e {
                    TraceEntry::ChipUp { .. } => online += 1,
                    TraceEntry::ChipDown { .. } => online -= 1,
                    _ => {}
                }
                assert!((1..=6).contains(&online), "{kind:?} pool left [1,6]");
            }
            assert!(a.summary.peak_chips <= 6);
            assert!(a.summary.mean_chips >= 1.0 - 1e-9);
            assert!(a.summary.mean_chips <= 6.0 + 1e-9);
        }
    }

    #[test]
    fn static_autoscaler_matches_fixed_pool_metrics() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::table_vii_jellyfish(19);
        let mut src_a = PoissonSource::new(150.0, 3_000.0, mix.clone(), 9);
        let fixed = simulate(&FleetConfig::new(3), &mut src_a, &mut cost);
        let mut src_b = PoissonSource::new(150.0, 3_000.0, mix, 9);
        let scaled_cfg =
            FleetConfig::new(3).with_autoscale(AutoscaleConfig::new(ScaleKind::Static, 3, 3));
        let auto = simulate(&scaled_cfg, &mut src_b, &mut cost);
        // Static autoscaling must not change what requests experience.
        assert_eq!(fixed.summary.completed, auto.summary.completed);
        assert_eq!(auto.summary.scale_ups, 0);
        assert_eq!(auto.summary.scale_downs, 0);
        assert_eq!(fixed.summary.p99_latency_ms, auto.summary.p99_latency_ms);
        // The autoscaled run's makespan can run up to one tick interval
        // past the last completion, so chip-time agrees to 3 chips ×
        // 100 ms of slack.
        let slack = 3.0 * 0.1;
        assert!(
            (fixed.summary.chip_seconds - auto.summary.chip_seconds).abs() <= slack + 1e-9,
            "fixed {} vs auto {}",
            fixed.summary.chip_seconds,
            auto.summary.chip_seconds
        );
    }

    #[test]
    fn weighted_fair_protects_light_tenant_from_flood() {
        // Noisy-neighbor isolation: tenant 1 floods an overloaded chip
        // at 9× tenant 2's rate. Under tenant-blind FIFO the light
        // tenant queues behind the flood; deficit round-robin must keep
        // its p99 far lower without losing any requests.
        let mut cost = CostModel::exemplar();
        let base = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
        // 9× the traffic but the same service entitlement.
        let tm = TenantMix::new(vec![
            TenantProfile::new(1, 9.0, base.clone()).with_service_weight(1.0),
            TenantProfile::new(2, 1.0, base),
        ]);
        let per_proof = cost.proof_ms(Gate::Jellyfish, 18);
        let rate = 2.0 * 1000.0 / per_proof; // 2× one chip's capacity
        let mut run = |policy: PolicyKind| {
            let mut source = PoissonSource::new(rate, 4_000.0, tm.clone(), 77);
            let cfg = FleetConfig::new(1)
                .with_policy(policy)
                .with_max_batch(4)
                .with_tenant_weights(tm.service_weights());
            simulate(&cfg, &mut source, &mut cost)
        };
        let blind = run(PolicyKind::Fifo);
        let fair = run(PolicyKind::WeightedFair);
        // Same workload either way; nothing lost.
        assert_eq!(blind.summary.completed, fair.summary.completed);
        let light = |r: &SimReport| {
            r.summary
                .per_tenant
                .iter()
                .find(|t| t.tenant == 2)
                .expect("tenant 2 completed work")
                .p99_latency_ms
        };
        let blind_p99 = light(&blind);
        let fair_p99 = light(&fair);
        assert!(
            fair_p99 < 0.5 * blind_p99,
            "fair {fair_p99} vs blind {blind_p99}"
        );
        // Per-tenant completions sum to the global count.
        for r in [&blind, &fair] {
            let sum: u64 = r.summary.per_tenant.iter().map(|t| t.completed).sum();
            assert_eq!(sum, r.summary.completed);
        }
    }
}
