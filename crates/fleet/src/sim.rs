//! The fleet simulator: admission → queue → batch → chip pool, driven by
//! the event engine.

use crate::arrivals::ArrivalSource;
use crate::events::{Event, EventQueue};
use crate::metrics::{summarize, FleetSummary, RunAccumulators};
use crate::policy::{BatchPolicy, PolicyKind};
use crate::request::{Request, RequestClass, RequestRecord};
use zkphire_core::costdb::CostModel;

/// Deployment and policy knobs for one simulation.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of zkPHIRE chips in the pool.
    pub chips: usize,
    /// Batching policy.
    pub policy: PolicyKind,
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Admission cap on queued requests (`None` = unbounded).
    pub queue_capacity: Option<usize>,
    /// Per-batch reconfiguration overhead (ms): program load + FSM
    /// setup when a chip switches to a batch (§III-E program swap).
    pub batch_overhead_ms: f64,
    /// Deadline budget as a multiple of the class's isolated proof
    /// latency (EDF and the miss-rate metric).
    pub deadline_factor: f64,
    /// Additive deadline slack (ms).
    pub deadline_slack_ms: f64,
}

impl FleetConfig {
    /// A sensible default deployment: `chips` chips, size-class
    /// batching of up to 8, 1 ms reconfiguration, deadlines at
    /// 5× isolated latency + 50 ms.
    pub fn new(chips: usize) -> Self {
        Self {
            chips,
            policy: PolicyKind::SizeClass,
            max_batch: 8,
            queue_capacity: None,
            batch_overhead_ms: 1.0,
            deadline_factor: 5.0,
            deadline_slack_ms: 50.0,
        }
    }

    /// Sets the policy (builder style).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batch cap (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the admission cap (builder style).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }
}

/// One entry of the reproducible event trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEntry {
    /// A request was admitted to the queue.
    Admitted {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
    },
    /// A request was refused at admission.
    Rejected {
        /// Event time (ms).
        time_ms: f64,
        /// Request id.
        id: u64,
    },
    /// A batch started on a chip.
    Dispatched {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
        /// First request id in the batch.
        first_id: u64,
        /// Batch size.
        size: usize,
    },
    /// A batch finished on a chip.
    Completed {
        /// Event time (ms).
        time_ms: f64,
        /// Chip index.
        chip: usize,
        /// Batch size.
        size: usize,
    },
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Aggregate metrics.
    pub summary: FleetSummary,
    /// Per-request completion records, in completion order.
    pub records: Vec<RequestRecord>,
    /// The full decision trace (admissions, dispatches, completions).
    pub trace: Vec<TraceEntry>,
    /// FNV-1a hash of the trace — two runs are identical iff equal.
    pub trace_hash: u64,
}

struct Chip {
    busy: bool,
    busy_ms: f64,
    batch: Vec<Request>,
    batch_start_ms: f64,
}

/// Runs the discrete-event simulation to completion: all arrivals from
/// `source` flow through admission and batching onto `cfg.chips`
/// simulated chips whose service times come from `cost`.
pub fn simulate<S: ArrivalSource>(
    cfg: &FleetConfig,
    source: &mut S,
    cost: &mut CostModel,
) -> SimReport {
    assert!(cfg.chips > 0, "fleet of zero chips");
    assert!(cfg.batch_overhead_ms >= 0.0);
    let mut queue = EventQueue::new();
    let mut policy = cfg.policy.build();
    let mut chips: Vec<Chip> = (0..cfg.chips)
        .map(|_| Chip {
            busy: false,
            busy_ms: 0.0,
            batch: Vec::new(),
            batch_start_ms: 0.0,
        })
        .collect();
    let mut records: Vec<RequestRecord> = Vec::new();
    let mut trace: Vec<TraceEntry> = Vec::new();
    let mut acc = RunAccumulators {
        busy_ms: vec![0.0; cfg.chips],
        depth_time_integral: 0.0,
        max_queue_depth: 0,
        batches: 0,
        rejected: 0,
        makespan_ms: 0.0,
    };

    // One arrival in flight at a time; the request body is parked here
    // until its event pops.
    let mut next_id: u64 = 0;
    let prime = |source: &mut S, queue: &mut EventQueue, next_id: &mut u64| -> Option<Request> {
        source.next_arrival().map(|(t, class)| {
            let id = *next_id;
            *next_id += 1;
            queue.push(t, Event::Arrival(id));
            Request {
                id,
                class,
                arrival_ms: t,
                // Deadline filled at admission (needs the cost model).
                deadline_ms: f64::INFINITY,
            }
        })
    };
    let mut pending: Option<Request> = prime(source, &mut queue, &mut next_id);

    let mut last_time = 0.0;
    while let Some((now, event)) = queue.pop() {
        acc.depth_time_integral += policy.depth() as f64 * (now - last_time);
        last_time = now;
        acc.makespan_ms = now;
        match event {
            Event::Arrival(id) => {
                let mut req = pending.take().expect("arrival without pending request");
                debug_assert_eq!(req.id, id);
                // Pull the next arrival before admission so the event
                // stream ordering never depends on queue state.
                pending = prime(source, &mut queue, &mut next_id);
                let full = cfg.queue_capacity.is_some_and(|cap| policy.depth() >= cap);
                if full {
                    acc.rejected += 1;
                    trace.push(TraceEntry::Rejected {
                        time_ms: now,
                        id: req.id,
                    });
                } else {
                    req.deadline_ms = now
                        + cfg.deadline_slack_ms
                        + cfg.deadline_factor * cost.proof_ms(req.class.gate, req.class.mu);
                    trace.push(TraceEntry::Admitted {
                        time_ms: now,
                        id: req.id,
                    });
                    policy.push(req);
                    acc.max_queue_depth = acc.max_queue_depth.max(policy.depth());
                }
            }
            Event::BatchDone { chip } => {
                let c = &mut chips[chip];
                let size = c.batch.len();
                for r in c.batch.drain(..) {
                    records.push(RequestRecord {
                        id: r.id,
                        class: r.class,
                        arrival_ms: r.arrival_ms,
                        deadline_ms: r.deadline_ms,
                        start_ms: c.batch_start_ms,
                        finish_ms: now,
                        chip,
                        batch_size: size,
                    });
                }
                c.busy = false;
                trace.push(TraceEntry::Completed {
                    time_ms: now,
                    chip,
                    size,
                });
            }
        }
        dispatch(
            cfg,
            &mut queue,
            policy.as_mut(),
            &mut chips,
            cost,
            &mut acc,
            &mut trace,
        );
    }

    for (i, c) in chips.iter().enumerate() {
        assert!(!c.busy, "chip {i} still busy at drain");
        acc.busy_ms[i] = c.busy_ms;
    }
    let trace_hash = hash_trace(&trace);
    SimReport {
        summary: summarize(&records, &acc),
        records,
        trace,
        trace_hash,
    }
}

fn dispatch(
    cfg: &FleetConfig,
    queue: &mut EventQueue,
    policy: &mut dyn BatchPolicy,
    chips: &mut [Chip],
    cost: &mut CostModel,
    acc: &mut RunAccumulators,
    trace: &mut Vec<TraceEntry>,
) {
    let now = queue.now();
    loop {
        if policy.depth() == 0 {
            return;
        }
        let Some(chip_idx) = chips.iter().position(|c| !c.busy) else {
            return;
        };
        let batch = policy
            .pop_batch(cfg.max_batch)
            .expect("depth > 0 implies a batch");
        let service_ms: f64 = cfg.batch_overhead_ms
            + batch
                .iter()
                .map(|r| cost.proof_ms(r.class.gate, r.class.mu))
                .sum::<f64>();
        let c = &mut chips[chip_idx];
        c.busy = true;
        c.busy_ms += service_ms;
        c.batch_start_ms = now;
        trace.push(TraceEntry::Dispatched {
            time_ms: now,
            chip: chip_idx,
            first_id: batch[0].id,
            size: batch.len(),
        });
        c.batch = batch;
        acc.batches += 1;
        queue.push(now + service_ms, Event::BatchDone { chip: chip_idx });
    }
}

/// FNV-1a over the trace's raw fields (f64 times by bit pattern).
fn hash_trace(trace: &[TraceEntry]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in trace {
        match *e {
            TraceEntry::Admitted { time_ms, id } => {
                mix(1);
                mix(time_ms.to_bits());
                mix(id);
            }
            TraceEntry::Rejected { time_ms, id } => {
                mix(2);
                mix(time_ms.to_bits());
                mix(id);
            }
            TraceEntry::Dispatched {
                time_ms,
                chip,
                first_id,
                size,
            } => {
                mix(3);
                mix(time_ms.to_bits());
                mix(chip as u64);
                mix(first_id);
                mix(size as u64);
            }
            TraceEntry::Completed {
                time_ms,
                chip,
                size,
            } => {
                mix(4);
                mix(time_ms.to_bits());
                mix(chip as u64);
                mix(size as u64);
            }
        }
    }
    h
}

/// Convenience wrapper: Poisson traffic from the Tables VI/VII mix on
/// `chips` exemplar chips — the "one obvious call" for experiments.
pub fn simulate_poisson_fleet(
    chips: usize,
    rate_rps: f64,
    horizon_ms: f64,
    policy: PolicyKind,
    seed: u64,
) -> SimReport {
    use crate::arrivals::PoissonSource;
    use crate::mix::WorkloadMix;
    let mut cost = CostModel::exemplar();
    let mix = WorkloadMix::table_vii_jellyfish(21);
    let mut source = PoissonSource::new(rate_rps, horizon_ms, mix, seed);
    let cfg = FleetConfig::new(chips).with_policy(policy);
    simulate(&cfg, &mut source, &mut cost)
}

/// A single-class trace helper used by tests and benches.
pub fn uniform_trace(
    class: RequestClass,
    count: usize,
    gap_ms: f64,
) -> crate::arrivals::TraceSource {
    crate::arrivals::TraceSource::new((0..count).map(|i| (i as f64 * gap_ms, class)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonSource;
    use crate::mix::WorkloadMix;
    use zkphire_core::protocol::Gate;

    fn small_run(policy: PolicyKind, seed: u64) -> SimReport {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::table_vii_jellyfish(19);
        let mut source = PoissonSource::new(40.0, 2_000.0, mix, seed);
        let cfg = FleetConfig::new(3).with_policy(policy);
        simulate(&cfg, &mut source, &mut cost)
    }

    #[test]
    fn completes_all_admitted_requests() {
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::SizeClass,
            PolicyKind::EarliestDeadline,
        ] {
            let r = small_run(policy, 1);
            assert!(r.summary.completed > 0, "{policy:?}");
            assert_eq!(r.summary.rejected, 0);
            assert_eq!(r.records.len() as u64, r.summary.completed);
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a = small_run(PolicyKind::SizeClass, 7);
        let b = small_run(PolicyKind::SizeClass, 7);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_hash, b.trace_hash);
        let c = small_run(PolicyKind::SizeClass, 8);
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn capacity_produces_rejections() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 21));
        let mut source = PoissonSource::new(500.0, 1_000.0, mix, 3);
        let cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::Fifo)
            .with_max_batch(1)
            .with_queue_capacity(4);
        let r = simulate(&cfg, &mut source, &mut cost);
        assert!(r.summary.rejected > 0);
        assert!(r.summary.max_queue_depth <= 4);
    }

    #[test]
    fn utilization_grows_with_load() {
        let mut cost = CostModel::exemplar();
        let mix = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
        let cfg = FleetConfig::new(2);
        let mut light_src = PoissonSource::new(10.0, 5_000.0, mix.clone(), 5);
        let light = simulate(&cfg, &mut light_src, &mut cost);
        let mut heavy_src = PoissonSource::new(400.0, 5_000.0, mix, 5);
        let heavy = simulate(&cfg, &mut heavy_src, &mut cost);
        assert!(light.summary.mean_utilization > 0.0);
        assert!(heavy.summary.mean_utilization > light.summary.mean_utilization);
        assert!(heavy.summary.mean_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn batching_amortizes_overhead_under_load() {
        // One class, heavy load: size-class batching (max 16) must beat
        // strict FIFO-of-one on p99 because it pays the 1 ms
        // reconfiguration once per 16 proofs.
        let class = RequestClass::new(Gate::Jellyfish, 15);
        let mut cost = CostModel::exemplar();
        let base = cost.proof_ms(Gate::Jellyfish, 15);
        // Arrivals at ~1.5× a single chip's no-overhead service rate.
        let gap = base / 1.5;
        let count = 400;
        let batched_cfg = FleetConfig::new(1).with_max_batch(16);
        let mut src = uniform_trace(class, count, gap);
        let batched = simulate(&batched_cfg, &mut src, &mut cost);
        let serial_cfg = FleetConfig::new(1)
            .with_policy(PolicyKind::Fifo)
            .with_max_batch(1);
        let mut src = uniform_trace(class, count, gap);
        let serial = simulate(&serial_cfg, &mut src, &mut cost);
        assert!(batched.summary.mean_batch_size > 1.5);
        assert!(
            batched.summary.p99_latency_ms < serial.summary.p99_latency_ms,
            "batched {} vs serial {}",
            batched.summary.p99_latency_ms,
            serial.summary.p99_latency_ms
        );
    }

    #[test]
    fn more_chips_cut_p99_under_load() {
        let two = simulate_poisson_fleet(2, 120.0, 4_000.0, PolicyKind::SizeClass, 11);
        let eight = simulate_poisson_fleet(8, 120.0, 4_000.0, PolicyKind::SizeClass, 11);
        assert!(eight.summary.p99_latency_ms <= two.summary.p99_latency_ms);
    }
}
