//! Workload mixes: which request classes a traffic source draws and how
//! often.
//!
//! The default mixes come from the paper's evaluation workloads (Tables
//! VI/VII via [`zkphire_core::workloads`]): each named workload
//! contributes its published `log2 n` as one class. Weights default to
//! inverse proof size — a proving service fields many small proofs
//! (wallet transfers, single hashes) for every monster rollup — but any
//! weighting can be supplied.

use crate::request::RequestClass;
use crate::rng::SplitMix64;
use zkphire_core::protocol::Gate;
use zkphire_core::workloads::all_workloads;

/// A weighted set of request classes.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    classes: Vec<RequestClass>,
    weights: Vec<f64>,
}

impl WorkloadMix {
    /// A mix from explicit `(class, weight)` pairs.
    pub fn new(entries: Vec<(RequestClass, f64)>) -> Self {
        assert!(!entries.is_empty(), "empty workload mix");
        assert!(
            entries.iter().all(|(_, w)| *w > 0.0),
            "non-positive mix weight"
        );
        let (classes, weights) = entries.into_iter().unzip();
        Self { classes, weights }
    }

    /// A single-class mix (useful for microbenchmarks and tests).
    pub fn single(class: RequestClass) -> Self {
        Self::new(vec![(class, 1.0)])
    }

    /// The Table VII Jellyfish suite, weighted `1 / 2^(mu - mu_min)` so
    /// small proofs dominate the request stream. `max_mu` drops the
    /// largest instances (a `2^27` zkEVM proof is a batch job, not an
    /// interactive request).
    pub fn table_vii_jellyfish(max_mu: usize) -> Self {
        let entries: Vec<(RequestClass, f64)> = all_workloads()
            .iter()
            .filter_map(|w| w.jellyfish_log2)
            .filter(|&mu| mu <= max_mu)
            .map(|mu| (RequestClass::new(Gate::Jellyfish, mu), 1.0))
            .collect();
        Self::inverse_size_weighted(entries)
    }

    /// The Table VI Vanilla suite under the same inverse-size weighting.
    pub fn table_vi_vanilla(max_mu: usize) -> Self {
        let entries: Vec<(RequestClass, f64)> = all_workloads()
            .iter()
            .filter_map(|w| w.vanilla_log2)
            .filter(|&mu| mu <= max_mu)
            .map(|mu| (RequestClass::new(Gate::Vanilla, mu), 1.0))
            .collect();
        Self::inverse_size_weighted(entries)
    }

    /// Both tables combined — the service accepts either arithmetization.
    pub fn tables_vi_vii(max_mu: usize) -> Self {
        let mut entries: Vec<(RequestClass, f64)> = Vec::new();
        for w in all_workloads() {
            if let Some(mu) = w.vanilla_log2 {
                if mu <= max_mu {
                    entries.push((RequestClass::new(Gate::Vanilla, mu), 1.0));
                }
            }
            if let Some(mu) = w.jellyfish_log2 {
                if mu <= max_mu {
                    entries.push((RequestClass::new(Gate::Jellyfish, mu), 1.0));
                }
            }
        }
        Self::inverse_size_weighted(entries)
    }

    fn inverse_size_weighted(mut entries: Vec<(RequestClass, f64)>) -> Self {
        assert!(!entries.is_empty(), "no workloads under the mu cap");
        entries.sort_by_key(|(c, _)| *c);
        entries.dedup_by_key(|(c, _)| *c);
        let mu_min = entries.iter().map(|(c, _)| c.mu).min().expect("non-empty");
        for (class, weight) in &mut entries {
            *weight = 1.0 / (1u64 << (class.mu - mu_min).min(60)) as f64;
        }
        Self::new(entries)
    }

    /// The distinct classes in this mix.
    pub fn classes(&self) -> &[RequestClass] {
        &self.classes
    }

    /// Draws one class.
    pub fn draw(&self, rng: &mut SplitMix64) -> RequestClass {
        self.classes[rng.next_weighted(&self.weights)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mixes_respect_mu_cap() {
        let mix = WorkloadMix::table_vii_jellyfish(21);
        assert!(!mix.classes().is_empty());
        assert!(mix.classes().iter().all(|c| c.mu <= 21));
        assert!(mix.classes().iter().all(|c| c.gate == Gate::Jellyfish));
    }

    #[test]
    fn combined_mix_has_both_gates() {
        let mix = WorkloadMix::tables_vi_vii(22);
        assert!(mix.classes().iter().any(|c| c.gate == Gate::Vanilla));
        assert!(mix.classes().iter().any(|c| c.gate == Gate::Jellyfish));
    }

    #[test]
    fn small_classes_drawn_more_often() {
        let mix = WorkloadMix::table_vii_jellyfish(20);
        let mu_min = mix.classes().iter().map(|c| c.mu).min().unwrap();
        let mu_max = mix.classes().iter().map(|c| c.mu).max().unwrap();
        assert!(mu_min < mu_max);
        let mut rng = SplitMix64::new(5);
        let mut small = 0usize;
        let mut large = 0usize;
        for _ in 0..4000 {
            let c = mix.draw(&mut rng);
            if c.mu == mu_min {
                small += 1;
            } else if c.mu == mu_max {
                large += 1;
            }
        }
        assert!(small > large, "small {small} large {large}");
    }

    #[test]
    fn draw_is_deterministic() {
        let mix = WorkloadMix::tables_vi_vii(24);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(mix.draw(&mut a), mix.draw(&mut b));
        }
    }
}
